//! Workspace determinism regression tests.
//!
//! The reproduction's headline guarantee is *exact replay*: every
//! scenario is a pure function of its parameters and seed. These tests
//! pin that guarantee at the strongest available granularity — the full
//! simulator event trace — so any accidental nondeterminism (hash-map
//! iteration order, wall-clock leakage, RNG stream misuse) fails loudly
//! rather than silently skewing reproduced numbers.

use topomirage::scenarios::hijack::{self, HijackScenario};
use topomirage::scenarios::linkfab::{self, LinkFabScenario, RelayMode};
use topomirage::scenarios::DefenseStack;
use topomirage::types::Duration;

fn hijack_scenario(seed: u64) -> HijackScenario {
    HijackScenario {
        victim_rejoins: true,
        tail: Duration::from_millis(500),
        ..HijackScenario::new(DefenseStack::TopoGuardSphinx, seed)
    }
}

fn linkfab_scenario(seed: u64) -> LinkFabScenario {
    LinkFabScenario {
        run_for: Duration::from_secs(30),
        attack_start: Duration::from_secs(10),
        ..LinkFabScenario::new(RelayMode::OutOfBand, DefenseStack::TopoGuard, seed)
    }
}

#[test]
fn hijack_trace_replays_exactly_per_seed() {
    for seed in [1u64, 7, 1234] {
        let a = hijack::run(&hijack_scenario(seed));
        let b = hijack::run(&hijack_scenario(seed));
        assert!(!a.trace.is_empty(), "seed {seed}: trace must be captured");
        assert_eq!(
            a.trace, b.trace,
            "seed {seed}: two runs must produce identical event traces"
        );
        // The derived outcome must agree too (it is a function of the trace
        // plus controller state, so divergence here means hidden state).
        assert_eq!(a.controller_ack_at, b.controller_ack_at, "seed {seed}");
        assert_eq!(a.alerts_total, b.alerts_total, "seed {seed}");
        assert_eq!(
            a.client_pings_during_hijack, b.client_pings_during_hijack,
            "seed {seed}"
        );
        // The full telemetry snapshot is part of the determinism contract:
        // every counter, gauge and histogram bucket must replay exactly.
        assert!(
            !a.metrics.is_empty(),
            "seed {seed}: metrics must be captured"
        );
        assert_eq!(
            a.metrics.render(),
            b.metrics.render(),
            "seed {seed}: two runs must produce byte-identical metrics snapshots"
        );
    }
}

#[test]
fn linkfab_trace_replays_exactly_per_seed() {
    for seed in [2u64, 99] {
        let a = linkfab::run(&linkfab_scenario(seed));
        let b = linkfab::run(&linkfab_scenario(seed));
        assert!(!a.trace.is_empty(), "seed {seed}: trace must be captured");
        assert_eq!(
            a.trace, b.trace,
            "seed {seed}: two runs must produce identical event traces"
        );
        assert_eq!(a.link_established, b.link_established, "seed {seed}");
        assert_eq!(a.alerts_total, b.alerts_total, "seed {seed}");
        assert_eq!(a.bridged_frames, b.bridged_frames, "seed {seed}");
        assert!(
            !a.metrics.is_empty(),
            "seed {seed}: metrics must be captured"
        );
        assert_eq!(
            a.metrics.render(),
            b.metrics.render(),
            "seed {seed}: two runs must produce byte-identical metrics snapshots"
        );
    }
}

#[test]
fn metrics_snapshots_differ_across_seeds() {
    // Jittered links make frame timings seed-dependent, and the transit
    // histogram records them — so distinct seeds must produce distinct
    // snapshots. (If they ever agreed, the telemetry would have stopped
    // observing the simulation.)
    let a = hijack::run(&hijack_scenario(41));
    let b = hijack::run(&hijack_scenario(42));
    assert_ne!(
        a.metrics.render(),
        b.metrics.render(),
        "distinct seeds should draw distinct jitter and diverge in the histograms"
    );
}

#[test]
fn cross_seed_outcomes_are_stable_but_timings_vary() {
    // The paper's qualitative claims must hold for *any* seed; only the
    // jittered timings move. Distinct seeds must therefore produce
    // distinct traces (different link-jitter draws) while agreeing on
    // every headline outcome.
    let mut traces = Vec::new();
    for seed in [10u64, 20, 30] {
        let out = hijack::run(&HijackScenario {
            victim_rejoins: false,
            ..HijackScenario::new(DefenseStack::TopoGuard, seed)
        });
        assert!(out.hijack_succeeded(), "seed {seed}: hijack must land");
        assert!(
            out.undetected_before_rejoin(),
            "seed {seed}: plain TopoGuard must not alert during impersonation"
        );
        traces.push(out.trace);
    }
    assert!(
        traces[0] != traces[1] || traces[1] != traces[2],
        "distinct seeds should draw distinct jitter and diverge in the trace"
    );
}

#[test]
fn fabric_hijack_trace_replays_exactly() {
    // The fabric path adds a whole elaboration layer (generated topology,
    // role mapping from the forked attacker stream, tree-scoped flooding)
    // between parameters and simulator spec — the replay guarantee must
    // survive all of it.
    let scenario = HijackScenario::on_fabric(
        topomirage::topo::TopoKind::FatTree { k: 4 },
        DefenseStack::TopoGuardSphinx,
        11,
    );
    let a = hijack::run(&scenario);
    let b = hijack::run(&scenario);
    assert!(!a.trace.is_empty(), "fabric trace must be captured");
    assert_eq!(a.trace, b.trace, "fabric hijack must replay exactly");
    assert_eq!(a.metrics.render(), b.metrics.render());
}

#[test]
fn fabric_linkfab_trace_replays_exactly() {
    let scenario = LinkFabScenario::on_fabric(
        RelayMode::OutOfBand,
        topomirage::topo::TopoKind::Ring {
            switches: 4,
            hosts_per_switch: 2,
        },
        DefenseStack::TopoGuardPlus,
        13,
    );
    let a = linkfab::run(&scenario);
    let b = linkfab::run(&scenario);
    assert!(!a.trace.is_empty(), "fabric trace must be captured");
    assert_eq!(a.trace, b.trace, "fabric linkfab must replay exactly");
    assert_eq!(a.link_established, b.link_established);
    assert_eq!(a.metrics.render(), b.metrics.render());
}

#[test]
fn topo_matrix_render_is_reproducible() {
    // The rendered table is what EXPERIMENTS.md quotes; it must be a pure
    // function of (fabric kind, stacks, base seed).
    use topomirage::scenarios::matrix;
    let kind = topomirage::topo::TopoKind::Ring {
        switches: 4,
        hosts_per_switch: 2,
    };
    let stacks = [DefenseStack::None, DefenseStack::TopoGuardPlus];
    let a = matrix::run_matrix_on(kind, &stacks, 0xD5_2018);
    let b = matrix::run_matrix_on(kind, &stacks, 0xD5_2018);
    assert_eq!(matrix::render(&a), matrix::render(&b));
    assert!(a.iter().all(|e| e.failure.is_none()), "no cell may crash");
}
