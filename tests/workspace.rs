//! Workspace-level integration tests exercising the public facade:
//! end-to-end determinism, failure injection, and cross-crate wiring.

use topomirage::controller::{ControllerConfig, SdnController};
use topomirage::netsim::apps::PeriodicPinger;
use topomirage::netsim::{LinkProfile, NetworkSpec, Simulator};
use topomirage::scenarios::hijack::{self, HijackScenario};
use topomirage::scenarios::linkfab::{self, LinkFabScenario, RelayMode};
use topomirage::scenarios::DefenseStack;
use topomirage::types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo};

#[test]
fn scenario_outcomes_are_deterministic_per_seed() {
    let run = || {
        let out = hijack::run(&HijackScenario::new(DefenseStack::TopoGuardSphinx, 9));
        (
            out.timeline.iface_up_at,
            out.controller_ack_at,
            out.alerts_total,
            out.client_pings_during_hijack,
        )
    };
    assert_eq!(run(), run(), "same seed must reproduce the entire scenario");
}

#[test]
fn different_seeds_vary_timing_but_not_outcome() {
    let mut acks = Vec::new();
    for seed in 0..5 {
        let out = hijack::run(&HijackScenario {
            victim_rejoins: false,
            ..HijackScenario::new(DefenseStack::TopoGuard, 300 + seed)
        });
        assert!(out.hijack_succeeded(), "seed {seed}");
        acks.push(out.controller_ack_delay_ms().unwrap());
    }
    let distinct: std::collections::BTreeSet<u64> = acks.iter().map(|a| a.to_bits()).collect();
    assert!(distinct.len() > 1, "jitter should vary timings: {acks:?}");
}

/// Failure injection: flapping switch ports and lost LLDP rounds must not
/// wedge the controller or the defenses — links recover after the flap.
#[test]
fn controller_recovers_from_port_flaps() {
    let s1 = DatapathId::new(1);
    let s2 = DatapathId::new(2);
    let mut spec = NetworkSpec::new();
    spec.add_switch(s1);
    spec.add_switch(s2);
    let link = LinkProfile::fixed(Duration::from_millis(5));
    spec.link_switches(s1, PortNo::new(1), s2, PortNo::new(1), link);
    spec.add_host(
        HostId::new(1),
        MacAddr::from_index(1),
        IpAddr::new(10, 0, 0, 1),
    );
    spec.attach_host(HostId::new(1), s1, PortNo::new(2), link);
    // Full TOPOGUARD+ stack: the flaps must not produce fabrication alerts.
    spec.set_controller(Box::new(DefenseStack::TopoGuardPlus.build_controller(
        ControllerConfig {
            profile: topomirage::controller::ControllerProfile::POX,
            ..ControllerConfig::default()
        },
    )));
    let mut sim = Simulator::new(spec, 17);
    sim.run_for(Duration::from_secs(6));
    assert_eq!(
        sim.controller_as::<SdnController>()
            .unwrap()
            .topology()
            .len(),
        2
    );

    // Flap the trunk three times (each flap hides at least one LLDP round).
    for _ in 0..3 {
        sim.set_switch_port_admin(s1, PortNo::new(1), false);
        sim.run_for(Duration::from_secs(12));
        sim.set_switch_port_admin(s1, PortNo::new(1), true);
        sim.run_for(Duration::from_secs(12));
    }
    let ctrl: &SdnController = sim.controller_as().unwrap();
    assert_eq!(ctrl.topology().len(), 2, "links must be re-discovered");
    // A real port flap during quiet periods is not link fabrication.
    assert_eq!(
        ctrl.alerts()
            .count(topomirage::controller::AlertKind::LinkFabrication),
        0
    );
}

/// Dropping every LLDP round for long enough expires links; traffic still
/// flows on same-switch paths, and discovery resumes cleanly.
#[test]
fn link_expiry_under_lldp_loss_does_not_break_local_forwarding() {
    let s1 = DatapathId::new(1);
    let mut spec = NetworkSpec::new();
    spec.add_switch(s1);
    let link = LinkProfile::fixed(Duration::from_millis(2));
    for i in 1..=2u32 {
        spec.add_host(
            HostId::new(i),
            MacAddr::from_index(i),
            IpAddr::new(10, 0, 0, i as u8),
        );
        spec.attach_host(HostId::new(i), s1, PortNo::new(i as u16), link);
    }
    spec.set_host_app(
        HostId::new(1),
        Box::new(PeriodicPinger::new(
            IpAddr::new(10, 0, 0, 2),
            Duration::from_millis(100),
        )),
    );
    spec.set_controller(Box::new(SdnController::new(ControllerConfig::default())));
    let mut sim = Simulator::new(spec, 23);
    sim.run_for(Duration::from_secs(5));
    let pinger: &PeriodicPinger = sim.host_app_as(HostId::new(1)).unwrap();
    assert!(
        pinger.received > 40,
        "local forwarding works: {}",
        pinger.received
    );
}

#[test]
fn facade_reexports_compose() {
    // The doc-comment quickstart, as a test.
    let outcome = linkfab::run(&LinkFabScenario::new(
        RelayMode::OutOfBand,
        DefenseStack::TopoGuard,
        42,
    ));
    assert!(outcome.succeeded_undetected());

    // Statistics utilities reachable through the facade.
    let timeout = topomirage::stats::normal_quantile(20.0, 5.0, 0.99);
    assert!((timeout - 31.63).abs() < 0.1);
}

/// The attack window math of §IV-B2: hijack completion across many seeds
/// stays far inside a seconds-scale migration window.
#[test]
fn hijack_fits_live_migration_windows() {
    for seed in 0..8 {
        let out = hijack::run(&HijackScenario {
            victim_rejoins: false,
            ..HijackScenario::new(DefenseStack::TopoGuardSphinx, 900 + seed)
        });
        let ack = out.controller_ack_delay_ms().expect("hijack landed");
        assert!(
            ack < 1000.0,
            "seed {seed}: {ack} ms must fit a ~3000 ms migration window"
        );
    }
}

/// Datacenter-scale smoke: a generated fat-tree k=8 fabric (80 switches)
/// boots under the full TopoGuard+ stack and runs one simulated second of
/// control-plane load end to end — handshakes, LLDP discovery, echo
/// probes — through the facade's scale scenario. Guards the whole
/// tm-topo → netsim → controller pipeline at a size the paper's
/// four-switch testbeds never reach.
#[test]
fn fat_tree_scale_soak_boots_and_discovers() {
    use topomirage::scenarios::scale::{self, ScaleScenario};
    use topomirage::topo::TopoKind;

    let out = scale::run(&ScaleScenario::new(
        TopoKind::FatTree { k: 8 },
        DefenseStack::TopoGuardPlus,
        0xD5_2018,
    ));
    assert_eq!(out.switches, 80, "fat-tree k=8: 16 core + 32 agg + 32 edge");
    assert!(
        out.events_processed > 2_000,
        "a booting 80-switch fabric must process a nontrivial event load, got {}",
        out.events_processed
    );
    // Every inter-switch link is discovered in both directions: k=8 has
    // 256 undirected switch-switch links (core-agg 128, agg-edge 128),
    // so 512 directed adjacencies.
    assert_eq!(
        out.links_discovered, 512,
        "LLDP discovery must converge on the full fabric within 1 s"
    );
    // The run stops mid-cadence, so parked periodic timers (echo, next
    // LLDP round) legitimately outlive it — but nothing due may be lost.
    assert!(
        out.events_scheduled >= out.events_processed,
        "scheduled {} < processed {}",
        out.events_scheduled,
        out.events_processed
    );
    assert_eq!(
        out.alerts_total, 0,
        "a benign fabric must not trip TopoGuard+"
    );
}
