//! Workspace-level scheduler differential: every registered campaign
//! scenario — the full reproduction pipeline of discovery, defenses,
//! attacks, and fault injection — must render byte-identical campaign
//! reports whether the engine runs on the timing wheel or the binary
//! heap, at any worker count.
//!
//! The backend is selected via the process-wide override
//! ([`netsim::set_global_sched_backend`]): campaign scenarios build their
//! simulators internally, so the per-spec hook is out of reach here, and
//! the override is exactly the knob CI uses to re-run the whole suite on
//! the legacy heap. The test is single-threaded per campaign run (workers
//! only parallelize whole runs, each of which reads the override once at
//! spec-build time... the override stays fixed for the duration of each
//! backend's sweep, so worker count cannot interleave backends).

use bench::campaign::registry;
use netsim::{set_global_sched_backend, SchedBackend};
use tm_campaign::{run_campaign, CampaignSpec};
use tm_core::load::{self, LoadScenario};
use tm_core::{DefenseStack, TrafficLoad};
use tm_topo::TopoKind;

/// One campaign render under a given backend and worker count.
fn render(scenario: &str, backend: SchedBackend, workers: usize) -> String {
    set_global_sched_backend(Some(backend));
    let registry = registry();
    let mut spec = CampaignSpec::new(scenario, 0xD5_2018);
    spec.seeds = 2;
    spec.workers = workers;
    let report = run_campaign(&registry, &spec)
        .unwrap_or_else(|e| panic!("campaign {scenario} failed: {e}"));
    set_global_sched_backend(None);
    report.render()
}

/// Runs the backend × worker-count square for one scenario and asserts all
/// four renders agree.
fn assert_backend_square(scenario: &str) {
    let wheel_w1 = render(scenario, SchedBackend::Wheel, 1);
    let wheel_w2 = render(scenario, SchedBackend::Wheel, 2);
    let heap_w1 = render(scenario, SchedBackend::Heap, 1);
    let heap_w2 = render(scenario, SchedBackend::Heap, 2);
    assert_eq!(
        wheel_w1, wheel_w2,
        "{scenario}: wheel render differs across worker counts"
    );
    assert_eq!(
        heap_w1, heap_w2,
        "{scenario}: heap render differs across worker counts"
    );
    assert_eq!(
        wheel_w1, heap_w1,
        "{scenario}: wheel and heap campaign reports diverged"
    );
}

/// Tier-1 slice: the two designated smoke scenarios, cheap enough for the
/// debug-mode workspace test run.
#[test]
fn smoke_scenarios_are_backend_and_worker_identical() {
    for scenario in ["probe-overhead", "ident-change"] {
        assert_backend_square(scenario);
    }
}

/// The full registry sweep — minutes of virtual time per scenario, so it
/// is ignored under the debug tier-1 budget; ci.sh runs it in release via
/// `cargo test --release --test sched_diff -- --ignored`.
///
/// The `load` scenario is exempt: its grid tops out at 102,400 virtual
/// hosts per cell, which would multiply this sweep's wall clock by ~5×
/// for coverage [`load_soak_is_backend_identical`] provides directly on
/// a small population (the traffic engine's event stream is the same
/// code path at every population size).
#[test]
#[ignore = "full-registry sweep; run in release (see ci.sh)"]
fn every_campaign_scenario_is_backend_and_worker_identical() {
    let names: Vec<String> = registry()
        .scenarios()
        .iter()
        .map(|s| s.name.clone())
        .filter(|n| n != "load")
        .collect();
    assert!(names.len() >= 9, "registry unexpectedly small: {names:?}");
    for scenario in &names {
        assert_backend_square(scenario);
    }
}

/// Backend differential for the flow-level traffic engine: one steady and
/// one bursty load soak, rendered on both scheduler backends, must agree
/// on every counter — flows offered, packets aggregated/expanded,
/// Packet-Ins, events, alerts. Covers the arrival-chain, phase, and
/// expiry events the other sweeps never schedule.
#[test]
#[ignore = "release-tier differential; run in release (see ci.sh)"]
fn load_soak_is_backend_identical() {
    for (label, traffic) in [
        ("steady", TrafficLoad::steady(800, 0.5)),
        ("bursty", TrafficLoad::bursty(800, 2.0)),
    ] {
        let run = |backend| {
            set_global_sched_backend(Some(backend));
            let out = load::run(&LoadScenario::new(
                TopoKind::FatTree { k: 4 },
                DefenseStack::TopoGuardPlus,
                traffic,
                0xD5_2018,
            ));
            set_global_sched_backend(None);
            format!("{out:?}")
        };
        let wheel = run(SchedBackend::Wheel);
        let heap = run(SchedBackend::Heap);
        assert_eq!(
            wheel, heap,
            "{label} load soak diverged between scheduler backends"
        );
    }
}
