//! Fault-plan configuration for the `netsim` fault-injection layer.
//!
//! A [`FaultPlan`] is a declarative, seed-independent description of the
//! degraded network conditions a scenario should run under: per-link packet
//! loss ([`LossModel::Bernoulli`] or bursty [`LossModel::GilbertElliott`]),
//! latency spikes, link flaps (the port-down/port-up primitive Port Amnesia
//! abuses), switch restarts (flow-table wipe + control-channel reconnect),
//! and control-channel congestion (fixed queuing delay on `PacketIn` /
//! `PacketOut`).
//!
//! The plan itself contains **no randomness and no state** — it is pure
//! configuration, consumed by `netsim::faults`, which turns every entry into
//! ordinary scheduled events in the deterministic event queue. Randomized
//! faults (loss draws, spike jitter) draw from the simulation's single
//! seeded RNG *only while a fault window is active*, so an empty plan leaves
//! the RNG stream, the event sequence numbers, and therefore the whole event
//! trace byte-identical to a run without any plan (pinned by
//! `crates/netsim/tests/faults.rs`).
//!
//! Link-directed faults (loss, spikes) target one **egress direction** of a
//! switch port, identified by `(DatapathId, PortNo)`; to degrade a
//! switch-to-switch link in both directions, add one entry per end. Windowed
//! faults are half-open: active at `from`, inactive again at `until`.
//!
//! # Example
//!
//! ```
//! use sdn_types::{DatapathId, Duration, PortNo, SimTime};
//! use tm_faults::{FaultPlan, FaultWindow, LossModel};
//!
//! let mut plan = FaultPlan::new();
//! let window = FaultWindow::new(SimTime::from_secs(10), SimTime::from_secs(20));
//! plan.link_loss(DatapathId::new(1), PortNo::new(1), LossModel::bernoulli(0.3), window)
//!     .latency_spike(
//!         DatapathId::new(2),
//!         PortNo::new(1),
//!         Duration::from_millis(4),
//!         Duration::from_millis(1),
//!         window,
//!     )
//!     .link_flap(
//!         DatapathId::new(1),
//!         PortNo::new(10),
//!         SimTime::from_secs(12),
//!         SimTime::from_secs(13),
//!     );
//! assert_eq!(plan.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sdn_types::{DatapathId, Duration, PortNo, SimTime};

/// A half-open activity window `[from, until)` for a stateful fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultWindow {
    /// When the fault becomes active.
    pub from: SimTime,
    /// When the fault deactivates again.
    pub until: SimTime,
}

impl FaultWindow {
    /// Creates a window.
    ///
    /// # Panics
    /// Panics unless `from < until`.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "fault window must satisfy from < until");
        FaultWindow { from, until }
    }
}

/// How packets are lost on a degraded link.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LossModel {
    /// Independent per-transit loss with probability `p`.
    Bernoulli {
        /// Per-transit drop probability.
        p: f64,
    },
    /// The two-state Gilbert-Elliott burst-loss chain: a *good* and a *bad*
    /// state with separate loss probabilities; per transit the chain first
    /// decides loss by the current state, then transitions.
    GilbertElliott {
        /// Probability of moving good → bad after a transit.
        p_good_to_bad: f64,
        /// Probability of moving bad → good after a transit.
        p_bad_to_good: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
}

fn assert_prob(p: f64, what: &str) {
    assert!((0.0..=1.0).contains(&p), "{what} ({p}) must be in [0, 1]");
}

impl LossModel {
    /// Independent loss with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn bernoulli(p: f64) -> Self {
        assert_prob(p, "loss probability");
        LossModel::Bernoulli { p }
    }

    /// A Gilbert-Elliott burst-loss chain.
    ///
    /// # Panics
    /// Panics unless all four probabilities are in `[0, 1]`.
    pub fn gilbert_elliott(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Self {
        assert_prob(p_good_to_bad, "good→bad probability");
        assert_prob(p_bad_to_good, "bad→good probability");
        assert_prob(loss_good, "good-state loss probability");
        assert_prob(loss_bad, "bad-state loss probability");
        LossModel::GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
        }
    }
}

/// Packet loss on one egress direction of a switch port.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkLoss {
    /// The switch owning the egress port.
    pub dpid: DatapathId,
    /// The egress port.
    pub port: PortNo,
    /// The loss process.
    pub model: LossModel,
    /// When the loss is active.
    pub window: FaultWindow,
}

/// Extra latency on one egress direction of a switch port: a fixed mean
/// `extra` plus optional Gaussian jitter, on top of the link's own profile.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LatencySpike {
    /// The switch owning the egress port.
    pub dpid: DatapathId,
    /// The egress port.
    pub port: PortNo,
    /// Mean extra one-way delay while active.
    pub extra: Duration,
    /// Standard deviation of Gaussian jitter on the extra delay
    /// (zero = deterministic extra delay, consuming no RNG draws).
    pub jitter_sd: Duration,
    /// When the spike is active.
    pub window: FaultWindow,
}

/// One down/up cycle of a switch port (the Port Amnesia primitive): the
/// port goes administratively down at `down_at` and comes back at `up_at`,
/// producing the same `PortStatus` messages a cable pull would.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkFlap {
    /// The switch owning the port.
    pub dpid: DatapathId,
    /// The flapping port.
    pub port: PortNo,
    /// When the port goes down.
    pub down_at: SimTime,
    /// When the port comes back up.
    pub up_at: SimTime,
}

/// A switch restart: the flow table is wiped at `at` (in-flight traffic
/// starts table-missing into `PacketIn`s immediately) and after `outage`
/// the switch re-runs its controller handshake (Hello + FeaturesReply),
/// so the controller observes a reconnect.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SwitchRestart {
    /// The restarting switch.
    pub dpid: DatapathId,
    /// When the restart happens (flow-table wipe).
    pub at: SimTime,
    /// How long until the control channel re-handshakes.
    pub outage: Duration,
}

/// Control-channel congestion for one switch: every control message in
/// either direction (`PacketIn`/`PacketOut`/echo/stats) is queued for an
/// extra fixed delay while active — the condition that skews the
/// controller's echo-RTT latency estimate and with it the LLI's
/// `T_LLDP − T_SW1 − T_SW2` computation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CtrlCongestion {
    /// The switch whose control channel is congested.
    pub dpid: DatapathId,
    /// Extra queuing delay per control message while active.
    pub extra_delay: Duration,
    /// When the congestion is active.
    pub window: FaultWindow,
}

/// A complete, declarative fault schedule for one simulation run.
///
/// Build with the chaining methods ([`FaultPlan::link_loss`] etc.), then
/// hand to `netsim::Simulator::with_fault_plan`. An empty plan is exactly
/// equivalent to no plan.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FaultPlan {
    loss: Vec<LinkLoss>,
    spikes: Vec<LatencySpike>,
    flaps: Vec<LinkFlap>,
    restarts: Vec<SwitchRestart>,
    congestion: Vec<CtrlCongestion>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a packet-loss fault on the egress direction `(dpid, port)`.
    pub fn link_loss(
        &mut self,
        dpid: DatapathId,
        port: PortNo,
        model: LossModel,
        window: FaultWindow,
    ) -> &mut Self {
        self.loss.push(LinkLoss {
            dpid,
            port,
            model,
            window,
        });
        self
    }

    /// Adds a latency spike on the egress direction `(dpid, port)`.
    pub fn latency_spike(
        &mut self,
        dpid: DatapathId,
        port: PortNo,
        extra: Duration,
        jitter_sd: Duration,
        window: FaultWindow,
    ) -> &mut Self {
        self.spikes.push(LatencySpike {
            dpid,
            port,
            extra,
            jitter_sd,
            window,
        });
        self
    }

    /// Adds one port down/up cycle.
    ///
    /// # Panics
    /// Panics unless `down_at < up_at`.
    pub fn link_flap(
        &mut self,
        dpid: DatapathId,
        port: PortNo,
        down_at: SimTime,
        up_at: SimTime,
    ) -> &mut Self {
        assert!(down_at < up_at, "flap must satisfy down_at < up_at");
        self.flaps.push(LinkFlap {
            dpid,
            port,
            down_at,
            up_at,
        });
        self
    }

    /// Adds a switch restart.
    pub fn switch_restart(&mut self, dpid: DatapathId, at: SimTime, outage: Duration) -> &mut Self {
        self.restarts.push(SwitchRestart { dpid, at, outage });
        self
    }

    /// Adds control-channel congestion for `dpid`.
    pub fn ctrl_congestion(
        &mut self,
        dpid: DatapathId,
        extra_delay: Duration,
        window: FaultWindow,
    ) -> &mut Self {
        self.congestion.push(CtrlCongestion {
            dpid,
            extra_delay,
            window,
        });
        self
    }

    /// The packet-loss faults.
    pub fn loss(&self) -> &[LinkLoss] {
        &self.loss
    }

    /// The latency-spike faults.
    pub fn spikes(&self) -> &[LatencySpike] {
        &self.spikes
    }

    /// The link flaps.
    pub fn flaps(&self) -> &[LinkFlap] {
        &self.flaps
    }

    /// The switch restarts.
    pub fn restarts(&self) -> &[SwitchRestart] {
        &self.restarts
    }

    /// The control-channel congestion faults.
    pub fn congestion(&self) -> &[CtrlCongestion] {
        &self.congestion
    }

    /// Total number of fault entries.
    pub fn len(&self) -> usize {
        self.loss.len()
            + self.spikes.len()
            + self.flaps.len()
            + self.restarts.len()
            + self.congestion.len()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(from_s: u64, until_s: u64) -> FaultWindow {
        FaultWindow::new(SimTime::from_secs(from_s), SimTime::from_secs(until_s))
    }

    #[test]
    fn empty_plan_reports_empty() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
    }

    #[test]
    fn builder_accumulates_every_fault_kind() {
        let mut plan = FaultPlan::new();
        plan.link_loss(
            DatapathId::new(1),
            PortNo::new(1),
            LossModel::bernoulli(0.5),
            win(1, 2),
        )
        .latency_spike(
            DatapathId::new(1),
            PortNo::new(2),
            Duration::from_millis(3),
            Duration::ZERO,
            win(1, 2),
        )
        .link_flap(
            DatapathId::new(2),
            PortNo::new(10),
            SimTime::from_secs(3),
            SimTime::from_secs(4),
        )
        .switch_restart(
            DatapathId::new(3),
            SimTime::from_secs(5),
            Duration::from_millis(200),
        )
        .ctrl_congestion(DatapathId::new(4), Duration::from_millis(10), win(6, 7));
        assert_eq!(plan.len(), 5);
        assert!(!plan.is_empty());
        assert_eq!(plan.loss().len(), 1);
        assert_eq!(plan.spikes().len(), 1);
        assert_eq!(plan.flaps().len(), 1);
        assert_eq!(plan.restarts().len(), 1);
        assert_eq!(plan.congestion().len(), 1);
    }

    #[test]
    #[should_panic(expected = "from < until")]
    fn window_order_is_validated() {
        let _ = FaultWindow::new(SimTime::from_secs(2), SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "down_at < up_at")]
    fn flap_order_is_validated() {
        let mut plan = FaultPlan::new();
        plan.link_flap(
            DatapathId::new(1),
            PortNo::new(1),
            SimTime::from_secs(2),
            SimTime::from_secs(1),
        );
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn bernoulli_probability_is_validated() {
        let _ = LossModel::bernoulli(1.5);
    }

    #[test]
    #[should_panic(expected = "bad→good")]
    fn gilbert_elliott_probabilities_are_validated() {
        let _ = LossModel::gilbert_elliott(0.1, 7.0, 0.0, 1.0);
    }
}
