//! Property tests for the topology generators: structural invariants
//! (counts, radix, connectivity) and the seeding contract (same seed ⇒
//! identical spec; the attacker stream never touches the fabric).

use sdn_types::DatapathId;
use tm_prop::prelude::*;
use tm_topo::{TopoKind, TopologySpec};

/// Union-find connectivity over switches plus host attachments.
fn is_connected(topo: &TopologySpec) -> bool {
    let n = topo.switches.len() + topo.hosts.len();
    if n == 0 {
        return true;
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let union = |parent: &mut [usize], a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        parent[ra] = rb;
    };
    // Generated dpids are sequential from 1; hosts follow in declaration order.
    let sw = |d: DatapathId| d.raw() as usize - 1;
    for l in &topo.links {
        union(&mut parent, sw(l.a), sw(l.b));
    }
    for (i, h) in topo.hosts.iter().enumerate() {
        union(&mut parent, topo.switches.len() + i, sw(h.dpid));
    }
    let root = find(&mut parent, 0);
    (1..n).all(|x| find(&mut parent, x) == root)
}

fn kind_strategy() -> impl Strategy<Value = TopoKind> {
    prop_oneof![
        (2u16..=8).prop_map(|half| TopoKind::FatTree { k: half * 2 }),
        (1u16..6, 1u16..40, 0u16..4).prop_map(|(core, edge, hosts_per_edge)| {
            TopoKind::CoreEdge {
                core,
                edge,
                hosts_per_edge,
            }
        }),
        (1u16..50, 0u16..4).prop_map(|(switches, hosts_per_switch)| TopoKind::Linear {
            switches,
            hosts_per_switch,
        }),
        (3u16..50, 0u16..4).prop_map(|(switches, hosts_per_switch)| TopoKind::Ring {
            switches,
            hosts_per_switch,
        }),
    ]
}

tm_prop! {
    #![tm_config(cases = 64)]

    #[test]
    fn fat_tree_has_canonical_shape(half in 2u16..=8, seed in 0u64..1000) {
        let k = half * 2;
        let topo = TopoKind::FatTree { k }.generate(seed, 0);
        let ku = k as usize;
        assert_eq!(topo.switches.len(), 5 * ku * ku / 4, "5k²/4 switches");
        assert_eq!(topo.hosts.len(), ku * ku * ku / 4, "k³/4 hosts");
        // Every switch in a fat-tree uses exactly k ports.
        for (dpid, deg) in topo.degrees() {
            assert_eq!(deg, ku, "switch {dpid} of fat-tree-{k}");
        }
        assert!(is_connected(&topo));
    }

    #[test]
    fn every_kind_is_connected_and_within_radix(kind in kind_strategy(), seed in 0u64..1000) {
        let topo = kind.generate(seed, 0);
        assert_eq!(topo.switches.len(), kind.switch_count());
        assert_eq!(topo.hosts.len(), kind.host_count());
        assert!(is_connected(&topo), "{kind} must be connected");
        let radix = match kind {
            TopoKind::FatTree { k } => k as usize,
            // Core mesh + every edge's two uplinks can land on one core.
            TopoKind::CoreEdge { core, edge, .. } =>
                (core as usize - 1) + 2 * edge as usize,
            TopoKind::Linear { hosts_per_switch, .. } => 2 + hosts_per_switch as usize,
            TopoKind::Ring { hosts_per_switch, .. } => 2 + hosts_per_switch as usize,
        };
        for (dpid, deg) in topo.degrees() {
            assert!(deg <= radix, "{kind}: switch {dpid} degree {deg} > {radix}");
        }
        // Port numbers stay physical and unique per switch.
        let mut used = std::collections::BTreeSet::new();
        for l in &topo.links {
            assert!(l.port_a.is_physical() && l.port_b.is_physical());
            assert!(used.insert((l.a, l.port_a)), "duplicate port {:?}", (l.a, l.port_a));
            assert!(used.insert((l.b, l.port_b)), "duplicate port {:?}", (l.b, l.port_b));
        }
        for h in &topo.hosts {
            assert!(used.insert((h.dpid, h.port)), "host port collides at {:?}", (h.dpid, h.port));
        }
    }

    #[test]
    fn same_seed_reproduces_the_spec_exactly(kind in kind_strategy(), seed in 0u64..u64::MAX) {
        let attackers = kind.host_count().min(3);
        assert_eq!(kind.generate(seed, attackers), kind.generate(seed, attackers));
    }

    #[test]
    fn attacker_stream_varies_placement_without_moving_the_fabric(
        kind in kind_strategy(),
        seed_a in 0u64..500,
        seed_b in 500u64..1000,
    ) {
        let attackers = kind.host_count().min(2);
        let a = kind.generate(seed_a, attackers);
        let b = kind.generate(seed_b, attackers);
        assert_eq!(a.switches, b.switches, "{kind}: fabric must be seed-independent");
        assert_eq!(a.links, b.links, "{kind}");
        assert_eq!(a.hosts, b.hosts, "{kind}");
        // And the draw is well-formed: distinct, existing hosts.
        for spec in [&a, &b] {
            let mut ids: Vec<_> = spec.attackers.clone();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), spec.attackers.len(), "distinct attackers");
            for id in &spec.attackers {
                assert!(spec.hosts.iter().any(|h| h.id == *id));
            }
        }
    }

    #[test]
    fn attacker_count_never_perturbs_the_fabric_and_draws_form_a_prefix(
        kind in kind_strategy(),
        seed in 0u64..1000,
    ) {
        // A scenario asking for one attacker and a scenario asking for two
        // must agree on the fabric *and* on who the first attacker is —
        // the draw comes from a forked stream with the prefix property, so
        // adding actors extends the cast without recasting anyone.
        let max = kind.host_count().min(4);
        let full = kind.generate(seed, max);
        for n in 0..max {
            let fewer = kind.generate(seed, n);
            assert_eq!(fewer.switches, full.switches, "{kind}");
            assert_eq!(fewer.links, full.links, "{kind}: attacker count must not move the fabric");
            assert_eq!(fewer.hosts, full.hosts, "{kind}");
            assert_eq!(fewer.attackers[..], full.attackers[..n], "{kind}: draws form a prefix");
        }
    }
}
