//! Seeded topology generators for datacenter- and enterprise-scale fabrics.
//!
//! The paper's experiments run on hand-built Mininet topologies of a few
//! switches; reproducing the *scaling* behaviour of discovery, defenses, and
//! the event engine needs fabrics with hundreds of switches that are still a
//! pure function of their parameters. This crate generates them:
//!
//! * **Fat-tree(k)** — the canonical datacenter fabric: `(k/2)²` core
//!   switches, `k` pods of `k/2` aggregation + `k/2` edge switches
//!   (`5k²/4` switches total), and `k³/4` hosts. Every switch uses exactly
//!   `k` ports.
//! * **Core–edge** — an enterprise fabric: a full mesh of core switches with
//!   dual-homed edge switches hanging off it.
//! * **Linear** and **ring** — the degenerate chains used by the paper's
//!   small-scale experiments, parameterized.
//!
//! A [`TopoKind`] names the shape; [`TopoKind::generate`] emits a typed
//! [`TopologySpec`] listing switches, inter-switch links, host placements,
//! and attacker-controlled hosts. The *fabric* is a pure function of the
//! parameters — the seed only drives attacker placement, through a forked
//! [`tm_rand`] stream, so the same fabric hosts different attacker draws
//! without a single link moving. [`TopologySpec::build_network`] turns the
//! spec into a [`netsim::NetworkSpec`] ready for `Simulator::new`.
//!
//! # Example
//!
//! ```
//! use tm_topo::TopoKind;
//!
//! let topo = TopoKind::FatTree { k: 4 }.generate(7, 1);
//! assert_eq!(topo.switches.len(), 20); // 5k²/4
//! assert_eq!(topo.hosts.len(), 16); // k³/4
//! assert_eq!(topo.attackers.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

use netsim::{LinkProfile, NetworkSpec};
use sdn_types::{DatapathId, HostId, IpAddr, MacAddr, PortNo};
use tm_rand::{Rng, StdRng};

/// Stream id under which attacker placement is drawn, so the draw never
/// perturbs (and is never perturbed by) any other consumer of the seed.
const ATTACKER_STREAM: u64 = 0xA77A;

/// A bidirectional inter-switch link in a generated fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchLink {
    /// One end of the link.
    pub a: DatapathId,
    /// Port used on `a`.
    pub port_a: PortNo,
    /// The other end of the link.
    pub b: DatapathId,
    /// Port used on `b`.
    pub port_b: PortNo,
}

/// A host and where it plugs into the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostPlacement {
    /// Simulation-level host id (sequential from 1).
    pub id: HostId,
    /// The host's MAC address (derived from its id).
    pub mac: MacAddr,
    /// The host's IP address (derived from its id).
    pub ip: IpAddr,
    /// Edge switch the host attaches to.
    pub dpid: DatapathId,
    /// Port on that switch.
    pub port: PortNo,
}

/// A fully elaborated topology: the typed output of a generator.
///
/// Switches, links, and hosts describe the fabric (seed-independent);
/// `attackers` lists which hosts the scenario hands to the adversary
/// (seed-dependent, drawn from a forked stream).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopologySpec {
    /// Canonical label of the generating [`TopoKind`] (e.g. `fat-tree-8`).
    pub name: String,
    /// All switch datapath ids, in creation order (sequential from 1).
    pub switches: Vec<DatapathId>,
    /// All inter-switch links, in deterministic creation order.
    pub links: Vec<SwitchLink>,
    /// All host placements, in deterministic creation order.
    pub hosts: Vec<HostPlacement>,
    /// Hosts handed to the adversary, in draw order.
    pub attackers: Vec<HostId>,
}

impl TopologySpec {
    /// Instantiates the spec as a [`NetworkSpec`]: inter-switch links get
    /// `trunk`, host attachments get `edge`.
    ///
    /// The result is ready for `netsim::Simulator::new`; callers layer on a
    /// controller, host apps, telemetry, and fault plans as usual.
    pub fn build_network(&self, trunk: LinkProfile, edge: LinkProfile) -> NetworkSpec {
        let mut spec = NetworkSpec::new();
        for &dpid in &self.switches {
            spec.add_switch(dpid);
        }
        for l in &self.links {
            spec.link_switches(l.a, l.port_a, l.b, l.port_b, trunk);
        }
        for h in &self.hosts {
            spec.add_host(h.id, h.mac, h.ip);
            spec.attach_host(h.id, h.dpid, h.port, edge);
        }
        spec
    }

    /// The placement record for `host`, if it belongs to this fabric.
    pub fn placement(&self, host: HostId) -> Option<&HostPlacement> {
        self.hosts.iter().find(|h| h.id == host)
    }

    /// Host placements attached to `dpid`, in creation order.
    pub fn hosts_on(&self, dpid: DatapathId) -> impl Iterator<Item = &HostPlacement> {
        self.hosts.iter().filter(move |h| h.dpid == dpid)
    }

    /// The lowest port number on `dpid` not used by any inter-switch link
    /// endpoint or host attachment — where a scenario elaborator can attach
    /// an extra host (e.g. a migration-destination NIC) without colliding
    /// with the fabric. Generators assign ports densely from 1, so this is
    /// simply one past the highest port in use.
    pub fn free_port(&self, dpid: DatapathId) -> PortNo {
        let mut max = 0u16;
        for l in &self.links {
            if l.a == dpid {
                max = max.max(l.port_a.raw());
            }
            if l.b == dpid {
                max = max.max(l.port_b.raw());
            }
        }
        for h in self.hosts_on(dpid) {
            max = max.max(h.port.raw());
        }
        PortNo::new(max + 1)
    }

    /// One past the highest host id in the fabric — for synthesizing extra
    /// hosts (scenario props) without colliding with generated ids.
    pub fn next_host_id(&self) -> HostId {
        HostId::new(self.hosts.iter().map(|h| h.id.0).max().unwrap_or(0) + 1)
    }

    /// Per-switch port usage: inter-switch link endpoints plus host
    /// attachments. Useful for degree/radix assertions.
    pub fn degrees(&self) -> BTreeMap<DatapathId, usize> {
        let mut deg: BTreeMap<DatapathId, usize> = BTreeMap::new();
        for &dpid in &self.switches {
            deg.insert(dpid, 0);
        }
        for l in &self.links {
            *deg.entry(l.a).or_insert(0) += 1;
            *deg.entry(l.b).or_insert(0) += 1;
        }
        for h in &self.hosts {
            *deg.entry(h.dpid).or_insert(0) += 1;
        }
        deg
    }
}

/// A topology family plus its parameters; [`generate`](TopoKind::generate)
/// elaborates it into a [`TopologySpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoKind {
    /// Canonical k-ary fat-tree: `5k²/4` switches, `k³/4` hosts, every
    /// switch using exactly `k` ports. `k` must be even and ≥ 2.
    FatTree {
        /// Switch radix (ports per switch); even, ≥ 2.
        k: u16,
    },
    /// Enterprise core–edge: `core` fully meshed core switches; each edge
    /// switch dual-homed to two cores (single-homed when `core == 1`).
    CoreEdge {
        /// Number of core switches (≥ 1).
        core: u16,
        /// Number of edge switches.
        edge: u16,
        /// Hosts attached to each edge switch.
        hosts_per_edge: u16,
    },
    /// A chain of switches, `hosts_per_switch` hosts on each.
    Linear {
        /// Number of switches in the chain (≥ 1).
        switches: u16,
        /// Hosts attached to each switch.
        hosts_per_switch: u16,
    },
    /// A cycle of switches (≥ 3 so the wrap link is distinct).
    Ring {
        /// Number of switches in the cycle (≥ 3).
        switches: u16,
        /// Hosts attached to each switch.
        hosts_per_switch: u16,
    },
}

impl TopoKind {
    /// Number of switches this kind elaborates to.
    pub fn switch_count(&self) -> usize {
        match *self {
            TopoKind::FatTree { k } => 5 * (k as usize) * (k as usize) / 4,
            TopoKind::CoreEdge { core, edge, .. } => core as usize + edge as usize,
            TopoKind::Linear { switches, .. } | TopoKind::Ring { switches, .. } => {
                switches as usize
            }
        }
    }

    /// Number of hosts this kind elaborates to.
    pub fn host_count(&self) -> usize {
        match *self {
            TopoKind::FatTree { k } => (k as usize).pow(3) / 4,
            TopoKind::CoreEdge {
                edge,
                hosts_per_edge,
                ..
            } => edge as usize * hosts_per_edge as usize,
            TopoKind::Linear {
                switches,
                hosts_per_switch,
            }
            | TopoKind::Ring {
                switches,
                hosts_per_switch,
            } => switches as usize * hosts_per_switch as usize,
        }
    }

    /// Canonical label, also used as the campaign `topology` axis value:
    /// `fat-tree-8`, `core-edge-4x96x1`, `linear-4`, `ring-8x2`.
    /// Linear/ring omit the `x{hosts}` suffix when it is 1.
    pub fn label(&self) -> String {
        match *self {
            TopoKind::FatTree { k } => format!("fat-tree-{k}"),
            TopoKind::CoreEdge {
                core,
                edge,
                hosts_per_edge,
            } => format!("core-edge-{core}x{edge}x{hosts_per_edge}"),
            TopoKind::Linear {
                switches,
                hosts_per_switch: 1,
            } => format!("linear-{switches}"),
            TopoKind::Linear {
                switches,
                hosts_per_switch,
            } => format!("linear-{switches}x{hosts_per_switch}"),
            TopoKind::Ring {
                switches,
                hosts_per_switch: 1,
            } => format!("ring-{switches}"),
            TopoKind::Ring {
                switches,
                hosts_per_switch,
            } => format!("ring-{switches}x{hosts_per_switch}"),
        }
    }

    /// Parses a label produced by [`label`](TopoKind::label). Returns `None`
    /// for unknown families or malformed parameters (validity of the values
    /// themselves is still checked by [`generate`](TopoKind::generate)).
    pub fn from_label(label: &str) -> Option<TopoKind> {
        if let Some(rest) = label.strip_prefix("fat-tree-") {
            return Some(TopoKind::FatTree {
                k: rest.parse().ok()?,
            });
        }
        if let Some(rest) = label.strip_prefix("core-edge-") {
            let mut parts = rest.split('x');
            let core = parts.next()?.parse().ok()?;
            let edge = parts.next()?.parse().ok()?;
            let hosts_per_edge = parts.next()?.parse().ok()?;
            if parts.next().is_some() {
                return None;
            }
            return Some(TopoKind::CoreEdge {
                core,
                edge,
                hosts_per_edge,
            });
        }
        if let Some(rest) = label.strip_prefix("linear-") {
            let (switches, hosts_per_switch) = parse_size_pair(rest)?;
            return Some(TopoKind::Linear {
                switches,
                hosts_per_switch,
            });
        }
        if let Some(rest) = label.strip_prefix("ring-") {
            let (switches, hosts_per_switch) = parse_size_pair(rest)?;
            return Some(TopoKind::Ring {
                switches,
                hosts_per_switch,
            });
        }
        None
    }

    /// Elaborates the fabric and draws `attackers` distinct attacker hosts.
    ///
    /// The fabric (switches, links, hosts) depends only on the parameters;
    /// `seed` feeds a forked stream that picks which hosts the adversary
    /// controls. Two seeds therefore share a byte-identical fabric.
    ///
    /// # Panics
    /// Panics on invalid parameters (odd or tiny fat-tree `k`, zero-switch
    /// chains, rings shorter than 3, more than `u16::MAX` hosts) and when
    /// `attackers` exceeds the host count: a malformed scenario must fail
    /// loudly at build time, not mid-simulation.
    pub fn generate(&self, seed: u64, attackers: usize) -> TopologySpec {
        let mut b = Builder::new(self.label());
        match *self {
            TopoKind::FatTree { k } => build_fat_tree(&mut b, k),
            TopoKind::CoreEdge {
                core,
                edge,
                hosts_per_edge,
            } => build_core_edge(&mut b, core, edge, hosts_per_edge),
            TopoKind::Linear {
                switches,
                hosts_per_switch,
            } => build_chain(&mut b, switches, hosts_per_switch, false),
            TopoKind::Ring {
                switches,
                hosts_per_switch,
            } => build_chain(&mut b, switches, hosts_per_switch, true),
        }
        debug_assert_eq!(b.spec.switches.len(), self.switch_count());
        debug_assert_eq!(b.spec.hosts.len(), self.host_count());
        b.finish(seed, attackers)
    }
}

impl fmt::Display for TopoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

fn parse_size_pair(rest: &str) -> Option<(u16, u16)> {
    match rest.split_once('x') {
        Some((s, h)) => Some((s.parse().ok()?, h.parse().ok()?)),
        None => Some((rest.parse().ok()?, 1)),
    }
}

/// Accumulates switches/links/hosts with sequential ids and per-switch
/// next-free-port counters, then draws attackers.
struct Builder {
    spec: TopologySpec,
    next_port: BTreeMap<DatapathId, u16>,
}

impl Builder {
    fn new(name: String) -> Self {
        Builder {
            spec: TopologySpec {
                name,
                switches: Vec::new(),
                links: Vec::new(),
                hosts: Vec::new(),
                attackers: Vec::new(),
            },
            next_port: BTreeMap::new(),
        }
    }

    fn switch(&mut self) -> DatapathId {
        let dpid = DatapathId::new(self.spec.switches.len() as u64 + 1);
        self.spec.switches.push(dpid);
        self.next_port.insert(dpid, 1);
        dpid
    }

    fn take_port(&mut self, dpid: DatapathId) -> PortNo {
        let next = self
            .next_port
            .get_mut(&dpid)
            // tm-lint: allow(unwrap-in-lib) -- internal invariant: generators only wire switches they created
            .expect("port on generated switch");
        let port = PortNo::new(*next);
        *next += 1;
        port
    }

    fn link(&mut self, a: DatapathId, b: DatapathId) {
        let port_a = self.take_port(a);
        let port_b = self.take_port(b);
        self.spec.links.push(SwitchLink {
            a,
            port_a,
            b,
            port_b,
        });
    }

    fn host(&mut self, dpid: DatapathId) {
        let index = self.spec.hosts.len() as u32 + 1;
        assert!(
            index <= u16::MAX as u32,
            "topology exceeds the {} addressable hosts",
            u16::MAX
        );
        let port = self.take_port(dpid);
        self.spec.hosts.push(HostPlacement {
            id: HostId::new(index),
            mac: MacAddr::from_index(index),
            ip: IpAddr::from_index(index as u16),
            dpid,
            port,
        });
    }

    /// Draws `attackers` distinct hosts by partial Fisher–Yates over host
    /// indices, using a stream forked off `seed` so the draw is independent
    /// of anything else derived from the same seed.
    fn finish(mut self, seed: u64, attackers: usize) -> TopologySpec {
        let n = self.spec.hosts.len();
        assert!(
            attackers <= n,
            "{} attackers requested but topology has only {n} hosts",
            attackers
        );
        let mut rng = StdRng::seed_from_u64(seed).stream(ATTACKER_STREAM);
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..attackers {
            let j = rng.gen_range(i as u64..n as u64) as usize;
            indices.swap(i, j);
            self.spec.attackers.push(self.spec.hosts[indices[i]].id);
        }
        self.spec
    }
}

fn build_fat_tree(b: &mut Builder, k: u16) {
    assert!(
        k >= 2 && k % 2 == 0,
        "fat-tree k must be even and >= 2, got {k}"
    );
    let half = (k / 2) as usize;
    // Creation order fixes the dpid layout: cores first, then per pod the
    // aggregation switches followed by the edge switches.
    let cores: Vec<DatapathId> = (0..half * half).map(|_| b.switch()).collect();
    let mut edges_by_pod: Vec<Vec<DatapathId>> = Vec::with_capacity(k as usize);
    for _pod in 0..k {
        let aggs: Vec<DatapathId> = (0..half).map(|_| b.switch()).collect();
        let edges: Vec<DatapathId> = (0..half).map(|_| b.switch()).collect();
        // Aggregation switch i serves core group i: cores [i*k/2, (i+1)*k/2).
        for (i, &agg) in aggs.iter().enumerate() {
            for j in 0..half {
                b.link(agg, cores[i * half + j]);
            }
        }
        // Every edge switch connects to every aggregation switch in its pod.
        for &edge in &edges {
            for &agg in &aggs {
                b.link(edge, agg);
            }
        }
        edges_by_pod.push(edges);
    }
    for edges in &edges_by_pod {
        for &edge in edges {
            for _ in 0..half {
                b.host(edge);
            }
        }
    }
}

fn build_core_edge(b: &mut Builder, core: u16, edge: u16, hosts_per_edge: u16) {
    assert!(core >= 1, "core-edge needs at least one core switch");
    let cores: Vec<DatapathId> = (0..core).map(|_| b.switch()).collect();
    let edges: Vec<DatapathId> = (0..edge).map(|_| b.switch()).collect();
    for i in 0..cores.len() {
        for j in i + 1..cores.len() {
            b.link(cores[i], cores[j]);
        }
    }
    for (e, &edge_sw) in edges.iter().enumerate() {
        b.link(edge_sw, cores[e % cores.len()]);
        if cores.len() > 1 {
            b.link(edge_sw, cores[(e + 1) % cores.len()]);
        }
    }
    for &edge_sw in &edges {
        for _ in 0..hosts_per_edge {
            b.host(edge_sw);
        }
    }
}

fn build_chain(b: &mut Builder, switches: u16, hosts_per_switch: u16, ring: bool) {
    if ring {
        assert!(switches >= 3, "ring needs >= 3 switches, got {switches}");
    } else {
        assert!(switches >= 1, "linear needs >= 1 switch");
    }
    let sws: Vec<DatapathId> = (0..switches).map(|_| b.switch()).collect();
    for w in sws.windows(2) {
        b.link(w[0], w[1]);
    }
    if ring {
        b.link(sws[sws.len() - 1], sws[0]);
    }
    for &sw in &sws {
        for _ in 0..hosts_per_switch {
            b.host(sw);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Simulator;
    use sdn_types::Duration;

    #[test]
    fn fat_tree_4_has_canonical_counts_and_radix() {
        let topo = TopoKind::FatTree { k: 4 }.generate(1, 0);
        assert_eq!(topo.switches.len(), 20);
        assert_eq!(topo.hosts.len(), 16);
        assert_eq!(topo.links.len(), 32); // 16 core-agg + 16 edge-agg
        for (&dpid, &deg) in &topo.degrees() {
            assert_eq!(deg, 4, "switch {dpid} should use exactly k ports");
        }
    }

    #[test]
    fn linear_chain_wiring_is_sequential() {
        let topo = TopoKind::Linear {
            switches: 3,
            hosts_per_switch: 1,
        }
        .generate(9, 0);
        assert_eq!(topo.links.len(), 2);
        assert_eq!(topo.links[0].a, DatapathId::new(1));
        assert_eq!(topo.links[0].b, DatapathId::new(2));
        assert_eq!(topo.links[1].a, DatapathId::new(2));
        assert_eq!(topo.links[1].b, DatapathId::new(3));
        assert_eq!(topo.hosts[0].dpid, DatapathId::new(1));
        assert_eq!(topo.hosts[2].dpid, DatapathId::new(3));
    }

    #[test]
    fn ring_closes_the_loop() {
        let topo = TopoKind::Ring {
            switches: 4,
            hosts_per_switch: 2,
        }
        .generate(9, 0);
        assert_eq!(topo.links.len(), 4);
        let last = topo.links[3];
        assert_eq!(last.a, DatapathId::new(4));
        assert_eq!(last.b, DatapathId::new(1));
        for (_, deg) in topo.degrees() {
            assert_eq!(deg, 2 + 2); // two ring neighbours + two hosts
        }
    }

    #[test]
    fn core_edge_is_dual_homed() {
        let kind = TopoKind::CoreEdge {
            core: 3,
            edge: 5,
            hosts_per_edge: 1,
        };
        let topo = kind.generate(2, 0);
        assert_eq!(topo.switches.len(), 8);
        // 3 core-mesh links + 2 uplinks per edge switch.
        assert_eq!(topo.links.len(), 3 + 10);
        let deg = topo.degrees();
        for e in 3..8 {
            assert_eq!(deg[&DatapathId::new(e as u64 + 1)], 3); // 2 uplinks + 1 host
        }
    }

    #[test]
    fn single_core_is_single_homed() {
        let topo = TopoKind::CoreEdge {
            core: 1,
            edge: 4,
            hosts_per_edge: 0,
        }
        .generate(2, 0);
        assert_eq!(topo.links.len(), 4);
        assert_eq!(topo.degrees()[&DatapathId::new(1)], 4);
    }

    #[test]
    fn labels_round_trip() {
        let kinds = [
            TopoKind::FatTree { k: 8 },
            TopoKind::CoreEdge {
                core: 4,
                edge: 96,
                hosts_per_edge: 1,
            },
            TopoKind::Linear {
                switches: 4,
                hosts_per_switch: 1,
            },
            TopoKind::Linear {
                switches: 10,
                hosts_per_switch: 3,
            },
            TopoKind::Ring {
                switches: 8,
                hosts_per_switch: 2,
            },
        ];
        for kind in kinds {
            assert_eq!(TopoKind::from_label(&kind.label()), Some(kind), "{kind}");
        }
        assert_eq!(
            TopoKind::from_label("linear-4"),
            Some(TopoKind::Linear {
                switches: 4,
                hosts_per_switch: 1
            })
        );
        assert_eq!(TopoKind::from_label("mesh-4"), None);
        assert_eq!(TopoKind::from_label("fat-tree-x"), None);
        assert_eq!(TopoKind::from_label("core-edge-1x2"), None);
    }

    #[test]
    fn attackers_are_distinct_hosts_of_the_fabric() {
        let topo = TopoKind::FatTree { k: 4 }.generate(42, 5);
        assert_eq!(topo.attackers.len(), 5);
        let mut seen = topo.attackers.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 5, "attacker draw must not repeat hosts");
        for a in &topo.attackers {
            assert!(topo.hosts.iter().any(|h| h.id == *a));
        }
    }

    #[test]
    fn seed_changes_attackers_but_never_the_fabric() {
        let a = TopoKind::FatTree { k: 4 }.generate(1, 2);
        let b = TopoKind::FatTree { k: 4 }.generate(2, 2);
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.links, b.links);
        assert_eq!(a.hosts, b.hosts);
        assert_eq!(a, TopoKind::FatTree { k: 4 }.generate(1, 2));
    }

    #[test]
    fn built_network_boots_under_the_simulator() {
        let topo = TopoKind::Linear {
            switches: 4,
            hosts_per_switch: 1,
        }
        .generate(3, 1);
        let spec = topo.build_network(
            LinkProfile::fixed(Duration::from_micros(50)),
            LinkProfile::fixed(Duration::from_millis(1)),
        );
        let mut sim = Simulator::new(spec, 11);
        sim.run_for(Duration::from_millis(50));
        assert_eq!(sim.now(), sdn_types::SimTime::from_millis(50));
    }
}
