//! TOPOGUARD+'s Control Message Monitor (§VI-C).
//!
//! In-band Port Amnesia requires the attacker to bounce its interface
//! *during* LLDP propagation so its port is re-profiled from HOST to
//! SWITCH in time to relay the probe. The CMM detects exactly that: when an
//! LLDP probe is in flight, receipt of a Port-Up or Port-Down from a port
//! involved in the probe (sender, or — retroactively, since the receiver is
//! not known in advance — the receiving port) raises an alert.

use std::any::Any;
use std::collections::BTreeMap;

use controller::{Alert, AlertKind, Command, DefenseModule, LldpReceive, ModuleCtx};
use openflow::{PortDesc, PortStatusReason};
use sdn_types::{DatapathId, Duration, PortNo, SimTime, SwitchPort};

/// CMM configuration.
#[derive(Clone, Copy, Debug)]
pub struct CmmConfig {
    /// An in-flight probe is forgotten after this long (lost probes must
    /// not pin state forever). Must exceed the worst-case LLDP propagation
    /// time.
    pub probe_ttl: Duration,
    /// How long port-status events are retained for the retroactive
    /// receiver-side check.
    pub event_retention: Duration,
    /// Veto link updates whose propagation window contained a port-status
    /// change (in addition to alerting).
    pub block_tainted_updates: bool,
}

impl Default for CmmConfig {
    fn default() -> Self {
        CmmConfig {
            // Probes to host-facing ports never come back; forget them
            // quickly or every Port-Down near a discovery round would
            // false-positive. Real LLDP propagation completes within
            // milliseconds; 500 ms is a generous in-flight budget.
            probe_ttl: Duration::from_millis(500),
            event_retention: Duration::from_secs(30),
            block_tainted_updates: true,
        }
    }
}

/// The Control Message Monitor.
pub struct Cmm {
    config: CmmConfig,
    /// Probes in flight: emitting port → emission time.
    in_flight: BTreeMap<SwitchPort, SimTime>,
    /// Recent Port-Up/Down observations: `(port, at, went_up)`.
    port_events: Vec<(SwitchPort, SimTime, bool)>,
    /// Alerts raised (diagnostics).
    pub detections: u64,
}

impl Cmm {
    /// Creates the module.
    pub fn new(config: CmmConfig) -> Self {
        Cmm {
            config,
            in_flight: BTreeMap::new(),
            port_events: Vec::new(),
            detections: 0,
        }
    }

    fn alert(&mut self, cx: &mut ModuleCtx<'_>, detail: String) {
        self.detections += 1;
        cx.telemetry.counter_inc("topoguard.cmm.detections");
        cx.alerts.raise(Alert {
            at: cx.now,
            source: "topoguard+/cmm",
            kind: AlertKind::AnomalousControlMessage,
            detail,
        });
    }

    fn events_in_window(
        &self,
        port: SwitchPort,
        start: SimTime,
        end: SimTime,
    ) -> Vec<(SimTime, bool)> {
        self.port_events
            .iter()
            .filter(|(p, at, _)| *p == port && *at >= start && *at <= end)
            .map(|(_, at, up)| (*at, *up))
            .collect()
    }
}

impl DefenseModule for Cmm {
    fn name(&self) -> &'static str {
        "topoguard+/cmm"
    }

    fn on_lldp_emit(&mut self, cx: &mut ModuleCtx<'_>, dpid: DatapathId, port: PortNo) {
        cx.telemetry.counter_inc("topoguard.cmm.probes_tracked");
        self.in_flight.insert(SwitchPort::new(dpid, port), cx.now);
    }

    fn on_lldp_receive(&mut self, cx: &mut ModuleCtx<'_>, ev: &LldpReceive<'_>) -> Command {
        // Close the sender-side window.
        let emitted_at = self.in_flight.remove(&ev.src);
        let window_start = match emitted_at {
            Some(t) => t,
            // Unknown probe (e.g. relayed from a stale capture): use a
            // conservative window of one probe TTL.
            None => SimTime::from_nanos(
                cx.now
                    .as_nanos()
                    .saturating_sub(self.config.probe_ttl.as_nanos()),
            ),
        };

        // Retroactive check on both endpoints of the claimed link.
        let mut tainted = Vec::new();
        for port in [ev.src, ev.dst] {
            for (at, up) in self.events_in_window(port, window_start, cx.now) {
                tainted.push((port, at, up));
            }
        }
        if !tainted.is_empty() {
            let (port, _, up) = tainted[0];
            self.alert(
                cx,
                format!(
                    "detected suspicious link discovery: Port-{} from {} during LLDP propagation ({} -> {})",
                    if up { "Up" } else { "Down" },
                    port,
                    ev.src,
                    ev.dst,
                ),
            );
            if self.config.block_tainted_updates {
                return Command::Block;
            }
        }
        Command::Continue
    }

    fn on_port_status(
        &mut self,
        cx: &mut ModuleCtx<'_>,
        dpid: DatapathId,
        desc: &PortDesc,
        reason: PortStatusReason,
    ) {
        if reason != PortStatusReason::Modify {
            return;
        }
        let port = SwitchPort::new(dpid, desc.port_no);
        self.port_events.push((port, cx.now, desc.is_up()));

        // Immediate sender-side check: a port with an in-flight probe just
        // changed state.
        if self.in_flight.contains_key(&port) {
            self.alert(
                cx,
                format!(
                    "detected suspicious control message: Port-{} from {} while its LLDP probe is in flight",
                    if desc.is_up() { "Up" } else { "Down" },
                    port,
                ),
            );
        }
    }

    fn on_tick(&mut self, cx: &mut ModuleCtx<'_>) {
        let now = cx.now;
        let probe_cutoff = SimTime::from_nanos(
            now.as_nanos()
                .saturating_sub(self.config.probe_ttl.as_nanos()),
        );
        self.in_flight.retain(|_, at| *at >= probe_cutoff);
        let event_cutoff = SimTime::from_nanos(
            now.as_nanos()
                .saturating_sub(self.config.event_retention.as_nanos()),
        );
        self.port_events.retain(|(_, at, _)| *at >= event_cutoff);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
