//! Secure identifier binding — the paper's recommended countermeasure for
//! Port Probing (§VI-A).
//!
//! > "recent work on secure identifier binding in SDNs [Jero et al.,
//! > USENIX Security 2017] extends the coverage afforded by 802.1x through
//! > the entire identifier stack. This would effectively prevent port
//! > probing attacks, as the attacker can no longer misleadingly claim to
//! > be the victim device without triggering alerts."
//!
//! This module models that defense at the controller: the first
//! (802.1x-authenticated) appearance of an identifier *attests* its
//! binding to a port. Any later appearance at a different port is rejected
//! unless the migration was explicitly authorized out-of-band (in a real
//! deployment: the hypervisor/orchestrator attests the move as part of a
//! planned migration; scenarios call [`IdentifierBinding::authorize`]).
//!
//! Unlike TopoGuard and SPHINX, this defense *blocks*: the spoofed binding
//! never enters the host-tracking service, so flows are never redirected.
//! This is the active, non-passive posture the paper argues is necessary.

use std::any::Any;
use std::collections::BTreeMap;

use controller::{Alert, AlertKind, Command, DefenseModule, HostMove, ModuleCtx};
use sdn_types::{MacAddr, SwitchPort};

/// One authorized pending migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Authorization {
    mac: MacAddr,
    to: SwitchPort,
}

/// The identifier-binding defense module.
pub struct IdentifierBinding {
    bindings: BTreeMap<MacAddr, SwitchPort>,
    authorized: Vec<Authorization>,
    /// Spoofed migration attempts blocked (diagnostics).
    pub blocked: u64,
    /// Authorized migrations completed (diagnostics).
    pub migrations_completed: u64,
}

impl IdentifierBinding {
    /// Creates the module.
    pub fn new() -> Self {
        IdentifierBinding {
            bindings: BTreeMap::new(),
            authorized: Vec::new(),
            blocked: 0,
            migrations_completed: 0,
        }
    }

    /// Out-of-band attestation: the orchestrator authorizes `mac` to
    /// rebind to `to` (a planned migration). One-shot: consumed by the
    /// first matching move.
    pub fn authorize(&mut self, mac: MacAddr, to: SwitchPort) {
        self.authorized.push(Authorization { mac, to });
    }

    /// The attested binding for `mac`, if any.
    pub fn binding_of(&self, mac: &MacAddr) -> Option<SwitchPort> {
        self.bindings.get(mac).copied()
    }
}

impl Default for IdentifierBinding {
    fn default() -> Self {
        IdentifierBinding::new()
    }
}

impl DefenseModule for IdentifierBinding {
    fn name(&self) -> &'static str {
        "identifier-binding"
    }

    fn on_host_new(
        &mut self,
        _cx: &mut ModuleCtx<'_>,
        mac: MacAddr,
        _ip: Option<sdn_types::IpAddr>,
        location: SwitchPort,
    ) {
        // First authenticated appearance attests the binding.
        self.bindings.entry(mac).or_insert(location);
    }

    fn on_host_move(&mut self, cx: &mut ModuleCtx<'_>, mv: &HostMove) -> Command {
        if let Some(idx) = self
            .authorized
            .iter()
            .position(|a| a.mac == mv.mac && a.to == mv.to)
        {
            self.authorized.remove(idx);
            self.bindings.insert(mv.mac, mv.to);
            self.migrations_completed += 1;
            return Command::Continue;
        }
        self.blocked += 1;
        cx.alerts.raise(Alert {
            at: cx.now,
            source: "identifier-binding",
            kind: AlertKind::HostMigrationPrecondition,
            detail: format!(
                "unattested rebind of {} from {} to {} rejected",
                mv.mac, mv.from, mv.to
            ),
        });
        Command::Block
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use controller::test_support::ModuleHarness;
    use sdn_types::{DatapathId, PortNo, SimTime};

    fn sp(d: u64, p: u16) -> SwitchPort {
        SwitchPort::new(DatapathId::new(d), PortNo::new(p))
    }

    #[test]
    fn unattested_rebind_is_blocked_and_alerted() {
        let mut h = ModuleHarness::new();
        let mut binding = IdentifierBinding::new();
        let mac = MacAddr::from_index(1);
        binding.on_host_new(&mut h.ctx(SimTime::ZERO), mac, None, sp(1, 2));

        let mv = HostMove {
            mac,
            ip: None,
            from: sp(1, 2),
            to: sp(1, 5),
            at: SimTime::from_secs(1),
        };
        assert_eq!(
            binding.on_host_move(&mut h.ctx(SimTime::from_secs(1)), &mv),
            Command::Block
        );
        assert_eq!(binding.blocked, 1);
        assert_eq!(h.alerts.len(), 1);
        assert_eq!(
            binding.binding_of(&mac),
            Some(sp(1, 2)),
            "binding unchanged"
        );
    }

    #[test]
    fn authorized_migration_proceeds_once() {
        let mut h = ModuleHarness::new();
        let mut binding = IdentifierBinding::new();
        let mac = MacAddr::from_index(1);
        binding.on_host_new(&mut h.ctx(SimTime::ZERO), mac, None, sp(1, 2));
        binding.authorize(mac, sp(2, 4));

        let mv = HostMove {
            mac,
            ip: None,
            from: sp(1, 2),
            to: sp(2, 4),
            at: SimTime::from_secs(1),
        };
        assert_eq!(
            binding.on_host_move(&mut h.ctx(SimTime::from_secs(1)), &mv),
            Command::Continue
        );
        assert_eq!(binding.migrations_completed, 1);
        assert_eq!(binding.binding_of(&mac), Some(sp(2, 4)));

        // The authorization is one-shot: a replay is blocked.
        let replay = HostMove {
            from: sp(2, 4),
            to: sp(2, 4),
            ..mv
        };
        let back = HostMove {
            from: sp(2, 4),
            to: sp(1, 2),
            ..mv
        };
        let _ = replay;
        assert_eq!(
            binding.on_host_move(&mut h.ctx(SimTime::from_secs(2)), &back),
            Command::Block
        );
    }

    #[test]
    fn authorization_is_target_specific() {
        let mut h = ModuleHarness::new();
        let mut binding = IdentifierBinding::new();
        let mac = MacAddr::from_index(1);
        binding.on_host_new(&mut h.ctx(SimTime::ZERO), mac, None, sp(1, 2));
        binding.authorize(mac, sp(2, 4));

        // The attacker races to a *different* port: still blocked.
        let mv = HostMove {
            mac,
            ip: None,
            from: sp(1, 2),
            to: sp(1, 5),
            at: SimTime::from_secs(1),
        };
        assert_eq!(
            binding.on_host_move(&mut h.ctx(SimTime::from_secs(1)), &mv),
            Command::Block
        );
    }
}
