//! The TopoGuard policy enforcer (§III-B), as a controller defense module.

use std::any::Any;

use controller::{
    Alert, AlertKind, Command, DefenseModule, HostMove, LldpReceive, ModuleCtx, PacketInCtx,
};
use openflow::{Action, OfMessage, PortDesc, PortStatusReason};
use sdn_types::packet::{EthernetFrame, IcmpPacket, Ipv4Packet, Payload, Transport};
use sdn_types::{Duration, IpAddr, MacAddr, PortNo, SimTime, SwitchPort};

use crate::profiler::{PortProfiler, PortType};

/// TopoGuard configuration.
#[derive(Clone, Copy, Debug)]
pub struct TopoGuardConfig {
    /// Require valid LLDP signatures (alert on invalid/unsigned when the
    /// controller signs).
    pub require_signed_lldp: bool,
    /// How long the post-condition reachability probe waits for an answer
    /// from the host's old location before accepting the migration.
    pub reachability_timeout: Duration,
    /// How far back a Port-Down at the old location satisfies the
    /// migration pre-condition.
    pub precondition_window: Duration,
    /// Ignore dataplane traffic for profiling until this long after
    /// startup. Before the first LLDP discovery round, flooded broadcasts
    /// produce PacketIns at inter-switch ports that are not yet known to
    /// be infrastructure; profiling them as HOST would (wrongly) flag the
    /// first legitimate LLDP on every trunk. Floodlight gates device
    /// processing on topology readiness for the same reason.
    pub profile_after: Duration,
}

impl Default for TopoGuardConfig {
    fn default() -> Self {
        TopoGuardConfig {
            require_signed_lldp: true,
            reachability_timeout: Duration::from_millis(500),
            precondition_window: Duration::from_secs(60),
            profile_after: Duration::from_millis(300),
        }
    }
}

/// An in-flight post-condition check: the controller pinged the migrating
/// host's *old* location; any answer before the deadline means the "host"
/// is still there and the move is a hijack.
#[derive(Clone, Copy, Debug)]
struct PendingReachabilityCheck {
    mac: MacAddr,
    old_location: SwitchPort,
    deadline: SimTime,
}

/// The TopoGuard module.
pub struct TopoGuard {
    config: TopoGuardConfig,
    /// The behavioral profiler.
    pub profiler: PortProfiler,
    /// Recent Port-Down observations: `(port, at)`.
    recent_port_downs: Vec<(SwitchPort, SimTime)>,
    pending_checks: Vec<PendingReachabilityCheck>,
    probe_seq: u16,
    /// Migrations verified without violation (diagnostics).
    pub migrations_accepted: u64,
}

/// The IP TopoGuard's reachability probes claim as their source.
const PROBE_SRC_IP: IpAddr = IpAddr::new(10, 255, 255, 254);
/// The MAC TopoGuard's reachability probes claim as their source.
const PROBE_SRC_MAC: MacAddr = MacAddr::new([0x02, 0xD0, 0, 0, 0, 0xFE]);

impl TopoGuard {
    /// Creates the module.
    pub fn new(config: TopoGuardConfig) -> Self {
        TopoGuard {
            config,
            profiler: PortProfiler::new(),
            recent_port_downs: Vec::new(),
            pending_checks: Vec::new(),
            probe_seq: 0,
            migrations_accepted: 0,
        }
    }

    fn alert(&self, cx: &mut ModuleCtx<'_>, kind: AlertKind, detail: String) {
        cx.telemetry.counter_inc("topoguard.alerts");
        cx.alerts.raise(Alert {
            at: cx.now,
            source: "topoguard",
            kind,
            detail,
        });
    }

    fn port_down_seen_since(&self, port: SwitchPort, since: SimTime) -> bool {
        self.recent_port_downs
            .iter()
            .any(|(p, at)| *p == port && *at >= since)
    }
}

impl DefenseModule for TopoGuard {
    fn name(&self) -> &'static str {
        "topoguard"
    }

    fn on_packet_in(&mut self, cx: &mut ModuleCtx<'_>, ev: &PacketInCtx<'_>) -> Command {
        let port = SwitchPort::new(ev.dpid, ev.in_port);

        // Post-condition monitoring: an answer from a checked old location
        // means the "migrated" host is still reachable there.
        if let Some(idx) = self
            .pending_checks
            .iter()
            .position(|c| c.old_location == port && c.mac == ev.frame.src && cx.now <= c.deadline)
        {
            let check = self.pending_checks.remove(idx);
            self.alert(
                cx,
                AlertKind::HostMigrationPostcondition,
                format!(
                    "host {} migrated away from {} but still answers there",
                    check.mac, check.old_location
                ),
            );
        }

        if ev.frame.is_lldp() {
            // Profiling for LLDP happens in on_lldp_receive (validated).
            return Command::Continue;
        }

        // Only *first-hop* traffic profiles a port: traffic originated by a
        // host attached there. Transit traffic (src MAC bound to another
        // location, or an infrastructure port mid-path) does not — and
        // nothing does before topology discovery has had its first round.
        if cx.now.as_nanos() < self.config.profile_after.as_nanos() {
            return Command::Continue;
        }
        let first_hop = !cx.topology.is_infrastructure_port(port)
            && cx
                .devices
                .location_of(&ev.frame.src)
                .is_none_or(|bound| bound == port);
        if !first_hop {
            return Command::Continue;
        }
        let prev = self.profiler.saw_host_traffic(port, cx.now);
        if prev == PortType::Switch {
            self.alert(
                cx,
                AlertKind::TrafficFromSwitchPort,
                format!(
                    "first-hop traffic from SWITCH port {port} (src {})",
                    ev.frame.src
                ),
            );
        }
        Command::Continue
    }

    fn on_lldp_receive(&mut self, cx: &mut ModuleCtx<'_>, ev: &LldpReceive<'_>) -> Command {
        // Authenticated LLDP: reject forgeries outright.
        if self.config.require_signed_lldp {
            match ev.signature_valid {
                Some(true) => {}
                Some(false) => {
                    self.alert(
                        cx,
                        AlertKind::LinkFabrication,
                        format!("LLDP with invalid signature received at {}", ev.dst),
                    );
                    return Command::Block;
                }
                None => {
                    // Controller is not signing; fall through to profiling.
                }
            }
        }

        // Port Property check on the receiving port.
        let prev = self.profiler.saw_lldp(ev.dst, cx.now);
        if prev == PortType::Host {
            self.alert(
                cx,
                AlertKind::LinkFabrication,
                format!(
                    "LLDP received from HOST port {} (claimed link {} -> {})",
                    ev.dst, ev.src, ev.dst
                ),
            );
            return Command::Block;
        }
        Command::Continue
    }

    fn on_port_status(
        &mut self,
        cx: &mut ModuleCtx<'_>,
        dpid: sdn_types::DatapathId,
        desc: &PortDesc,
        reason: PortStatusReason,
    ) {
        if reason != PortStatusReason::Modify {
            return;
        }
        let port = SwitchPort::new(dpid, desc.port_no);
        if !desc.is_up() {
            // Port-Down: reset the profile (the Port Amnesia lever) and
            // remember it for migration pre-conditions.
            self.profiler.port_down(port, cx.now);
            self.recent_port_downs.push((port, cx.now));
            // Bound memory: drop entries beyond the pre-condition window.
            let keep_after = SimTime::from_nanos(
                cx.now
                    .as_nanos()
                    .saturating_sub(self.config.precondition_window.as_nanos()),
            );
            self.recent_port_downs.retain(|(_, at)| *at >= keep_after);
        }
    }

    fn on_host_move(&mut self, cx: &mut ModuleCtx<'_>, mv: &HostMove) -> Command {
        // Pre-condition: the old location must have produced a Port-Down
        // recently. (Tying this to the host's last-seen time instead would
        // false-positive on packets that were already in flight when the
        // port dropped.)
        let window_start = SimTime::from_nanos(
            cx.now
                .as_nanos()
                .saturating_sub(self.config.precondition_window.as_nanos()),
        );
        if !self.port_down_seen_since(mv.from, window_start) {
            self.alert(
                cx,
                AlertKind::HostMigrationPrecondition,
                format!(
                    "host {} moved {} -> {} without a Port-Down at the old location",
                    mv.mac, mv.from, mv.to
                ),
            );
            // TopoGuard raises an alert but does not alter network state
            // (§IV-B "Alert Floods") — the move is still committed.
            return Command::Continue;
        }

        // Post-condition: probe the old location; an answer within the
        // timeout raises an alert (handled in on_packet_in).
        self.probe_seq = self.probe_seq.wrapping_add(1);
        let target_ip = mv
            .ip
            .or_else(|| {
                cx.devices
                    .get(&mv.mac)
                    .and_then(|d| d.ips.iter().next().copied())
            })
            .unwrap_or(IpAddr::UNSPECIFIED);
        let probe = EthernetFrame::new(
            PROBE_SRC_MAC,
            mv.mac,
            Payload::Ipv4(Ipv4Packet::new(
                PROBE_SRC_IP,
                target_ip,
                Transport::Icmp(IcmpPacket::echo_request(0x7061, self.probe_seq, vec![])),
            )),
        );
        cx.send(
            mv.from.dpid,
            OfMessage::PacketOut {
                in_port: PortNo::NONE,
                actions: vec![Action::Output(mv.from.port)],
                data: probe.encode().to_vec(),
            },
        );
        self.pending_checks.push(PendingReachabilityCheck {
            mac: mv.mac,
            old_location: mv.from,
            deadline: cx.now + self.config.reachability_timeout,
        });
        cx.telemetry.counter_inc("topoguard.reachability_probes");
        self.migrations_accepted += 1;
        cx.telemetry
            .counter_set("topoguard.migrations_accepted", self.migrations_accepted);
        Command::Continue
    }

    fn on_tick(&mut self, cx: &mut ModuleCtx<'_>) {
        // Expired checks: no answer from the old location — post-condition
        // satisfied, nothing to do.
        let now = cx.now;
        self.pending_checks.retain(|c| c.deadline >= now);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
