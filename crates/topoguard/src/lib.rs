//! TopoGuard and TOPOGUARD+ — topology-tampering defenses for the
//! [`controller`] crate's module pipeline.
//!
//! # TopoGuard (Hong et al., NDSS 2015; §III-B of the DSN paper)
//!
//! * [`profiler::PortProfiler`] — per-port behavioral classification:
//!   every port starts as `ANY`; first-hop dataplane traffic marks it
//!   `HOST`; LLDP marks it `SWITCH`; **a Port-Down resets it to `ANY`** —
//!   the reset Port Amnesia weaponizes.
//! * [`TopoGuard`] — the policy enforcer: Host Migration Verification
//!   (Port-Down pre-condition, old-location-unreachable post-condition),
//!   authenticated-LLDP validation, and Port Property checks (LLDP from a
//!   `HOST` port / first-hop traffic from a `SWITCH` port raise alerts).
//!
//! # TOPOGUARD+ (this paper's defense, §VI)
//!
//! * [`Cmm`] — the Control Message Monitor: logs Port-Up/Down during LLDP
//!   propagation windows and alerts when a port involved in an in-flight
//!   probe changed state (defeats **in-band** Port Amnesia).
//! * [`Lli`] — the Link Latency Inspector: estimates switch-link latency
//!   as `T_LLDP − T_SW1 − T_SW2` from encrypted LLDP timestamps and echo
//!   RTTs, keeps a fixed-size store, and flags latencies beyond
//!   `Q3 + 3·IQR` (defeats **out-of-band** Port Amnesia).
//!
//! Per the paper, TopoGuard raises alerts without altering network state;
//! TOPOGUARD+ may additionally *block* suspicious link updates
//! (configurable, enabled by default).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binding;
mod cmm;
mod lli;
pub mod profiler;
mod topoguard;

pub use binding::IdentifierBinding;
pub use cmm::{Cmm, CmmConfig};
pub use lli::{Lli, LliConfig, LliObservation};
pub use profiler::{PortProfiler, PortType};
pub use topoguard::{TopoGuard, TopoGuardConfig};

/// Boxes the full TOPOGUARD+ stack (TopoGuard + CMM + LLI) for insertion
/// into a controller pipeline. The controller should have `sign_lldp`,
/// `timestamp_lldp`, and `echo_interval` enabled for full coverage.
pub fn topoguard_plus_stack() -> Vec<Box<dyn controller::DefenseModule>> {
    vec![
        Box::new(TopoGuard::new(TopoGuardConfig::default())),
        Box::new(Cmm::new(CmmConfig::default())),
        Box::new(Lli::new(LliConfig::default())),
    ]
}
