//! TopoGuard's per-port behavioral profiler (§III-B).
//!
//! > "Devices may be classified as a HOST, a SWITCH, or ANY. All devices
//! > begin as type ANY. If the controller receives dataplane traffic whose
//! > source address has not been seen before from a port, it is marked as a
//! > HOST. If the controller instead receives LLDP packets from a port, it
//! > is marked as a SWITCH. On detection of a Port-Down event, the type is
//! > reset to ANY."

use std::collections::BTreeMap;

use sdn_types::{SimTime, SwitchPort};

/// The behavioral class of a switch port.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PortType {
    /// Unknown — the initial state, and the state after a Port-Down.
    #[default]
    Any,
    /// First-hop dataplane traffic has been seen.
    Host,
    /// LLDP has been received.
    Switch,
}

/// Per-port profile record.
#[derive(Clone, Copy, Debug)]
pub struct PortProfile {
    /// Current classification.
    pub port_type: PortType,
    /// When the classification last changed.
    pub since: SimTime,
    /// How many times this port's profile has been reset by a Port-Down —
    /// the paper notes the in-band attack's reset count "is detectable at
    /// the controller (but does not currently raise any alerts)".
    pub reset_count: u64,
}

/// The profiler: a map from switch port to behavioral profile.
#[derive(Clone, Debug, Default)]
pub struct PortProfiler {
    profiles: BTreeMap<SwitchPort, PortProfile>,
}

impl PortProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        PortProfiler::default()
    }

    /// The current classification of `port` (ANY if never seen).
    pub fn port_type(&self, port: SwitchPort) -> PortType {
        self.profiles
            .get(&port)
            .map(|p| p.port_type)
            .unwrap_or(PortType::Any)
    }

    /// The full profile record, if the port has been observed.
    pub fn profile(&self, port: SwitchPort) -> Option<&PortProfile> {
        self.profiles.get(&port)
    }

    /// Records first-hop dataplane traffic on `port`. Returns the previous
    /// classification.
    pub fn saw_host_traffic(&mut self, port: SwitchPort, now: SimTime) -> PortType {
        let profile = self.profiles.entry(port).or_default_with(now);
        let prev = profile.port_type;
        if prev == PortType::Any {
            profile.port_type = PortType::Host;
            profile.since = now;
        }
        prev
    }

    /// Records LLDP reception on `port`. Returns the previous
    /// classification.
    pub fn saw_lldp(&mut self, port: SwitchPort, now: SimTime) -> PortType {
        let profile = self.profiles.entry(port).or_default_with(now);
        let prev = profile.port_type;
        if prev == PortType::Any {
            profile.port_type = PortType::Switch;
            profile.since = now;
        }
        prev
    }

    /// Handles a Port-Down: resets the profile to ANY.
    pub fn port_down(&mut self, port: SwitchPort, now: SimTime) {
        let profile = self.profiles.entry(port).or_default_with(now);
        if profile.port_type != PortType::Any {
            profile.port_type = PortType::Any;
            profile.since = now;
        }
        profile.reset_count += 1;
    }

    /// Total profile resets across all ports.
    pub fn total_resets(&self) -> u64 {
        self.profiles.values().map(|p| p.reset_count).sum()
    }

    /// Number of ports with a non-ANY classification.
    pub fn classified_ports(&self) -> usize {
        self.profiles
            .values()
            .filter(|p| p.port_type != PortType::Any)
            .count()
    }
}

// Small helper because `PortProfile::default()` has no timestamp.
impl PortProfile {
    fn fresh(now: SimTime) -> Self {
        PortProfile {
            port_type: PortType::Any,
            since: now,
            reset_count: 0,
        }
    }
}

trait EntryExt<'a> {
    fn or_default_with(self, now: SimTime) -> &'a mut PortProfile;
}

impl<'a> EntryExt<'a> for std::collections::btree_map::Entry<'a, SwitchPort, PortProfile> {
    fn or_default_with(self, now: SimTime) -> &'a mut PortProfile {
        self.or_insert_with(|| PortProfile::fresh(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_types::{DatapathId, PortNo};

    fn port(p: u16) -> SwitchPort {
        SwitchPort::new(DatapathId::new(1), PortNo::new(p))
    }

    #[test]
    fn starts_as_any() {
        let profiler = PortProfiler::new();
        assert_eq!(profiler.port_type(port(1)), PortType::Any);
    }

    #[test]
    fn traffic_marks_host_lldp_marks_switch() {
        let mut p = PortProfiler::new();
        p.saw_host_traffic(port(1), SimTime::ZERO);
        assert_eq!(p.port_type(port(1)), PortType::Host);
        p.saw_lldp(port(2), SimTime::ZERO);
        assert_eq!(p.port_type(port(2)), PortType::Switch);
    }

    #[test]
    fn first_classification_sticks() {
        // Once HOST, receiving LLDP does not silently flip the class (the
        // policy enforcer alerts instead).
        let mut p = PortProfiler::new();
        p.saw_host_traffic(port(1), SimTime::ZERO);
        let prev = p.saw_lldp(port(1), SimTime::from_secs(1));
        assert_eq!(prev, PortType::Host);
        assert_eq!(p.port_type(port(1)), PortType::Host);
    }

    #[test]
    fn port_down_resets_to_any() {
        // The Port Amnesia primitive.
        let mut p = PortProfiler::new();
        p.saw_host_traffic(port(1), SimTime::ZERO);
        p.port_down(port(1), SimTime::from_secs(1));
        assert_eq!(p.port_type(port(1)), PortType::Any);
        // After the reset, LLDP freely reclassifies the port as SWITCH.
        p.saw_lldp(port(1), SimTime::from_secs(2));
        assert_eq!(p.port_type(port(1)), PortType::Switch);
    }

    #[test]
    fn reset_count_accumulates() {
        // The context-switching signature the paper says is "detectable at
        // the controller".
        let mut p = PortProfiler::new();
        for i in 0..5 {
            p.saw_host_traffic(port(1), SimTime::from_secs(i));
            p.port_down(port(1), SimTime::from_secs(i));
        }
        assert_eq!(p.profile(port(1)).unwrap().reset_count, 5);
        assert_eq!(p.total_resets(), 5);
    }

    #[test]
    fn classified_ports_counts_non_any() {
        let mut p = PortProfiler::new();
        p.saw_host_traffic(port(1), SimTime::ZERO);
        p.saw_lldp(port(2), SimTime::ZERO);
        p.port_down(port(1), SimTime::from_secs(1));
        assert_eq!(p.classified_ports(), 1);
    }
}
