//! TOPOGUARD+'s Link Latency Inspector (§VI-D).
//!
//! Out-of-band Port Amnesia relays LLDP over a side channel, which cannot
//! avoid adding propagation and encode/decode latency. The LLI measures
//! every LLDP traversal's switch-link latency as `T_LLDP − T_SW1 − T_SW2`
//! (encrypted departure timestamp minus the two control-link delays), keeps
//! verified latencies in a fixed-size store, and flags any new measurement
//! beyond `Q3 + 3·IQR` as a fabricated link.

use std::any::Any;

use controller::DirectedLink;
use controller::{Alert, AlertKind, Command, DefenseModule, LinkLatencySample, ModuleCtx};
use sdn_types::SimTime;
use tm_stats::{IqrOutlierDetector, IqrVerdict};

/// LLI configuration.
#[derive(Clone, Copy, Debug)]
pub struct LliConfig {
    /// Capacity of the verified-latency store (paper: fixed size; we
    /// default to 100).
    pub store_capacity: usize,
    /// Measurements required before judging (warmup).
    pub min_samples: usize,
    /// The outlier fence multiplier `k` in `Q3 + k·IQR` (paper: 3).
    pub iqr_k: f64,
    /// Veto link updates whose latency is anomalous ("may optionally block
    /// the topology update").
    pub block_anomalous_updates: bool,
}

impl Default for LliConfig {
    fn default() -> Self {
        LliConfig {
            store_capacity: 100,
            min_samples: 10,
            iqr_k: 3.0,
            block_anomalous_updates: true,
        }
    }
}

/// One recorded latency inspection, for regenerating Figs. 10 and 11.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LliObservation {
    /// When the measurement completed.
    pub at: SimTime,
    /// The measured switch-link latency, milliseconds.
    pub latency_ms: f64,
    /// The detection threshold at that moment (`None` during warmup).
    pub threshold_ms: Option<f64>,
    /// Whether the measurement was flagged anomalous.
    pub flagged: bool,
    /// The link the measurement belongs to.
    pub link: DirectedLink,
}

/// The Link Latency Inspector.
pub struct Lli {
    config: LliConfig,
    detector: IqrOutlierDetector,
    /// Full measurement history (Figs. 10/11 series).
    pub observations: Vec<LliObservation>,
    /// Anomalies flagged (diagnostics).
    pub detections: u64,
}

impl Lli {
    /// Creates the module.
    pub fn new(config: LliConfig) -> Self {
        Lli {
            detector: IqrOutlierDetector::new(
                config.store_capacity,
                config.min_samples,
                config.iqr_k,
            ),
            config,
            observations: Vec::new(),
            detections: 0,
        }
    }

    /// The current detection threshold, if past warmup.
    pub fn threshold_ms(&self) -> Option<f64> {
        self.detector.threshold()
    }
}

impl DefenseModule for Lli {
    fn name(&self) -> &'static str {
        "topoguard+/lli"
    }

    fn on_link_update(
        &mut self,
        cx: &mut ModuleCtx<'_>,
        link: DirectedLink,
        _is_new: bool,
        sample: Option<LinkLatencySample>,
    ) -> Command {
        // No timestamp evidence (LLI disabled controller-side, or control
        // latency not yet measured): nothing to judge.
        let Some(latency_ms) = sample.and_then(|s| s.link_latency_ms()) else {
            return Command::Continue;
        };

        let threshold_before = self.detector.threshold();
        let verdict = self.detector.inspect(latency_ms);
        let flagged = matches!(verdict, IqrVerdict::Outlier { .. });
        cx.telemetry.counter_inc("topoguard.lli.samples");
        // Milliseconds → nanoseconds for the shared latency bucket ladder.
        cx.telemetry
            .observe_ns("topoguard.lli.link_latency_ns", (latency_ms * 1e6) as u64);
        self.observations.push(LliObservation {
            at: cx.now,
            latency_ms,
            threshold_ms: threshold_before,
            flagged,
            link,
        });

        if let IqrVerdict::Outlier { threshold } = verdict {
            self.detections += 1;
            cx.telemetry.counter_inc("topoguard.lli.detections");
            cx.alerts.raise(Alert {
                at: cx.now,
                source: "topoguard+/lli",
                kind: AlertKind::AbnormalLinkLatency,
                detail: format!(
                    "detected suspicious link discovery: an abnormal delay during LLDP propagation; link delay is abnormal. delay:{:.0}ms, threshold:{:.0}ms ({} -> {})",
                    latency_ms, threshold, link.src, link.dst
                ),
            });
            if self.config.block_anomalous_updates {
                return Command::Block;
            }
        }
        Command::Continue
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
