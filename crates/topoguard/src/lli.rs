//! TOPOGUARD+'s Link Latency Inspector (§VI-D).
//!
//! Out-of-band Port Amnesia relays LLDP over a side channel, which cannot
//! avoid adding propagation and encode/decode latency. The LLI measures
//! every LLDP traversal's switch-link latency as `T_LLDP − T_SW1 − T_SW2`
//! (encrypted departure timestamp minus the two control-link delays), keeps
//! verified latencies in a fixed-size store, and flags any new measurement
//! beyond `Q3 + 3·IQR` as a fabricated link.
//!
//! # Per-trunk baselines
//!
//! The store is keyed by the *undirected trunk* (the canonical orientation
//! of the directed link), not shared across the fabric. A single global
//! store mixes every trunk's latency population, and on large fabrics —
//! where link profiles legitimately differ across tiers — the pooled IQR
//! fence tightens around the majority population and flags honest trunks
//! whose baseline merely sits in the distribution's tail (the measured
//! false-positive flip on the 80-switch fat-tree). Both directions of a
//! trunk share one store: they traverse the same physical medium, and
//! pooling them halves warmup time.
//!
//! A trunk with *no verified history* — typically a link appearing after
//! the fabric has formed, exactly a fabricated link's signature — cannot
//! be judged against its own baseline (it would happily verify its own
//! relay latency). Its samples are instead judged against the fabric's
//! most permissive established fence (the maximum per-trunk threshold);
//! only a sample passing that reference seeds the trunk's own store. At
//! bootstrap no fence is established yet, so every honest trunk warms up
//! against itself, whatever its tier's latency.

use std::any::Any;
use std::collections::BTreeMap;

use controller::DirectedLink;
use controller::{Alert, AlertKind, Command, DefenseModule, LinkLatencySample, ModuleCtx};
use sdn_types::SimTime;
use tm_stats::{IqrOutlierDetector, IqrVerdict};

/// LLI configuration.
#[derive(Clone, Copy, Debug)]
pub struct LliConfig {
    /// Capacity of the verified-latency store (paper: fixed size; we
    /// default to 100).
    pub store_capacity: usize,
    /// Measurements required before judging (warmup).
    pub min_samples: usize,
    /// The outlier fence multiplier `k` in `Q3 + k·IQR` (paper: 3).
    pub iqr_k: f64,
    /// Veto link updates whose latency is anomalous ("may optionally block
    /// the topology update").
    pub block_anomalous_updates: bool,
}

impl Default for LliConfig {
    fn default() -> Self {
        LliConfig {
            store_capacity: 100,
            min_samples: 10,
            iqr_k: 3.0,
            block_anomalous_updates: true,
        }
    }
}

/// One recorded latency inspection, for regenerating Figs. 10 and 11.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LliObservation {
    /// When the measurement completed.
    pub at: SimTime,
    /// The measured switch-link latency, milliseconds.
    pub latency_ms: f64,
    /// The detection threshold at that moment (`None` during warmup).
    pub threshold_ms: Option<f64>,
    /// Whether the measurement was flagged anomalous.
    pub flagged: bool,
    /// The link the measurement belongs to.
    pub link: DirectedLink,
}

/// The Link Latency Inspector.
pub struct Lli {
    config: LliConfig,
    /// One verified-latency store per undirected trunk (see module docs).
    detectors: BTreeMap<DirectedLink, IqrOutlierDetector>,
    /// Full measurement history (Figs. 10/11 series).
    pub observations: Vec<LliObservation>,
    /// Anomalies flagged (diagnostics).
    pub detections: u64,
}

/// The canonical orientation of a trunk: both directions of the same
/// physical link map to one store key.
fn trunk_key(link: DirectedLink) -> DirectedLink {
    link.min(link.reversed())
}

impl Lli {
    /// Creates the module.
    pub fn new(config: LliConfig) -> Self {
        Lli {
            config,
            detectors: BTreeMap::new(),
            observations: Vec::new(),
            detections: 0,
        }
    }

    /// The detection threshold for a trunk, if that trunk is past warmup.
    /// Either direction of the link selects the same baseline.
    pub fn threshold_ms(&self, link: DirectedLink) -> Option<f64> {
        self.detectors
            .get(&trunk_key(link))
            .and_then(IqrOutlierDetector::threshold)
    }

    /// The number of trunks with a baseline store.
    pub fn trunks_tracked(&self) -> usize {
        self.detectors.len()
    }

    /// The fence a history-less trunk is judged against: the maximum
    /// established threshold across the *other* trunks (the most
    /// permissive honest baseline). `None` until some trunk is past
    /// warmup.
    fn reference_threshold_ms(&self, exclude: DirectedLink) -> Option<f64> {
        self.detectors
            .iter()
            .filter(|&(&key, _)| key != exclude)
            .filter_map(|(_, d)| d.threshold())
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.max(t)))
            })
    }
}

impl DefenseModule for Lli {
    fn name(&self) -> &'static str {
        "topoguard+/lli"
    }

    fn on_link_update(
        &mut self,
        cx: &mut ModuleCtx<'_>,
        link: DirectedLink,
        _is_new: bool,
        sample: Option<LinkLatencySample>,
    ) -> Command {
        // No timestamp evidence (LLI disabled controller-side, or control
        // latency not yet measured): nothing to judge.
        let Some(latency_ms) = sample.and_then(|s| s.link_latency_ms()) else {
            return Command::Continue;
        };

        let key = trunk_key(link);
        // No verified history for this trunk yet: judge against the
        // fabric reference fence (see module docs) before letting the
        // sample seed the trunk's own store.
        let newborn = self
            .detectors
            .get(&key)
            .is_none_or(IqrOutlierDetector::is_empty);
        let reference = if newborn {
            self.reference_threshold_ms(key)
        } else {
            None
        };
        let detector = self.detectors.entry(key).or_insert_with(|| {
            IqrOutlierDetector::new(
                self.config.store_capacity,
                self.config.min_samples,
                self.config.iqr_k,
            )
        });
        let (threshold_before, verdict) = match reference {
            Some(fence) if latency_ms > fence => {
                (Some(fence), IqrVerdict::Outlier { threshold: fence })
            }
            _ => (detector.threshold(), detector.inspect(latency_ms)),
        };
        let flagged = matches!(verdict, IqrVerdict::Outlier { .. });
        cx.telemetry.counter_inc("topoguard.lli.samples");
        // Milliseconds → nanoseconds for the shared latency bucket ladder.
        cx.telemetry
            .observe_ns("topoguard.lli.link_latency_ns", (latency_ms * 1e6) as u64);
        self.observations.push(LliObservation {
            at: cx.now,
            latency_ms,
            threshold_ms: threshold_before,
            flagged,
            link,
        });

        if let IqrVerdict::Outlier { threshold } = verdict {
            self.detections += 1;
            cx.telemetry.counter_inc("topoguard.lli.detections");
            cx.alerts.raise(Alert {
                at: cx.now,
                source: "topoguard+/lli",
                kind: AlertKind::AbnormalLinkLatency,
                detail: format!(
                    "detected suspicious link discovery: an abnormal delay during LLDP propagation; link delay is abnormal. delay:{:.0}ms, threshold:{:.0}ms ({} -> {})",
                    latency_ms, threshold, link.src, link.dst
                ),
            });
            if self.config.block_anomalous_updates {
                return Command::Block;
            }
        }
        Command::Continue
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
