//! Direct unit tests of the defense modules, driven through the
//! controller's module-test harness (no simulator involved).

use controller::test_support::ModuleHarness;
use controller::{
    AlertKind, Command, DefenseModule, DirectedLink, HostMove, LinkLatencySample, LldpReceive,
    PacketInCtx,
};
use openflow::{OfMessage, PortDesc, PortLinkState, PortStatusReason};
use sdn_types::packet::{EthernetFrame, LldpPacket, Payload};
use sdn_types::{DatapathId, Duration, IpAddr, MacAddr, PortNo, SimTime, SwitchPort};
use topoguard::{Cmm, CmmConfig, Lli, LliConfig, TopoGuard, TopoGuardConfig};

fn sp(d: u64, p: u16) -> SwitchPort {
    SwitchPort::new(DatapathId::new(d), PortNo::new(p))
}

fn port_status(up: bool, port: SwitchPort) -> (DatapathId, PortDesc) {
    (
        port.dpid,
        PortDesc {
            port_no: port.port,
            hw_addr: MacAddr::from_index(9),
            state: if up {
                PortLinkState::Up
            } else {
                PortLinkState::Down
            },
        },
    )
}

fn lldp_receive<'a>(
    lldp: &'a LldpPacket,
    src: SwitchPort,
    dst: SwitchPort,
    at: SimTime,
    signature_valid: Option<bool>,
) -> LldpReceive<'a> {
    LldpReceive {
        lldp,
        src,
        dst,
        at,
        signature_valid,
        sample: None,
    }
}

fn dataplane_frame(src: MacAddr) -> EthernetFrame {
    EthernetFrame::new(
        src,
        MacAddr::BROADCAST,
        Payload::Opaque {
            ethertype: 0x1234,
            data: vec![0; 20],
        },
    )
}

// ---------- TopoGuard ----------

#[test]
fn topoguard_blocks_lldp_at_host_port_and_amnesia_clears_it() {
    let mut h = ModuleHarness::new();
    let mut tg = TopoGuard::new(TopoGuardConfig {
        require_signed_lldp: false,
        ..TopoGuardConfig::default()
    });
    let attacker_port = sp(2, 1);

    // First-hop traffic (after the startup grace period) marks the port
    // HOST.
    let frame = dataplane_frame(MacAddr::from_index(7));
    let pin = PacketInCtx {
        dpid: attacker_port.dpid,
        in_port: attacker_port.port,
        frame: &frame,
        at: SimTime::from_millis(1000),
    };
    tg.on_packet_in(&mut h.ctx(SimTime::from_millis(1000)), &pin);

    // LLDP arriving at the HOST port: alert + block.
    let lldp = LldpPacket::new(DatapathId::new(1), PortNo::new(1));
    let ev = lldp_receive(
        &lldp,
        sp(1, 1),
        attacker_port,
        SimTime::from_millis(1020),
        None,
    );
    let verdict = tg.on_lldp_receive(&mut h.ctx(SimTime::from_millis(1020)), &ev);
    assert_eq!(verdict, Command::Block);
    assert_eq!(h.alerts.count(AlertKind::LinkFabrication), 1);

    // Port Amnesia: a Port-Down resets the profile...
    let (dpid, desc) = port_status(false, attacker_port);
    tg.on_port_status(
        &mut h.ctx(SimTime::from_millis(1030)),
        dpid,
        &desc,
        PortStatusReason::Modify,
    );

    // ...and the same LLDP now passes without any alert.
    let ev = lldp_receive(
        &lldp,
        sp(1, 1),
        attacker_port,
        SimTime::from_millis(1040),
        None,
    );
    let verdict = tg.on_lldp_receive(&mut h.ctx(SimTime::from_millis(1040)), &ev);
    assert_eq!(verdict, Command::Continue);
    assert_eq!(
        h.alerts.count(AlertKind::LinkFabrication),
        1,
        "no new alert"
    );
}

#[test]
fn topoguard_rejects_invalid_signatures() {
    let mut h = ModuleHarness::new();
    let mut tg = TopoGuard::new(TopoGuardConfig::default());
    let lldp = LldpPacket::new(DatapathId::new(1), PortNo::new(1));
    let ev = lldp_receive(
        &lldp,
        sp(1, 1),
        sp(2, 1),
        SimTime::from_millis(5),
        Some(false),
    );
    assert_eq!(
        tg.on_lldp_receive(&mut h.ctx(SimTime::from_millis(5)), &ev),
        Command::Block
    );
    assert_eq!(h.alerts.count(AlertKind::LinkFabrication), 1);
}

#[test]
fn topoguard_migration_precondition() {
    let mut h = ModuleHarness::new();
    let mut tg = TopoGuard::new(TopoGuardConfig::default());
    let mac = MacAddr::from_index(5);
    h.devices
        .commit(mac, Some(IpAddr::new(10, 0, 0, 5)), sp(1, 2), SimTime::ZERO);

    // Move WITHOUT a prior Port-Down at the old location: alert.
    let mv = HostMove {
        mac,
        ip: Some(IpAddr::new(10, 0, 0, 5)),
        from: sp(1, 2),
        to: sp(2, 3),
        at: SimTime::from_secs(1),
    };
    tg.on_host_move(&mut h.ctx(SimTime::from_secs(1)), &mv);
    assert_eq!(h.alerts.count(AlertKind::HostMigrationPrecondition), 1);

    // Now with a Port-Down first: no new pre-condition alert, and a
    // reachability probe (PacketOut) is queued for the old location.
    let (dpid, desc) = port_status(false, sp(1, 2));
    tg.on_port_status(
        &mut h.ctx(SimTime::from_secs(2)),
        dpid,
        &desc,
        PortStatusReason::Modify,
    );
    tg.on_host_move(&mut h.ctx(SimTime::from_secs(3)), &mv);
    assert_eq!(h.alerts.count(AlertKind::HostMigrationPrecondition), 1);
    assert!(
        h.outbox
            .iter()
            .any(|(d, m)| *d == DatapathId::new(1) && matches!(m, OfMessage::PacketOut { .. })),
        "post-condition probe must be sent to the old switch"
    );
}

#[test]
fn topoguard_postcondition_flags_still_reachable_host() {
    let mut h = ModuleHarness::new();
    let mut tg = TopoGuard::new(TopoGuardConfig::default());
    let mac = MacAddr::from_index(5);
    h.devices.commit(mac, None, sp(1, 2), SimTime::ZERO);
    let (dpid, desc) = port_status(false, sp(1, 2));
    tg.on_port_status(
        &mut h.ctx(SimTime::from_secs(1)),
        dpid,
        &desc,
        PortStatusReason::Modify,
    );
    let mv = HostMove {
        mac,
        ip: None,
        from: sp(1, 2),
        to: sp(2, 3),
        at: SimTime::from_secs(2),
    };
    tg.on_host_move(&mut h.ctx(SimTime::from_secs(2)), &mv);

    // An answer arrives from the old location within the timeout: the
    // "moved" host is still there.
    let frame = dataplane_frame(mac);
    let pin = PacketInCtx {
        dpid: DatapathId::new(1),
        in_port: PortNo::new(2),
        frame: &frame,
        at: SimTime::from_millis(2100),
    };
    tg.on_packet_in(&mut h.ctx(SimTime::from_millis(2100)), &pin);
    assert_eq!(h.alerts.count(AlertKind::HostMigrationPostcondition), 1);
}

// ---------- CMM ----------

#[test]
fn cmm_flags_port_bounce_during_lldp_propagation() {
    let mut h = ModuleHarness::new();
    let mut cmm = Cmm::new(CmmConfig::default());
    let src = sp(1, 1);
    let dst = sp(2, 1);

    cmm.on_lldp_emit(&mut h.ctx(SimTime::from_millis(100)), src.dpid, src.port);

    // The receiving-side attacker bounces its port mid-propagation.
    for (t, up) in [(110u64, false), (135, true)] {
        let (dpid, desc) = port_status(up, dst);
        cmm.on_port_status(
            &mut h.ctx(SimTime::from_millis(t)),
            dpid,
            &desc,
            PortStatusReason::Modify,
        );
    }

    let lldp = LldpPacket::new(src.dpid, src.port);
    let ev = lldp_receive(&lldp, src, dst, SimTime::from_millis(150), None);
    let verdict = cmm.on_lldp_receive(&mut h.ctx(SimTime::from_millis(150)), &ev);
    assert_eq!(verdict, Command::Block);
    assert!(h.alerts.count(AlertKind::AnomalousControlMessage) >= 1);
}

#[test]
fn cmm_ignores_bounces_outside_the_window() {
    let mut h = ModuleHarness::new();
    let mut cmm = Cmm::new(CmmConfig::default());
    let src = sp(1, 1);
    let dst = sp(2, 1);

    // Bounce long before the probe.
    for (t, up) in [(10u64, false), (30, true)] {
        let (dpid, desc) = port_status(up, dst);
        cmm.on_port_status(
            &mut h.ctx(SimTime::from_millis(t)),
            dpid,
            &desc,
            PortStatusReason::Modify,
        );
    }
    cmm.on_lldp_emit(&mut h.ctx(SimTime::from_millis(100)), src.dpid, src.port);
    let lldp = LldpPacket::new(src.dpid, src.port);
    let ev = lldp_receive(&lldp, src, dst, SimTime::from_millis(120), None);
    assert_eq!(
        cmm.on_lldp_receive(&mut h.ctx(SimTime::from_millis(120)), &ev),
        Command::Continue
    );
    assert!(h.alerts.is_empty());
}

#[test]
fn cmm_sender_side_immediate_alert() {
    let mut h = ModuleHarness::new();
    let mut cmm = Cmm::new(CmmConfig::default());
    let src = sp(1, 1);
    cmm.on_lldp_emit(&mut h.ctx(SimTime::from_millis(100)), src.dpid, src.port);
    let (dpid, desc) = port_status(false, src);
    cmm.on_port_status(
        &mut h.ctx(SimTime::from_millis(105)),
        dpid,
        &desc,
        PortStatusReason::Modify,
    );
    assert_eq!(h.alerts.count(AlertKind::AnomalousControlMessage), 1);
}

#[test]
fn cmm_forgets_stale_probes() {
    let mut h = ModuleHarness::new();
    let mut cmm = Cmm::new(CmmConfig::default());
    let src = sp(1, 1);
    cmm.on_lldp_emit(&mut h.ctx(SimTime::from_millis(100)), src.dpid, src.port);
    // Housekeeping runs past the probe TTL (500 ms).
    cmm.on_tick(&mut h.ctx(SimTime::from_millis(700)));
    let (dpid, desc) = port_status(false, src);
    cmm.on_port_status(
        &mut h.ctx(SimTime::from_millis(710)),
        dpid,
        &desc,
        PortStatusReason::Modify,
    );
    assert!(
        h.alerts.is_empty(),
        "a Port-Down long after the probe must not alert"
    );
}

// ---------- LLI ----------

#[test]
fn lli_flags_and_blocks_anomalous_latency() {
    let mut h = ModuleHarness::new();
    let mut lli = Lli::new(LliConfig::default());
    let link = DirectedLink::new(sp(1, 1), sp(2, 1));
    let sample = |ms: f64| {
        Some(LinkLatencySample {
            t_lldp: Duration::from_millis_f64(ms + 2.0),
            t_sw_src: Some(Duration::from_millis(1)),
            t_sw_dst: Some(Duration::from_millis(1)),
        })
    };

    // Baseline: 30 honest ~5 ms observations.
    for i in 0..30 {
        let v = lli.on_link_update(
            &mut h.ctx(SimTime::from_secs(i)),
            link,
            i == 0,
            sample(5.0 + (i % 4) as f64 * 0.1),
        );
        assert_eq!(v, Command::Continue);
    }
    assert!(lli.threshold_ms(link).expect("past warmup") < 8.0);
    // Either direction of the trunk selects the same baseline store.
    assert_eq!(lli.threshold_ms(link), lli.threshold_ms(link.reversed()));

    // A relayed link shows up at ~21 ms.
    let v = lli.on_link_update(
        &mut h.ctx(SimTime::from_secs(60)),
        link,
        false,
        sample(21.0),
    );
    assert_eq!(v, Command::Block);
    assert_eq!(h.alerts.count(AlertKind::AbnormalLinkLatency), 1);
    assert!(h.alerts.all()[0].detail.contains("delay:21ms"));
    assert_eq!(lli.detections, 1);
}

#[test]
fn lli_keeps_per_trunk_baselines_for_heterogeneous_fabrics() {
    // Regression for the fat-tree-8 verdict flip (EXPERIMENTS.md): a
    // single global latency store pools every trunk's population, so an
    // honest slow trunk (~20 ms core link) sits past the fence fitted to
    // the fast majority (~5 ms edge links) and gets flagged. Per-trunk
    // baselines must keep both honest populations silent while still
    // flagging a genuine outlier on either trunk.
    let mut h = ModuleHarness::new();
    let mut lli = Lli::new(LliConfig::default());
    let fast = DirectedLink::new(sp(1, 1), sp(2, 1));
    let slow = DirectedLink::new(sp(3, 1), sp(4, 1));
    let sample = |ms: f64| {
        Some(LinkLatencySample {
            t_lldp: Duration::from_millis_f64(ms + 2.0),
            t_sw_src: Some(Duration::from_millis(1)),
            t_sw_dst: Some(Duration::from_millis(1)),
        })
    };

    // Interleaved honest observations from two distinct populations.
    for i in 0..40_u64 {
        let v = lli.on_link_update(
            &mut h.ctx(SimTime::from_millis(100 * i)),
            fast,
            i == 0,
            sample(5.0 + (i % 5) as f64 * 0.1),
        );
        assert_eq!(v, Command::Continue, "honest fast trunk flagged at {i}");
        let v = lli.on_link_update(
            &mut h.ctx(SimTime::from_millis(100 * i + 50)),
            slow,
            i == 0,
            sample(20.0 + (i % 5) as f64 * 0.2),
        );
        assert_eq!(v, Command::Continue, "honest slow trunk flagged at {i}");
    }
    assert!(
        h.alerts.is_empty(),
        "two honest latency populations must not cross-contaminate"
    );
    assert_eq!(lli.trunks_tracked(), 2);
    // The fences reflect each trunk's own population.
    assert!(lli.threshold_ms(fast).expect("past warmup") < 8.0);
    assert!(lli.threshold_ms(slow).expect("past warmup") > 18.0);

    // A relay adds ~15 ms to the *fast* trunk: under a pooled store the
    // slow population would have stretched the fence past it.
    let v = lli.on_link_update(
        &mut h.ctx(SimTime::from_secs(60)),
        fast,
        false,
        sample(18.0),
    );
    assert_eq!(v, Command::Block, "relay on the fast trunk must flag");
    assert_eq!(h.alerts.count(AlertKind::AbnormalLinkLatency), 1);
    // And the slow trunk's own outlier still flags too.
    let v = lli.on_link_update(
        &mut h.ctx(SimTime::from_secs(61)),
        slow,
        false,
        sample(45.0),
    );
    assert_eq!(v, Command::Block, "relay on the slow trunk must flag");
    assert_eq!(lli.detections, 2);
}

#[test]
fn lli_without_evidence_stays_silent() {
    let mut h = ModuleHarness::new();
    let mut lli = Lli::new(LliConfig::default());
    let link = DirectedLink::new(sp(1, 1), sp(2, 1));
    // No timestamp/control-latency evidence: nothing to judge.
    let v = lli.on_link_update(&mut h.ctx(SimTime::from_secs(1)), link, true, None);
    assert_eq!(v, Command::Continue);
    let v = lli.on_link_update(
        &mut h.ctx(SimTime::from_secs(2)),
        link,
        false,
        Some(LinkLatencySample {
            t_lldp: Duration::from_millis(7),
            t_sw_src: None,
            t_sw_dst: Some(Duration::from_millis(1)),
        }),
    );
    assert_eq!(v, Command::Continue);
    assert!(h.alerts.is_empty());
    assert!(lli.observations.is_empty());
}

#[test]
fn lli_observation_log_records_thresholds() {
    let mut h = ModuleHarness::new();
    let mut lli = Lli::new(LliConfig {
        min_samples: 3,
        ..LliConfig::default()
    });
    let link = DirectedLink::new(sp(1, 1), sp(2, 1));
    for i in 0..5 {
        lli.on_link_update(
            &mut h.ctx(SimTime::from_secs(i)),
            link,
            i == 0,
            Some(LinkLatencySample {
                t_lldp: Duration::from_millis(7),
                t_sw_src: Some(Duration::from_millis(1)),
                t_sw_dst: Some(Duration::from_millis(1)),
            }),
        );
    }
    assert_eq!(lli.observations.len(), 5);
    assert!(lli.observations[0].threshold_ms.is_none(), "warmup");
    assert!(lli.observations[4].threshold_ms.is_some(), "steady state");
    assert!(lli.observations.iter().all(|o| !o.flagged));
}

#[test]
fn topoguard_does_not_profile_during_startup_grace() {
    // Before the first discovery round, flooded broadcasts hit inter-switch
    // ports that are not yet known to be infrastructure; profiling them
    // would flag the first legitimate LLDP on every trunk.
    let mut h = ModuleHarness::new();
    let mut tg = TopoGuard::new(TopoGuardConfig {
        require_signed_lldp: false,
        ..TopoGuardConfig::default()
    });
    let trunk = sp(2, 1);
    let frame = dataplane_frame(MacAddr::from_index(7));
    let pin = PacketInCtx {
        dpid: trunk.dpid,
        in_port: trunk.port,
        frame: &frame,
        at: SimTime::from_millis(12),
    };
    tg.on_packet_in(&mut h.ctx(SimTime::from_millis(12)), &pin);

    // The first LLDP on the trunk must pass cleanly.
    let lldp = LldpPacket::new(DatapathId::new(1), PortNo::new(1));
    let ev = lldp_receive(&lldp, sp(1, 1), trunk, SimTime::from_millis(107), None);
    assert_eq!(
        tg.on_lldp_receive(&mut h.ctx(SimTime::from_millis(107)), &ev),
        Command::Continue
    );
    assert!(h.alerts.is_empty());
}
