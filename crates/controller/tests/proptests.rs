//! Property tests for controller data structures: host tracking under
//! arbitrary observation sequences, topology expiry invariants, and
//! shortest-path sanity.

use tm_prop::prelude::*;

use controller::{DeviceTable, DirectedLink, Topology};
use sdn_types::{DatapathId, Duration, MacAddr, PortNo, SimTime, SwitchPort};

fn sp(d: u8, p: u8) -> SwitchPort {
    SwitchPort::new(
        DatapathId::new(u64::from(d) % 4 + 1),
        PortNo::new(u16::from(p) % 8 + 1),
    )
}

tm_prop! {
    /// After any observation sequence, each device's location equals the
    /// location of its most recent observation, and move_count equals the
    /// number of location changes.
    #[test]
    fn device_table_tracks_last_observation(
        obs in collection::vec((0u8..5, 0u8..4, 0u8..8), 1..100)
    ) {
        let mut table = DeviceTable::new();
        let mut expected: std::collections::BTreeMap<u8, (SwitchPort, u64)> =
            std::collections::BTreeMap::new();
        for (i, (mac_i, d, p)) in obs.iter().enumerate() {
            let mac = MacAddr::from_index(u32::from(*mac_i));
            let loc = sp(*d, *p);
            table.commit(mac, None, loc, SimTime::from_millis(i as u64));
            let entry = expected.entry(*mac_i).or_insert((loc, 0));
            if entry.0 != loc {
                entry.1 += 1;
                entry.0 = loc;
            }
        }
        for (mac_i, (loc, moves)) in expected {
            let mac = MacAddr::from_index(u32::from(mac_i));
            let dev = table.get(&mac).expect("committed");
            prop_assert_eq!(dev.location, loc);
            prop_assert_eq!(dev.move_count, moves);
        }
    }

    /// classify() never mutates, and commit() after a Moved classification
    /// always lands on the new location.
    #[test]
    fn classify_commit_agree(
        first in (0u8..4, 0u8..8),
        second in (0u8..4, 0u8..8),
    ) {
        let mac = MacAddr::from_index(7);
        let mut table = DeviceTable::new();
        let loc1 = sp(first.0, first.1);
        let loc2 = sp(second.0, second.1);
        table.commit(mac, None, loc1, SimTime::ZERO);
        let snapshot = table.location_of(&mac);
        let _ = table.classify(mac, None, loc2, SimTime::from_secs(1));
        prop_assert_eq!(table.location_of(&mac), snapshot, "classify must not mutate");
        table.commit(mac, None, loc2, SimTime::from_secs(1));
        prop_assert_eq!(table.location_of(&mac), Some(loc2));
    }

    /// Expiry removes exactly the links older than the timeout, never
    /// younger ones.
    #[test]
    fn topology_expiry_is_exact(
        links in collection::vec(((0u8..4, 0u8..8), (0u8..4, 0u8..8), 0u64..100), 1..50),
        timeout_s in 1u64..50,
        now_s in 50u64..200,
    ) {
        let mut topo = Topology::new();
        let mut expected_alive = std::collections::BTreeSet::new();
        for ((sd, spp), (dd, dp), seen) in &links {
            let link = DirectedLink::new(sp(*sd, *spp), sp(*dd, *dp));
            // Later observations refresh earlier ones; emulate by keeping max.
            topo.observe(link, SimTime::from_secs(*seen), None);
        }
        // Recompute expected from final last_seen values.
        let snapshot: Vec<(DirectedLink, SimTime)> = topo
            .links()
            .map(|(l, s)| (*l, s.last_seen))
            .collect();
        for (link, last_seen) in &snapshot {
            if SimTime::from_secs(now_s).since(*last_seen) < Duration::from_secs(timeout_s) {
                expected_alive.insert(*link);
            }
        }
        let removed = topo.expire(SimTime::from_secs(now_s), Duration::from_secs(timeout_s));
        for link in &removed {
            prop_assert!(!expected_alive.contains(link), "young link expired: {link:?}");
        }
        prop_assert_eq!(topo.len(), expected_alive.len());
    }

    /// Any path returned by shortest_path is connected (each hop starts at
    /// the previous hop's destination switch) and begins/ends correctly.
    #[test]
    fn shortest_paths_are_connected(
        links in collection::vec(((0u8..4, 0u8..8), (0u8..4, 0u8..8)), 1..40),
        from in 0u8..4,
        to in 0u8..4,
    ) {
        let mut topo = Topology::new();
        for ((sd, spp), (dd, dp)) in &links {
            topo.observe(
                DirectedLink::new(sp(*sd, *spp), sp(*dd, *dp)),
                SimTime::ZERO,
                None,
            );
        }
        let from = DatapathId::new(u64::from(from) % 4 + 1);
        let to = DatapathId::new(u64::from(to) % 4 + 1);
        if let Some(path) = topo.shortest_path(from, to) {
            if from == to {
                prop_assert!(path.is_empty());
            } else {
                prop_assert_eq!(path.first().unwrap().src.dpid, from);
                prop_assert_eq!(path.last().unwrap().dst.dpid, to);
                for pair in path.windows(2) {
                    prop_assert_eq!(pair[0].dst.dpid, pair[1].src.dpid);
                }
                // BFS shortest: no repeated switches.
                let mut seen = std::collections::BTreeSet::new();
                seen.insert(from);
                for hop in &path {
                    prop_assert!(seen.insert(hop.dst.dpid), "loop in path");
                }
            }
        }
    }
}
