//! End-to-end controller tests on simulated networks: LLDP link discovery,
//! host tracking, reactive forwarding, link expiry, and latency tracking.

use controller::{ControllerConfig, ControllerProfile, DirectedLink, SdnController};
use netsim::apps::PeriodicPinger;
use netsim::{LinkProfile, NetworkSpec, Simulator};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SwitchPort};

const S1: DatapathId = DatapathId::new(1);
const S2: DatapathId = DatapathId::new(2);
const H1: HostId = HostId::new(1);
const H2: HostId = HostId::new(2);

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index(i)
}
fn ip(i: u16) -> IpAddr {
    IpAddr::from_index(i)
}
fn sp(d: DatapathId, p: u16) -> SwitchPort {
    SwitchPort::new(d, PortNo::new(p))
}

/// Two switches, one inter-switch link, one host on each switch.
fn two_switch_spec(config: ControllerConfig) -> NetworkSpec {
    let mut spec = NetworkSpec::new();
    spec.add_switch(S1);
    spec.add_switch(S2);
    spec.link_switches(
        S1,
        PortNo::new(1),
        S2,
        PortNo::new(1),
        LinkProfile::fixed(Duration::from_millis(5)),
    );
    spec.add_host(H1, mac(1), ip(1));
    spec.add_host(H2, mac(2), ip(2));
    spec.attach_host(
        H1,
        S1,
        PortNo::new(2),
        LinkProfile::fixed(Duration::from_millis(5)),
    );
    spec.attach_host(
        H2,
        S2,
        PortNo::new(2),
        LinkProfile::fixed(Duration::from_millis(5)),
    );
    spec.set_controller(Box::new(SdnController::new(config)));
    spec
}

#[test]
fn lldp_discovers_both_link_directions() {
    let mut sim = Simulator::new(two_switch_spec(ControllerConfig::default()), 1);
    sim.run_for(Duration::from_secs(1));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    assert_eq!(ctrl.topology().len(), 2, "both directions inferred");
    assert!(ctrl
        .topology()
        .contains(&DirectedLink::new(sp(S1, 1), sp(S2, 1))));
    assert!(ctrl
        .topology()
        .contains(&DirectedLink::new(sp(S2, 1), sp(S1, 1))));
}

#[test]
fn discovery_cadence_follows_profile() {
    for profile in [ControllerProfile::FLOODLIGHT, ControllerProfile::POX] {
        let config = ControllerConfig {
            profile,
            ..ControllerConfig::default()
        };
        let mut sim = Simulator::new(two_switch_spec(config), 1);
        sim.run_for(Duration::from_secs(31));
        let ctrl: &SdnController = sim.controller_as().expect("controller");
        // 4 ports probed per round; rounds at 0.1s then every interval.
        let interval = profile.link_discovery_interval.as_nanos();
        let expected_rounds = 1 + (31_000_000_000 - 100_000_000) / interval;
        assert_eq!(
            ctrl.lldp_emitted,
            expected_rounds * 4,
            "{}: {} rounds of 4 probes",
            profile.name,
            expected_rounds
        );
    }
}

#[test]
fn hosts_are_tracked_with_ips_and_locations() {
    let mut spec = two_switch_spec(ControllerConfig::default());
    spec.set_host_app(
        H1,
        Box::new(PeriodicPinger::new(ip(2), Duration::from_millis(200))),
    );
    let mut sim = Simulator::new(spec, 2);
    sim.run_for(Duration::from_secs(3));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let d1 = ctrl.devices().get(&mac(1)).expect("h1 tracked");
    assert_eq!(d1.location, sp(S1, 2));
    assert!(d1.ips.contains(&ip(1)));
    let d2 = ctrl.devices().get(&mac(2)).expect("h2 tracked (ARP reply)");
    assert_eq!(d2.location, sp(S2, 2));
}

#[test]
fn reactive_forwarding_carries_pings_end_to_end() {
    let mut spec = two_switch_spec(ControllerConfig::default());
    spec.set_host_app(
        H1,
        Box::new(PeriodicPinger::new(ip(2), Duration::from_millis(100))),
    );
    let mut sim = Simulator::new(spec, 3);
    sim.run_for(Duration::from_secs(5));
    let pinger: &PeriodicPinger = sim.host_app_as(H1).expect("app");
    assert!(pinger.sent >= 40, "sent {}", pinger.sent);
    assert!(
        pinger.received as f64 >= pinger.sent as f64 * 0.9,
        "received {}/{}",
        pinger.received,
        pinger.sent
    );
    // Once rules are installed, pings flow entirely on the dataplane:
    // h1-s1, s1-s2, s2-h2 at 5 ms each = 15 ms one way, 30 ms RTT.
    let last = *pinger.rtts_ms.last().expect("has rtts");
    assert!((last - 30.0).abs() < 1.0, "dataplane rtt {last}");
}

#[test]
fn infrastructure_ports_do_not_learn_hosts() {
    let mut spec = two_switch_spec(ControllerConfig::default());
    spec.set_host_app(
        H1,
        Box::new(PeriodicPinger::new(ip(2), Duration::from_millis(100))),
    );
    let mut sim = Simulator::new(spec, 3);
    sim.run_for(Duration::from_secs(5));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    for dev in ctrl.devices().devices() {
        assert!(
            !ctrl.topology().is_infrastructure_port(dev.location),
            "device {} learned on infrastructure port {}",
            dev.mac,
            dev.location
        );
    }
}

#[test]
fn links_expire_without_lldp_refresh() {
    // Use POX (5s interval / 10s timeout) for a fast test. Kill the
    // inter-switch link after discovery and watch the link expire.
    let config = ControllerConfig {
        profile: ControllerProfile::POX,
        ..ControllerConfig::default()
    };
    let mut sim = Simulator::new(two_switch_spec(config), 4);
    sim.run_for(Duration::from_secs(6));
    {
        let ctrl: &SdnController = sim.controller_as().expect("controller");
        assert_eq!(ctrl.topology().len(), 2);
    }
    sim.set_switch_port_admin(S1, PortNo::new(1), false);
    sim.run_for(Duration::from_secs(15));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    assert_eq!(ctrl.topology().len(), 0, "links must expire after timeout");
}

#[test]
fn host_migration_is_registered() {
    // h2 disconnects from s2 and reappears on s1 port 3.
    let mut spec = two_switch_spec(ControllerConfig::default());
    spec.set_host_app(
        H1,
        Box::new(PeriodicPinger::new(ip(2), Duration::from_millis(100))),
    );
    let mut sim = Simulator::new(spec, 5);
    sim.run_for(Duration::from_secs(2));

    // Detach h2 (admin-down its port), bring up a third host with h2's
    // identifiers at a new location after a pause.
    sim.set_switch_port_admin(S2, PortNo::new(2), false);
    sim.run_for(Duration::from_secs(1));

    // "Migrate": another NIC with the same identifiers appears at S1 port 3.
    // Model this by moving the victim: here we just attach a new host with
    // identical identifiers.
    // (Scenario crates script this through iface down/up; this test uses a
    // second physical host for simplicity.)
    let h3 = HostId::new(3);
    let mut spec2 = two_switch_spec(ControllerConfig::default());
    spec2.add_host(h3, mac(2), ip(2));
    spec2.attach_host(
        h3,
        S1,
        PortNo::new(3),
        LinkProfile::fixed(Duration::from_millis(5)),
    );
    spec2.set_host_app(
        H1,
        Box::new(PeriodicPinger::new(ip(2), Duration::from_millis(100))),
    );
    // Keep the original h2 silent so only h3 claims the identity.
    let mut sim2 = Simulator::new(spec2, 6);
    sim2.set_switch_port_admin(S2, PortNo::new(2), false);
    sim2.run_for(Duration::from_secs(3));
    let ctrl: &SdnController = sim2.controller_as().expect("controller");
    let dev = ctrl.devices().get(&mac(2)).expect("tracked");
    assert_eq!(dev.location, sp(S1, 3), "binding moved to the new location");
}

#[test]
fn echo_polling_estimates_control_latency() {
    let config = ControllerConfig {
        echo_interval: Some(Duration::from_secs(1)),
        ..ControllerConfig::default()
    };
    let mut sim = Simulator::new(two_switch_spec(config), 7);
    sim.run_for(Duration::from_secs(5));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    // Control latency is 1 ms each way + 50 us processing -> one-way ~1 ms.
    let one_way = ctrl.latency().one_way(S1).expect("measured");
    let ms = one_way.as_millis_f64();
    assert!((ms - 1.0).abs() < 0.1, "one-way estimate {ms} ms");
    assert_eq!(ctrl.latency().measured_switches(), 2);
}

#[test]
fn timestamped_lldp_measures_link_latency() {
    let config = ControllerConfig {
        timestamp_lldp: true,
        echo_interval: Some(Duration::from_secs(1)),
        ..ControllerConfig::default()
    };
    let mut sim = Simulator::new(two_switch_spec(config), 8);
    sim.run_for(Duration::from_secs(40));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let link = DirectedLink::new(sp(S1, 1), sp(S2, 1));
    let state = ctrl.topology().get(&link).expect("link known");
    let latency = state.last_latency_ms.expect("latency measured");
    assert!(
        (latency - 5.0).abs() < 1.0,
        "estimated link latency {latency} ms (true 5 ms)"
    );
}

#[test]
fn signed_lldp_accepts_own_probes() {
    let config = ControllerConfig {
        sign_lldp: true,
        ..ControllerConfig::default()
    };
    let mut sim = Simulator::new(two_switch_spec(config), 9);
    sim.run_for(Duration::from_secs(1));
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    assert_eq!(ctrl.topology().len(), 2, "self-signed probes accepted");
}
