//! The shared alert channel defenses raise into.
//!
//! Per the paper (§IV-B, "Alert Floods"): alerts inform the operator but do
//! **not** alter network state — which is precisely what makes alert
//! flooding and attacker/victim ambiguity possible. The sink therefore only
//! records; it never blocks anything.

use std::fmt;

use sdn_types::SimTime;

/// The category of a defense alert.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AlertKind {
    /// TopoGuard: host migration pre-condition violated (no Port-Down
    /// before the move).
    HostMigrationPrecondition,
    /// TopoGuard: host migration post-condition violated (old location
    /// still reachable).
    HostMigrationPostcondition,
    /// TopoGuard: LLDP received from a port profiled as HOST, or with an
    /// invalid signature.
    LinkFabrication,
    /// TopoGuard: first-hop traffic from a port profiled as SWITCH.
    TrafficFromSwitchPort,
    /// TopoGuard+ CMM: Port-Up/Down observed from a port involved in an
    /// in-flight LLDP probe.
    AnomalousControlMessage,
    /// TopoGuard+ LLI: switch-link latency beyond `Q3 + 3·IQR`.
    AbnormalLinkLatency,
    /// SPHINX: flow-graph or counter-conservation violation.
    FlowInconsistency,
    /// SPHINX: the same identifier bound to multiple network locations.
    IdentifierConflict,
    /// SPHINX: an existing link changed unexpectedly.
    LinkChanged,
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AlertKind::HostMigrationPrecondition => "host-migration-precondition",
            AlertKind::HostMigrationPostcondition => "host-migration-postcondition",
            AlertKind::LinkFabrication => "link-fabrication",
            AlertKind::TrafficFromSwitchPort => "traffic-from-switch-port",
            AlertKind::AnomalousControlMessage => "anomalous-control-message",
            AlertKind::AbnormalLinkLatency => "abnormal-link-latency",
            AlertKind::FlowInconsistency => "flow-inconsistency",
            AlertKind::IdentifierConflict => "identifier-conflict",
            AlertKind::LinkChanged => "link-changed",
        };
        f.write_str(s)
    }
}

/// One alert raised by a defense module.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Alert {
    /// When the alert was raised (controller clock).
    pub at: SimTime,
    /// The raising module (`"topoguard"`, `"topoguard+/cmm"`, `"sphinx"`, ...).
    pub source: &'static str,
    /// The category.
    pub kind: AlertKind,
    /// Human-readable detail, in the style of the paper's Fig. 12/13 log
    /// excerpts.
    pub detail: String,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ERROR [{}] {}: {}",
            self.at, self.source, self.kind, self.detail
        )
    }
}

/// An append-only record of raised alerts.
#[derive(Clone, Debug, Default)]
pub struct AlertSink {
    alerts: Vec<Alert>,
}

impl AlertSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        AlertSink::default()
    }

    /// Records an alert.
    pub fn raise(&mut self, alert: Alert) {
        self.alerts.push(alert);
    }

    /// All alerts, in order.
    pub fn all(&self) -> &[Alert] {
        &self.alerts
    }

    /// Number of alerts recorded.
    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    /// Returns `true` if no alerts were raised.
    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }

    /// Alerts of a given kind.
    pub fn of_kind(&self, kind: AlertKind) -> impl Iterator<Item = &Alert> {
        self.alerts.iter().filter(move |a| a.kind == kind)
    }

    /// Counts alerts of a given kind.
    pub fn count(&self, kind: AlertKind) -> usize {
        self.of_kind(kind).count()
    }

    /// Alerts raised by a given module.
    pub fn from_source<'a>(&'a self, source: &'a str) -> impl Iterator<Item = &'a Alert> + 'a {
        self.alerts.iter().filter(move |a| a.source == source)
    }

    /// Clears all alerts (scenario phase boundaries).
    pub fn clear(&mut self) {
        self.alerts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(kind: AlertKind) -> Alert {
        Alert {
            at: SimTime::from_millis(5),
            source: "topoguard",
            kind,
            detail: "test".into(),
        }
    }

    #[test]
    fn sink_records_and_filters() {
        let mut sink = AlertSink::new();
        assert!(sink.is_empty());
        sink.raise(alert(AlertKind::LinkFabrication));
        sink.raise(alert(AlertKind::AbnormalLinkLatency));
        sink.raise(alert(AlertKind::LinkFabrication));
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.count(AlertKind::LinkFabrication), 2);
        assert_eq!(sink.count(AlertKind::IdentifierConflict), 0);
        assert_eq!(sink.from_source("topoguard").count(), 3);
        assert_eq!(sink.from_source("sphinx").count(), 0);
    }

    #[test]
    fn display_matches_log_style() {
        let a = Alert {
            at: SimTime::from_millis(1500),
            source: "topoguard+/lli",
            kind: AlertKind::AbnormalLinkLatency,
            detail: "link delay is abnormal. delay:22ms, threshold:14ms".into(),
        };
        let line = a.to_string();
        assert!(line.contains("ERROR"));
        assert!(line.contains("abnormal-link-latency"));
        assert!(line.contains("delay:22ms"));
    }
}
