//! Control-link latency tracking via OpenFlow echoes.
//!
//! TopoGuard+ estimates switch-link latency as `T_LLDP − T_SW1 − T_SW2`
//! (§VI-D). The `T_SW` terms come from echo round trips: "we take the
//! average of the latest three latency measurements of the control links in
//! order to minimize variance."

use std::collections::{BTreeMap, VecDeque};

use sdn_types::{DatapathId, Duration, SimTime};

/// How many recent RTTs the paper averages.
pub const SAMPLES_AVERAGED: usize = 3;

/// Tracks per-switch control-channel round-trip times.
#[derive(Clone, Debug, Default)]
pub struct CtrlLatencyTracker {
    rtts: BTreeMap<DatapathId, VecDeque<Duration>>,
    outstanding: BTreeMap<u64, (DatapathId, SimTime)>,
}

impl CtrlLatencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        CtrlLatencyTracker::default()
    }

    /// Records that an echo with transaction id `xid` was sent to `dpid`.
    pub fn echo_sent(&mut self, xid: u64, dpid: DatapathId, at: SimTime) {
        self.outstanding.insert(xid, (dpid, at));
    }

    /// Records an echo reply; returns the measured RTT if the xid was known.
    pub fn echo_received(&mut self, xid: u64, now: SimTime) -> Option<Duration> {
        let (dpid, sent) = self.outstanding.remove(&xid)?;
        let rtt = now.since(sent);
        let window = self.rtts.entry(dpid).or_default();
        if window.len() == SAMPLES_AVERAGED {
            window.pop_front();
        }
        window.push_back(rtt);
        Some(rtt)
    }

    /// Forgets outstanding echoes sent before `now − horizon` and returns
    /// how many were dropped. Lost or reordered replies would otherwise pin
    /// their entries forever, growing the map without bound over a long run.
    pub fn prune_stale(&mut self, now: SimTime, horizon: Duration) -> usize {
        let cutoff = SimTime::from_nanos(now.as_nanos().saturating_sub(horizon.as_nanos()));
        let before = self.outstanding.len();
        self.outstanding.retain(|_, (_, sent)| *sent >= cutoff);
        before - self.outstanding.len()
    }

    /// Number of echoes awaiting a reply (diagnostics).
    pub fn outstanding_count(&self) -> usize {
        self.outstanding.len()
    }

    /// The average of the latest three RTTs for `dpid`, or `None` if no
    /// measurement has completed yet. Rounded to the nearest nanosecond:
    /// truncation would bias `T_SW` low, and therefore the LLI's
    /// `T_LLDP − T_SW1 − T_SW2` estimate high.
    pub fn avg_rtt(&self, dpid: DatapathId) -> Option<Duration> {
        let window = self.rtts.get(&dpid)?;
        if window.is_empty() {
            return None;
        }
        let total: u64 = window.iter().map(|d| d.as_nanos()).sum();
        let len = window.len() as u64;
        Some(Duration::from_nanos((total + len / 2) / len))
    }

    /// The estimated one-way control-link delay (`T_SW`): half the averaged
    /// RTT.
    pub fn one_way(&self, dpid: DatapathId) -> Option<Duration> {
        self.avg_rtt(dpid).map(|rtt| rtt.div(2))
    }

    /// Number of switches with at least one completed measurement.
    pub fn measured_switches(&self) -> usize {
        self.rtts.values().filter(|w| !w.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SW: DatapathId = DatapathId::new(7);

    #[test]
    fn rtt_measurement_round_trip() {
        let mut t = CtrlLatencyTracker::new();
        t.echo_sent(1, SW, SimTime::from_millis(100));
        let rtt = t.echo_received(1, SimTime::from_millis(102)).unwrap();
        assert_eq!(rtt, Duration::from_millis(2));
        assert_eq!(t.avg_rtt(SW), Some(Duration::from_millis(2)));
        assert_eq!(t.one_way(SW), Some(Duration::from_millis(1)));
    }

    #[test]
    fn unknown_xid_ignored() {
        let mut t = CtrlLatencyTracker::new();
        assert!(t.echo_received(99, SimTime::from_millis(5)).is_none());
    }

    #[test]
    fn averages_latest_three_only() {
        let mut t = CtrlLatencyTracker::new();
        // Four echoes with RTTs 10, 2, 4, 6 ms: the first must fall out.
        for (i, (sent, rtt)) in [(0u64, 10u64), (20, 2), (40, 4), (60, 6)]
            .iter()
            .enumerate()
        {
            let xid = i as u64;
            t.echo_sent(xid, SW, SimTime::from_millis(*sent));
            t.echo_received(xid, SimTime::from_millis(sent + rtt));
        }
        assert_eq!(t.avg_rtt(SW), Some(Duration::from_millis(4)));
    }

    #[test]
    fn no_measurement_is_none() {
        let t = CtrlLatencyTracker::new();
        assert!(t.avg_rtt(SW).is_none());
        assert!(t.one_way(SW).is_none());
        assert_eq!(t.measured_switches(), 0);
    }

    #[test]
    fn avg_rtt_rounds_to_nearest_instead_of_truncating() {
        let mut t = CtrlLatencyTracker::new();
        // RTTs of 1 ns, 2 ns, 2 ns: total 5, len 3. Truncation would give
        // 1 ns; round-to-nearest gives 2 ns.
        for (xid, (sent, rtt)) in [(0u64, 1u64), (100, 2), (200, 2)].iter().enumerate() {
            let xid = xid as u64;
            t.echo_sent(xid, SW, SimTime::from_nanos(*sent));
            t.echo_received(xid, SimTime::from_nanos(sent + rtt));
        }
        assert_eq!(t.avg_rtt(SW), Some(Duration::from_nanos(2)));

        // And a window that rounds down: 1, 1, 2 → 4/3 → 1 ns.
        let mut t = CtrlLatencyTracker::new();
        for (xid, (sent, rtt)) in [(0u64, 1u64), (100, 1), (200, 2)].iter().enumerate() {
            let xid = xid as u64;
            t.echo_sent(xid, SW, SimTime::from_nanos(*sent));
            t.echo_received(xid, SimTime::from_nanos(sent + rtt));
        }
        assert_eq!(t.avg_rtt(SW), Some(Duration::from_nanos(1)));
    }

    #[test]
    fn prune_drops_only_stale_outstanding_echoes() {
        let mut t = CtrlLatencyTracker::new();
        t.echo_sent(1, SW, SimTime::from_secs(1)); // stale: reply never came
        t.echo_sent(2, SW, SimTime::from_secs(9)); // recent
        assert_eq!(t.outstanding_count(), 2);
        let pruned = t.prune_stale(SimTime::from_secs(10), Duration::from_secs(5));
        assert_eq!(pruned, 1);
        assert_eq!(t.outstanding_count(), 1);
        // The pruned xid no longer yields a measurement...
        assert!(t.echo_received(1, SimTime::from_secs(10)).is_none());
        // ...but the surviving one does.
        assert!(t.echo_received(2, SimTime::from_secs(10)).is_some());
    }

    #[test]
    fn tracks_switches_independently() {
        let mut t = CtrlLatencyTracker::new();
        let sw2 = DatapathId::new(8);
        t.echo_sent(1, SW, SimTime::from_millis(0));
        t.echo_received(1, SimTime::from_millis(2));
        t.echo_sent(2, sw2, SimTime::from_millis(0));
        t.echo_received(2, SimTime::from_millis(8));
        assert_eq!(t.avg_rtt(SW), Some(Duration::from_millis(2)));
        assert_eq!(t.avg_rtt(sw2), Some(Duration::from_millis(8)));
        assert_eq!(t.measured_switches(), 2);
    }
}
