//! Reactive shortest-path forwarding.
//!
//! On a dataplane table miss the controller either floods (broadcast /
//! unknown destination) or installs a rule chain along the shortest path to
//! the destination's tracked location and re-injects the packet. Rules use
//! Floodlight-style 5-second idle timeouts, so paths dissolve shortly after
//! traffic stops — which is why a host-location hijack takes effect as soon
//! as new flows are set up toward the attacker's location.

use openflow::{Action, FlowMatch, FlowModCommand, OfMessage};
use sdn_types::packet::EthernetFrame;
use sdn_types::{DatapathId, PortNo};

use crate::devices::DeviceTable;
use crate::topology::Topology;

/// Idle timeout for reactive rules, seconds (Floodlight default).
pub const RULE_IDLE_TIMEOUT_SECS: u16 = 5;

/// Priority for reactive rules.
pub const RULE_PRIORITY: u16 = 100;

/// Computes the control messages answering a dataplane table miss.
///
/// Returns `(messages, flooded)`: the FlowMods/PacketOuts to send, and
/// whether the packet was flooded rather than path-routed.
///
/// `flood_scope` restricts flooding to an explicit port list instead of the
/// switch's `FLOOD` action. On loop-free testbeds it is `None` and floods
/// use plain `Output(FLOOD)`; on fabrics with cycles the controller passes
/// the switch's spanning-tree flood ports (tree trunks plus host-facing
/// ports) so a broadcast traverses each switch exactly once instead of
/// storming.
pub fn handle_table_miss(
    topology: &Topology,
    devices: &DeviceTable,
    dpid: DatapathId,
    in_port: PortNo,
    frame: &EthernetFrame,
    flood_scope: Option<&[PortNo]>,
) -> (Vec<(DatapathId, OfMessage)>, bool) {
    let data = frame.encode().to_vec();

    // Broadcast/multicast or unknown unicast: flood at the reporting switch.
    let dst_loc = if frame.dst.is_multicast() {
        None
    } else {
        devices.location_of(&frame.dst)
    };
    let Some(dst_loc) = dst_loc else {
        return (
            vec![(
                dpid,
                OfMessage::PacketOut {
                    in_port,
                    actions: flood_actions(in_port, flood_scope),
                    data,
                },
            )],
            true,
        );
    };

    // Known unicast: install the path and re-inject.
    let Some(path) = topology.shortest_path(dpid, dst_loc.dpid) else {
        // Destination tracked but unreachable in the link graph: flood.
        return (
            vec![(
                dpid,
                OfMessage::PacketOut {
                    in_port,
                    actions: flood_actions(in_port, flood_scope),
                    data,
                },
            )],
            true,
        );
    };

    let flow_match = FlowMatch::new()
        .with_eth_src(frame.src)
        .with_eth_dst(frame.dst);
    let mut msgs = Vec::new();

    // Egress rule at the destination switch.
    msgs.push((dst_loc.dpid, flow_mod(flow_match, dst_loc.port)));
    // Transit rules along the path.
    for hop in &path {
        msgs.push((hop.src.dpid, flow_mod(flow_match, hop.src.port)));
    }

    // Re-inject at the reporting switch toward the first hop (or straight
    // to the host if it is local).
    let out_port = path.first().map(|hop| hop.src.port).unwrap_or(dst_loc.port);
    msgs.push((
        dpid,
        OfMessage::PacketOut {
            in_port,
            actions: vec![Action::Output(out_port)],
            data,
        },
    ));
    (msgs, false)
}

/// The flood action list: the switch-native `FLOOD` port when unscoped, or
/// one explicit `Output` per scoped port (ascending, `in_port` excluded).
fn flood_actions(in_port: PortNo, flood_scope: Option<&[PortNo]>) -> Vec<Action> {
    match flood_scope {
        None => vec![Action::Output(PortNo::FLOOD)],
        Some(ports) => ports
            .iter()
            .filter(|p| **p != in_port)
            .map(|p| Action::Output(*p))
            .collect(),
    }
}

fn flow_mod(flow_match: FlowMatch, out: PortNo) -> OfMessage {
    OfMessage::FlowMod {
        command: FlowModCommand::Add,
        flow_match,
        priority: RULE_PRIORITY,
        idle_timeout_secs: RULE_IDLE_TIMEOUT_SECS,
        hard_timeout_secs: 0,
        actions: vec![Action::Output(out)],
        cookie: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::DirectedLink;
    use sdn_types::packet::Payload;
    use sdn_types::{IpAddr, MacAddr, SimTime, SwitchPort};

    fn sp(d: u64, p: u16) -> SwitchPort {
        SwitchPort::new(DatapathId::new(d), PortNo::new(p))
    }

    fn frame(src: u32, dst_mac: MacAddr) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::from_index(src),
            dst_mac,
            Payload::Opaque {
                ethertype: 0x1234,
                data: vec![],
            },
        )
    }

    fn line_topology() -> (Topology, DeviceTable) {
        let mut t = Topology::new();
        let now = SimTime::ZERO;
        t.observe(DirectedLink::new(sp(1, 2), sp(2, 1)), now, None);
        t.observe(DirectedLink::new(sp(2, 1), sp(1, 2)), now, None);
        t.observe(DirectedLink::new(sp(2, 2), sp(3, 1)), now, None);
        t.observe(DirectedLink::new(sp(3, 1), sp(2, 2)), now, None);
        let mut d = DeviceTable::new();
        d.commit(
            MacAddr::from_index(1),
            Some(IpAddr::new(10, 0, 0, 1)),
            sp(1, 1),
            now,
        );
        d.commit(
            MacAddr::from_index(2),
            Some(IpAddr::new(10, 0, 0, 2)),
            sp(3, 3),
            now,
        );
        (t, d)
    }

    #[test]
    fn broadcast_floods() {
        let (t, d) = line_topology();
        let (msgs, flooded) = handle_table_miss(
            &t,
            &d,
            DatapathId::new(1),
            PortNo::new(1),
            &frame(1, MacAddr::BROADCAST),
            None,
        );
        assert!(flooded);
        assert_eq!(msgs.len(), 1);
        assert!(matches!(&msgs[0].1, OfMessage::PacketOut { actions, .. }
            if actions == &vec![Action::Output(PortNo::FLOOD)]));
    }

    #[test]
    fn unknown_unicast_floods() {
        let (t, d) = line_topology();
        let (_, flooded) = handle_table_miss(
            &t,
            &d,
            DatapathId::new(1),
            PortNo::new(1),
            &frame(1, MacAddr::from_index(99)),
            None,
        );
        assert!(flooded);
    }

    #[test]
    fn known_unicast_installs_path_rules_and_reinjects() {
        let (t, d) = line_topology();
        let (msgs, flooded) = handle_table_miss(
            &t,
            &d,
            DatapathId::new(1),
            PortNo::new(1),
            &frame(1, MacAddr::from_index(2)),
            None,
        );
        assert!(!flooded);
        // Rules: egress at sw3 + transit at sw1, sw2; then one PacketOut.
        let flow_mods: Vec<&(DatapathId, OfMessage)> = msgs
            .iter()
            .filter(|(_, m)| matches!(m, OfMessage::FlowMod { .. }))
            .collect();
        assert_eq!(flow_mods.len(), 3);
        let targets: Vec<u64> = flow_mods.iter().map(|(d, _)| d.raw()).collect();
        assert!(targets.contains(&1) && targets.contains(&2) && targets.contains(&3));
        let packet_outs: Vec<&(DatapathId, OfMessage)> = msgs
            .iter()
            .filter(|(_, m)| matches!(m, OfMessage::PacketOut { .. }))
            .collect();
        assert_eq!(packet_outs.len(), 1);
        assert_eq!(packet_outs[0].0, DatapathId::new(1));
        // Re-injection must go toward sw2 (port 2 on sw1).
        if let OfMessage::PacketOut { actions, .. } = &packet_outs[0].1 {
            assert_eq!(actions, &vec![Action::Output(PortNo::new(2))]);
        }
    }

    #[test]
    fn same_switch_destination_outputs_directly() {
        let (t, mut d) = line_topology();
        d.commit(
            MacAddr::from_index(3),
            Some(IpAddr::new(10, 0, 0, 3)),
            sp(1, 4),
            SimTime::ZERO,
        );
        let (msgs, flooded) = handle_table_miss(
            &t,
            &d,
            DatapathId::new(1),
            PortNo::new(1),
            &frame(1, MacAddr::from_index(3)),
            None,
        );
        assert!(!flooded);
        if let Some((_, OfMessage::PacketOut { actions, .. })) = msgs.last() {
            assert_eq!(actions, &vec![Action::Output(PortNo::new(4))]);
        } else {
            panic!("last message must be the PacketOut");
        }
    }

    #[test]
    fn tracked_but_unreachable_floods() {
        let (mut t, d) = line_topology();
        // Cut the graph: remove links out of sw1.
        t.remove(&DirectedLink::new(sp(1, 2), sp(2, 1)));
        let (_, flooded) = handle_table_miss(
            &t,
            &d,
            DatapathId::new(1),
            PortNo::new(1),
            &frame(1, MacAddr::from_index(2)),
            None,
        );
        assert!(flooded);
    }

    #[test]
    fn scoped_flood_outputs_explicit_ports_minus_ingress() {
        let (t, d) = line_topology();
        let scope = vec![PortNo::new(1), PortNo::new(2), PortNo::new(3)];
        let (msgs, flooded) = handle_table_miss(
            &t,
            &d,
            DatapathId::new(1),
            PortNo::new(1),
            &frame(1, MacAddr::BROADCAST),
            Some(&scope),
        );
        assert!(flooded);
        assert_eq!(msgs.len(), 1);
        if let OfMessage::PacketOut { actions, .. } = &msgs[0].1 {
            assert_eq!(
                actions,
                &vec![
                    Action::Output(PortNo::new(2)),
                    Action::Output(PortNo::new(3)),
                ]
            );
        } else {
            panic!("expected a PacketOut");
        }
    }
}
