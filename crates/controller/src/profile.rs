//! Controller timing personalities (paper Table III).

use sdn_types::Duration;

/// The discovery/expiry timing profile of a controller implementation.
///
/// Table III of the paper:
///
/// | Controller   | Link Discovery Interval | Link Timeout |
/// |--------------|-------------------------|--------------|
/// | Floodlight   | 15 s                    | 35 s         |
/// | POX          | 5 s                     | 10 s         |
/// | OpenDaylight | 5 s                     | 15 s         |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControllerProfile {
    /// The personality's name.
    pub name: &'static str,
    /// How often LLDP probes are emitted on every port.
    pub link_discovery_interval: Duration,
    /// How long a link survives without being re-verified by LLDP.
    pub link_timeout: Duration,
}

impl ControllerProfile {
    /// Floodlight: 15 s discovery, 35 s timeout. The paper's testbed
    /// controller (and TopoGuard's host).
    pub const FLOODLIGHT: ControllerProfile = ControllerProfile {
        name: "Floodlight",
        link_discovery_interval: Duration::from_secs(15),
        link_timeout: Duration::from_secs(35),
    };

    /// POX: 5 s discovery, 10 s timeout.
    pub const POX: ControllerProfile = ControllerProfile {
        name: "POX",
        link_discovery_interval: Duration::from_secs(5),
        link_timeout: Duration::from_secs(10),
    };

    /// OpenDaylight: 5 s discovery, 15 s timeout.
    pub const OPENDAYLIGHT: ControllerProfile = ControllerProfile {
        name: "OpenDaylight",
        link_discovery_interval: Duration::from_secs(5),
        link_timeout: Duration::from_secs(15),
    };

    /// All profiles from Table III.
    pub const ALL: [ControllerProfile; 3] = [
        ControllerProfile::FLOODLIGHT,
        ControllerProfile::POX,
        ControllerProfile::OPENDAYLIGHT,
    ];

    /// The timeout-to-interval ratio the paper leans on in §VIII-A: every
    /// profile tolerates at least one missed LLDP round before expiring a
    /// link.
    pub fn timeout_interval_ratio(&self) -> f64 {
        self.link_timeout.as_nanos() as f64 / self.link_discovery_interval.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        assert_eq!(
            ControllerProfile::FLOODLIGHT.link_discovery_interval,
            Duration::from_secs(15)
        );
        assert_eq!(
            ControllerProfile::FLOODLIGHT.link_timeout,
            Duration::from_secs(35)
        );
        assert_eq!(
            ControllerProfile::POX.link_discovery_interval,
            Duration::from_secs(5)
        );
        assert_eq!(ControllerProfile::POX.link_timeout, Duration::from_secs(10));
        assert_eq!(
            ControllerProfile::OPENDAYLIGHT.link_discovery_interval,
            Duration::from_secs(5)
        );
        assert_eq!(
            ControllerProfile::OPENDAYLIGHT.link_timeout,
            Duration::from_secs(15)
        );
    }

    #[test]
    fn timeout_exceeds_interval_by_factor_2_to_3() {
        // §VIII-A: "the default link timeout value exceeds the LLDP probing
        // interval by a factor of 2-3".
        for p in ControllerProfile::ALL {
            let ratio = p.timeout_interval_ratio();
            assert!((2.0..=3.0).contains(&ratio), "{}: ratio {ratio}", p.name);
        }
    }
}
