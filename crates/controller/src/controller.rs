//! The [`SdnController`]: a Floodlight-style controller wired into
//! `netsim`, hosting the link-discovery, host-tracking, forwarding, and
//! latency services plus the defense-module pipeline.

use std::collections::BTreeMap;

use netsim::{ControllerCtx, ControllerLogic, TimerId};
use openflow::{Action, OfMessage, PortDesc, Xid};
use sdn_types::crypto::Key;
use sdn_types::packet::{EthernetFrame, Payload};
use sdn_types::{DatapathId, Duration, IpAddr, MacAddr, PortNo, SwitchPort};
use tm_telemetry::Telemetry;

use crate::alerts::AlertSink;
use crate::devices::{DeviceTable, Observation};
use crate::forwarding;
use crate::latency::CtrlLatencyTracker;
use crate::module::{
    Command, DefenseModule, LinkLatencySample, LldpReceive, ModuleCtx, PacketInCtx,
};
use crate::profile::ControllerProfile;
use crate::topology::{DirectedLink, Topology};

const TIMER_DISCOVERY: TimerId = TimerId(1);
const TIMER_ECHO: TimerId = TimerId(2);
const TIMER_TICK: TimerId = TimerId(3);
const TIMER_STATS: TimerId = TimerId(4);

/// How often modules receive `on_tick`.
const TICK_INTERVAL: Duration = Duration::from_millis(100);

/// Controller configuration.
#[derive(Clone, Copy, Debug)]
pub struct ControllerConfig {
    /// Timing personality (Table III).
    pub profile: ControllerProfile,
    /// Sign LLDP packets (TopoGuard authenticated LLDP).
    pub sign_lldp: bool,
    /// Embed encrypted departure timestamps in LLDP (TopoGuard+ LLI).
    pub timestamp_lldp: bool,
    /// The controller-owned key for signing/sealing.
    pub lldp_key: Key,
    /// Enable reactive shortest-path forwarding.
    pub forwarding: bool,
    /// Poll control-link latency with echoes at this interval.
    pub echo_interval: Option<Duration>,
    /// Poll switch flow/port statistics at this interval (SPHINX).
    pub stats_interval: Option<Duration>,
    /// Delay before the first LLDP round after startup.
    pub first_discovery_delay: Duration,
    /// Suppress host learning until this long after startup. Floodlight
    /// gates its DeviceManager on topology readiness for the same reason:
    /// before the first discovery round, flooded broadcasts produce
    /// PacketIns at inter-switch ports that are not yet known to be
    /// infrastructure, and naive learning would register phantom host
    /// migrations along the flood path.
    pub host_learning_after: Duration,
    /// Scope dataplane floods to a spanning tree of the discovered topology
    /// instead of the switch-native `FLOOD` action. Required on fabrics
    /// with physical cycles (fat-tree, ring, multi-core core–edge), where a
    /// per-switch re-flood would otherwise storm; off by default so the
    /// loop-free paper testbeds keep their original traces.
    pub tree_scoped_flood: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            profile: ControllerProfile::FLOODLIGHT,
            sign_lldp: false,
            timestamp_lldp: false,
            lldp_key: Key::from_seed(0xC0FF_EE00),
            forwarding: true,
            echo_interval: None,
            stats_interval: None,
            first_discovery_delay: Duration::from_millis(100),
            host_learning_after: Duration::from_millis(300),
            tree_scoped_flood: false,
        }
    }
}

/// The controller.
pub struct SdnController {
    config: ControllerConfig,
    topology: Topology,
    devices: DeviceTable,
    latency: CtrlLatencyTracker,
    alerts: AlertSink,
    modules: Vec<Box<dyn DefenseModule>>,
    switch_ports: BTreeMap<DatapathId, Vec<PortDesc>>,
    next_xid: u64,
    /// The run's metrics handle; disabled until `on_start` clones the
    /// simulation-wide handle out of the context.
    telemetry: Telemetry,
    /// Count of LLDP probes emitted (diagnostics / Table II workload).
    pub lldp_emitted: u64,
    /// Count of LLDP packets received (diagnostics).
    pub lldp_received: u64,
    /// Count of dataplane PacketIns processed (diagnostics).
    pub packet_ins: u64,
}

impl SdnController {
    /// Creates a controller with the given configuration and no modules.
    pub fn new(config: ControllerConfig) -> Self {
        SdnController {
            config,
            topology: Topology::new(),
            devices: DeviceTable::new(),
            latency: CtrlLatencyTracker::new(),
            alerts: AlertSink::new(),
            modules: Vec::new(),
            switch_ports: BTreeMap::new(),
            next_xid: 1,
            telemetry: Telemetry::disabled(),
            lldp_emitted: 0,
            lldp_received: 0,
            packet_ins: 0,
        }
    }

    /// Adds a defense module to the end of the pipeline.
    pub fn add_module(&mut self, module: Box<dyn DefenseModule>) -> &mut Self {
        self.modules.push(module);
        self
    }

    /// Builder-style module addition.
    pub fn with_module(mut self, module: Box<dyn DefenseModule>) -> Self {
        self.modules.push(module);
        self
    }

    /// The configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The link table.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The host-tracking table.
    pub fn devices(&self) -> &DeviceTable {
        &self.devices
    }

    /// Control-link latency estimates.
    pub fn latency(&self) -> &CtrlLatencyTracker {
        &self.latency
    }

    /// The alert sink.
    pub fn alerts(&self) -> &AlertSink {
        &self.alerts
    }

    /// Mutable alert sink (for clearing between scenario phases).
    pub fn alerts_mut(&mut self) -> &mut AlertSink {
        &mut self.alerts
    }

    /// Downcasts a module by type.
    pub fn module_as<T: 'static>(&self) -> Option<&T> {
        self.modules
            .iter()
            .find_map(|m| m.as_any().downcast_ref::<T>())
    }

    /// Downcasts a module by type, mutably.
    pub fn module_as_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.modules
            .iter_mut()
            .find_map(|m| m.as_any_mut().downcast_mut::<T>())
    }

    fn fresh_xid(&mut self) -> Xid {
        let xid = Xid(self.next_xid);
        self.next_xid += 1;
        xid
    }

    /// Runs `f` over every module with a [`ModuleCtx`], sends any messages
    /// modules queued, and returns `Command::Block` if any module blocked.
    fn module_pass(
        &mut self,
        ctx: &mut ControllerCtx<'_>,
        mut f: impl FnMut(&mut dyn DefenseModule, &mut ModuleCtx<'_>) -> Command,
    ) -> Command {
        let mut modules = std::mem::take(&mut self.modules);
        let mut outbox: Vec<(DatapathId, OfMessage)> = Vec::new();
        let mut verdict = Command::Continue;
        for module in modules.iter_mut() {
            let mut mcx = ModuleCtx {
                now: ctx.now(),
                alerts: &mut self.alerts,
                topology: &self.topology,
                devices: &self.devices,
                latency: &self.latency,
                lldp_key: self.config.lldp_key,
                telemetry: &self.telemetry,
                outbox: &mut outbox,
            };
            if f(module.as_mut(), &mut mcx) == Command::Block {
                verdict = Command::Block;
            }
        }
        self.modules = modules;
        for (dpid, msg) in outbox {
            ctx.send(dpid, msg);
        }
        verdict
    }

    /// The ports on `dpid` a scoped flood may use: every up physical port
    /// that is either host-facing (not on any discovered link) or a trunk on
    /// the spanning tree of the discovered topology. Ascending port order,
    /// so flood fan-out is deterministic.
    fn tree_flood_ports(&self, dpid: DatapathId) -> Vec<PortNo> {
        let tree = self.topology.spanning_tree();
        self.switch_ports
            .get(&dpid)
            .map(|ports| {
                ports
                    .iter()
                    .filter(|p| p.port_no.is_physical() && p.is_up())
                    .map(|p| p.port_no)
                    .filter(|port| {
                        let sp = SwitchPort::new(dpid, *port);
                        !self.topology.is_infrastructure_port(sp) || tree.contains(&sp)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn emit_lldp_round(&mut self, ctx: &mut ControllerCtx<'_>) {
        let now = ctx.now();
        self.telemetry.counter_inc("controller.discovery.rounds");
        let targets: Vec<(DatapathId, PortDesc)> = self
            .switch_ports
            .iter()
            .flat_map(|(dpid, ports)| {
                ports
                    .iter()
                    .filter(|p| p.port_no.is_physical() && p.is_up())
                    .map(|p| (*dpid, *p))
            })
            .collect();
        for (dpid, port) in targets {
            let mut lldp = sdn_types::packet::LldpPacket::new(dpid, port.port_no);
            if self.config.timestamp_lldp {
                lldp = lldp.with_timestamp(self.config.lldp_key, now);
            }
            if self.config.sign_lldp {
                lldp = lldp.signed(self.config.lldp_key);
            }
            let frame =
                EthernetFrame::new(port.hw_addr, MacAddr::LLDP_MULTICAST, Payload::Lldp(lldp));
            self.module_pass(ctx, |m, cx| {
                m.on_lldp_emit(cx, dpid, port.port_no);
                Command::Continue
            });
            ctx.send(
                dpid,
                OfMessage::PacketOut {
                    in_port: PortNo::NONE,
                    actions: vec![Action::Output(port.port_no)],
                    data: frame.encode().to_vec(),
                },
            );
            self.lldp_emitted += 1;
            self.telemetry.counter_inc("controller.lldp.emitted");
        }

        // Link expiry shares the discovery cadence.
        let expired = self.topology.expire(now, self.config.profile.link_timeout);
        self.telemetry
            .counter_add("controller.topology.links_expired", expired.len() as u64);
        for link in expired {
            self.module_pass(ctx, |m, cx| {
                m.on_link_removed(cx, link);
                Command::Continue
            });
        }
    }

    fn handle_lldp_in(
        &mut self,
        ctx: &mut ControllerCtx<'_>,
        dpid: DatapathId,
        in_port: PortNo,
        frame: &EthernetFrame,
    ) {
        let Some(lldp) = frame.lldp() else { return };
        self.lldp_received += 1;
        self.telemetry.counter_inc("controller.lldp.received");
        let now = ctx.now();
        let src = SwitchPort::new(lldp.dpid, lldp.port);
        let dst = SwitchPort::new(dpid, in_port);

        let signature_valid = if self.config.sign_lldp {
            Some(lldp.verify(self.config.lldp_key))
        } else {
            None
        };

        let sample = if self.config.timestamp_lldp {
            lldp.open_timestamp(self.config.lldp_key)
                .map(|departure| LinkLatencySample {
                    t_lldp: now.since(departure),
                    t_sw_src: self.latency.one_way(src.dpid),
                    t_sw_dst: self.latency.one_way(dpid),
                })
        } else {
            None
        };

        let receive = LldpReceive {
            lldp,
            src,
            dst,
            at: now,
            signature_valid,
            sample,
        };
        if self.module_pass(ctx, |m, cx| m.on_lldp_receive(cx, &receive)) == Command::Block {
            self.telemetry.counter_inc("controller.lldp.blocked");
            return;
        }

        // Core Floodlight behaviour: unsigned-mode controllers accept any
        // LLDP; signed-mode controllers drop invalid signatures silently
        // (TopoGuard raises the alert).
        if signature_valid == Some(false) {
            self.telemetry.counter_inc("controller.lldp.sig_invalid");
            return;
        }

        let link = DirectedLink::new(src, dst);
        let is_new = self.topology.get(&link).is_none();
        let latency_ms = sample.and_then(|s| s.link_latency_ms());
        if self.module_pass(ctx, |m, cx| m.on_link_update(cx, link, is_new, sample))
            == Command::Block
        {
            self.telemetry.counter_inc("controller.link_update.blocked");
            return;
        }
        if is_new {
            self.telemetry.counter_inc("controller.topology.links_new");
        }
        self.topology.observe(link, now, latency_ms);
    }

    fn handle_dataplane_in(
        &mut self,
        ctx: &mut ControllerCtx<'_>,
        dpid: DatapathId,
        in_port: PortNo,
        frame: &EthernetFrame,
    ) {
        let now = ctx.now();
        let location = SwitchPort::new(dpid, in_port);

        // Host tracking: learn/refresh/move from the source header, unless
        // the source is multicast, the port is infrastructure, or topology
        // discovery has not completed its first round yet.
        let learning_active = now.as_nanos() >= self.config.host_learning_after.as_nanos();
        if learning_active
            && frame.src.is_unicast()
            && !self.topology.is_infrastructure_port(location)
        {
            let ip = extract_src_ip(frame);
            match self.devices.classify(frame.src, ip, location, now) {
                Observation::New => {
                    self.telemetry.counter_inc("controller.host.new");
                    self.devices.commit(frame.src, ip, location, now);
                    self.module_pass(ctx, |m, cx| {
                        m.on_host_new(cx, frame.src, ip, location);
                        Command::Continue
                    });
                }
                Observation::Refresh => {
                    self.devices.commit(frame.src, ip, location, now);
                }
                Observation::Moved(mv) => {
                    self.telemetry.counter_inc("controller.host.moves");
                    let verdict = self.module_pass(ctx, |m, cx| m.on_host_move(cx, &mv));
                    if verdict == Command::Block {
                        self.telemetry.counter_inc("controller.host.moves_blocked");
                    }
                    if verdict == Command::Continue {
                        self.devices.commit(frame.src, ip, location, now);
                        // Stale rules still point at the old attachment:
                        // flush flows touching the moved MAC everywhere, as
                        // Floodlight's Forwarding module does on deviceMoved.
                        let dpids: Vec<DatapathId> = self.switch_ports.keys().copied().collect();
                        for target in dpids {
                            for pattern in [
                                openflow::FlowMatch::new().with_eth_dst(frame.src),
                                openflow::FlowMatch::new().with_eth_src(frame.src),
                            ] {
                                ctx.send(
                                    target,
                                    OfMessage::FlowMod {
                                        command: openflow::FlowModCommand::Delete,
                                        flow_match: pattern,
                                        priority: 0,
                                        idle_timeout_secs: 0,
                                        hard_timeout_secs: 0,
                                        actions: vec![],
                                        cookie: 0,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }

        // Reactive forwarding.
        if self.config.forwarding {
            let scope = if self.config.tree_scoped_flood {
                Some(self.tree_flood_ports(dpid))
            } else {
                None
            };
            let (msgs, _flooded) = forwarding::handle_table_miss(
                &self.topology,
                &self.devices,
                dpid,
                in_port,
                frame,
                scope.as_deref(),
            );
            for (target, msg) in msgs {
                if matches!(msg, OfMessage::FlowMod { .. }) {
                    self.module_pass(ctx, |m, cx| {
                        m.on_flow_mod(cx, target, &msg);
                        Command::Continue
                    });
                }
                ctx.send(target, msg);
            }
        }
    }
}

fn extract_src_ip(frame: &EthernetFrame) -> Option<IpAddr> {
    match &frame.payload {
        Payload::Ipv4(ip) => Some(ip.src),
        Payload::Arp(arp) => Some(arp.sender_ip),
        _ => None,
    }
}

impl ControllerLogic for SdnController {
    fn on_start(&mut self, ctx: &mut ControllerCtx<'_>) {
        self.telemetry = ctx.telemetry();
        ctx.set_timer(self.config.first_discovery_delay, TIMER_DISCOVERY);
        ctx.set_timer(TICK_INTERVAL, TIMER_TICK);
        if let Some(interval) = self.config.echo_interval {
            // First echoes early so T_SW estimates exist before discovery.
            ctx.set_timer(interval.div(4).max(Duration::from_millis(10)), TIMER_ECHO);
        }
        if let Some(interval) = self.config.stats_interval {
            ctx.set_timer(interval, TIMER_STATS);
        }
    }

    fn on_message(&mut self, ctx: &mut ControllerCtx<'_>, dpid: DatapathId, msg: OfMessage) {
        match msg {
            OfMessage::Hello => {}
            OfMessage::FeaturesReply { dpid, ports } => {
                self.switch_ports.insert(dpid, ports);
                // Prime the control-link latency estimate immediately on
                // connect so LLDP latency samples are available from the
                // first discovery round.
                if self.config.echo_interval.is_some() {
                    let now = ctx.now();
                    for _ in 0..crate::latency::SAMPLES_AVERAGED {
                        let xid = self.fresh_xid();
                        self.latency.echo_sent(xid.0, dpid, now);
                        ctx.send(dpid, OfMessage::EchoRequest { xid, payload: 0 });
                    }
                }
            }
            OfMessage::PortStatus { reason, desc, .. } => {
                if let Some(ports) = self.switch_ports.get_mut(&dpid) {
                    match ports.iter_mut().find(|p| p.port_no == desc.port_no) {
                        Some(p) => *p = desc,
                        None => ports.push(desc),
                    }
                }
                self.module_pass(ctx, |m, cx| {
                    m.on_port_status(cx, dpid, &desc, reason);
                    Command::Continue
                });
                // A deleted/downed port invalidates host bindings slowly via
                // natural relearning; Floodlight keeps bindings (which is
                // exactly the race Port Probing exploits).
                let _ = reason;
            }
            OfMessage::PacketIn { in_port, data, .. } => {
                let Ok(frame) = EthernetFrame::parse(&data) else {
                    self.telemetry
                        .counter_inc("controller.packet_in.unparseable");
                    return;
                };
                self.packet_ins += 1;
                self.telemetry.counter_inc("controller.packet_in.total");
                let pin = PacketInCtx {
                    dpid,
                    in_port,
                    frame: &frame,
                    at: ctx.now(),
                };
                if self.module_pass(ctx, |m, cx| m.on_packet_in(cx, &pin)) == Command::Block {
                    return;
                }
                if frame.is_lldp() {
                    self.handle_lldp_in(ctx, dpid, in_port, &frame);
                } else {
                    self.handle_dataplane_in(ctx, dpid, in_port, &frame);
                }
            }
            OfMessage::EchoReply { xid, .. } => {
                if let Some(rtt) = self.latency.echo_received(xid.0, ctx.now()) {
                    self.telemetry.counter_inc("controller.echo.replies");
                    self.telemetry
                        .observe_duration("controller.echo.rtt_ns", rtt);
                }
            }
            OfMessage::FlowStatsReply { flows, .. } => {
                self.module_pass(ctx, |m, cx| {
                    m.on_flow_stats(cx, dpid, &flows);
                    Command::Continue
                });
            }
            OfMessage::PortStatsReply { ports, .. } => {
                self.module_pass(ctx, |m, cx| {
                    m.on_port_stats(cx, dpid, &ports);
                    Command::Continue
                });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut ControllerCtx<'_>, id: TimerId) {
        match id {
            TIMER_DISCOVERY => {
                self.emit_lldp_round(ctx);
                ctx.set_timer(self.config.profile.link_discovery_interval, TIMER_DISCOVERY);
            }
            TIMER_ECHO => {
                let dpids: Vec<DatapathId> = self.switch_ports.keys().copied().collect();
                let now = ctx.now();
                // An echo whose reply is lost or reordered would otherwise
                // stay in the outstanding map forever; drop anything older
                // than several echo intervals before sending the next batch.
                if let Some(interval) = self.config.echo_interval {
                    let horizon = interval.mul(8).max(Duration::from_secs(1));
                    let pruned = self.latency.prune_stale(now, horizon);
                    self.telemetry
                        .counter_add("controller.echo.pruned", pruned as u64);
                }
                for dpid in dpids {
                    let xid = self.fresh_xid();
                    self.latency.echo_sent(xid.0, dpid, now);
                    self.telemetry.counter_inc("controller.echo.sent");
                    ctx.send(dpid, OfMessage::EchoRequest { xid, payload: 0 });
                }
                if let Some(interval) = self.config.echo_interval {
                    ctx.set_timer(interval, TIMER_ECHO);
                }
            }
            TIMER_TICK => {
                self.module_pass(ctx, |m, cx| {
                    m.on_tick(cx);
                    Command::Continue
                });
                ctx.set_timer(TICK_INTERVAL, TIMER_TICK);
            }
            TIMER_STATS => {
                let dpids: Vec<DatapathId> = self.switch_ports.keys().copied().collect();
                for dpid in dpids {
                    let xid = self.fresh_xid();
                    ctx.send(dpid, OfMessage::FlowStatsRequest { xid });
                    let xid = self.fresh_xid();
                    ctx.send(dpid, OfMessage::PortStatsRequest { xid });
                }
                if let Some(interval) = self.config.stats_interval {
                    ctx.set_timer(interval, TIMER_STATS);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
