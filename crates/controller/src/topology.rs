//! The controller's topology view: directed switch-to-switch links inferred
//! from LLDP, with refresh/expiry and shortest-path search.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sdn_types::{DatapathId, Duration, PortNo, SimTime, SwitchPort};

/// A directed link from one switch port to another, as inferred from one
/// LLDP traversal (probe emitted at `src`, received at `dst`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DirectedLink {
    /// The emitting switch port.
    pub src: SwitchPort,
    /// The receiving switch port.
    pub dst: SwitchPort,
}

impl DirectedLink {
    /// Creates a link.
    pub fn new(src: SwitchPort, dst: SwitchPort) -> Self {
        DirectedLink { src, dst }
    }

    /// The same link in the opposite direction.
    pub fn reversed(&self) -> DirectedLink {
        DirectedLink {
            src: self.dst,
            dst: self.src,
        }
    }
}

/// Per-link state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkState {
    /// When the link was first inferred.
    pub first_seen: SimTime,
    /// When the link was last re-verified by LLDP.
    pub last_seen: SimTime,
    /// The most recent latency estimate, if LLDP timestamping is enabled
    /// (milliseconds).
    pub last_latency_ms: Option<f64>,
}

/// The link table.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    links: BTreeMap<DirectedLink, LinkState>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Records (or refreshes) a link observation. Returns `true` if the
    /// link is new.
    pub fn observe(&mut self, link: DirectedLink, now: SimTime, latency_ms: Option<f64>) -> bool {
        match self.links.get_mut(&link) {
            Some(state) => {
                state.last_seen = now;
                if latency_ms.is_some() {
                    state.last_latency_ms = latency_ms;
                }
                false
            }
            None => {
                self.links.insert(
                    link,
                    LinkState {
                        first_seen: now,
                        last_seen: now,
                        last_latency_ms: latency_ms,
                    },
                );
                true
            }
        }
    }

    /// Removes a link explicitly. Returns `true` if it existed.
    pub fn remove(&mut self, link: &DirectedLink) -> bool {
        self.links.remove(link).is_some()
    }

    /// Expires links not re-verified within `timeout`, returning them.
    pub fn expire(&mut self, now: SimTime, timeout: Duration) -> Vec<DirectedLink> {
        let expired: Vec<DirectedLink> = self
            .links
            .iter()
            .filter(|(_, s)| now.since(s.last_seen) >= timeout)
            .map(|(l, _)| *l)
            .collect();
        for l in &expired {
            self.links.remove(l);
        }
        expired
    }

    /// Number of directed links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if no links are known.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Looks up a link's state.
    pub fn get(&self, link: &DirectedLink) -> Option<&LinkState> {
        self.links.get(link)
    }

    /// Returns `true` if the link is currently known.
    pub fn contains(&self, link: &DirectedLink) -> bool {
        self.links.contains_key(&link.clone())
    }

    /// Iterates all links.
    pub fn links(&self) -> impl Iterator<Item = (&DirectedLink, &LinkState)> {
        self.links.iter()
    }

    /// Returns `true` if `port` is an endpoint of any known link — an
    /// "infrastructure port" from which host learning is suppressed.
    pub fn is_infrastructure_port(&self, port: SwitchPort) -> bool {
        self.links.keys().any(|l| l.src == port || l.dst == port)
    }

    /// Shortest path (by hop count, BFS) from switch `from` to switch `to`.
    ///
    /// Returns the sequence of directed links to traverse; empty if
    /// `from == to`; `None` if unreachable.
    pub fn shortest_path(&self, from: DatapathId, to: DatapathId) -> Option<Vec<DirectedLink>> {
        if from == to {
            return Some(Vec::new());
        }
        // Adjacency: dpid -> outgoing links.
        let mut adj: BTreeMap<DatapathId, Vec<DirectedLink>> = BTreeMap::new();
        for link in self.links.keys() {
            adj.entry(link.src.dpid).or_default().push(*link);
        }
        let mut prev: BTreeMap<DatapathId, DirectedLink> = BTreeMap::new();
        let mut visited: BTreeSet<DatapathId> = BTreeSet::new();
        let mut queue = VecDeque::new();
        visited.insert(from);
        queue.push_back(from);
        while let Some(node) = queue.pop_front() {
            if node == to {
                // Reconstruct.
                let mut path = Vec::new();
                let mut cur = to;
                while cur != from {
                    debug_assert!(prev.contains_key(&cur), "BFS recorded a predecessor");
                    let link = prev[&cur];
                    path.push(link);
                    cur = link.src.dpid;
                }
                path.reverse();
                return Some(path);
            }
            if let Some(out) = adj.get(&node) {
                for link in out {
                    let next = link.dst.dpid;
                    if visited.insert(next) {
                        prev.insert(next, *link);
                        queue.push_back(next);
                    }
                }
            }
        }
        None
    }

    /// The output port on `dpid` toward a destination switch, following the
    /// shortest path. `None` if unreachable.
    pub fn next_hop_port(&self, dpid: DatapathId, to: DatapathId) -> Option<PortNo> {
        let path = self.shortest_path(dpid, to)?;
        path.first().map(|l| l.src.port)
    }

    /// The set of switch ports on a deterministic BFS spanning tree of the
    /// switch graph (one tree per connected component, rooted at the
    /// component's smallest dpid, neighbors explored in link order).
    ///
    /// Flooding scoped to these trunk ports — plus any port not on a known
    /// link — delivers a broadcast to every switch exactly once even when
    /// the physical fabric has cycles (fat-tree, ring), which is how real
    /// controllers avoid broadcast storms without STP on the switches.
    pub fn spanning_tree(&self) -> BTreeSet<SwitchPort> {
        // Undirected adjacency: dpid -> links out of it (either direction).
        let mut adj: BTreeMap<DatapathId, Vec<DirectedLink>> = BTreeMap::new();
        for link in self.links.keys() {
            adj.entry(link.src.dpid).or_default().push(*link);
            adj.entry(link.dst.dpid).or_default().push(link.reversed());
        }
        let mut tree: BTreeSet<SwitchPort> = BTreeSet::new();
        let mut visited: BTreeSet<DatapathId> = BTreeSet::new();
        let roots: Vec<DatapathId> = adj.keys().copied().collect();
        for root in roots {
            if visited.contains(&root) {
                continue;
            }
            visited.insert(root);
            let mut queue = VecDeque::new();
            queue.push_back(root);
            while let Some(node) = queue.pop_front() {
                if let Some(out) = adj.get(&node) {
                    for link in out {
                        if visited.insert(link.dst.dpid) {
                            tree.insert(link.src);
                            tree.insert(link.dst);
                            queue.push_back(link.dst.dpid);
                        }
                    }
                }
            }
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(d: u64, p: u16) -> SwitchPort {
        SwitchPort::new(DatapathId::new(d), PortNo::new(p))
    }

    fn link(a: (u64, u16), b: (u64, u16)) -> DirectedLink {
        DirectedLink::new(sp(a.0, a.1), sp(b.0, b.1))
    }

    /// A 3-switch line: 1 <-> 2 <-> 3 (both directions).
    fn line() -> Topology {
        let mut t = Topology::new();
        let now = SimTime::ZERO;
        t.observe(link((1, 2), (2, 1)), now, None);
        t.observe(link((2, 1), (1, 2)), now, None);
        t.observe(link((2, 2), (3, 1)), now, None);
        t.observe(link((3, 1), (2, 2)), now, None);
        t
    }

    #[test]
    fn observe_and_refresh() {
        let mut t = Topology::new();
        let l = link((1, 1), (2, 1));
        assert!(t.observe(l, SimTime::from_secs(1), Some(5.0)));
        assert!(!t.observe(l, SimTime::from_secs(2), None));
        let state = t.get(&l).unwrap();
        assert_eq!(state.first_seen, SimTime::from_secs(1));
        assert_eq!(state.last_seen, SimTime::from_secs(2));
        assert_eq!(state.last_latency_ms, Some(5.0), "latency retained");
    }

    #[test]
    fn expiry_follows_last_seen() {
        let mut t = Topology::new();
        let l1 = link((1, 1), (2, 1));
        let l2 = link((2, 1), (1, 1));
        t.observe(l1, SimTime::from_secs(0), None);
        t.observe(l2, SimTime::from_secs(0), None);
        t.observe(l1, SimTime::from_secs(20), None); // refresh only l1
        let expired = t.expire(SimTime::from_secs(35), Duration::from_secs(35));
        assert_eq!(expired, vec![l2]);
        assert!(t.contains(&l1));
    }

    #[test]
    fn infrastructure_ports() {
        let t = line();
        assert!(t.is_infrastructure_port(sp(1, 2)));
        assert!(t.is_infrastructure_port(sp(2, 1)));
        assert!(!t.is_infrastructure_port(sp(1, 1)));
    }

    #[test]
    fn shortest_path_on_line() {
        let t = line();
        let path = t
            .shortest_path(DatapathId::new(1), DatapathId::new(3))
            .unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0], link((1, 2), (2, 1)));
        assert_eq!(path[1], link((2, 2), (3, 1)));
        assert_eq!(
            t.next_hop_port(DatapathId::new(1), DatapathId::new(3)),
            Some(PortNo::new(2))
        );
    }

    #[test]
    fn path_to_self_is_empty() {
        let t = line();
        assert_eq!(
            t.shortest_path(DatapathId::new(2), DatapathId::new(2)),
            Some(vec![])
        );
    }

    #[test]
    fn unreachable_is_none() {
        let t = line();
        assert_eq!(
            t.shortest_path(DatapathId::new(1), DatapathId::new(9)),
            None
        );
    }

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        // Diamond: 1->2->4, 1->3->4, plus direct 1->4.
        let mut t = Topology::new();
        let now = SimTime::ZERO;
        t.observe(link((1, 1), (2, 1)), now, None);
        t.observe(link((2, 2), (4, 1)), now, None);
        t.observe(link((1, 2), (3, 1)), now, None);
        t.observe(link((3, 2), (4, 2)), now, None);
        t.observe(link((1, 3), (4, 3)), now, None);
        let path = t
            .shortest_path(DatapathId::new(1), DatapathId::new(4))
            .unwrap();
        assert_eq!(path.len(), 1);
        assert_eq!(path[0], link((1, 3), (4, 3)));
    }

    #[test]
    fn remove_is_directional() {
        let mut t = line();
        assert!(t.remove(&link((1, 2), (2, 1))));
        assert!(!t.contains(&link((1, 2), (2, 1))));
        assert!(t.contains(&link((2, 1), (1, 2))));
    }

    #[test]
    fn spanning_tree_breaks_the_ring() {
        // 4-switch ring: 1-2-3-4-1, both directions on every trunk.
        let mut t = Topology::new();
        let now = SimTime::ZERO;
        for (a, b) in [
            ((1, 2), (2, 1)),
            ((2, 2), (3, 1)),
            ((3, 2), (4, 1)),
            ((4, 2), (1, 1)),
        ] {
            t.observe(link(a, b), now, None);
            t.observe(link(b, a), now, None);
        }
        let tree = t.spanning_tree();
        // A spanning tree of 4 nodes has 3 edges = 6 trunk ports; exactly
        // one ring segment (2 ports) is excluded.
        assert_eq!(tree.len(), 6, "{tree:?}");
        // Every switch is on the tree.
        let dpids: BTreeSet<u64> = tree.iter().map(|p| p.dpid.raw()).collect();
        assert_eq!(dpids, BTreeSet::from([1, 2, 3, 4]));
        // Deterministic: recomputing yields the same tree.
        assert_eq!(t.spanning_tree(), tree);
    }

    #[test]
    fn spanning_tree_of_a_line_keeps_every_trunk() {
        let t = line();
        let tree = t.spanning_tree();
        assert_eq!(
            tree,
            BTreeSet::from([sp(1, 2), sp(2, 1), sp(2, 2), sp(3, 1)])
        );
    }
}
