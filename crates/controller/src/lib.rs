//! A Floodlight-style SDN controller core.
//!
//! [`SdnController`] implements [`netsim::ControllerLogic`] and provides the
//! services the paper's attacks target and its defenses extend:
//!
//! * **Link Discovery** ([`topology`]) — the three-phase LLDP cycle
//!   (§III-A1): `PacketOut` LLDP probes on every switch port at the
//!   profile's discovery interval, link inference from the resulting
//!   `PacketIn`s, and expiry at the profile's link timeout (Table III).
//! * **Host Tracking** ([`devices`]) — the HTS that binds `(MAC, IP)` to a
//!   `(switch, port)` location from `PacketIn` source headers, registering
//!   migrations when a known identifier appears at a new location (§III-A2)
//!   — the state Host Location Hijacking poisons.
//! * **Reactive forwarding** ([`forwarding`]) — shortest-path rule
//!   installation over the discovered topology.
//! * **Control-link latency tracking** ([`latency`]) — OpenFlow echo RTTs,
//!   averaged over the last three measurements (TopoGuard+'s `T_SW`).
//! * A **defense-module pipeline** ([`module`]) — TopoGuard, TopoGuard+ and
//!   SPHINX (separate crates) observe every event and may veto topology
//!   updates. Alerts land in a shared [`AlertSink`].
//!
//! Controller personalities (Floodlight / POX / OpenDaylight timing
//! profiles) are in [`profile`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alerts;
mod controller;
pub mod devices;
pub mod forwarding;
pub mod latency;
pub mod module;
pub mod profile;
pub mod test_support;
pub mod topology;

pub use alerts::{Alert, AlertKind, AlertSink};
pub use controller::{ControllerConfig, SdnController};
pub use devices::{Device, DeviceTable, HostMove};
pub use latency::CtrlLatencyTracker;
pub use module::{Command, DefenseModule, LinkLatencySample, LldpReceive, ModuleCtx, PacketInCtx};
pub use profile::ControllerProfile;
pub use topology::{DirectedLink, LinkState, Topology};
