//! Test support: drive a [`DefenseModule`](crate::DefenseModule) directly,
//! without a simulator or controller.
//!
//! Intended for unit tests of defense logic (and used by the `topoguard`
//! and `sphinx` test suites); not part of the stable API surface.

use openflow::OfMessage;
use sdn_types::crypto::Key;
use sdn_types::{DatapathId, SimTime};
use tm_telemetry::Telemetry;

use crate::alerts::AlertSink;
use crate::devices::DeviceTable;
use crate::latency::CtrlLatencyTracker;
use crate::module::ModuleCtx;
use crate::topology::Topology;

/// Owns the state a [`ModuleCtx`] borrows, so tests can create contexts at
/// successive timestamps and inspect alerts/outbox in between.
pub struct ModuleHarness {
    /// The alert sink modules raise into.
    pub alerts: AlertSink,
    /// The topology view modules read.
    pub topology: Topology,
    /// The device table modules read.
    pub devices: DeviceTable,
    /// Control-link latency estimates modules read.
    pub latency: CtrlLatencyTracker,
    /// Messages modules queued via [`ModuleCtx::send`].
    pub outbox: Vec<(DatapathId, OfMessage)>,
    /// The controller key handed to modules.
    pub key: Key,
    /// Metrics handle handed to modules (enabled, so tests can assert on
    /// published counters).
    pub telemetry: Telemetry,
}

impl Default for ModuleHarness {
    fn default() -> Self {
        ModuleHarness::new()
    }
}

impl ModuleHarness {
    /// Creates an empty harness with a fixed test key.
    pub fn new() -> Self {
        ModuleHarness {
            alerts: AlertSink::new(),
            topology: Topology::new(),
            devices: DeviceTable::new(),
            latency: CtrlLatencyTracker::new(),
            outbox: Vec::new(),
            key: Key::from_seed(0xBEEF),
            telemetry: Telemetry::new(),
        }
    }

    /// Produces a context at `now`, borrowing the harness state.
    pub fn ctx(&mut self, now: SimTime) -> ModuleCtx<'_> {
        ModuleCtx {
            now,
            alerts: &mut self.alerts,
            topology: &self.topology,
            devices: &self.devices,
            latency: &self.latency,
            lldp_key: self.key,
            telemetry: &self.telemetry,
            outbox: &mut self.outbox,
        }
    }
}
