//! The Host Tracking Service (DeviceManager).
//!
//! Binds host identifiers (MAC, and the IPs seen with it) to a network
//! location `(switch, port)`, learned from `PacketIn` source headers
//! (§III-A2). A known MAC appearing at a new location registers a
//! *migration* — the transition Host Location Hijacking forges and Port
//! Probing times.

use std::collections::{BTreeMap, BTreeSet};

use sdn_types::{IpAddr, MacAddr, SimTime, SwitchPort};

/// One tracked end host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Device {
    /// The host's MAC address (the primary key).
    pub mac: MacAddr,
    /// IP addresses observed with this MAC.
    pub ips: BTreeSet<IpAddr>,
    /// Current location.
    pub location: SwitchPort,
    /// When the device was first seen.
    pub first_seen: SimTime,
    /// When the device last originated a packet.
    pub last_seen: SimTime,
    /// Number of registered migrations.
    pub move_count: u64,
}

/// A registered (or attempted) host migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostMove {
    /// The migrating MAC.
    pub mac: MacAddr,
    /// The IP observed in the triggering packet, if any.
    pub ip: Option<IpAddr>,
    /// Where the HTS believed the host was.
    pub from: SwitchPort,
    /// Where the host has appeared.
    pub to: SwitchPort,
    /// When the triggering packet arrived.
    pub at: SimTime,
}

/// The result of offering a packet observation to the table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Observation {
    /// A brand-new device was learned.
    New,
    /// An existing device was refreshed at its known location.
    Refresh,
    /// An existing device appeared at a different location.
    Moved(HostMove),
}

/// The device table.
#[derive(Clone, Debug, Default)]
pub struct DeviceTable {
    devices: BTreeMap<MacAddr, Device>,
}

impl DeviceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        DeviceTable::default()
    }

    /// Classifies an observation of `mac` (with optional `ip`) at
    /// `location`, *without* committing it. Use [`DeviceTable::commit`]
    /// afterwards — the split lets defense modules inspect a migration
    /// before the binding changes.
    pub fn classify(
        &self,
        mac: MacAddr,
        ip: Option<IpAddr>,
        location: SwitchPort,
        now: SimTime,
    ) -> Observation {
        match self.devices.get(&mac) {
            None => Observation::New,
            Some(dev) if dev.location == location => Observation::Refresh,
            Some(dev) => Observation::Moved(HostMove {
                mac,
                ip,
                from: dev.location,
                to: location,
                at: now,
            }),
        }
    }

    /// Commits an observation: learns, refreshes, or re-binds.
    pub fn commit(&mut self, mac: MacAddr, ip: Option<IpAddr>, location: SwitchPort, now: SimTime) {
        let dev = self.devices.entry(mac).or_insert_with(|| Device {
            mac,
            ips: BTreeSet::new(),
            location,
            first_seen: now,
            last_seen: now,
            move_count: 0,
        });
        if dev.location != location {
            dev.location = location;
            dev.move_count += 1;
        }
        if let Some(ip) = ip {
            dev.ips.insert(ip);
        }
        dev.last_seen = now;
    }

    /// Looks up a device by MAC.
    pub fn get(&self, mac: &MacAddr) -> Option<&Device> {
        self.devices.get(mac)
    }

    /// Finds the device currently holding `ip`, if any.
    pub fn by_ip(&self, ip: &IpAddr) -> Option<&Device> {
        self.devices.values().find(|d| d.ips.contains(ip))
    }

    /// The location bound to `mac`.
    pub fn location_of(&self, mac: &MacAddr) -> Option<SwitchPort> {
        self.devices.get(mac).map(|d| d.location)
    }

    /// Removes a device (e.g. operator intervention). Returns it.
    pub fn remove(&mut self, mac: &MacAddr) -> Option<Device> {
        self.devices.remove(mac)
    }

    /// Number of tracked devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` if no devices are tracked.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Iterates all devices.
    pub fn devices(&self) -> impl Iterator<Item = &Device> {
        self.devices.values()
    }

    /// MACs that share a location with another MAC — a denormalized view
    /// SPHINX-style detectors use to spot identifier conflicts.
    pub fn conflicting_locations(&self) -> Vec<(SwitchPort, Vec<MacAddr>)> {
        let mut by_loc: BTreeMap<SwitchPort, Vec<MacAddr>> = BTreeMap::new();
        for d in self.devices.values() {
            by_loc.entry(d.location).or_default().push(d.mac);
        }
        by_loc.retain(|_, macs| macs.len() > 1);
        by_loc.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_types::{DatapathId, PortNo};

    fn loc(d: u64, p: u16) -> SwitchPort {
        SwitchPort::new(DatapathId::new(d), PortNo::new(p))
    }

    fn mac(i: u32) -> MacAddr {
        MacAddr::from_index(i)
    }

    #[test]
    fn learn_refresh_move_lifecycle() {
        let mut t = DeviceTable::new();
        let m = mac(1);
        let ip = IpAddr::new(10, 0, 0, 1);

        assert_eq!(
            t.classify(m, Some(ip), loc(1, 2), SimTime::ZERO),
            Observation::New
        );
        t.commit(m, Some(ip), loc(1, 2), SimTime::ZERO);
        assert_eq!(t.len(), 1);
        assert_eq!(t.location_of(&m), Some(loc(1, 2)));

        assert_eq!(
            t.classify(m, Some(ip), loc(1, 2), SimTime::from_secs(1)),
            Observation::Refresh
        );
        t.commit(m, Some(ip), loc(1, 2), SimTime::from_secs(1));
        assert_eq!(t.get(&m).unwrap().move_count, 0);

        match t.classify(m, Some(ip), loc(2, 5), SimTime::from_secs(2)) {
            Observation::Moved(mv) => {
                assert_eq!(mv.from, loc(1, 2));
                assert_eq!(mv.to, loc(2, 5));
            }
            other => panic!("expected move, got {other:?}"),
        }
        t.commit(m, Some(ip), loc(2, 5), SimTime::from_secs(2));
        assert_eq!(t.get(&m).unwrap().move_count, 1);
        assert_eq!(t.location_of(&m), Some(loc(2, 5)));
    }

    #[test]
    fn classify_does_not_mutate() {
        let mut t = DeviceTable::new();
        let m = mac(1);
        t.commit(m, None, loc(1, 1), SimTime::ZERO);
        let _ = t.classify(m, None, loc(2, 2), SimTime::from_secs(1));
        assert_eq!(t.location_of(&m), Some(loc(1, 1)), "classify must not move");
    }

    #[test]
    fn by_ip_finds_holder() {
        let mut t = DeviceTable::new();
        let ip = IpAddr::new(10, 0, 0, 7);
        t.commit(mac(1), Some(ip), loc(1, 1), SimTime::ZERO);
        t.commit(
            mac(2),
            Some(IpAddr::new(10, 0, 0, 8)),
            loc(1, 2),
            SimTime::ZERO,
        );
        assert_eq!(t.by_ip(&ip).unwrap().mac, mac(1));
        assert!(t.by_ip(&IpAddr::new(10, 0, 0, 99)).is_none());
    }

    #[test]
    fn multiple_ips_accumulate() {
        let mut t = DeviceTable::new();
        t.commit(
            mac(1),
            Some(IpAddr::new(10, 0, 0, 1)),
            loc(1, 1),
            SimTime::ZERO,
        );
        t.commit(
            mac(1),
            Some(IpAddr::new(10, 0, 0, 2)),
            loc(1, 1),
            SimTime::ZERO,
        );
        assert_eq!(t.get(&mac(1)).unwrap().ips.len(), 2);
    }

    #[test]
    fn conflicting_locations_detects_sharing() {
        let mut t = DeviceTable::new();
        t.commit(mac(1), None, loc(1, 1), SimTime::ZERO);
        t.commit(mac(2), None, loc(1, 1), SimTime::ZERO);
        t.commit(mac(3), None, loc(1, 2), SimTime::ZERO);
        let conflicts = t.conflicting_locations();
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].0, loc(1, 1));
        assert_eq!(conflicts[0].1.len(), 2);
    }

    #[test]
    fn remove_forgets() {
        let mut t = DeviceTable::new();
        t.commit(mac(1), None, loc(1, 1), SimTime::ZERO);
        assert!(t.remove(&mac(1)).is_some());
        assert!(t.is_empty());
    }
}
