//! The defense-module pipeline.
//!
//! TopoGuard, TopoGuard+ and SPHINX are implemented (in their own crates) as
//! [`DefenseModule`]s plugged into the controller. Modules observe every
//! relevant controller event, may raise [`Alert`](crate::Alert)s, and may
//! veto topology/host-table updates by returning [`Command::Block`] — the
//! distinction between *alert-only* defenses (TopoGuard, SPHINX: "this
//! alert does not alter network state", §IV-B) and TopoGuard+'s optional
//! blocking of suspicious link updates (§VI-D).

use openflow::{FlowStatsEntry, OfMessage, PortDesc, PortStatsEntry, PortStatusReason};
use sdn_types::crypto::Key;
use sdn_types::packet::EthernetFrame;
use sdn_types::{DatapathId, Duration, IpAddr, MacAddr, PortNo, SimTime, SwitchPort};

use tm_telemetry::Telemetry;

use crate::alerts::AlertSink;
use crate::devices::{DeviceTable, HostMove};
use crate::latency::CtrlLatencyTracker;
use crate::topology::{DirectedLink, Topology};

/// A module's verdict on a pending state update.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Command {
    /// Let the update proceed (other modules are still consulted).
    Continue,
    /// Veto the update (remaining modules are still notified, but the
    /// controller will not commit it).
    Block,
}

/// A dataplane packet delivered to the controller.
#[derive(Debug)]
pub struct PacketInCtx<'f> {
    /// The reporting switch.
    pub dpid: DatapathId,
    /// The ingress port.
    pub in_port: PortNo,
    /// The parsed frame.
    pub frame: &'f EthernetFrame,
    /// Arrival time at the controller.
    pub at: SimTime,
}

/// The latency evidence attached to one LLDP traversal (TopoGuard+).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkLatencySample {
    /// Total controller-to-controller LLDP propagation time (`T_LLDP`).
    pub t_lldp: Duration,
    /// Estimated one-way control-link delay at the emitting switch.
    pub t_sw_src: Option<Duration>,
    /// Estimated one-way control-link delay at the receiving switch.
    pub t_sw_dst: Option<Duration>,
}

impl LinkLatencySample {
    /// The switch-link latency estimate `T_LLDP − T_SW1 − T_SW2`, in
    /// milliseconds. `None` if either control-link estimate is missing.
    pub fn link_latency_ms(&self) -> Option<f64> {
        let sw1 = self.t_sw_src?;
        let sw2 = self.t_sw_dst?;
        Some(
            self.t_lldp
                .saturating_sub(sw1)
                .saturating_sub(sw2)
                .as_millis_f64(),
        )
    }
}

/// A verified LLDP reception, presented to modules before the link table is
/// updated.
#[derive(Debug)]
pub struct LldpReceive<'f> {
    /// The parsed LLDP payload.
    pub lldp: &'f sdn_types::packet::LldpPacket,
    /// The link endpoint the packet claims to come from.
    pub src: SwitchPort,
    /// Where the packet was actually received.
    pub dst: SwitchPort,
    /// Arrival time at the controller.
    pub at: SimTime,
    /// Signature verdict: `None` if LLDP signing is disabled, otherwise the
    /// verification result.
    pub signature_valid: Option<bool>,
    /// Latency evidence, if LLDP timestamping is enabled.
    pub sample: Option<LinkLatencySample>,
}

/// What modules can see and do during a callback.
pub struct ModuleCtx<'a> {
    /// Current controller time.
    pub now: SimTime,
    /// The shared alert sink.
    pub alerts: &'a mut AlertSink,
    /// Read view of the link table.
    pub topology: &'a Topology,
    /// Read view of the host-tracking table.
    pub devices: &'a DeviceTable,
    /// Read view of control-link latency estimates.
    pub latency: &'a CtrlLatencyTracker,
    /// The controller's LLDP signing/sealing key.
    pub lldp_key: Key,
    /// The run's shared metrics handle (disabled handles no-op).
    pub telemetry: &'a Telemetry,
    pub(crate) outbox: &'a mut Vec<(DatapathId, OfMessage)>,
}

impl ModuleCtx<'_> {
    /// Queues a control message to `dpid` (sent after the module pass).
    /// Used e.g. by TopoGuard's post-condition reachability probe.
    pub fn send(&mut self, dpid: DatapathId, msg: OfMessage) {
        self.outbox.push((dpid, msg));
    }
}

/// A controller security module. All hooks default to no-ops that
/// [`Command::Continue`].
#[allow(unused_variables)]
pub trait DefenseModule {
    /// A stable name used as the alert `source`.
    fn name(&self) -> &'static str;

    /// Every dataplane `PacketIn` (including LLDP), before any service
    /// processes it.
    fn on_packet_in(&mut self, cx: &mut ModuleCtx<'_>, ev: &PacketInCtx<'_>) -> Command {
        Command::Continue
    }

    /// An LLDP probe is being emitted on `(dpid, port)`.
    fn on_lldp_emit(&mut self, cx: &mut ModuleCtx<'_>, dpid: DatapathId, port: PortNo) {}

    /// An LLDP packet was received; runs before the link table is updated.
    fn on_lldp_receive(&mut self, cx: &mut ModuleCtx<'_>, ev: &LldpReceive<'_>) -> Command {
        Command::Continue
    }

    /// A `PortStatus` arrived from a switch.
    fn on_port_status(
        &mut self,
        cx: &mut ModuleCtx<'_>,
        dpid: DatapathId,
        desc: &PortDesc,
        reason: PortStatusReason,
    ) {
    }

    /// A brand-new host was learned.
    fn on_host_new(
        &mut self,
        cx: &mut ModuleCtx<'_>,
        mac: MacAddr,
        ip: Option<IpAddr>,
        location: SwitchPort,
    ) {
    }

    /// A known host appeared at a new location; runs before the binding is
    /// committed.
    fn on_host_move(&mut self, cx: &mut ModuleCtx<'_>, mv: &HostMove) -> Command {
        Command::Continue
    }

    /// A link observation passed LLDP validation; runs before the topology
    /// commits it. `is_new` distinguishes discovery from refresh.
    fn on_link_update(
        &mut self,
        cx: &mut ModuleCtx<'_>,
        link: DirectedLink,
        is_new: bool,
        sample: Option<LinkLatencySample>,
    ) -> Command {
        Command::Continue
    }

    /// A link expired or was removed.
    fn on_link_removed(&mut self, cx: &mut ModuleCtx<'_>, link: DirectedLink) {}

    /// Periodic housekeeping (every controller tick, 100 ms).
    fn on_tick(&mut self, cx: &mut ModuleCtx<'_>) {}

    /// A flow-statistics reply arrived.
    fn on_flow_stats(
        &mut self,
        cx: &mut ModuleCtx<'_>,
        dpid: DatapathId,
        flows: &[FlowStatsEntry],
    ) {
    }

    /// A port-statistics reply arrived.
    fn on_port_stats(
        &mut self,
        cx: &mut ModuleCtx<'_>,
        dpid: DatapathId,
        ports: &[PortStatsEntry],
    ) {
    }

    /// The controller emitted a FlowMod (SPHINX treats these as trusted
    /// intent).
    fn on_flow_mod(&mut self, cx: &mut ModuleCtx<'_>, dpid: DatapathId, msg: &OfMessage) {}

    /// Downcasting support.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_latency_formula() {
        let sample = LinkLatencySample {
            t_lldp: Duration::from_millis(9),
            t_sw_src: Some(Duration::from_millis(1)),
            t_sw_dst: Some(Duration::from_millis(1)),
        };
        assert_eq!(sample.link_latency_ms(), Some(7.0));
    }

    #[test]
    fn link_latency_saturates_at_zero() {
        let sample = LinkLatencySample {
            t_lldp: Duration::from_millis(1),
            t_sw_src: Some(Duration::from_millis(5)),
            t_sw_dst: Some(Duration::from_millis(5)),
        };
        assert_eq!(sample.link_latency_ms(), Some(0.0));
    }

    #[test]
    fn link_latency_requires_both_estimates() {
        let sample = LinkLatencySample {
            t_lldp: Duration::from_millis(9),
            t_sw_src: None,
            t_sw_dst: Some(Duration::from_millis(1)),
        };
        assert_eq!(sample.link_latency_ms(), None);
    }
}
