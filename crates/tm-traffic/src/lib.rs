//! Flow-level traffic-plan configuration for the `netsim` traffic engine.
//!
//! A [`TrafficPlan`] is a declarative, seed-independent description of the
//! background load a scenario should run under: [`TrafficGroup`]s of
//! *virtual hosts* parked behind an edge-switch aggregation port, each with
//! a [`DemandProfile`] (per-host flow rate, [`ArrivalProcess`], and an
//! elephant/mice [`SizeMix`]). The dataplane advances this load as **flow
//! records**, not packets: `netsim::traffic` expands a flow to real frames
//! only at the detector-relevant boundaries (a virtual host's first ARP
//! announcement, the first packet of a fresh edge-pair flow that
//! table-misses into a `PacketIn`), so the controller and the defenses see
//! realistic control-plane load while link/switch state advances in
//! O(flows), not O(packets).
//!
//! The plan itself contains **no randomness and no state** — it is pure
//! configuration, mirroring `tm-faults`. All draws happen in
//! `netsim::traffic` from per-group RNG streams forked off the scenario
//! seed via `tm_rand::stream_seed`, so the simulation's main RNG stream is
//! never touched and an empty plan leaves the whole event trace
//! byte-identical to a run without any plan (pinned by
//! `crates/netsim/tests/traffic.rs`).
//!
//! The sampling transforms live here (on [`DemandProfile`] /
//! [`ArrivalProcess`] / [`SizeMix`], generic over `tm_rand::Rng`) so their
//! statistical properties are testable without spinning up a simulator —
//! see `tests/prop.rs`.
//!
//! # Example
//!
//! ```
//! use sdn_types::{DatapathId, PortNo, SimTime};
//! use tm_traffic::{DemandProfile, TrafficPlan, TrafficWindow};
//!
//! let mut plan = TrafficPlan::new();
//! let window = TrafficWindow::new(SimTime::from_secs(2), SimTime::from_secs(12));
//! plan.group(
//!     DatapathId::new(3),
//!     PortNo::new(9),
//!     10_000,
//!     DemandProfile::datacenter(0.05),
//!     window,
//! );
//! assert_eq!(plan.total_hosts(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sdn_types::{DatapathId, Duration, PortNo, SimTime};
use tm_rand::Rng;
use tm_stats::{Distribution, Exponential};

/// A half-open activity window `[from, until)` for a traffic group.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrafficWindow {
    /// When the group starts offering flows.
    pub from: SimTime,
    /// When the group stops offering flows.
    pub until: SimTime,
}

impl TrafficWindow {
    /// Creates a window.
    ///
    /// # Panics
    /// Panics unless `from < until`.
    pub fn new(from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "traffic window must satisfy from < until");
        TrafficWindow { from, until }
    }
}

/// How flow arrivals are spread over a group's active window.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ArrivalProcess {
    /// A homogeneous Poisson process: exponential inter-arrivals at the
    /// group's aggregate rate for the whole window.
    Poisson,
    /// A two-state on/off burst process: the group alternates between an
    /// *on* phase (Poisson arrivals at the aggregate rate) and a silent
    /// *off* phase, with exponentially distributed phase durations.
    OnOff {
        /// Mean duration of an on (bursting) phase.
        mean_on: Duration,
        /// Mean duration of an off (silent) phase.
        mean_off: Duration,
    },
}

impl ArrivalProcess {
    /// A validated on/off process.
    ///
    /// # Panics
    /// Panics unless both means are positive.
    pub fn on_off(mean_on: Duration, mean_off: Duration) -> Self {
        assert!(
            mean_on > Duration::ZERO && mean_off > Duration::ZERO,
            "on/off phase means must be positive"
        );
        ArrivalProcess::OnOff { mean_on, mean_off }
    }

    /// Samples the duration of the next phase (`on = true` for a bursting
    /// phase). A [`ArrivalProcess::Poisson`] process is always on; its
    /// "phase" spans the whole window, returned here as a very long
    /// duration so callers can treat both variants uniformly.
    pub fn sample_phase<R: Rng + ?Sized>(&self, on: bool, rng: &mut R) -> Duration {
        match *self {
            ArrivalProcess::Poisson => Duration::from_secs(u32::MAX as u64),
            ArrivalProcess::OnOff { mean_on, mean_off } => {
                let mean = if on { mean_on } else { mean_off };
                sample_exp(mean.as_millis_f64(), rng)
            }
        }
    }
}

/// The elephant/mice flow-size mix: a small fraction of flows carry most
/// of the bytes (the canonical datacenter heavy-tail, collapsed to two
/// deterministic size classes so byte totals stay exactly reproducible).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SizeMix {
    /// Probability that a flow is an elephant.
    pub elephant_fraction: f64,
    /// Bytes carried by an elephant flow.
    pub elephant_bytes: u64,
    /// Bytes carried by a mouse flow.
    pub mice_bytes: u64,
}

impl SizeMix {
    /// A validated mix.
    ///
    /// # Panics
    /// Panics unless `0 ≤ elephant_fraction ≤ 1` and both sizes are
    /// nonzero.
    pub fn new(elephant_fraction: f64, elephant_bytes: u64, mice_bytes: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&elephant_fraction),
            "elephant fraction ({elephant_fraction}) must be in [0, 1]"
        );
        assert!(
            elephant_bytes > 0 && mice_bytes > 0,
            "flow sizes must be nonzero"
        );
        SizeMix {
            elephant_fraction,
            elephant_bytes,
            mice_bytes,
        }
    }

    /// The measured datacenter default: 5% elephants at 128 MiB (backup /
    /// VM-image class transfers), mice at 20 KiB (RPC trains).
    pub fn datacenter() -> Self {
        SizeMix::new(0.05, 128 * 1024 * 1024, 20 * 1024)
    }

    /// Draws one flow size in bytes.
    pub fn sample_bytes<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if rng.gen_bool(self.elephant_fraction) {
            self.elephant_bytes
        } else {
            self.mice_bytes
        }
    }

    /// The expected flow size in bytes under this mix.
    pub fn mean_bytes(&self) -> f64 {
        self.elephant_fraction * self.elephant_bytes as f64
            + (1.0 - self.elephant_fraction) * self.mice_bytes as f64
    }
}

/// Per-host demand: how often a virtual host opens a flow, how the
/// arrivals are spread, and how big each flow is.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DemandProfile {
    /// Mean new flows per host per second (aggregated over the group: a
    /// group of `n` hosts offers `n ×` this rate while on).
    pub flows_per_host_per_sec: f64,
    /// The arrival process.
    pub arrival: ArrivalProcess,
    /// The flow-size mix.
    pub mix: SizeMix,
}

impl DemandProfile {
    /// A validated profile.
    ///
    /// # Panics
    /// Panics unless the rate is positive and finite.
    pub fn new(flows_per_host_per_sec: f64, arrival: ArrivalProcess, mix: SizeMix) -> Self {
        assert!(
            flows_per_host_per_sec > 0.0 && flows_per_host_per_sec.is_finite(),
            "flow rate ({flows_per_host_per_sec}) must be positive and finite"
        );
        DemandProfile {
            flows_per_host_per_sec,
            arrival,
            mix,
        }
    }

    /// Steady Poisson demand at `rate` flows/host/s with the
    /// [`SizeMix::datacenter`] mix.
    pub fn datacenter(rate: f64) -> Self {
        DemandProfile::new(rate, ArrivalProcess::Poisson, SizeMix::datacenter())
    }

    /// Bursty on/off demand at `rate` flows/host/s (while on) with the
    /// [`SizeMix::datacenter`] mix: 500 ms bursts, 1.5 s silences.
    pub fn bursty(rate: f64) -> Self {
        DemandProfile::new(
            rate,
            ArrivalProcess::on_off(Duration::from_millis(500), Duration::from_millis(1500)),
            SizeMix::datacenter(),
        )
    }

    /// Draws the inter-arrival gap to the next flow for a group of `hosts`
    /// virtual hosts (exponential at the aggregate rate). Always positive:
    /// the gap is floored at one nanosecond so an arrival chain can never
    /// stall on a zero sample.
    ///
    /// # Panics
    /// Panics if `hosts` is zero.
    pub fn sample_interarrival<R: Rng + ?Sized>(&self, hosts: u32, rng: &mut R) -> Duration {
        assert!(hosts > 0, "a traffic group needs at least one host");
        let aggregate_rate = self.flows_per_host_per_sec * f64::from(hosts);
        sample_exp(1000.0 / aggregate_rate, rng)
    }
}

/// Draws an exponential duration with the given mean (in milliseconds),
/// floored at one nanosecond so downstream schedulers always advance.
fn sample_exp<R: Rng + ?Sized>(mean_ms: f64, rng: &mut R) -> Duration {
    let ms = Exponential::from_mean(mean_ms).sample(rng);
    Duration::from_millis_f64(ms).max(Duration::from_nanos(1))
}

/// A group of virtual hosts parked behind one edge-switch aggregation
/// port, offering flows under a shared demand profile.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TrafficGroup {
    /// The edge switch the group's hosts sit behind.
    pub edge: DatapathId,
    /// The aggregation port on that switch. `netsim` attaches one real
    /// aggregation host here; expanded frames enter and leave through it.
    pub port: PortNo,
    /// Number of virtual hosts in the group.
    pub hosts: u32,
    /// The group's demand.
    pub profile: DemandProfile,
    /// When the group offers flows.
    pub window: TrafficWindow,
}

/// A complete, declarative traffic schedule for one simulation run.
///
/// Build with [`TrafficPlan::group`], then hand to
/// `netsim::Simulator::with_traffic_plan`. An empty plan is exactly
/// equivalent to no plan.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TrafficPlan {
    groups: Vec<TrafficGroup>,
}

impl TrafficPlan {
    /// An empty plan (offers nothing).
    pub fn new() -> Self {
        TrafficPlan::default()
    }

    /// Adds a group of `hosts` virtual hosts behind `(edge, port)`.
    ///
    /// # Panics
    /// Panics if `hosts` is zero or the plan's total host count would
    /// exceed the virtual addressing space (2²³ hosts: virtual IPs live
    /// in 10.128.0.0/9).
    pub fn group(
        &mut self,
        edge: DatapathId,
        port: PortNo,
        hosts: u32,
        profile: DemandProfile,
        window: TrafficWindow,
    ) -> &mut Self {
        assert!(hosts > 0, "a traffic group needs at least one host");
        let total = self.total_hosts().saturating_add(u64::from(hosts));
        assert!(
            total <= 1 << 23,
            "plan exceeds the virtual host space ({total} > 2^23)"
        );
        self.groups.push(TrafficGroup {
            edge,
            port,
            hosts,
            profile,
            window,
        });
        self
    }

    /// The groups, in insertion order.
    pub fn groups(&self) -> &[TrafficGroup] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the plan offers nothing at all.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total virtual hosts across all groups.
    pub fn total_hosts(&self) -> u64 {
        self.groups.iter().map(|g| u64::from(g.hosts)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_rand::StdRng;

    fn win(from_s: u64, until_s: u64) -> TrafficWindow {
        TrafficWindow::new(SimTime::from_secs(from_s), SimTime::from_secs(until_s))
    }

    #[test]
    fn empty_plan_reports_empty() {
        let plan = TrafficPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan.total_hosts(), 0);
    }

    #[test]
    fn builder_accumulates_groups() {
        let mut plan = TrafficPlan::new();
        plan.group(
            DatapathId::new(1),
            PortNo::new(9),
            100,
            DemandProfile::datacenter(0.1),
            win(2, 10),
        )
        .group(
            DatapathId::new(2),
            PortNo::new(9),
            50,
            DemandProfile::bursty(1.0),
            win(2, 10),
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.total_hosts(), 150);
        assert_eq!(plan.groups()[1].hosts, 50);
    }

    #[test]
    #[should_panic(expected = "from < until")]
    fn window_order_is_validated() {
        let _ = TrafficWindow::new(SimTime::from_secs(2), SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_group_is_rejected() {
        let mut plan = TrafficPlan::new();
        plan.group(
            DatapathId::new(1),
            PortNo::new(9),
            0,
            DemandProfile::datacenter(0.1),
            win(2, 10),
        );
    }

    #[test]
    #[should_panic(expected = "virtual host space")]
    fn virtual_host_space_is_bounded() {
        let mut plan = TrafficPlan::new();
        plan.group(
            DatapathId::new(1),
            PortNo::new(9),
            1 << 23,
            DemandProfile::datacenter(0.1),
            win(2, 10),
        )
        .group(
            DatapathId::new(2),
            PortNo::new(9),
            1,
            DemandProfile::datacenter(0.1),
            win(2, 10),
        );
    }

    #[test]
    #[should_panic(expected = "elephant fraction")]
    fn size_mix_fraction_is_validated() {
        let _ = SizeMix::new(1.5, 1, 1);
    }

    #[test]
    #[should_panic(expected = "flow rate")]
    fn demand_rate_is_validated() {
        let _ = DemandProfile::new(0.0, ArrivalProcess::Poisson, SizeMix::datacenter());
    }

    #[test]
    fn interarrival_scales_with_group_size() {
        // 10× the hosts ⇒ ≈ 1/10 the mean gap (law of large numbers over
        // a fixed seeded stream, generous tolerance).
        let profile = DemandProfile::datacenter(1.0);
        let mean_gap_ms = |hosts: u32| {
            let mut rng = StdRng::seed_from_u64(7);
            let n = 4000;
            let total: f64 = (0..n)
                .map(|_| profile.sample_interarrival(hosts, &mut rng).as_millis_f64())
                .sum();
            total / f64::from(n)
        };
        let small = mean_gap_ms(10);
        let large = mean_gap_ms(100);
        assert!(
            (small / large - 10.0).abs() < 1.5,
            "gap ratio {} far from 10",
            small / large
        );
    }

    #[test]
    fn poisson_phase_spans_any_window() {
        let mut rng = StdRng::seed_from_u64(1);
        let phase = ArrivalProcess::Poisson.sample_phase(true, &mut rng);
        assert!(phase > Duration::from_secs(3600));
    }
}
