//! Property tests for the traffic sampling transforms: the statistical
//! contracts the flow engine relies on, checked without a simulator.
//!
//! * **Seed-fork prefix stability** — a group's arrival stream is a pure
//!   function of `(base_seed, stream id)`: the first `n` draws never
//!   change when more draws follow, and sibling streams forked from the
//!   same base are unrelated. This is what makes on-demand packet
//!   expansion safe: expanding (or not expanding) one group's flows can
//!   never perturb another group's arrivals.
//! * **Inter-arrival positivity** — every sampled gap is strictly
//!   positive (the engine's arrival chains must always advance virtual
//!   time).
//! * **Elephant/mice ratio** — the drawn elephant fraction converges to
//!   the mix's configured fraction, and byte totals stay on the
//!   two-class lattice.

use sdn_types::Duration;
use tm_prop::prelude::*;
use tm_rand::{stream_seed, Rng, StdRng};
use tm_traffic::{ArrivalProcess, DemandProfile, SizeMix};

/// Rates on a lattice: 0.01 .. 20.0 flows/host/s.
fn rate(raw: u32) -> f64 {
    0.01 + f64::from(raw % 2000) / 100.0
}

fn profile(raw_rate: u32, bursty: bool) -> DemandProfile {
    let arrival = if bursty {
        ArrivalProcess::on_off(Duration::from_millis(500), Duration::from_millis(1500))
    } else {
        ArrivalProcess::Poisson
    };
    DemandProfile::new(rate(raw_rate), arrival, SizeMix::datacenter())
}

tm_prop! {
    #![tm_config(cases = 64)]

    #[test]
    fn forked_stream_prefixes_are_stable(
        base in any::<u64>(),
        id in 0u64..1024,
        raw_rate in any::<u32>(),
        bursty in any::<bool>(),
        hosts in 1u32..100_000,
        n in 1usize..64,
        extra in 0usize..64,
    ) {
        let p = profile(raw_rate, bursty);
        let draw = |count: usize| -> Vec<Duration> {
            let mut rng = StdRng::seed_from_u64(stream_seed(base, id));
            (0..count).map(|_| p.sample_interarrival(hosts, &mut rng)).collect()
        };
        let short = draw(n);
        let long = draw(n + extra);
        prop_assert_eq!(&short[..], &long[..n]);
    }

    #[test]
    fn sibling_streams_diverge(
        base in any::<u64>(),
        id in 0u64..1024,
        raw_rate in any::<u32>(),
    ) {
        let p = profile(raw_rate, false);
        let sample = |stream: u64| -> Vec<Duration> {
            let mut rng = StdRng::seed_from_u64(stream_seed(base, stream));
            (0..8).map(|_| p.sample_interarrival(1, &mut rng)).collect()
        };
        // Eight exponential draws colliding across forked streams would
        // mean the fork is not actually mixing the stream id.
        prop_assert_ne!(sample(id), sample(id + 1));
    }

    #[test]
    fn interarrivals_are_strictly_positive(
        seed in any::<u64>(),
        raw_rate in any::<u32>(),
        hosts in 1u32..8_000_000,
    ) {
        // Even absurd aggregate rates (8M hosts x 20 flows/s) must floor
        // at one nanosecond, never zero: a zero gap would stall the
        // engine's arrival chain on a fixed timestamp.
        let p = profile(raw_rate, false);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(p.sample_interarrival(hosts, &mut rng) > Duration::ZERO);
        }
    }

    #[test]
    fn phase_durations_are_strictly_positive(
        seed in any::<u64>(),
        on in any::<bool>(),
        mean_on_ms in 1u32..10_000,
        mean_off_ms in 1u32..10_000,
    ) {
        let arrival = ArrivalProcess::on_off(
            Duration::from_millis(u64::from(mean_on_ms)),
            Duration::from_millis(u64::from(mean_off_ms)),
        );
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(arrival.sample_phase(on, &mut rng) > Duration::ZERO);
        }
    }

    #[test]
    fn elephant_fraction_converges_to_the_mix(
        seed in any::<u64>(),
        pct in 1u32..=99,
    ) {
        let fraction = f64::from(pct) / 100.0;
        let mix = SizeMix::new(fraction, 128 * 1024 * 1024, 20 * 1024);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4000u32;
        let mut elephants = 0u32;
        for _ in 0..n {
            let bytes = mix.sample_bytes(&mut rng);
            // Byte draws stay on the two-class lattice.
            prop_assert!(bytes == mix.elephant_bytes || bytes == mix.mice_bytes);
            if bytes == mix.elephant_bytes {
                elephants += 1;
            }
        }
        let drawn = f64::from(elephants) / f64::from(n);
        // 4000 Bernoulli draws: keep a generous 4-sigma tolerance so the
        // property never flakes across the seeded case sweep.
        let sigma = (fraction * (1.0 - fraction) / f64::from(n)).sqrt();
        prop_assert!(
            (drawn - fraction).abs() < 4.0 * sigma + 0.005,
            "drawn fraction {} vs configured {}",
            drawn,
            fraction
        );
    }

    #[test]
    fn mean_bytes_matches_the_lattice_expectation(
        pct in 0u32..=100,
    ) {
        let fraction = f64::from(pct) / 100.0;
        let mix = SizeMix::new(fraction, 1 << 20, 1 << 10);
        let expect = fraction * f64::from(1u32 << 20) + (1.0 - fraction) * f64::from(1u32 << 10);
        prop_assert!((mix.mean_bytes() - expect).abs() < 1e-6);
    }
}

/// The Poisson aggregate-rate contract outside the macro: the sample mean
/// of the gaps tracks `1 / (hosts × rate)` on a fixed stream.
#[test]
fn aggregate_rate_tracks_hosts_times_rate() {
    let p = DemandProfile::new(2.0, ArrivalProcess::Poisson, SizeMix::datacenter());
    let mut rng = StdRng::seed_from_u64(11);
    let n = 20_000;
    let total_ms: f64 = (0..n)
        .map(|_| p.sample_interarrival(250, &mut rng).as_millis_f64())
        .sum();
    let mean = total_ms / f64::from(n);
    let expect = 1000.0 / (2.0 * 250.0); // 2 ms
    assert!(
        (mean / expect - 1.0).abs() < 0.05,
        "mean gap {mean} ms vs expected {expect} ms"
    );
}
