//! Property tests for the confidence-interval routines: the interval
//! must tighten with sample size, cover the true mean of symmetric data,
//! and (for the bootstrap) replay exactly per seed.
//!
//! tm-prop generates integers (its range strategies are integral); each
//! property maps them to floats on a fixed lattice, which keeps shrinking
//! effective and floating-point error analysable.

use tm_prop::prelude::*;

use tm_rand::StdRng;
use tm_stats::{bootstrap_mean_ci, student_t_quantile, t_interval};

/// Millis-lattice conversion: 0..1_000_000 → 0.0..1000.0.
fn to_f64(xs: &[u32]) -> Vec<f64> {
    xs.iter().map(|&x| f64::from(x) / 1000.0).collect()
}

/// `base` repeated `reps` times: same underlying distribution, larger N.
fn repeat(base: &[f64], reps: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(base.len() * reps);
    for _ in 0..reps {
        out.extend_from_slice(base);
    }
    out
}

tm_prop! {
    #![tm_config(cases = 64)]

    /// Doubling the sample count (same empirical distribution) never
    /// widens the t-interval: t(n−1) falls and √n grows.
    #[test]
    fn t_interval_shrinks_as_n_grows(
        base in collection::vec(0u32..1_000_000, 2..12),
        reps in 1usize..5,
    ) {
        let base = to_f64(&base);
        let small = t_interval(&repeat(&base, reps), 0.95).expect("small interval");
        let large = t_interval(&repeat(&base, reps * 2), 0.95).expect("large interval");
        prop_assert!(
            large.half_width <= small.half_width + 1e-9,
            "n={} half={} vs n={} half={}",
            small.n, small.half_width, large.n, large.half_width
        );
    }

    /// For data built symmetric around a center, the t-interval contains
    /// that center (the sample mean *is* the center, and the interval is
    /// centered on the sample mean).
    #[test]
    fn t_interval_contains_true_mean_of_symmetric_data(
        half in collection::vec(0u32..1_000_000, 1..16),
        center_raw in 0u32..1_000_000,
    ) {
        let center = f64::from(center_raw) / 1000.0 - 500.0;
        let mut samples = Vec::with_capacity(half.len() * 2);
        for &x in &to_f64(&half) {
            samples.push(center + x);
            samples.push(center - x);
        }
        let ci = t_interval(&samples, 0.95).expect("interval");
        prop_assert!(
            ci.lo - 1e-6 <= center && center <= ci.hi + 1e-6,
            "center {center} outside [{}, {}]", ci.lo, ci.hi
        );
    }

    /// Raising the confidence level never narrows the interval.
    #[test]
    fn t_interval_widens_with_confidence(
        samples in collection::vec(0u32..100_000, 2..16),
    ) {
        let samples = to_f64(&samples);
        let c90 = t_interval(&samples, 0.90).expect("90%");
        let c99 = t_interval(&samples, 0.99).expect("99%");
        prop_assert!(c99.half_width >= c90.half_width - 1e-12);
    }

    /// The t quantile is monotone in p for every df.
    #[test]
    fn t_quantile_monotone_in_p(
        df in 1usize..40,
        p_raw in 20u32..970,
    ) {
        let p = f64::from(p_raw) / 1000.0;
        let lo = student_t_quantile(df, p);
        let hi = student_t_quantile(df, p + 0.02);
        prop_assert!(hi > lo, "t({df}, {p}..) not monotone: {lo} vs {hi}");
    }

    /// Bootstrap intervals are a pure function of (samples, seed).
    #[test]
    fn bootstrap_replays_per_seed(
        samples in collection::vec(0u32..100_000, 1..20),
        seed in any::<u64>(),
    ) {
        let samples = to_f64(&samples);
        let a = bootstrap_mean_ci(&samples, 0.95, 200, &mut StdRng::seed_from_u64(seed));
        let b = bootstrap_mean_ci(&samples, 0.95, 200, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }
}
