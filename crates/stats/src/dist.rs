//! Sampling distributions over a seeded RNG.
//!
//! Implemented here (rather than via `rand_distr`) to keep the workspace on
//! the approved dependency list. Normal variates use the Marsaglia polar
//! method; the rest are standard transforms.

use tm_rand::Rng;

/// A distribution that can produce `f64` samples from an RNG.
pub trait Distribution {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draws `n` samples into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// The normal distribution `N(mean, sd²)`.
///
/// The paper models enterprise network RTT as `N(20 ms, 5 ms)` (§V-B1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (must be non-negative).
    pub sd: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    /// Panics if `sd` is negative or either parameter is not finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            mean.is_finite() && sd.is_finite(),
            "parameters must be finite"
        );
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        Normal { mean, sd }
    }

    /// Draws a standard-normal variate using the Marsaglia polar method.
    pub fn standard_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Distribution for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.sd * Normal::standard_sample(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
///
/// Used to model the heavy-tailed identifier-change latency the paper
/// measures for `ifconfig` (Fig. 4: mean 9.94 ms with a tail to ~160 ms).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal (log scale).
    pub mu: f64,
    /// Standard deviation of the underlying normal (log scale).
    pub sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from log-scale parameters.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or either parameter is not finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite(),
            "parameters must be finite"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal whose *arithmetic* mean and standard deviation
    /// match the given values — convenient for calibrating to measured data.
    ///
    /// # Panics
    /// Panics unless `mean > 0` and `sd >= 0`.
    pub fn from_mean_sd(mean: f64, sd: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(sd >= 0.0, "sd must be non-negative");
        let variance_ratio = (sd / mean).powi(2);
        let sigma2 = (1.0 + variance_ratio).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
    }
}

impl Distribution for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * Normal::standard_sample(rng)).exp()
    }
}

/// The exponential distribution with the given rate parameter.
///
/// Used for inter-arrival jitter and the micro-burst arrival process on
/// simulated links (Fig. 10's latency bursts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    /// Rate parameter λ (events per unit).
    pub rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution.
    ///
    /// # Panics
    /// Panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }

    /// Creates from the mean (1/λ).
    ///
    /// # Panics
    /// Panics unless `mean > 0`.
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Exponential::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / self.rate
    }
}

/// A Pareto distribution shifted to start at `floor`, for heavy-tailed
/// latency spikes: `floor + scale·(U^(-1/shape) − 1)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShiftedPareto {
    /// Minimum value (location).
    pub floor: f64,
    /// Scale of the excess over the floor.
    pub scale: f64,
    /// Tail index; smaller is heavier-tailed.
    pub shape: f64,
}

impl ShiftedPareto {
    /// Creates a shifted Pareto distribution.
    ///
    /// # Panics
    /// Panics unless `scale > 0` and `shape > 0`.
    pub fn new(floor: f64, scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert!(shape > 0.0, "shape must be positive");
        ShiftedPareto {
            floor,
            scale,
            shape,
        }
    }
}

impl Distribution for ShiftedPareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.floor + self.scale * (u.powf(-1.0 / self.shape) - 1.0)
    }
}

/// The continuous uniform distribution over `[low, high)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UniformRange {
    /// Inclusive lower bound.
    pub low: f64,
    /// Exclusive upper bound.
    pub high: f64,
}

impl UniformRange {
    /// Creates a uniform distribution.
    ///
    /// # Panics
    /// Panics unless `low < high`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "low must be less than high");
        UniformRange { low, high }
    }
}

impl Distribution for UniformRange {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.low..self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use tm_rand::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn normal_matches_parameters() {
        let samples = Normal::new(20.0, 5.0).sample_n(&mut rng(), 20_000);
        let s = Summary::of(&samples);
        assert!((s.mean - 20.0).abs() < 0.2, "mean {}", s.mean);
        assert!((s.sd - 5.0).abs() < 0.2, "sd {}", s.sd);
    }

    #[test]
    fn normal_zero_sd_is_constant() {
        let samples = Normal::new(7.0, 0.0).sample_n(&mut rng(), 100);
        assert!(samples.iter().all(|&x| x == 7.0));
    }

    #[test]
    fn lognormal_calibration_matches_mean_and_sd() {
        let d = LogNormal::from_mean_sd(9.94, 12.0);
        let samples = d.sample_n(&mut rng(), 100_000);
        let s = Summary::of(&samples);
        assert!((s.mean - 9.94).abs() < 0.5, "mean {}", s.mean);
        assert!((s.sd - 12.0).abs() < 1.5, "sd {}", s.sd);
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean_matches() {
        let samples = Exponential::from_mean(3.0).sample_n(&mut rng(), 50_000);
        let s = Summary::of(&samples);
        assert!((s.mean - 3.0).abs() < 0.1, "mean {}", s.mean);
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn pareto_respects_floor_and_has_tail() {
        let d = ShiftedPareto::new(5.0, 1.0, 2.0);
        let samples = d.sample_n(&mut rng(), 50_000);
        assert!(samples.iter().all(|&x| x >= 5.0));
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 15.0, "expected a heavy tail, max was {max}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let samples = UniformRange::new(2.0, 4.0).sample_n(&mut rng(), 10_000);
        assert!(samples.iter().all(|&x| (2.0..4.0).contains(&x)));
        let s = Summary::of(&samples);
        assert!((s.mean - 3.0).abs() < 0.05);
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let a = Normal::new(0.0, 1.0).sample_n(&mut rng(), 10);
        let b = Normal::new(0.0, 1.0).sample_n(&mut rng(), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn forked_streams_sample_independently_with_correct_stats() {
        // Per-host RNGs are forked/streamed off one engine seed; each
        // stream must be a statistically sound source on its own and
        // decorrelated from its siblings.
        let root = rng();
        let d = Normal::new(0.0, 1.0);
        let mut sets = Vec::new();
        for id in 0..3u64 {
            let mut stream = root.stream(id);
            let samples = d.sample_n(&mut stream, 10_000);
            let s = Summary::of(&samples);
            assert!(s.mean.abs() < 0.05, "stream {id}: mean {}", s.mean);
            assert!((s.sd - 1.0).abs() < 0.05, "stream {id}: sd {}", s.sd);
            sets.push(samples);
        }
        assert_ne!(sets[0], sets[1]);
        assert_ne!(sets[1], sets[2]);
        // A forked child must also differ from every stream.
        let child = d.sample_n(&mut rng().fork(), 10_000);
        assert_ne!(child, sets[0]);
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn normal_rejects_negative_sd() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn lognormal_rejects_nonpositive_mean() {
        let _ = LogNormal::from_mean_sd(0.0, 1.0);
    }
}
