//! Confidence intervals for reproduced measurements.
//!
//! Every number in the paper's evaluation is a distribution
//! ("0.91 ± 0.04 ms"), so the campaign runner reports each per-cell metric
//! as `mean ± half-width` at a stated confidence level. Two routines:
//!
//! * [`t_interval`] — the classic Student-t interval on the mean, the
//!   default for campaign tables. The t quantile is computed in-house
//!   (exact closed forms for ν = 1, 2; the Cornish–Fisher expansion of
//!   the normal quantile for ν ≥ 3) so the workspace's dependency set
//!   stays empty.
//! * [`bootstrap_mean_ci`] — a seeded percentile bootstrap for metrics
//!   whose distribution is too skewed for the t assumption (hijack timing
//!   tails). Deterministic under a `tm_rand` generator, like everything
//!   else in the workspace.

use tm_rand::Rng;

use crate::quantile::{normal_inverse_cdf, quantile};
use crate::summary::Summary;

/// A two-sided confidence interval on a mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Half-width of the interval; `mean ± half_width` covers the target
    /// confidence level. Zero when n < 2.
    pub half_width: f64,
    /// Lower bound (`mean - half_width`).
    pub lo: f64,
    /// Upper bound (`mean + half_width`).
    pub hi: f64,
    /// Number of samples the interval is based on.
    pub n: usize,
    /// The confidence level the interval targets (e.g. 0.95).
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Formats as `mean ± half_width` with the given precision, the
    /// paper's table style.
    pub fn mean_pm(&self, decimals: usize) -> String {
        format!(
            "{:.*} ± {:.*}",
            decimals, self.mean, decimals, self.half_width
        )
    }

    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }
}

/// The `p`-quantile of Student's t distribution with `df` degrees of
/// freedom.
///
/// ν = 1 (Cauchy) and ν = 2 use their exact closed forms; ν ≥ 3 uses the
/// Cornish–Fisher asymptotic expansion around the normal quantile, whose
/// error at ν = 3 is ≈ 4 · 10⁻³ and falls off rapidly with ν — well inside
/// what a reproduction table's ± column can resolve.
///
/// # Panics
/// Panics unless `df ≥ 1` and `0 < p < 1`.
pub fn student_t_quantile(df: usize, p: f64) -> f64 {
    assert!(df >= 1, "degrees of freedom must be >= 1");
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    match df {
        // Cauchy: F⁻¹(p) = tan(π (p − ½)).
        1 => (std::f64::consts::PI * (p - 0.5)).tan(),
        // ν = 2: F⁻¹(p) = (2p − 1) · √(2 / (4p(1 − p))).
        2 => (2.0 * p - 1.0) * (2.0 / (4.0 * p * (1.0 - p))).sqrt(),
        _ => {
            let v = df as f64;
            let z = normal_inverse_cdf(p);
            let z2 = z * z;
            let z3 = z2 * z;
            let z5 = z3 * z2;
            let z7 = z5 * z2;
            let z9 = z7 * z2;
            z + (z3 + z) / (4.0 * v)
                + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * v * v)
                + (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * v * v * v)
                + (79.0 * z9 + 776.0 * z7 + 1482.0 * z5 - 1920.0 * z3 - 945.0 * z)
                    / (92160.0 * v * v * v * v)
        }
    }
}

/// The two-sided Student-t confidence interval on the mean of `samples`
/// at the given `confidence` level (e.g. 0.95).
///
/// Returns `None` for an empty slice or a confidence outside `(0, 1)`.
/// A single sample yields a degenerate interval of half-width zero (there
/// is no dispersion information), which keeps campaign tables total.
pub fn t_interval(samples: &[f64], confidence: f64) -> Option<ConfidenceInterval> {
    t_interval_of(&Summary::of(samples), confidence)
}

/// The two-sided Student-t confidence interval computed from
/// already-accumulated summary statistics.
///
/// This is the streaming-aggregation entry point: a campaign shard folds
/// its samples into an [`OnlineStats`](crate::OnlineStats) accumulator
/// (optionally [`merge`](crate::OnlineStats::merge)d across shards), takes
/// a [`Summary`] snapshot, and derives the interval without ever holding
/// the raw samples. Because [`Summary::of`] is itself a sequential Welford
/// fold, `t_interval_of(&Summary::of(samples), c)` is **bit-identical** to
/// [`t_interval`]`(samples, c)` — the campaign runner's byte-identical
/// output contract depends on this, and a regression test pins it.
///
/// Returns `None` for an empty summary (`count == 0`) or a confidence
/// outside `(0, 1)`; a single sample yields a degenerate half-width of
/// zero, exactly like [`t_interval`].
pub fn t_interval_of(s: &Summary, confidence: f64) -> Option<ConfidenceInterval> {
    if s.count == 0 || !(confidence > 0.0 && confidence < 1.0) {
        return None;
    }
    let half_width = if s.count < 2 {
        0.0
    } else {
        let t = student_t_quantile(s.count - 1, 0.5 + confidence / 2.0);
        t * s.sd / (s.count as f64).sqrt()
    };
    Some(ConfidenceInterval {
        mean: s.mean,
        half_width,
        lo: s.mean - half_width,
        hi: s.mean + half_width,
        n: s.count,
        confidence,
    })
}

/// A seeded percentile-bootstrap confidence interval on the mean.
///
/// Draws `resamples` bootstrap resamples (with replacement) from
/// `samples`, computes each resample's mean, and reports the empirical
/// `(1 − confidence)/2` and `(1 + confidence)/2` quantiles of those means.
/// The reported `half_width` is half the interval span (the interval
/// itself need not be symmetric around the sample mean for skewed data).
///
/// Fully deterministic under the supplied generator: same samples, same
/// seed, same interval.
///
/// Returns `None` for an empty slice, a confidence outside `(0, 1)`, or
/// `resamples == 0`.
pub fn bootstrap_mean_ci<R: Rng>(
    samples: &[f64],
    confidence: f64,
    resamples: usize,
    rng: &mut R,
) -> Option<ConfidenceInterval> {
    if samples.is_empty() || !(confidence > 0.0 && confidence < 1.0) || resamples == 0 {
        return None;
    }
    let mean = Summary::of(samples).mean;
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..samples.len() {
            sum += samples[rng.gen_range(0..samples.len())];
        }
        means.push(sum / samples.len() as f64);
    }
    let alpha = (1.0 - confidence) / 2.0;
    let lo = quantile(&means, alpha)?;
    let hi = quantile(&means, 1.0 - alpha)?;
    Some(ConfidenceInterval {
        mean,
        half_width: (hi - lo) / 2.0,
        lo,
        hi,
        n: samples.len(),
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_rand::StdRng;

    // Hand-checked critical values (R: qt(0.975, df) / qt(0.995, df)).
    #[test]
    fn t_quantile_matches_tables() {
        let cases = [
            (1, 0.975, 12.7062, 1e-3),
            (2, 0.975, 4.302653, 1e-6),
            (3, 0.975, 3.182446, 5e-3),
            (4, 0.975, 2.776445, 1e-3),
            (9, 0.975, 2.262157, 1e-4),
            (9, 0.995, 3.249836, 1e-3),
            (29, 0.975, 2.045230, 1e-5),
            (99, 0.975, 1.984217, 1e-6),
        ];
        for (df, p, want, tol) in cases {
            let got = student_t_quantile(df, p);
            assert!(
                (got - want).abs() < tol,
                "t({df}, {p}) = {got}, want {want}"
            );
        }
    }

    #[test]
    fn t_quantile_is_antisymmetric_and_centered() {
        for df in [1usize, 2, 5, 30] {
            assert!(student_t_quantile(df, 0.5).abs() < 1e-12, "df {df}");
            let hi = student_t_quantile(df, 0.9);
            let lo = student_t_quantile(df, 0.1);
            assert!((hi + lo).abs() < 1e-9, "df {df}: {hi} vs {lo}");
            assert!(hi > 0.0);
        }
    }

    #[test]
    fn t_interval_hand_computed_fixture() {
        // Samples with mean 5 and sample sd sqrt(32/7) over n = 8:
        // half-width = t(7, .975) * sd / sqrt(8) = 2.364624 * 2.13809 / 2.82843.
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let ci = t_interval(&samples, 0.95).expect("interval");
        assert_eq!(ci.n, 8);
        assert!((ci.mean - 5.0).abs() < 1e-12);
        let want = 2.364624 * (32.0f64 / 7.0).sqrt() / 8.0f64.sqrt();
        assert!(
            (ci.half_width - want).abs() < 2e-3,
            "half {} want {want}",
            ci.half_width
        );
        assert!((ci.lo - (ci.mean - ci.half_width)).abs() < 1e-12);
        assert!((ci.hi - (ci.mean + ci.half_width)).abs() < 1e-12);
        assert!(ci.contains(5.0) && !ci.contains(0.0));
    }

    #[test]
    fn t_interval_degenerate_inputs() {
        assert!(t_interval(&[], 0.95).is_none());
        assert!(t_interval(&[1.0], 1.0).is_none());
        assert!(t_interval(&[1.0], 0.0).is_none());
        let one = t_interval(&[3.0], 0.95).expect("single sample");
        assert_eq!(one.half_width, 0.0);
        assert_eq!(one.mean, 3.0);
        assert_eq!(one.n, 1);
    }

    #[test]
    fn t_interval_of_is_bit_identical_to_t_interval() {
        // The campaign runner's streaming aggregation path computes
        // intervals from a Welford snapshot; the two-pass reference path
        // computes them from the raw samples. Byte-identical campaign
        // output requires these to agree to the last bit.
        let samples: Vec<f64> = (0..23).map(|i| ((i * 37) % 11) as f64 * 0.31).collect();
        for conf in [0.90, 0.95, 0.99] {
            let direct = t_interval(&samples, conf).expect("direct");
            let from_summary = t_interval_of(&Summary::of(&samples), conf).expect("snapshot");
            assert_eq!(direct.mean.to_bits(), from_summary.mean.to_bits());
            assert_eq!(
                direct.half_width.to_bits(),
                from_summary.half_width.to_bits()
            );
            assert_eq!(direct.lo.to_bits(), from_summary.lo.to_bits());
            assert_eq!(direct.hi.to_bits(), from_summary.hi.to_bits());
            assert_eq!(direct.n, from_summary.n);
        }
        // Degenerate inputs behave identically too.
        assert!(t_interval_of(&Summary::of(&[]), 0.95).is_none());
        assert!(t_interval_of(&Summary::of(&[1.0]), 1.0).is_none());
        let one = t_interval_of(&Summary::of(&[3.0]), 0.95).expect("single sample");
        assert_eq!(one.half_width, 0.0);
    }

    #[test]
    fn mean_pm_formats_like_the_paper() {
        let ci = t_interval(&[1.0, 2.0, 3.0], 0.95).expect("interval");
        assert_eq!(ci.mean_pm(2), "2.00 ± 2.48");
    }

    #[test]
    fn bootstrap_is_deterministic_and_brackets_the_mean() {
        let samples: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let a = bootstrap_mean_ci(&samples, 0.95, 500, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = bootstrap_mean_ci(&samples, 0.95, 500, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b, "same seed must replay exactly");
        assert!(a.lo <= a.mean && a.mean <= a.hi);
        assert!(a.half_width > 0.0);
        let c = bootstrap_mean_ci(&samples, 0.95, 500, &mut StdRng::seed_from_u64(10)).unwrap();
        assert_ne!(a, c, "distinct seeds draw distinct resamples");
    }

    #[test]
    fn bootstrap_degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(bootstrap_mean_ci(&[], 0.95, 100, &mut rng).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 0, &mut rng).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 1.5, 100, &mut rng).is_none());
        let one = bootstrap_mean_ci(&[4.0], 0.95, 100, &mut rng).unwrap();
        assert_eq!(one.half_width, 0.0);
        assert_eq!(one.mean, 4.0);
    }
}
