//! Quantiles: empirical (type-7 linear interpolation) and the normal
//! inverse CDF.
//!
//! The Port Probing attacker chooses its probe timeout by computing a
//! quantile of the observed RTT distribution at a target false-positive rate
//! (§V-B1): with RTT ~ N(20 ms, 5 ms) and a 1 % false-positive budget, the
//! 99th percentile is ≈ 31.6 ms, which the paper rounds up to 35 ms.

/// Computes the `q`-quantile (0 ≤ q ≤ 1) of `sorted` using linear
/// interpolation between order statistics (R's default "type 7").
///
/// Returns `None` for an empty slice or `q` outside `[0, 1]`.
///
/// # Panics
/// Does not verify sortedness; results on unsorted input are meaningless.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    let frac = pos - lower as f64;
    Some(sorted[lower] + frac * (sorted[upper] - sorted[lower]))
}

/// Convenience: sorts a copy of `samples` and computes the `q`-quantile.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    let mut sorted = samples.to_vec();
    // total_cmp: NaN-total and deterministic, unlike partial_cmp.
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, q)
}

/// The inverse CDF (quantile function) of the standard normal distribution,
/// computed with Acklam's rational approximation (relative error < 1.15e-9).
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn normal_inverse_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];

    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The quantile of `N(mean, sd²)` at probability `p`: the probe-timeout
/// formula from §V-B1.
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(mean: f64, sd: f64, p: f64) -> f64 {
    mean + sd * normal_inverse_cdf(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_quantiles() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), Some(1.0));
        assert_eq!(quantile_sorted(&sorted, 1.0), Some(5.0));
        assert_eq!(quantile_sorted(&sorted, 0.5), Some(3.0));
        assert_eq!(quantile_sorted(&sorted, 0.25), Some(2.0));
        // Interpolated value.
        assert_eq!(quantile_sorted(&sorted, 0.1), Some(1.4));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(quantile_sorted(&[], 0.5), None);
        assert_eq!(quantile_sorted(&[7.0], 0.99), Some(7.0));
        assert_eq!(quantile_sorted(&[1.0, 2.0], 1.5), None);
        assert_eq!(quantile_sorted(&[1.0, 2.0], -0.1), None);
    }

    #[test]
    fn quantile_sorts_for_you() {
        assert_eq!(quantile(&[5.0, 1.0, 3.0], 0.5), Some(3.0));
    }

    #[test]
    fn inverse_cdf_known_values() {
        // Φ⁻¹(0.5) = 0, Φ⁻¹(0.975) ≈ 1.959964, Φ⁻¹(0.99) ≈ 2.326348.
        assert!(normal_inverse_cdf(0.5).abs() < 1e-9);
        assert!((normal_inverse_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_inverse_cdf(0.99) - 2.326348).abs() < 1e-5);
        assert!((normal_inverse_cdf(0.01) + 2.326348).abs() < 1e-5);
        // Tail region (p < 0.02425) exercises the low branch.
        assert!((normal_inverse_cdf(0.001) + 3.090232).abs() < 1e-5);
    }

    #[test]
    fn paper_probe_timeout_derivation() {
        // §V-B1: RTT ~ N(20 ms, 5 ms), 1% false positives -> ≈31.6 ms,
        // which the authors round to a 35 ms timeout.
        let timeout = normal_quantile(20.0, 5.0, 0.99);
        assert!((timeout - 31.63).abs() < 0.05, "got {timeout}");
        assert!(timeout < 35.0);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn inverse_cdf_rejects_out_of_range() {
        let _ = normal_inverse_cdf(1.0);
    }
}
