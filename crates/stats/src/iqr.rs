//! The fixed-size sample store and interquartile-range outlier rule used by
//! TopoGuard+'s Link Latency Inspector (§VI-D).
//!
//! > "The LLI maintains a fixed size data store for values of the latencies
//! > of switch internal links measured from verified LLDP packets and
//! > computes lower quartile (Q1), upper quartile (Q3), and interquartile
//! > range (IQR, Q3−Q1) upon the data store. When a new LLDP packet arrives
//! > in the SDN controller, the LLI inspects the computed latency value with
//! > the threshold (Q3 + 3·IQR)."

use std::collections::VecDeque;

use crate::quantile::quantile_sorted;

/// The verdict for one inspected sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IqrVerdict {
    /// Not enough history to judge; the sample was admitted to the store.
    Warmup,
    /// The sample is within `Q3 + k·IQR` and was admitted to the store.
    Normal,
    /// The sample exceeds the threshold; it was *not* admitted to the store
    /// (outliers must not poison the baseline).
    Outlier {
        /// The threshold the sample was compared against.
        threshold: f64,
    },
}

/// A sliding-window IQR outlier detector.
#[derive(Clone, Debug)]
pub struct IqrOutlierDetector {
    window: VecDeque<f64>,
    capacity: usize,
    min_samples: usize,
    k: f64,
}

impl IqrOutlierDetector {
    /// Creates a detector over a window of `capacity` samples, judging only
    /// once `min_samples` have been collected, with threshold `Q3 + k·IQR`.
    ///
    /// The paper uses `k = 3` (a "far outlier" fence).
    ///
    /// # Panics
    /// Panics if `capacity == 0`, `min_samples == 0`, or `k < 0`.
    pub fn new(capacity: usize, min_samples: usize, k: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(min_samples > 0, "min_samples must be positive");
        assert!(k >= 0.0, "k must be non-negative");
        IqrOutlierDetector {
            window: VecDeque::with_capacity(capacity),
            capacity,
            min_samples: min_samples.min(capacity),
            k,
        }
    }

    /// A detector with the paper's parameters: window of 100 verified
    /// latencies, 10-sample warmup, threshold `Q3 + 3·IQR`.
    pub fn paper_default() -> Self {
        IqrOutlierDetector::new(100, 10, 3.0)
    }

    /// Number of samples currently in the store.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Returns `true` if no samples have been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The current `Q3 + k·IQR` threshold, or `None` during warmup.
    pub fn threshold(&self) -> Option<f64> {
        if self.window.len() < self.min_samples {
            return None;
        }
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        // total_cmp: NaN-total and deterministic, unlike partial_cmp
        // (a NaN sample must not be able to panic or reorder the store).
        sorted.sort_by(f64::total_cmp);
        let q1 = quantile_sorted(&sorted, 0.25)?;
        let q3 = quantile_sorted(&sorted, 0.75)?;
        Some(q3 + self.k * (q3 - q1))
    }

    /// Inspects `sample`: judges it against the current threshold, then
    /// admits it to the store unless it was an outlier.
    pub fn inspect(&mut self, sample: f64) -> IqrVerdict {
        match self.threshold() {
            None => {
                self.admit(sample);
                IqrVerdict::Warmup
            }
            Some(threshold) if sample > threshold => IqrVerdict::Outlier { threshold },
            Some(_) => {
                self.admit(sample);
                IqrVerdict::Normal
            }
        }
    }

    fn admit(&mut self, sample: f64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_admits_everything() {
        let mut det = IqrOutlierDetector::new(100, 10, 3.0);
        for i in 0..9 {
            assert_eq!(det.inspect(5.0 + i as f64 * 0.01), IqrVerdict::Warmup);
        }
        assert_eq!(det.len(), 9);
        assert!(det.threshold().is_none());
    }

    #[test]
    fn steady_state_accepts_normal_flags_outlier() {
        let mut det = IqrOutlierDetector::paper_default();
        // ~5 ms latencies with small spread.
        for i in 0..50 {
            det.inspect(5.0 + (i % 5) as f64 * 0.1);
        }
        assert_eq!(det.inspect(5.3), IqrVerdict::Normal);
        // A 15 ms relayed-link latency is far beyond Q3 + 3*IQR.
        match det.inspect(15.0) {
            IqrVerdict::Outlier { threshold } => assert!(threshold < 15.0),
            other => panic!("expected outlier, got {other:?}"),
        }
    }

    #[test]
    fn outliers_do_not_poison_the_store() {
        let mut det = IqrOutlierDetector::paper_default();
        for _ in 0..20 {
            det.inspect(5.0);
        }
        let before = det.len();
        let _ = det.inspect(500.0);
        assert_eq!(det.len(), before, "outlier must not be admitted");
        // Repeated attack samples keep being flagged.
        for _ in 0..10 {
            assert!(matches!(det.inspect(500.0), IqrVerdict::Outlier { .. }));
        }
    }

    #[test]
    fn window_slides() {
        let mut det = IqrOutlierDetector::new(10, 2, 3.0);
        for _ in 0..10 {
            det.inspect(1.0);
        }
        assert_eq!(det.len(), 10);
        // Gradually shift the baseline upward; window keeps only 10.
        for i in 0..10 {
            det.inspect(1.0 + i as f64 * 0.001);
        }
        assert_eq!(det.len(), 10);
    }

    #[test]
    fn tolerates_a_burst_during_warmup() {
        // The paper notes controller bootstrap adds large latencies that
        // raise the threshold until steady state (Fig. 11). The detector
        // admits them during warmup, then converges as the window slides.
        let mut det = IqrOutlierDetector::new(20, 5, 3.0);
        for _ in 0..5 {
            det.inspect(50.0); // bootstrap burst
        }
        let bootstrapped = det.threshold().expect("past warmup");
        for _ in 0..40 {
            det.inspect(5.0);
        }
        let steady = det.threshold().expect("steady state");
        assert!(steady < bootstrapped);
        assert!(
            steady < 10.0,
            "threshold should converge near 5 ms, got {steady}"
        );
    }

    #[test]
    fn constant_data_has_zero_iqr() {
        let mut det = IqrOutlierDetector::new(10, 2, 3.0);
        det.inspect(5.0);
        det.inspect(5.0);
        assert_eq!(det.threshold(), Some(5.0));
        // Any sample strictly above the constant is an outlier.
        assert!(matches!(det.inspect(5.001), IqrVerdict::Outlier { .. }));
        assert_eq!(det.inspect(5.0), IqrVerdict::Normal);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = IqrOutlierDetector::new(0, 1, 3.0);
    }
}
