//! Summary statistics, offline and streaming.

/// Summary statistics over a batch of samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for empty input).
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 when n < 2).
    pub sd: f64,
    /// Minimum (0 for empty input).
    pub min: f64,
    /// Maximum (0 for empty input).
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `samples`.
    pub fn of(samples: &[f64]) -> Summary {
        let mut stats = OnlineStats::new();
        for &x in samples {
            stats.push(x);
        }
        stats.summary()
    }

    /// Formats as `mean ± sd` with the given precision, mirroring the
    /// paper's table style.
    pub fn mean_pm_sd(&self, decimals: usize) -> String {
        format!("{:.*} ± {:.*}", decimals, self.mean, decimals, self.sd)
    }
}

/// Streaming (Welford) mean/variance tracker with min/max.
///
/// Used by long-running experiments to accumulate statistics without
/// retaining every sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Current sample standard deviation (0 when n < 2).
    pub fn sd(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Snapshot of the summary statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            sd: self.sd(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }

    /// The raw accumulator state `(count, mean, m2, min, max)`.
    ///
    /// Intended for checkpoint/run-log serialization: store the five
    /// values bit-exactly (f64 → [`f64::to_bits`]) and rebuild with
    /// [`OnlineStats::from_parts`] to resume accumulation — or
    /// [`OnlineStats::merge`] — without any loss. The parts of an empty
    /// tracker include the `±∞` min/max sentinels; round-tripping them
    /// through `from_parts` preserves that state exactly.
    pub fn to_parts(&self) -> (usize, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds a tracker from [`OnlineStats::to_parts`] output.
    ///
    /// The parts are trusted verbatim: feeding values that did not come
    /// from `to_parts` produces a tracker whose statistics are undefined
    /// (though never unsafe — all derived quantities stay total).
    pub fn from_parts(count: usize, mean: f64, m2: f64, min: f64, max: f64) -> OnlineStats {
        OnlineStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another tracker into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.sd, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.sd - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_sample_has_zero_sd() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.sd, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn online_matches_offline() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let offline = Summary::of(&data);
        let mut online = OnlineStats::new();
        for &x in &data {
            online.push(x);
        }
        let s = online.summary();
        assert!((s.mean - offline.mean).abs() < 1e-9);
        assert!((s.sd - offline.sd).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..50).map(|i| i as f64 * 0.7).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..20] {
            left.push(x);
        }
        for &x in &data[20..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.sd() - whole.sd()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn parts_round_trip_bit_exactly() {
        let mut stats = OnlineStats::new();
        for x in [0.1, -3.7, 1e9, 0.0, 42.42] {
            stats.push(x);
        }
        let (count, mean, m2, min, max) = stats.to_parts();
        let rebuilt = OnlineStats::from_parts(count, mean, m2, min, max);
        assert_eq!(stats, rebuilt);
        // Resuming accumulation from the rebuilt tracker matches exactly.
        let mut a = stats;
        let mut b = rebuilt;
        a.push(7.5);
        b.push(7.5);
        assert_eq!(a, b);
        // The empty tracker's ±∞ sentinels survive the round trip.
        let empty = OnlineStats::new();
        let (c, m, m2, lo, hi) = empty.to_parts();
        assert_eq!(OnlineStats::from_parts(c, m, m2, lo, hi), empty);
    }

    #[test]
    fn merge_is_associative_enough_for_sharding() {
        // Three shards merged left-to-right equal the same shards merged
        // into an empty accumulator — the shard-merge discipline the
        // campaign checkpoint relies on.
        let data: Vec<f64> = (0..60).map(|i| ((i * 13) % 17) as f64 * 0.5).collect();
        let chunks: Vec<OnlineStats> = data
            .chunks(20)
            .map(|c| {
                let mut s = OnlineStats::new();
                for &x in c {
                    s.push(x);
                }
                s
            })
            .collect();
        let mut left = chunks[0];
        left.merge(&chunks[1]);
        left.merge(&chunks[2]);
        let mut from_empty = OnlineStats::new();
        for c in &chunks {
            from_empty.merge(c);
        }
        assert_eq!(left, from_empty);
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.sd() - whole.sd()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn mean_pm_sd_format() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean_pm_sd(2), "2.00 ± 1.00");
    }
}
