//! Statistical toolkit for the TopoMirage reproduction.
//!
//! Everything here is deterministic under a seeded [`tm_rand::Rng`]:
//!
//! * [`dist`] — sampling distributions (normal, log-normal, exponential,
//!   shifted Pareto) implemented from first principles so the workspace's
//!   dependency set stays at the approved list. The paper models network
//!   delay as `N(20 ms, 5 ms)` (§V-B1) and identifier-change latency as a
//!   heavy-tailed distribution (Fig. 4); both are built from these.
//! * [`summary`] — offline and online (Welford) summary statistics.
//! * [`quantile`](mod@quantile) — empirical quantiles and the normal inverse CDF, which is
//!   how the attacker derives a probe timeout from a target false-positive
//!   rate ("computing the quantile distribution function", §V-B1).
//! * [`ci`] — confidence intervals on means (Student-t and seeded
//!   percentile bootstrap), which is how the campaign runner turns
//!   multi-seed sweeps into the paper's "value ± spread" table entries.
//! * [`iqr`] — the fixed-size latency store and `Q3 + 3·IQR` outlier rule
//!   used by TopoGuard+'s Link Latency Inspector (§VI-D).
//! * [`histogram`] — fixed-bin histograms with a text renderer, used to
//!   regenerate the paper's distribution figures (Figs. 4–8, 10, 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod dist;
pub mod histogram;
pub mod iqr;
pub mod quantile;
pub mod summary;

pub use ci::{
    bootstrap_mean_ci, student_t_quantile, t_interval, t_interval_of, ConfidenceInterval,
};
pub use dist::{Distribution, Exponential, LogNormal, Normal, ShiftedPareto, UniformRange};
pub use histogram::Histogram;
pub use iqr::{IqrOutlierDetector, IqrVerdict};
pub use quantile::{normal_inverse_cdf, normal_quantile, quantile, quantile_sorted};
pub use summary::{OnlineStats, Summary};
