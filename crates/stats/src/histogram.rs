//! Fixed-bin histograms with a text renderer, used to regenerate the
//! paper's distribution figures in terminal output.

use crate::summary::Summary;

/// A histogram over `[low, high)` with equal-width bins, plus underflow and
/// overflow counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    samples: Vec<f64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[low, high)`.
    ///
    /// # Panics
    /// Panics unless `low < high` and `bins > 0`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(low < high, "low must be less than high");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            samples: Vec::new(),
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let width = (self.high - self.low) / self.bins.len() as f64;
            let idx = ((x - self.low) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Records every sample in `xs`.
    pub fn record_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.record(x);
        }
    }

    /// Total recorded samples (including under/overflow).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Count in each bin.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Samples that fell below `low`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at or above `high`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `[start, end)` range of bin `idx`.
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        let width = (self.high - self.low) / self.bins.len() as f64;
        (
            self.low + idx as f64 * width,
            self.low + (idx + 1) as f64 * width,
        )
    }

    /// Summary statistics over all recorded samples.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.samples)
    }

    /// Renders a textual histogram: one line per bin, bar lengths scaled to
    /// `width` characters, annotated with ranges and counts. `unit` labels
    /// the x axis (e.g. `"ms"`).
    pub fn render(&self, unit: &str, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!(
                "  < {:>8.2} {unit} | {}\n",
                self.low, self.underflow
            ));
        }
        for (idx, &count) in self.bins.iter().enumerate() {
            let (start, end) = self.bin_range(idx);
            let bar_len = ((count as f64 / max as f64) * width as f64).round() as usize;
            out.push_str(&format!(
                "  [{start:>8.2}, {end:>8.2}) {unit} |{} {count}\n",
                "#".repeat(bar_len)
            ));
        }
        if self.overflow > 0 {
            out.push_str(&format!(
                " >= {:>8.2} {unit} | {}\n",
                self.high, self.overflow
            ));
        }
        let s = self.summary();
        out.push_str(&format!(
            "  n={} mean={:.3}{unit} sd={:.3}{unit} min={:.3}{unit} max={:.3}{unit}\n",
            s.count, s.mean, s.sd, s.min, s.max
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all(&[0.0, 1.9, 2.0, 5.5, 9.999]);
        assert_eq!(h.bins(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(-1.0);
        h.record(10.0);
        h.record(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn bin_ranges_are_contiguous() {
        let h = Histogram::new(2.0, 4.0, 4);
        assert_eq!(h.bin_range(0), (2.0, 2.5));
        assert_eq!(h.bin_range(3), (3.5, 4.0));
    }

    #[test]
    fn render_contains_counts_and_summary() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.record_all(&[1.0, 1.0, 3.0]);
        let text = h.render("ms", 20);
        assert!(text.contains("n=3"));
        assert!(text.contains('#'));
        assert!(text.contains("mean=1.667ms"));
    }

    #[test]
    fn summary_tracks_all_samples_even_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record_all(&[0.5, 100.0]);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 100.0);
    }
}
