//! A bounded, typed event trace for tests, debugging, and experiments.

use sdn_types::{DatapathId, HostId, PortNo, SimTime};

/// One traced simulation event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A table-miss or action-directed packet was sent to the controller.
    PacketIn {
        /// When it was sent up.
        at: SimTime,
        /// The switch.
        dpid: DatapathId,
        /// The ingress port.
        port: PortNo,
        /// EtherType of the packet.
        ethertype: u16,
    },
    /// The switch declared a port down (link-pulse loss).
    PortDown {
        /// When detection fired.
        at: SimTime,
        /// The switch.
        dpid: DatapathId,
        /// The port.
        port: PortNo,
    },
    /// The switch declared a port up.
    PortUp {
        /// When detection fired.
        at: SimTime,
        /// The switch.
        dpid: DatapathId,
        /// The port.
        port: PortNo,
    },
    /// A frame was delivered to a host.
    HostRx {
        /// Delivery time.
        at: SimTime,
        /// The host.
        host: HostId,
        /// EtherType of the frame.
        ethertype: u16,
    },
    /// A frame was dropped in transit.
    Dropped {
        /// When.
        at: SimTime,
        /// Why (static description).
        reason: &'static str,
    },
    /// A flow rule was installed on a switch.
    FlowInstalled {
        /// When.
        at: SimTime,
        /// The switch.
        dpid: DatapathId,
    },
    /// A frame crossed an out-of-band channel.
    OobRelay {
        /// Delivery time.
        at: SimTime,
        /// Sender.
        from: HostId,
        /// Receiver.
        to: HostId,
    },
}

impl TraceEvent {
    /// A coarse kind label for counting.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PacketIn { .. } => "PacketIn",
            TraceEvent::PortDown { .. } => "PortDown",
            TraceEvent::PortUp { .. } => "PortUp",
            TraceEvent::HostRx { .. } => "HostRx",
            TraceEvent::Dropped { .. } => "Dropped",
            TraceEvent::FlowInstalled { .. } => "FlowInstalled",
            TraceEvent::OobRelay { .. } => "OobRelay",
        }
    }
}

/// A bounded trace. Once `capacity` records have been stored, further
/// records are counted but not retained.
#[derive(Clone, Debug)]
pub struct Trace {
    records: Vec<TraceEvent>,
    capacity: usize,
    total: u64,
}

impl Trace {
    /// Creates a trace retaining up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Trace {
            records: Vec::new(),
            capacity,
            total: 0,
        }
    }

    /// Records an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.total += 1;
        if self.records.len() < self.capacity {
            self.records.push(event);
        }
    }

    /// All retained records, in order.
    pub fn records(&self) -> &[TraceEvent] {
        &self.records
    }

    /// Total events observed (including any beyond capacity).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Counts retained records of the given kind.
    pub fn count(&self, kind: &str) -> usize {
        self.records.iter().filter(|r| r.kind() == kind).count()
    }

    /// Iterates retained records of the given kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.records.iter().filter(move |r| r.kind() == kind)
    }

    /// Clears retained records (the total count is preserved).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut t = Trace::new(10);
        t.push(TraceEvent::PortDown {
            at: SimTime::ZERO,
            dpid: DatapathId::new(1),
            port: PortNo::new(1),
        });
        t.push(TraceEvent::PortUp {
            at: SimTime::ZERO,
            dpid: DatapathId::new(1),
            port: PortNo::new(1),
        });
        assert_eq!(t.count("PortDown"), 1);
        assert_eq!(t.count("PortUp"), 1);
        assert_eq!(t.total(), 2);
    }

    #[test]
    fn capacity_bounds_retention_not_total() {
        let mut t = Trace::new(2);
        for _ in 0..5 {
            t.push(TraceEvent::Dropped {
                at: SimTime::ZERO,
                reason: "test",
            });
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.total(), 5);
    }
}
