//! Pluggable event-queue backends for the discrete-event core.
//!
//! Two interchangeable implementations live here, selected per simulation
//! by [`SchedBackend`]:
//!
//! * [`TimingWheel`] — the default: a two-phase adaptive queue. While
//!   the pending set is small enough to stay cache-resident it serves
//!   events from a plain `BinaryHeap` (the *direct* phase) — at that
//!   scale no multi-level structure beats a heap whose working set fits
//!   in L2. When the pending set crosses [`MIGRATE_THRESHOLD`] the queue
//!   migrates into a five-level hierarchical timing wheel, and
//!   de-migrates (with 4× hysteresis, [`DEMIGRATE_THRESHOLD`]) once the
//!   set shrinks back. Measured on the generated control-plane
//!   workloads (`engine_throughput` bench), fabrics up to 1000 switches
//!   run entirely in the direct phase, so the wheel costs nothing where
//!   it cannot win; the hierarchical phase exists for pending sets the
//!   cache cannot hold — many-thousand-switch fabrics or long-horizon
//!   fault plans parking tens of thousands of timers.
//! * [`HeapQueue`] — the original `BinaryHeap` scheduler, kept alive so
//!   the differential test suite (`tests/sched_diff.rs` and the
//!   `tm_prop!` workload generator below) can prove both backends
//!   produce byte-identical traces. The `heap-sched` cargo feature flips
//!   the compile-time default back to the heap.
//!
//! Both backends implement the same contract: pop order is strictly
//! ascending `(time, seq)`, which the `debug_assertions` invariant
//! checker in [`crate::engine`] re-verifies at runtime. The hierarchical
//! phase is forced on in tests via `force_hierarchical`, so equivalence
//! is proven for both phases and for the migration boundary itself, not
//! just for whichever phase the workload happens to exercise.
//!
//! # Wheel geometry (hierarchical phase)
//!
//! Ticks are `2^20` ns (≈ 1 ms): one tick spans a dataplane hop
//! (50 µs–1 ms here), so a discovery round's fan-out lands in the
//! current or next level-0 slot. Five levels of 64 slots cover `2^50`
//! ns ≈ 13 days of relative delay; anything further goes to a sorted
//! overflow map and is merged back when the cursor reaches it.
//!
//! An event's level is derived from the bits where its tick differs
//! from the cursor (the Linux/tokio "hashed hierarchical wheel" rule):
//! `level = msb(tick ^ cursor) / 6`. The cursor never passes an
//! occupied slot — it jumps straight to the earliest one, cascading
//! that slot's entries down a level at a time until the earliest tick
//! sits in level 0. That slot is heapified (`O(n)`) into the current
//! batch; late arrivals inside the open batch window push in
//! `O(log batch)`, and the spent batch's storage is recycled, so the
//! steady state allocates nothing. A slot whose lone entry is the
//! global minimum short-circuits the cascade: the cursor jumps straight
//! to its tick.

use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};

use sdn_types::SimTime;

use crate::engine::Event;

/// Which event-queue implementation a simulation uses.
///
/// The choice can never affect simulation output — the differential
/// scheduler suite asserts byte-identical traces for every scenario —
/// only wall-clock speed. See [`NetworkSpec::set_sched_backend`]
/// (per-spec) and [`set_global_sched_backend`] (process default).
///
/// [`NetworkSpec::set_sched_backend`]: crate::NetworkSpec::set_sched_backend
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedBackend {
    /// Hierarchical timing wheel (the default).
    Wheel,
    /// The original binary-heap scheduler.
    Heap,
}

/// Process-wide backend override: 0 = unset, 1 = wheel, 2 = heap.
///
/// A single atomic byte, not a lock: simulations stay single-threaded
/// (the determinism contract), this only routes which queue a
/// `Simulator` constructed deep inside scenario code picks up. The
/// differential suite sets it around campaign sweeps whose adapters
/// don't expose a `NetworkSpec`.
static GLOBAL_BACKEND: AtomicU8 = AtomicU8::new(0);

/// Overrides the process-default scheduler backend (`None` restores the
/// compile-time default). Intended for differential tests that must run
/// identical scenarios under both backends; has no effect on simulations
/// whose spec sets a backend explicitly.
pub fn set_global_sched_backend(backend: Option<SchedBackend>) {
    let raw = match backend {
        None => 0,
        Some(SchedBackend::Wheel) => 1,
        Some(SchedBackend::Heap) => 2,
    };
    GLOBAL_BACKEND.store(raw, AtomicOrdering::Relaxed);
}

/// The backend a spec without an explicit choice resolves to: the global
/// override if set, else the compile-time default (`heap-sched` feature
/// selects the heap; otherwise the wheel).
pub fn default_sched_backend() -> SchedBackend {
    match GLOBAL_BACKEND.load(AtomicOrdering::Relaxed) {
        1 => SchedBackend::Wheel,
        2 => SchedBackend::Heap,
        _ => {
            if cfg!(feature = "heap-sched") {
                SchedBackend::Heap
            } else {
                SchedBackend::Wheel
            }
        }
    }
}

/// Size in bytes of one queued entry — what every heap sift and wheel
/// cascade moves per swap. Kept ≤ 32 by boxing fat event payloads (see
/// `engine::Event`); exposed so benches can record the footprint next to
/// their throughput numbers.
pub fn sched_entry_bytes() -> usize {
    std::mem::size_of::<Scheduled>()
}

/// A queued event with its firing time and tie-break sequence number.
#[derive(Debug)]
pub(crate) struct Scheduled {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    // tm-lint: allow(float-ordering) -- PartialOrd impl over integer (SimTime, seq) keys; no floats involved
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The dispatch enum both backends sit behind. Runtime (not feature)
/// selection is deliberate: the differential suite runs both backends in
/// one binary and diffs their traces.
pub(crate) enum EventQueue {
    /// Hierarchical timing wheel.
    Wheel(TimingWheel),
    /// Binary-heap scheduler.
    Heap(HeapQueue),
}

impl EventQueue {
    pub(crate) fn new(backend: SchedBackend) -> EventQueue {
        match backend {
            SchedBackend::Wheel => EventQueue::Wheel(TimingWheel::new()),
            SchedBackend::Heap => EventQueue::Heap(HeapQueue::default()),
        }
    }

    pub(crate) fn push(&mut self, s: Scheduled) {
        match self {
            EventQueue::Wheel(w) => w.push(s),
            EventQueue::Heap(h) => h.push(s),
        }
    }

    /// Removes and returns the earliest `(time, seq)` entry if it fires
    /// at or before `horizon`.
    pub(crate) fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<Scheduled> {
        match self {
            EventQueue::Wheel(w) => w.pop_at_or_before(horizon),
            EventQueue::Heap(h) => h.pop_at_or_before(horizon),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.direct.as_ref().map_or(w.len, BinaryHeap::len),
            EventQueue::Heap(h) => h.heap.len(),
        }
    }
}

/// The original `BinaryHeap` scheduler.
#[derive(Default)]
pub(crate) struct HeapQueue {
    heap: BinaryHeap<Scheduled>,
}

impl HeapQueue {
    fn push(&mut self, s: Scheduled) {
        self.heap.push(s);
    }

    fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<Scheduled> {
        match self.heap.peek() {
            Some(s) if s.at <= horizon => self.heap.pop(),
            _ => None,
        }
    }
}

/// Tick granularity: `2^GRAN_BITS` ns per tick (≈ 1 ms). Chosen so a
/// dataplane hop (50 µs – 1 ms in every testbed profile) lands in the
/// current or next level-0 slot while parked periodic timers (LLDP,
/// echo probes, flow expiry) spread across higher levels.
const GRAN_BITS: u32 = 20;
/// Slots per level: `2^SLOT_BITS`.
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Wheel levels; spans `2^(GRAN_BITS + SLOT_BITS * LEVELS)` ns ≈ 13 days.
const LEVELS: usize = 5;
/// Pending-set size beyond which the hierarchical phase engages.
///
/// Below it the queue serves straight from a binary heap: a
/// cache-resident heap (8192 × 32 B ≈ 256 KiB) beats any multi-level
/// structure — measured on the generated control-plane workloads, even
/// the 1000-switch fabric (steady pending ≈ 1k, boot-burst highwater
/// ≈ 5k) stays under it and ties the heap backend exactly. Past the
/// threshold the pending set is dominated by parked periodic timers
/// across thousands of switches; migrating them into wheel slots takes
/// them off every subsequent heap op's compare path.
const MIGRATE_THRESHOLD: usize = 8192;
/// Hysteresis low-water mark: once the pending set shrinks back to a
/// quarter of the migrate threshold, service returns to the direct
/// heap. A datacenter boot burst (every switch handshaking at once)
/// inflates the pending set far past what the steady state holds; the
/// 4× gap between the marks bounds migration churn while keeping each
/// regime on the structure that wins there.
const DEMIGRATE_THRESHOLD: usize = MIGRATE_THRESHOLD / 4;

/// Hierarchical timing wheel (see the module docs for the geometry).
pub(crate) struct TimingWheel {
    /// Direct-service phase: `Some` while the pending set is small
    /// enough that a plain heap wins ([`MIGRATE_THRESHOLD`] /
    /// [`DEMIGRATE_THRESHOLD`] hysteresis). While direct, none of the
    /// other fields are touched (and the slot vectors aren't even
    /// allocated until the first migration).
    direct: Option<BinaryHeap<Scheduled>>,
    /// Test hook: suppresses de-migration so unit tests can exercise
    /// the hierarchical paths with tiny pending sets.
    #[cfg(test)]
    pinned_hierarchical: bool,
    /// Absolute tick of the current batch window. Only advances when a
    /// batch is (re)built, and only to the tick of a pending event — so
    /// it never overtakes the clock of events still to be scheduled.
    cursor: u64,
    /// `LEVELS × SLOTS` buckets, flattened; entries within a bucket are
    /// in insertion order.
    slots: Vec<Vec<Scheduled>>,
    /// One occupancy bit per slot per level: finding the earliest
    /// non-empty slot is a `trailing_zeros`, not a scan.
    occupied: [u64; LEVELS],
    /// Events beyond the wheel span, keyed by exact firing time. Served
    /// directly from here — no re-insertion cascade needed.
    overflow: BTreeMap<SimTime, Vec<Scheduled>>,
    /// The drained contents of the current window, heap-ordered by
    /// `(time, seq)` (`Scheduled`'s `Ord` pops the earliest first).
    /// Late arrivals that land inside the window push in `O(log b)`;
    /// a drained slot heapifies in `O(b)` — no sort, no shifting.
    batch: BinaryHeap<Scheduled>,
    /// Exclusive end of the current batch window (only meaningful while
    /// `batch` is non-empty).
    batch_end: SimTime,
    /// Reusable staging buffer for `refill`: drained slot contents are
    /// collected, sorted, and moved into `batch` without allocating per
    /// window. Always empty between calls.
    scratch: Vec<Scheduled>,
    len: usize,
}

impl TimingWheel {
    fn new() -> TimingWheel {
        TimingWheel {
            direct: Some(BinaryHeap::with_capacity(64)),
            #[cfg(test)]
            pinned_hierarchical: false,
            cursor: 0,
            slots: Vec::new(), // allocated on migration
            occupied: [0; LEVELS],
            overflow: BTreeMap::new(),
            batch: BinaryHeap::new(),
            batch_end: SimTime::ZERO,
            scratch: Vec::new(),
            len: 0,
        }
    }

    /// Switch from direct to hierarchical service: allocates the slot
    /// store (first time only), seeds the cursor at the earliest
    /// pending tick, and distributes every entry. `O(n)`.
    fn migrate(&mut self) {
        let Some(direct) = self.direct.take() else {
            return;
        };
        let entries = direct.into_vec();
        self.len = entries.len();
        if self.slots.is_empty() {
            // Pre-size every bucket: scheduling must never malloc on
            // the hot path. ~80 KiB per simulation reaching this scale.
            self.slots = (0..LEVELS * SLOTS).map(|_| Vec::with_capacity(2)).collect();
            self.batch = BinaryHeap::with_capacity(64);
            self.scratch = Vec::with_capacity(64);
        }
        self.cursor = entries
            .iter()
            .map(|s| s.at.as_nanos() >> GRAN_BITS)
            .min()
            .unwrap_or(0);
        for s in entries {
            self.wheel_insert(s);
        }
    }

    /// The reverse switch: collects the wheel's contents back into a
    /// direct-service heap. `O(n)` with `n` small by definition (only
    /// taken below [`DEMIGRATE_THRESHOLD`]); the slot store keeps its
    /// allocation for the next migration.
    fn demigrate(&mut self) {
        debug_assert!(self.direct.is_none());
        let mut entries = Vec::with_capacity(self.len);
        entries.extend(self.batch.drain());
        for slot in &mut self.slots {
            entries.append(slot);
        }
        self.occupied = [0; LEVELS];
        for (_, bucket) in std::mem::take(&mut self.overflow) {
            entries.extend(bucket);
        }
        self.batch_end = SimTime::ZERO;
        self.len = 0;
        self.direct = Some(BinaryHeap::from(entries));
    }

    /// Whether the pending set has shrunk enough to return to direct
    /// service. Only meaningful in the hierarchical phase (callers
    /// check `direct` first).
    fn should_demigrate(&self) -> bool {
        #[cfg(test)]
        if self.pinned_hierarchical {
            return false;
        }
        debug_assert!(self.direct.is_none());
        self.len < DEMIGRATE_THRESHOLD
    }

    /// Kept small enough to inline into the `EventQueue` dispatch: the
    /// direct phase must cost exactly what the heap backend costs (plus
    /// one threshold compare), so the hierarchical path is outlined.
    #[inline]
    fn push(&mut self, s: Scheduled) {
        if let Some(direct) = &mut self.direct {
            direct.push(s);
            if direct.len() > MIGRATE_THRESHOLD {
                self.migrate();
            }
            return;
        }
        self.push_hierarchical(s);
    }

    /// Hierarchical-phase push. `self.len` is only maintained in this
    /// phase (the direct heap knows its own length).
    #[inline(never)]
    fn push_hierarchical(&mut self, s: Scheduled) {
        self.len += 1;
        // An event landing inside the open batch window (e.g. scheduled
        // with zero delay while the window dispatches) must interleave
        // with the batch by (time, seq), not wait behind it.
        if !self.batch.is_empty() && s.at < self.batch_end {
            self.batch.push(s);
            return;
        }
        self.wheel_insert(s);
    }

    fn wheel_insert(&mut self, s: Scheduled) {
        let tick = s.at.as_nanos() >> GRAN_BITS;
        debug_assert!(
            tick >= self.cursor,
            "wheel insert behind the cursor: tick {tick} < cursor {}",
            self.cursor
        );
        let diff = tick ^ self.cursor;
        if diff >> (SLOT_BITS * LEVELS as u32) != 0 {
            self.overflow.entry(s.at).or_default().push(s);
            return;
        }
        let level = if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros()) as usize / SLOT_BITS as usize
        };
        let slot = ((tick >> (SLOT_BITS as usize * level)) & SLOT_MASK) as usize;
        self.slots[level * SLOTS + slot].push(s);
        self.occupied[level] |= 1 << slot;
    }

    /// See [`TimingWheel::push`] on the inlining split.
    #[inline]
    fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<Scheduled> {
        if let Some(direct) = &mut self.direct {
            return match direct.peek() {
                Some(s) if s.at <= horizon => direct.pop(),
                _ => None,
            };
        }
        self.pop_hierarchical(horizon)
    }

    /// Hierarchical-phase pop (and the de-migration check — the pending
    /// set can only shrink on pops).
    #[inline(never)]
    fn pop_hierarchical(&mut self, horizon: SimTime) -> Option<Scheduled> {
        if self.should_demigrate() {
            self.demigrate();
            return self.pop_at_or_before(horizon);
        }
        if self.batch.is_empty() && !self.refill() {
            return None;
        }
        if self.batch.peek()?.at > horizon {
            return None;
        }
        self.len -= 1;
        self.batch.pop()
    }

    /// Test hook: force (and pin) the hierarchical phase regardless of
    /// size, so unit tests exercise the wheel paths below the threshold.
    #[cfg(test)]
    fn force_hierarchical(&mut self) {
        self.migrate();
        self.pinned_hierarchical = true;
    }

    /// The earliest occupied `(level, slot index, slot start tick)`.
    ///
    /// Levels are strictly time-ordered (level `l` entries all precede
    /// level `l+1` entries — they differ from the cursor in lower bits),
    /// and within a level every occupied index is ≥ the cursor's index,
    /// so the lowest set bit of the first occupied level is the earliest
    /// slot in the whole wheel.
    fn first_occupied(&self) -> Option<(usize, usize, u64)> {
        for level in 0..LEVELS {
            let bits = self.occupied[level];
            if bits != 0 {
                let idx = bits.trailing_zeros() as u64;
                let level_shift = SLOT_BITS as usize * level;
                let block_shift = level_shift + SLOT_BITS as usize;
                let base = (self.cursor >> block_shift) << block_shift;
                let start = base | (idx << level_shift);
                return Some((level, idx as usize, start));
            }
        }
        None
    }

    /// Rebuilds the batch from the earliest pending window. Returns
    /// `false` when the wheel and overflow are both empty.
    ///
    /// Allocation-free in steady state: slot contents move through the
    /// reusable `scratch` buffer (`Vec::append` keeps the slot's
    /// capacity), which is then swapped wholesale into `batch`.
    fn refill(&mut self) -> bool {
        debug_assert!(self.batch.is_empty());
        debug_assert!(self.scratch.is_empty());
        loop {
            let overflow_tick = self
                .overflow
                .keys()
                .next()
                .map(|at| at.as_nanos() >> GRAN_BITS);
            match self.first_occupied() {
                // The wheel's earliest slot starts at or before the
                // overflow front: it anchors the window.
                Some((level, idx, start)) if overflow_tick.is_none_or(|t| start <= t) => {
                    debug_assert!(
                        level < LEVELS && idx < SLOTS,
                        "first_occupied yields in-range wheel coordinates"
                    );
                    let bit = 1u64 << idx;
                    let mut scratch = std::mem::take(&mut self.scratch);
                    scratch.append(&mut self.slots[level * SLOTS + idx]);
                    self.occupied[level] &= !bit;
                    // A lone entry in a high-level slot is the global
                    // wheel minimum (levels are strictly time-ordered
                    // and this was the earliest slot), so the cursor
                    // can jump straight to its tick — no cascade.
                    // Sparse queues (a few periodic timers) hit this on
                    // nearly every pop; it turns O(levels) re-inserts
                    // into O(1). Overflow entries now inside the window
                    // are merged by `build_batch` regardless.
                    if level == 0 || scratch.len() == 1 {
                        self.cursor = if level == 0 {
                            start
                        } else {
                            scratch[0].at.as_nanos() >> GRAN_BITS
                        };
                        self.scratch = scratch;
                        self.build_batch(overflow_tick);
                        return true;
                    }
                    // Higher-level slot: re-anchor at its start and let
                    // its entries cascade to lower levels, then rescan.
                    self.cursor = start;
                    for s in scratch.drain(..) {
                        self.wheel_insert(s);
                    }
                    self.scratch = scratch;
                }
                // Overflow front precedes everything in the wheel (or
                // the wheel is empty): serve its tick directly.
                _ => {
                    let Some(tick) = overflow_tick else {
                        return false;
                    };
                    self.cursor = tick;
                    self.build_batch(overflow_tick);
                    return true;
                }
            }
        }
    }

    /// Heapifies `scratch` (the drained slot) plus any overflow entries
    /// inside the window into the (empty) batch, leaving the batch's
    /// old storage behind as the next scratch.
    ///
    /// `overflow_tick` is the caller's already-computed overflow front
    /// tick (an overflow entry is inside the window iff its tick is ≤
    /// the cursor), saving a second map descent on the hot path.
    fn build_batch(&mut self, overflow_tick: Option<u64>) {
        debug_assert!(self.batch.is_empty());
        let window_end = SimTime::from_nanos((self.cursor + 1) << GRAN_BITS);
        if overflow_tick.is_some_and(|t| t <= self.cursor) {
            while let Some((&at, _)) = self.overflow.first_key_value() {
                if at >= window_end {
                    break;
                }
                // tm-lint: allow(unwrap-in-lib) -- first_key_value above proves the map is non-empty
                let (_, bucket) = self.overflow.pop_first().expect("non-empty overflow");
                self.scratch.extend(bucket);
            }
        }
        // Heapify is O(n); the batch's spent storage becomes the next
        // scratch, so the exchange allocates nothing in steady state.
        let staged = std::mem::take(&mut self.scratch);
        let spent = std::mem::replace(&mut self.batch, BinaryHeap::from(staged));
        self.scratch = spent.into_vec();
        self.batch_end = window_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_prop::prelude::*;

    fn entry(at_ns: u64, seq: u64) -> Scheduled {
        Scheduled {
            at: SimTime::from_nanos(at_ns),
            seq,
            event: Event::ControllerTimer { id: seq },
        }
    }

    fn drain(q: &mut EventQueue, horizon: SimTime) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(s) = q.pop_at_or_before(horizon) {
            out.push((s.at.as_nanos(), s.seq));
        }
        out
    }

    /// A wheel queue pushed past the direct phase, so tests hit the
    /// hierarchical paths without 2048 filler entries.
    fn hierarchical_wheel() -> EventQueue {
        let mut q = EventQueue::new(SchedBackend::Wheel);
        if let EventQueue::Wheel(w) = &mut q {
            w.force_hierarchical();
        }
        q
    }

    #[test]
    fn wheel_pops_in_time_then_seq_order() {
        let mut q = hierarchical_wheel();
        // Same tick, distinct ns; far future; same timestamp cluster.
        q.push(entry(2_000_000, 0));
        q.push(entry(1_500, 1));
        q.push(entry(1_200, 2));
        q.push(entry(60_000_000_000, 3)); // 60 s: level 4
        q.push(entry(2_000_000, 4));
        q.push(entry(7_000_000_000_000, 5)); // ~2 h: overflow
        let popped = drain(&mut q, SimTime::from_secs(10_000));
        assert_eq!(
            popped,
            vec![
                (1_200, 2),
                (1_500, 1),
                (2_000_000, 0),
                (2_000_000, 4),
                (60_000_000_000, 3),
                (7_000_000_000_000, 5),
            ]
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn late_arrival_inside_open_window_interleaves() {
        let mut q = hierarchical_wheel();
        q.push(entry(1_500, 0));
        // Pop nothing yet (horizon before the event) — but the probe
        // builds the batch window.
        assert!(q.pop_at_or_before(SimTime::from_nanos(100)).is_none());
        // A later schedule landing earlier in the same window must pop first.
        q.push(entry(1_200, 1));
        let popped = drain(&mut q, SimTime::from_secs(1));
        assert_eq!(popped, vec![(1_200, 1), (1_500, 0)]);
    }

    #[test]
    fn refill_overshoot_then_earlier_schedule_is_not_lost() {
        let mut q = hierarchical_wheel();
        // Probe with a far-future event loaded: the refill jumps the
        // cursor to its window...
        q.push(entry(10_000_000_000, 0)); // 10 s
        assert!(q.pop_at_or_before(SimTime::from_secs(1)).is_none());
        // ...then a near event arrives (clock advanced to 1 s). It lands
        // before the open window and must still pop first.
        q.push(entry(1_000_100_000, 1));
        let popped = drain(&mut q, SimTime::from_secs(20));
        assert_eq!(popped, vec![(1_000_100_000, 1), (10_000_000_000, 0)]);
    }

    #[test]
    fn default_backend_tracks_global_override() {
        let compiled_default = if cfg!(feature = "heap-sched") {
            SchedBackend::Heap
        } else {
            SchedBackend::Wheel
        };
        assert_eq!(default_sched_backend(), compiled_default);
        set_global_sched_backend(Some(SchedBackend::Heap));
        assert_eq!(default_sched_backend(), SchedBackend::Heap);
        set_global_sched_backend(Some(SchedBackend::Wheel));
        assert_eq!(default_sched_backend(), SchedBackend::Wheel);
        set_global_sched_backend(None);
        assert_eq!(default_sched_backend(), compiled_default);
    }

    /// One op of a randomized schedule workload. `Drain` plays the role
    /// of a horizon-bounded `run_until`; "cancellation" in this engine is
    /// epoch-superseded events, which the scenario-level differential
    /// suite (`tests/sched_diff.rs`) exercises — at the queue layer every
    /// scheduled event is eventually popped.
    #[derive(Clone, Debug)]
    enum Op {
        /// Schedule one event `delay_ns` ahead of the current clock.
        Schedule(u64),
        /// A same-timestamp cluster of `n` events (an LLDP-round fan-out).
        Burst(u64, u8),
        /// A far-future timer (seconds to hours: exercises high levels
        /// and the overflow map).
        Far(u64),
        /// Pop everything up to `clock + delta_ns`, advancing the clock.
        Drain(u64),
    }

    /// Applies the same op stream to both backends and asserts identical
    /// pop sequences, once against a direct-phase wheel and once with
    /// the hierarchical phase forced. Models the SimCore protocol: dense
    /// seqs, clock = last popped time (or drain horizon).
    fn diff_backends(ops: &[Op]) {
        diff_backends_phase(ops, false);
        diff_backends_phase(ops, true);
    }

    fn diff_backends_phase(ops: &[Op], force_hierarchical: bool) {
        let wheel = if force_hierarchical {
            hierarchical_wheel()
        } else {
            EventQueue::new(SchedBackend::Wheel)
        };
        let mut queues = [wheel, EventQueue::new(SchedBackend::Heap)];
        let mut clock = 0u64;
        let mut seq = 0u64;
        let push_both = |queues: &mut [EventQueue; 2], seq: &mut u64, at: u64| {
            for q in queues.iter_mut() {
                q.push(entry(at, *seq));
            }
            *seq += 1;
        };
        for op in ops {
            match *op {
                Op::Schedule(delay) => push_both(&mut queues, &mut seq, clock + delay),
                Op::Burst(delay, n) => {
                    for _ in 0..n {
                        push_both(&mut queues, &mut seq, clock + delay);
                    }
                }
                Op::Far(delay) => push_both(&mut queues, &mut seq, clock + delay),
                Op::Drain(delta) => {
                    let horizon = SimTime::from_nanos(clock + delta);
                    loop {
                        let [wheel, heap] = &mut queues;
                        let a = wheel.pop_at_or_before(horizon);
                        let b = heap.pop_at_or_before(horizon);
                        match (a, b) {
                            (None, None) => break,
                            (Some(x), Some(y)) => {
                                prop_assert_eq!((x.at, x.seq), (y.at, y.seq), "pop diverged");
                                clock = x.at.as_nanos();
                            }
                            (x, y) => panic!(
                                "backends diverged: wheel={:?} heap={:?}",
                                x.map(|s| (s.at, s.seq)),
                                y.map(|s| (s.at, s.seq))
                            ),
                        }
                    }
                    clock = clock.max(horizon.as_nanos());
                    prop_assert_eq!(queues[0].len(), queues[1].len());
                }
            }
        }
        // Final full drain: nothing may be left behind in either backend.
        let horizon = SimTime::from_nanos(u64::MAX);
        loop {
            let [wheel, heap] = &mut queues;
            match (
                wheel.pop_at_or_before(horizon),
                heap.pop_at_or_before(horizon),
            ) {
                (None, None) => break,
                (Some(x), Some(y)) => prop_assert_eq!((x.at, x.seq), (y.at, y.seq)),
                (x, y) => panic!(
                    "backends diverged at tail: wheel={:?} heap={:?}",
                    x.map(|s| (s.at, s.seq)),
                    y.map(|s| (s.at, s.seq))
                ),
            }
        }
    }

    /// Crossing [`MIGRATE_THRESHOLD`] mid-run must be invisible: a
    /// workload that starts direct, migrates on push 2049, and keeps
    /// interleaving drains pops identically to the heap backend. The
    /// entry mix spans every wheel level plus the overflow map so the
    /// migration distributes into all of them.
    #[test]
    fn migration_to_hierarchical_is_invisible() {
        let mut queues = [
            EventQueue::new(SchedBackend::Wheel),
            EventQueue::new(SchedBackend::Heap),
        ];
        let mut seq = 0u64;
        let mut push_both = |at: u64| {
            for q in queues.iter_mut() {
                q.push(entry(at, seq));
            }
            seq += 1;
        };
        // A deterministic spread: microseconds to hours, plus clusters.
        for i in 0..(MIGRATE_THRESHOLD as u64 + 700) {
            let at = match i % 5 {
                0 => 1_000 + i * 37,                   // near, sub-tick
                1 => 5_000_000 + (i % 64) * 1_048_576, // level 0-1 ticks
                2 => 400_000_000 + i * 13_337,         // level 1-2
                3 => 90_000_000_000 + i * 1_000_003,   // level 3-4
                _ => 20_000_000_000_000 + i * 999_999, // overflow (~5.5 h)
            };
            push_both(at);
        }
        let [wheel, heap] = &mut queues;
        assert_eq!(wheel.len(), heap.len());
        let horizon = SimTime::from_nanos(u64::MAX);
        let mut popped = 0usize;
        loop {
            match (
                wheel.pop_at_or_before(horizon),
                heap.pop_at_or_before(horizon),
            ) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!((x.at, x.seq), (y.at, y.seq), "diverged after {popped} pops");
                    popped += 1;
                }
                (x, y) => panic!(
                    "backends diverged: wheel={:?} heap={:?}",
                    x.map(|s| (s.at, s.seq)),
                    y.map(|s| (s.at, s.seq))
                ),
            }
        }
        assert_eq!(popped, MIGRATE_THRESHOLD + 700);
    }

    tm_prop! {
        #![tm_config(cases = 96)]

        #[test]
        fn wheel_matches_heap_on_random_workloads(
            ops in collection::vec(
                prop_oneof![
                    (0u64..3_000_000).prop_map(Op::Schedule),
                    (0u64..2_000_000, 1u8..12).prop_map(|(d, n)| Op::Burst(d, n)),
                    // 1 s .. ~3 h: wheel levels 3-4 plus the overflow map.
                    (1_000_000_000u64..10_000_000_000_000).prop_map(Op::Far),
                    (0u64..40_000_000_000).prop_map(Op::Drain),
                ],
                1..40,
            )
        ) {
            diff_backends(&ops);
        }
    }
}
