//! The fault-injection runtime: turns a declarative [`FaultPlan`] into
//! scheduled events and hot-path modifiers inside the deterministic engine.
//!
//! # How injection preserves the determinism contract
//!
//! Every fault is driven by **ordinary scheduled events** in the engine's
//! `(time, seq)`-ordered queue — window activations, flap edges, restart
//! edges — installed once by [`Simulator::with_fault_plan`]. The stateful
//! modifiers (loss draws, spike jitter) consult the simulation's single
//! seeded RNG *only while a matching fault window is active*, so:
//!
//! * an **empty plan** schedules zero events and performs zero RNG draws —
//!   the event sequence numbers and the RNG stream are untouched, and the
//!   run is byte-identical to one with no plan at all (pinned by
//!   `crates/netsim/tests/faults.rs`);
//! * a **non-empty plan** is still a pure function of `(scenario, plan,
//!   seed)`: the same plan under the same seed always injects the same
//!   faults at the same virtual times.
//!
//! Every applied fault increments a `netsim.fault.*` telemetry counter, so
//! scenario outcomes remain attributable to the injected conditions.
//!
//! The configuration types ([`FaultPlan`], [`LossModel`], [`FaultWindow`],
//! …) live in the dependency-free `tm-faults` crate and are re-exported
//! here.
//!
//! [`Simulator::with_fault_plan`]: crate::Simulator::with_fault_plan

use tm_rand::Rng;
use tm_stats::{Distribution, Normal};
use tm_telemetry::Telemetry;

use sdn_types::{DatapathId, Duration, PortNo};

pub use tm_faults::{
    CtrlCongestion, FaultPlan, FaultWindow, LatencySpike, LinkFlap, LinkLoss, LossModel,
    SwitchRestart,
};

/// Which windowed-fault table a window start/end event refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FaultWindowKind {
    /// A [`LinkLoss`] entry.
    Loss,
    /// A [`LatencySpike`] entry.
    Spike,
    /// A [`CtrlCongestion`] entry.
    Congestion,
}

/// Runtime state of the installed fault plan. Lives in `NetState` so the
/// dataplane hot paths can consult it under disjoint field borrows.
///
/// The default state (no plan installed) rejects every query without
/// touching the RNG — the zero-cost-when-disabled half of the contract.
#[derive(Default)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    /// Active flags per `plan.loss()` entry.
    loss_active: Vec<bool>,
    /// Gilbert-Elliott chain state per `plan.loss()` entry (`true` = bad).
    ge_bad: Vec<bool>,
    /// Active flags per `plan.spikes()` entry.
    spike_active: Vec<bool>,
    /// Active flags per `plan.congestion()` entry.
    congestion_active: Vec<bool>,
}

impl FaultState {
    /// Builds the runtime state for `plan` (all windows initially inactive).
    pub(crate) fn install(plan: FaultPlan) -> Self {
        let loss_n = plan.loss().len();
        let spike_n = plan.spikes().len();
        let congestion_n = plan.congestion().len();
        FaultState {
            plan,
            loss_active: vec![false; loss_n],
            ge_bad: vec![false; loss_n],
            spike_active: vec![false; spike_n],
            congestion_active: vec![false; congestion_n],
        }
    }

    /// Flips the active flag for a windowed fault entry.
    pub(crate) fn set_window(&mut self, kind: FaultWindowKind, index: usize, active: bool) {
        let flags = match kind {
            FaultWindowKind::Loss => &mut self.loss_active,
            FaultWindowKind::Spike => &mut self.spike_active,
            FaultWindowKind::Congestion => &mut self.congestion_active,
        };
        if let Some(flag) = flags.get_mut(index) {
            *flag = active;
        }
    }

    /// Decides whether a frame leaving egress `(dpid, port)` is lost to an
    /// active loss fault. Draws from `rng` only for active matching entries.
    pub(crate) fn should_drop<R: Rng + ?Sized>(
        &mut self,
        dpid: DatapathId,
        port: PortNo,
        rng: &mut R,
        telemetry: &Telemetry,
    ) -> bool {
        let mut dropped = false;
        for (i, fault) in self.plan.loss().iter().enumerate() {
            if !self.loss_active[i] || fault.dpid != dpid || fault.port != port {
                continue;
            }
            let lost = match fault.model {
                LossModel::Bernoulli { p } => rng.gen_bool(p),
                LossModel::GilbertElliott {
                    p_good_to_bad,
                    p_bad_to_good,
                    loss_good,
                    loss_bad,
                } => {
                    let loss_p = if self.ge_bad[i] { loss_bad } else { loss_good };
                    let lost = rng.gen_bool(loss_p);
                    // Transition after the loss decision, per transit.
                    let flip_p = if self.ge_bad[i] {
                        p_bad_to_good
                    } else {
                        p_good_to_bad
                    };
                    if rng.gen_bool(flip_p) {
                        self.ge_bad[i] = !self.ge_bad[i];
                    }
                    lost
                }
            };
            if lost {
                dropped = true;
            }
        }
        if dropped {
            telemetry.counter_inc("netsim.fault.loss_drops");
        }
        dropped
    }

    /// The extra one-way delay active latency-spike faults add on egress
    /// `(dpid, port)`. Draws from `rng` only for active matching entries
    /// with nonzero jitter.
    pub(crate) fn extra_link_delay<R: Rng + ?Sized>(
        &self,
        dpid: DatapathId,
        port: PortNo,
        rng: &mut R,
        telemetry: &Telemetry,
    ) -> Duration {
        let mut extra = Duration::ZERO;
        for (i, fault) in self.plan.spikes().iter().enumerate() {
            if !self.spike_active[i] || fault.dpid != dpid || fault.port != port {
                continue;
            }
            let ms = if fault.jitter_sd == Duration::ZERO {
                fault.extra.as_millis_f64()
            } else {
                Normal::new(fault.extra.as_millis_f64(), fault.jitter_sd.as_millis_f64())
                    .sample(rng)
                    .max(0.0)
            };
            extra += Duration::from_millis_f64(ms);
            telemetry.counter_inc("netsim.fault.latency_spikes");
        }
        extra
    }

    /// The extra queuing delay active congestion faults add to a control
    /// message to or from `dpid`. No randomness involved.
    pub(crate) fn ctrl_extra_delay(&self, dpid: DatapathId, telemetry: &Telemetry) -> Duration {
        let mut extra = Duration::ZERO;
        for (i, fault) in self.plan.congestion().iter().enumerate() {
            if !self.congestion_active[i] || fault.dpid != dpid {
                continue;
            }
            extra += fault.extra_delay;
            telemetry.counter_inc("netsim.fault.ctrl_congested_msgs");
        }
        extra
    }
}
