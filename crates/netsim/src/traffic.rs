//! The flow-level traffic engine: turns a declarative [`TrafficPlan`] into
//! aggregate flow records that expand to real packets only at
//! detector-relevant boundaries.
//!
//! # The flow abstraction
//!
//! Each [`TrafficGroup`] models thousands-to-millions of *virtual hosts*
//! parked behind one real aggregation port on an edge switch (attached by
//! [`Simulator::with_traffic_plan`] before the handshake). Flow arrivals
//! are ordinary scheduled events drawn from a per-group RNG stream; when a
//! flow arrives, the engine advances the endpoint switches' port counters
//! by the flow's whole packet count in O(1) and expands **real frames**
//! only where a detector could tell the difference:
//!
//! * the first time a virtual host sources or sinks a flow, a gratuitous
//!   ARP enters at its aggregation port — the controller's host-tracking
//!   and the defenses observe the same ARP `PacketIn` a real join emits;
//! * the first packet of a fresh (source-edge, destination-edge) flow
//!   aggregate enters as a real UDP frame and table-misses into a
//!   `PacketIn`, exercising the controller's forwarding path; subsequent
//!   flows between the same edges ride the installed rules and stay
//!   aggregated until the aggregate goes idle.
//!
//! Everything else — the remaining thousands of packets per flow — is
//! accounted, never materialized, so link/switch state advances in
//! O(flows) instead of O(packets).
//!
//! # How aggregation preserves the determinism contract
//!
//! Arrival chains draw from **per-group RNG streams** forked off the
//! scenario seed via `tm_rand::stream_seed` — the simulation's main RNG is
//! never touched, so traffic load cannot perturb link jitter or fault
//! draws. An **empty plan** attaches no aggregation hosts, schedules zero
//! events, constructs zero RNGs, and leaves the run byte-identical to one
//! without any plan (pinned by `crates/netsim/tests/traffic.rs`); a
//! non-empty plan is still a pure function of `(scenario, plan, seed)`.
//!
//! Every aggregate advance and every expansion is counted under the
//! `traffic.*` telemetry namespace.
//!
//! The configuration types ([`TrafficPlan`], [`DemandProfile`], …) live in
//! the `tm-traffic` crate and are re-exported here.
//!
//! [`Simulator::with_traffic_plan`]: crate::Simulator::with_traffic_plan

use std::collections::BTreeMap;

use tm_rand::{stream_seed, Rng, StdRng};

use sdn_types::packet::{ArpPacket, EthernetFrame, Ipv4Packet, Payload, Transport, UdpDatagram};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SimTime};

pub use tm_traffic::{
    ArrivalProcess, DemandProfile, SizeMix, TrafficGroup, TrafficPlan, TrafficWindow,
};

use crate::engine::{Event, SimCore};
use crate::link::LinkProfile;
use crate::sim::{NetState, NetworkSpec};
use crate::switch;

/// Stream id separating the traffic engine's RNG universe from the
/// simulation seed (per-group streams fork off this via a second
/// `stream_seed`).
pub const TRAFFIC_STREAM: u64 = 0x7AF1C;

/// Virtual-host IPs live in 10.128.0.0/9, far above both the real-host
/// space (`IpAddr::from_index` → 10.0.x.y) and the aggregation-host space
/// (10.127.g.g).
const VIRT_IP_BASE: u32 = (10 << 24) | (128 << 16);

/// Aggregation-host ids start high enough that no generated topology's
/// sequential host ids can collide.
const AGG_HOST_BASE: u32 = 0xFFFF_0000;

/// MTU used to convert flow bytes into aggregate packet counts.
const MTU: u64 = 1500;

/// How long a (source-edge, destination-edge) flow aggregate stays warm:
/// while warm, new flows between the two edges are pure accounting; once
/// idle this long, the next flow re-expands a first packet (mirroring a
/// switch rule's idle timeout).
const FLOW_IDLE: Duration = Duration::from_secs(10);

/// The deterministic MAC of virtual host `vid` (locally-administered
/// `06:7f` prefix: disjoint from `MacAddr::from_index`'s `02:00` space and
/// the switches' port MACs).
fn virt_mac(vid: u32) -> MacAddr {
    let b = vid.to_be_bytes();
    MacAddr::new([0x06, 0x7f, b[0], b[1], b[2], b[3]])
}

/// The deterministic IP of virtual host `vid`.
fn virt_ip(vid: u32) -> IpAddr {
    IpAddr::from_u32(VIRT_IP_BASE.wrapping_add(vid))
}

/// The aggregation host parked on group `index`'s port.
fn agg_host_id(index: usize) -> HostId {
    debug_assert!(index <= u32::MAX as usize, "group index fits u32");
    HostId::new(AGG_HOST_BASE.wrapping_add(index as u32))
}

/// Per-group runtime: the group's RNG stream and on/off phase.
struct GroupRt {
    rng: StdRng,
    /// Whether the group is currently offering flows.
    on: bool,
    /// Bumped every time the group turns on; stale arrival events from a
    /// previous on-phase carry an older epoch and are dropped.
    epoch: u32,
}

/// Runtime state of the installed traffic plan. Lives in `NetState` so the
/// arrival path can advance port counters under disjoint field borrows.
///
/// The default state (no plan installed) holds no groups, no RNGs and no
/// flow cache — the zero-cost-when-disabled half of the contract.
#[derive(Default)]
pub(crate) struct TrafficState {
    pub(crate) plan: TrafficPlan,
    groups: Vec<GroupRt>,
    /// First virtual-host id of each group (prefix sums over group sizes).
    base: Vec<u32>,
    total_hosts: u32,
    /// Which virtual hosts have announced themselves (gratuitous ARP).
    announced: Vec<bool>,
    /// Warm (source-group, destination-group) flow aggregates → expiry.
    flows: BTreeMap<(u32, u32), SimTime>,
}

impl TrafficState {
    /// Builds the runtime state for `plan`, deriving one RNG stream per
    /// group from the scenario seed.
    pub(crate) fn install(plan: TrafficPlan, seed: u64) -> Self {
        let traffic_seed = stream_seed(seed, TRAFFIC_STREAM);
        let groups: Vec<GroupRt> = (0..plan.groups().len())
            .map(|index| GroupRt {
                rng: StdRng::seed_from_u64(stream_seed(traffic_seed, index as u64)),
                on: false,
                epoch: 0,
            })
            .collect();
        let mut base = Vec::with_capacity(plan.groups().len());
        let mut total: u32 = 0;
        for g in plan.groups() {
            base.push(total);
            // The plan builder bounds total hosts at 2^23, so this cannot
            // overflow u32.
            total += g.hosts;
        }
        TrafficState {
            plan,
            groups,
            base,
            total_hosts: total,
            announced: vec![false; total as usize],
            flows: BTreeMap::new(),
        }
    }

    /// The group owning virtual host `vid`.
    fn group_of(&self, vid: u32) -> usize {
        match self.base.binary_search(&vid) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
    }
}

/// Attaches one real aggregation host per group so expanded frames have a
/// registered ingress port and flooded replies terminate cheaply.
///
/// # Panics
/// Panics (via the spec builders) if a group names a missing switch or a
/// port that is already in use — a malformed plan must fail loudly at
/// build time, not mid-simulation.
pub(crate) fn prepare_spec(spec: &mut NetworkSpec, plan: &TrafficPlan) {
    for (index, g) in plan.groups().iter().enumerate() {
        let id = agg_host_id(index);
        let gb = (index as u16).to_be_bytes();
        let mac = MacAddr::new([0x06, 0xa6, gb[0], gb[1], 0, 0]);
        let ip = IpAddr::new(10, 127, gb[0], gb[1]);
        spec.add_host(id, mac, ip);
        spec.attach_host(
            id,
            g.edge,
            g.port,
            LinkProfile::fixed(Duration::from_micros(5)),
        );
    }
}

/// Handles a group's phase event: the first one (at `window.from`) turns
/// the group on; for on/off groups the event re-fires at each sampled
/// phase edge until the window closes.
pub(crate) fn on_phase(core: &mut SimCore, net: &mut NetState, group: u32) {
    let Some(grp) = net.traffic.plan.groups().get(group as usize).copied() else {
        return;
    };
    let Some(rt) = net.traffic.groups.get_mut(group as usize) else {
        return;
    };
    if core.now() >= grp.window.until {
        rt.on = false;
        return;
    }
    if rt.on {
        rt.on = false;
        let off = grp.profile.arrival.sample_phase(false, &mut rt.rng);
        core.schedule(off, Event::TrafficPhase { group });
        return;
    }
    rt.on = true;
    rt.epoch = rt.epoch.wrapping_add(1);
    let epoch = rt.epoch;
    let gap = grp.profile.sample_interarrival(grp.hosts, &mut rt.rng);
    core.schedule(gap, Event::TrafficArrival { group, epoch });
    if let ArrivalProcess::OnOff { .. } = grp.profile.arrival {
        let on = grp.profile.arrival.sample_phase(true, &mut rt.rng);
        core.schedule(on, Event::TrafficPhase { group });
    }
}

/// Handles one flow arrival: reschedules the chain, advances aggregate
/// state, and expands boundary packets.
pub(crate) fn on_arrival(core: &mut SimCore, net: &mut NetState, group: u32, epoch: u32) {
    let Some(grp) = net.traffic.plan.groups().get(group as usize).copied() else {
        return;
    };
    let now = core.now();

    // Everything that touches TrafficState happens first; the frames to
    // expand are collected and injected after the borrow ends.
    let mut inject: Vec<(DatapathId, PortNo, EthernetFrame)> = Vec::new();
    let mut arp_expansions: u64 = 0;
    let (bytes, packets, dst_edge, dst_port, first_packet) = {
        let ts = &mut net.traffic;
        let Some(rt) = ts.groups.get_mut(group as usize) else {
            return;
        };
        if !rt.on || rt.epoch != epoch {
            return; // stale arrival from a previous on-phase
        }
        if now >= grp.window.until {
            rt.on = false;
            return;
        }
        let gap = grp.profile.sample_interarrival(grp.hosts, &mut rt.rng);
        core.schedule(gap, Event::TrafficArrival { group, epoch });

        // Draw the flow: source host in this group, destination anywhere.
        let src_local = rt.rng.gen_range(0..grp.hosts);
        let dst_raw = rt.rng.gen_range(0..ts.total_hosts);
        let bytes = grp.profile.mix.sample_bytes(&mut rt.rng);
        let src_port_udp = 32768 + (rt.rng.next_u64() % 16384) as u16;
        let base = ts.base.get(group as usize).copied().unwrap_or(0);
        let src_vid = base + src_local;
        let dst_vid = if dst_raw == src_vid {
            (dst_raw + 1) % ts.total_hosts.max(1)
        } else {
            dst_raw
        };
        let dst_group = ts.group_of(dst_vid);
        let Some(dgrp) = ts.plan.groups().get(dst_group).copied() else {
            return;
        };

        // Boundary 1: first appearance of an endpoint ⇒ gratuitous ARP at
        // its aggregation port (the controller learns the host exactly the
        // way a real join would teach it).
        for (vid, edge, port) in [
            (src_vid, grp.edge, grp.port),
            (dst_vid, dgrp.edge, dgrp.port),
        ] {
            if let Some(seen) = ts.announced.get_mut(vid as usize) {
                if !*seen {
                    *seen = true;
                    let mac = virt_mac(vid);
                    let ip = virt_ip(vid);
                    let arp = ArpPacket::request(mac, ip, ip);
                    inject.push((
                        edge,
                        port,
                        EthernetFrame::new(mac, MacAddr::BROADCAST, Payload::Arp(arp)),
                    ));
                    arp_expansions += 1;
                }
            }
        }

        // Boundary 2: a cold (source-edge, destination-edge) aggregate ⇒
        // the flow's first packet enters for real and table-misses into a
        // PacketIn; a warm aggregate rides the installed rules.
        debug_assert!(dst_group < ts.plan.groups().len());
        let key = (group, dst_group as u32);
        let warm = ts.flows.get(&key).is_some_and(|&expires| now < expires);
        ts.flows.insert(key, now + FLOW_IDLE);
        let first_packet = !warm;
        if first_packet {
            let udp = UdpDatagram::new(src_port_udp, 443, Vec::new());
            let pkt = Ipv4Packet::new(virt_ip(src_vid), virt_ip(dst_vid), Transport::Udp(udp));
            inject.push((
                grp.edge,
                grp.port,
                EthernetFrame::new(virt_mac(src_vid), virt_mac(dst_vid), Payload::Ipv4(pkt)),
            ));
        }

        let packets = bytes.div_ceil(MTU);
        (bytes, packets, dgrp.edge, dgrp.port, first_packet)
    };

    // Aggregate accounting: the whole flow advances the endpoint port
    // counters in O(1) — packets are counted, never materialized.
    if let Some(p) = net
        .switches
        .get_mut(&grp.edge)
        .and_then(|sw| sw.ports.get_mut(&grp.port))
    {
        p.rx_packets += packets;
        p.rx_bytes += bytes;
    }
    if let Some(p) = net
        .switches
        .get_mut(&dst_edge)
        .and_then(|sw| sw.ports.get_mut(&dst_port))
    {
        p.tx_packets += packets;
        p.tx_bytes += bytes;
    }

    let t = &core.telemetry;
    t.counter_inc("traffic.flows_offered");
    t.counter_add("traffic.bytes_offered", bytes);
    t.counter_add("traffic.packets_aggregated", packets);
    if arp_expansions > 0 {
        t.counter_add("traffic.expansions_arp", arp_expansions);
        t.counter_add("traffic.hosts_announced", arp_expansions);
    }
    if first_packet {
        t.counter_inc("traffic.expansions_first_packet");
    }
    if !inject.is_empty() {
        t.counter_add("traffic.packets_expanded", inject.len() as u64);
    }

    for (dpid, port, frame) in inject {
        switch::handle_frame(core, net, dpid, port, frame);
    }
}
