//! Link latency models.

use tm_rand::Rng;

use sdn_types::Duration;
use tm_stats::{Distribution, Normal, UniformRange};

/// A micro-burst model: with probability `probability` per transit, an extra
/// delay uniformly drawn from `[extra_min, extra_max)` is added.
///
/// This reproduces the latency micro-bursts the paper observes on its
/// emulated 5 ms links (Fig. 10: occasional samples near 12 ms), which are
/// the false-positive hazard for the Link Latency Inspector (§VIII-A).
#[derive(Clone, Copy, Debug)]
pub struct BurstModel {
    /// Per-transit probability of a burst.
    pub probability: f64,
    /// Minimum extra delay during a burst.
    pub extra_min: Duration,
    /// Maximum extra delay during a burst.
    pub extra_max: Duration,
}

impl BurstModel {
    /// Creates a burst model.
    ///
    /// # Panics
    /// Panics unless `0 ≤ probability ≤ 1` and `extra_min < extra_max`.
    pub fn new(probability: f64, extra_min: Duration, extra_max: Duration) -> Self {
        assert!((0.0..=1.0).contains(&probability), "probability in [0,1]");
        assert!(extra_min < extra_max, "extra_min must be < extra_max");
        BurstModel {
            probability,
            extra_min,
            extra_max,
        }
    }
}

/// A link's delay profile: base latency, optional Gaussian jitter, optional
/// micro-bursts.
#[derive(Clone, Copy, Debug)]
pub struct LinkProfile {
    /// Base one-way latency.
    pub base: Duration,
    /// Standard deviation of Gaussian jitter (zero = none). Sampled delay
    /// never goes below half the base latency.
    pub jitter_sd: Duration,
    /// Optional micro-burst model.
    pub burst: Option<BurstModel>,
}

impl LinkProfile {
    /// A fixed-latency link with no jitter or bursts.
    pub fn fixed(base: Duration) -> Self {
        LinkProfile {
            base,
            jitter_sd: Duration::ZERO,
            burst: None,
        }
    }

    /// A link with Gaussian jitter.
    pub fn jittered(base: Duration, jitter_sd: Duration) -> Self {
        LinkProfile {
            base,
            jitter_sd,
            burst: None,
        }
    }

    /// Adds a micro-burst model.
    pub fn with_bursts(mut self, burst: BurstModel) -> Self {
        self.burst = Some(burst);
        self
    }

    /// The evaluation testbed's dataplane profile: 5 ms links (Fig. 9) with
    /// mild jitter and occasional micro-bursts up to ~12 ms (Fig. 10).
    pub fn testbed_dataplane() -> Self {
        LinkProfile::jittered(Duration::from_millis(5), Duration::from_micros(200)).with_bursts(
            BurstModel::new(0.03, Duration::from_millis(3), Duration::from_millis(7)),
        )
    }

    /// Samples the one-way delay for one transit.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let base_ms = self.base.as_millis_f64();
        let mut delay_ms = if self.jitter_sd == Duration::ZERO {
            base_ms
        } else {
            Normal::new(base_ms, self.jitter_sd.as_millis_f64()).sample(rng)
        };
        // Physical floor: jitter cannot make a link faster than propagation.
        delay_ms = delay_ms.max(base_ms * 0.5);
        if let Some(burst) = self.burst {
            if rng.gen_bool(burst.probability) {
                delay_ms += UniformRange::new(
                    burst.extra_min.as_millis_f64(),
                    burst.extra_max.as_millis_f64(),
                )
                .sample(rng);
            }
        }
        Duration::from_millis_f64(delay_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_rand::StdRng;

    #[test]
    fn fixed_links_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let link = LinkProfile::fixed(Duration::from_millis(5));
        for _ in 0..100 {
            assert_eq!(link.sample(&mut rng), Duration::from_millis(5));
        }
    }

    #[test]
    fn jitter_spreads_but_respects_floor() {
        let mut rng = StdRng::seed_from_u64(1);
        let link = LinkProfile::jittered(Duration::from_millis(5), Duration::from_millis(1));
        let samples: Vec<Duration> = (0..1000).map(|_| link.sample(&mut rng)).collect();
        let distinct: std::collections::HashSet<u64> =
            samples.iter().map(|d| d.as_nanos()).collect();
        assert!(distinct.len() > 100, "jitter should vary");
        assert!(samples
            .iter()
            .all(|d| d.as_millis_f64() >= 2.5 - f64::EPSILON));
    }

    #[test]
    fn bursts_appear_at_roughly_the_configured_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let link = LinkProfile::fixed(Duration::from_millis(5)).with_bursts(BurstModel::new(
            0.1,
            Duration::from_millis(3),
            Duration::from_millis(7),
        ));
        let n = 10_000;
        let bursty = (0..n)
            .filter(|_| link.sample(&mut rng) > Duration::from_millis(6))
            .count();
        let rate = bursty as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "burst rate {rate}");
    }

    #[test]
    fn testbed_profile_matches_fig10_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let link = LinkProfile::testbed_dataplane();
        let samples: Vec<f64> = (0..5000)
            .map(|_| link.sample(&mut rng).as_millis_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.5, "mean should be ~5 ms, got {mean}");
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 8.0 && max < 13.0, "bursts to ~12 ms, got {max}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn burst_probability_validated() {
        let _ = BurstModel::new(1.5, Duration::ZERO, Duration::from_millis(1));
    }
}
