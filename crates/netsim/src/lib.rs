//! A deterministic discrete-event network simulator for OpenFlow networks.
//!
//! `netsim` is the testbed substrate of the TopoMirage reproduction — the
//! stand-in for the paper's Mininet environment. It simulates:
//!
//! * **OpenFlow switches** with real flow tables, per-port counters, FLOOD
//!   semantics, table-miss `PacketIn`s, and a physical-layer port state
//!   machine implementing IEEE 802.3 link-integrity-pulse detection
//!   (16 ± 8 ms) — the mechanic that turns a host's interface bounce into
//!   the `PortStatus` messages Port Amnesia exploits.
//! * **End hosts** with a default network stack (ARP responder, ICMP echo,
//!   minimal TCP handshake, an IP-ID counter for idle scans) and a pluggable
//!   [`HostApp`] hook through which attacks inject and capture raw frames.
//! * **Links** with configurable latency, jitter, and micro-burst models
//!   (Fig. 10's latency spikes), **control channels** with their own
//!   latency, and **out-of-band channels** (the attackers' wireless side
//!   channel) with per-hop encode/decode cost.
//! * A **controller slot**: any [`ControllerLogic`] implementation (see the
//!   `controller` crate) receives OpenFlow messages and timers.
//! * A **fault-injection layer** ([`faults`]): a declarative [`FaultPlan`]
//!   (from the `tm-faults` crate) schedules per-link packet loss, latency
//!   spikes, link flaps, switch restarts, and control-channel congestion as
//!   ordinary events in the deterministic queue — see
//!   [`Simulator::with_fault_plan`].
//! * A **flow-level traffic engine** ([`traffic`]): a declarative
//!   [`TrafficPlan`] (from the `tm-traffic` crate) parks groups of virtual
//!   hosts behind edge aggregation ports and advances their load as flow
//!   records, expanding real packets only at detector-relevant boundaries
//!   (first-ARP announcements, first-packet `PacketIn`s) — see
//!   [`Simulator::with_traffic_plan`].
//!
//! Everything runs on a virtual nanosecond clock under a seeded RNG: the
//! same seed always produces the same trace — including every injected
//! fault, and an empty fault plan changes nothing at all.
//!
//! # Example
//!
//! ```
//! use netsim::{Simulator, NetworkSpec, LinkProfile};
//! use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo};
//!
//! let mut spec = NetworkSpec::new();
//! spec.add_switch(DatapathId::new(1));
//! spec.add_host(HostId::new(1), MacAddr::from_index(1), IpAddr::new(10, 0, 0, 1));
//! spec.attach_host(
//!     HostId::new(1),
//!     DatapathId::new(1),
//!     PortNo::new(1),
//!     LinkProfile::fixed(Duration::from_millis(5)),
//! );
//! let mut sim = Simulator::new(spec, 42);
//! sim.run_for(Duration::from_secs(1));
//! assert_eq!(sim.now(), sdn_types::SimTime::from_secs(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller_api;
mod engine;
mod host;
mod link;
mod sched;
mod sim;
mod switch;
mod trace;

pub mod apps;
pub mod faults;
pub mod pcap;
pub mod traffic;

pub use controller_api::{ControllerCtx, ControllerLogic, NullController, TimerId};
pub use engine::PULSE_WINDOW;
pub use faults::{FaultPlan, FaultWindow, LossModel};
pub use host::{FrameDisposition, HostApp, HostCtx, HostInfo, NullHostApp};
pub use link::{BurstModel, LinkProfile};
pub use sched::{default_sched_backend, sched_entry_bytes, set_global_sched_backend, SchedBackend};
pub use sim::{NetworkSpec, Simulator};
pub use trace::{Trace, TraceEvent};
pub use traffic::{DemandProfile, TrafficPlan, TrafficWindow};
