//! The discrete-event core: clock, deterministic event queue, RNG.

use tm_rand::StdRng;
use tm_telemetry::Telemetry;

use openflow::OfMessage;
use sdn_types::packet::EthernetFrame;
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SimTime};

use crate::sched::{EventQueue, SchedBackend, Scheduled};

/// The IEEE 802.3 link-integrity-pulse window: a switch declares a port down
/// after `16 ± 8` ms without link pulses (§V-A). The simulator samples the
/// detection delay uniformly from `[8 ms, 24 ms)`.
pub const PULSE_WINDOW: (Duration, Duration) =
    (Duration::from_millis(8), Duration::from_millis(24));

/// Payload of [`Event::DeliverToSwitch`]: a dataplane frame headed for a
/// switch port. Boxed so [`Scheduled`] entries stay sift-cheap.
#[derive(Debug)]
pub(crate) struct SwitchDelivery {
    /// Receiving switch.
    pub(crate) dpid: DatapathId,
    /// Ingress port.
    pub(crate) port: PortNo,
    /// The frame.
    pub(crate) frame: EthernetFrame,
}

/// Payload of [`Event::DeliverToHost`]: a dataplane frame headed for a host
/// interface.
#[derive(Debug)]
pub(crate) struct HostDelivery {
    /// Receiving host.
    pub(crate) host: HostId,
    /// The frame.
    pub(crate) frame: EthernetFrame,
}

/// Payload of [`Event::DeliverOob`]: a side-channel frame between hosts.
#[derive(Debug)]
pub(crate) struct OobDelivery {
    /// Receiving host.
    pub(crate) to: HostId,
    /// Sending host.
    pub(crate) from: HostId,
    /// The frame.
    pub(crate) frame: EthernetFrame,
}

/// Payload of [`Event::CtrlToSwitch`] / [`Event::CtrlToController`]: an
/// OpenFlow message in flight on a control channel.
#[derive(Debug)]
pub(crate) struct CtrlDelivery {
    /// The switch end of the control channel.
    pub(crate) dpid: DatapathId,
    /// The message.
    pub(crate) msg: OfMessage,
}

/// Payload of [`Event::PulseCheck`]: a link-integrity-pulse deadline.
#[derive(Debug)]
pub(crate) struct PulseDue {
    /// The switch.
    pub(crate) dpid: DatapathId,
    /// The port.
    pub(crate) port: PortNo,
    /// The interface down-epoch this check corresponds to.
    pub(crate) down_epoch: u64,
}

/// Payload of [`Event::HostIfaceUp`]: a completing interface bring-up.
#[derive(Debug)]
pub(crate) struct IfaceUp {
    /// The host.
    pub(crate) host: HostId,
    /// The bring-up epoch (stale events are ignored).
    pub(crate) epoch: u64,
    /// New identity to assume, if the bring-up changes identifiers.
    pub(crate) identity: Option<(MacAddr, IpAddr)>,
}

/// An event in the simulation.
///
/// Variants whose payload exceeds a couple of machine words (frames,
/// OpenFlow messages, identity tuples) carry it boxed: every pending event
/// is moved repeatedly by heap sifts and wheel cascades, so the inline
/// size of this enum — not the payload size — is what the scheduler pays
/// per comparison. See the `scheduled_entries_are_sift_cheap` test for the
/// enforced bound.
#[derive(Debug)]
pub(crate) enum Event {
    /// A dataplane frame arrives at a switch port.
    DeliverToSwitch(Box<SwitchDelivery>),
    /// A dataplane frame arrives at a host interface.
    DeliverToHost(Box<HostDelivery>),
    /// An out-of-band (side channel) frame arrives at a host.
    DeliverOob(Box<OobDelivery>),
    /// A control message arrives at a switch.
    CtrlToSwitch(Box<CtrlDelivery>),
    /// A control message arrives at the controller.
    CtrlToController(Box<CtrlDelivery>),
    /// A controller timer fires.
    ControllerTimer {
        /// Timer id chosen by the controller.
        id: u64,
    },
    /// A host timer fires.
    HostTimer {
        /// Owning host.
        host: HostId,
        /// Timer id chosen by the host app.
        id: u64,
    },
    /// Periodic flow-table expiry scan on a switch.
    SwitchExpiryTick {
        /// The switch.
        dpid: DatapathId,
    },
    /// Link-integrity-pulse deadline: if the host interface attached to this
    /// port has been down continuously since `down_epoch`, the switch
    /// declares the port down.
    PulseCheck(Box<PulseDue>),
    /// Link pulses resumed on a port whose attached interface came back up;
    /// the switch re-detects the link unless traffic already did.
    PulseCheckUp {
        /// The switch.
        dpid: DatapathId,
        /// The port.
        port: PortNo,
    },
    /// An in-progress `ifconfig`-style interface bring-up completes.
    HostIfaceUp(Box<IfaceUp>),
    /// A windowed fault (loss / latency spike / control congestion)
    /// activates.
    FaultWindowStart {
        /// Which fault table the index points into.
        kind: crate::faults::FaultWindowKind,
        /// Index into that table of the installed plan.
        index: usize,
    },
    /// A windowed fault deactivates.
    FaultWindowEnd {
        /// Which fault table the index points into.
        kind: crate::faults::FaultWindowKind,
        /// Index into that table of the installed plan.
        index: usize,
    },
    /// An injected link flap takes the port down.
    FaultLinkDown {
        /// Index into the plan's flap table.
        index: usize,
    },
    /// An injected link flap brings the port back up.
    FaultLinkUp {
        /// Index into the plan's flap table.
        index: usize,
    },
    /// A flow-level traffic arrival for a traffic group. Arrivals carry
    /// the group's on-phase epoch so a chain cancelled by an off-phase
    /// toggle cannot fire stale events.
    TrafficArrival {
        /// Index into the installed traffic plan's group table.
        group: u32,
        /// The group on-phase epoch this arrival belongs to.
        epoch: u32,
    },
    /// A traffic group's on/off phase edge (the first one, at the group's
    /// window start, turns the group on).
    TrafficPhase {
        /// Index into the installed traffic plan's group table.
        group: u32,
    },
    /// An injected switch restart wipes the flow table.
    FaultSwitchRestart {
        /// Index into the plan's restart table.
        index: usize,
    },
    /// A restarted switch re-runs its controller handshake.
    FaultSwitchReconnect {
        /// Index into the plan's restart table.
        index: usize,
    },
}

impl Event {
    /// A stable `&'static str` name for per-kind telemetry counters.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            Event::DeliverToSwitch(_) => "netsim.event.deliver_to_switch",
            Event::DeliverToHost(_) => "netsim.event.deliver_to_host",
            Event::DeliverOob(_) => "netsim.event.deliver_oob",
            Event::CtrlToSwitch(_) => "netsim.event.ctrl_to_switch",
            Event::CtrlToController(_) => "netsim.event.ctrl_to_controller",
            Event::ControllerTimer { .. } => "netsim.event.controller_timer",
            Event::HostTimer { .. } => "netsim.event.host_timer",
            Event::SwitchExpiryTick { .. } => "netsim.event.switch_expiry_tick",
            Event::PulseCheck(_) => "netsim.event.pulse_check",
            Event::PulseCheckUp { .. } => "netsim.event.pulse_check_up",
            Event::HostIfaceUp(_) => "netsim.event.host_iface_up",
            Event::FaultWindowStart { .. } => "netsim.event.fault_window_start",
            Event::FaultWindowEnd { .. } => "netsim.event.fault_window_end",
            Event::FaultLinkDown { .. } => "netsim.event.fault_link_down",
            Event::FaultLinkUp { .. } => "netsim.event.fault_link_up",
            Event::TrafficArrival { .. } => "netsim.event.traffic_arrival",
            Event::TrafficPhase { .. } => "netsim.event.traffic_phase",
            Event::FaultSwitchRestart { .. } => "netsim.event.fault_switch_restart",
            Event::FaultSwitchReconnect { .. } => "netsim.event.fault_switch_reconnect",
        }
    }
}

/// Debug-build runtime invariant checker: the dynamic half of the
/// determinism contract that `tm-lint` enforces statically (see DESIGN.md
/// §"Determinism contract"). Tracks the last popped `(time, seq)` pair and
/// panics the moment a scheduler bug lets time run backwards or a tie pop
/// out of insertion order — the exact ordering sensitivities topology
/// tampering attacks exploit, caught at the source instead of three
/// scenarios downstream in a diverged BENCH_JSON snapshot.
#[cfg(debug_assertions)]
#[derive(Default)]
struct PopInvariants {
    last: Option<(SimTime, u64)>,
}

#[cfg(debug_assertions)]
impl PopInvariants {
    fn check(&mut self, at: SimTime, seq: u64, clock: SimTime) {
        assert!(
            at >= clock,
            "invariant violated: popped event at {at:?} is before the clock {clock:?}"
        );
        if let Some((last_at, last_seq)) = self.last {
            assert!(
                at >= last_at,
                "invariant violated: pop times went backwards ({at:?} after {last_at:?})"
            );
            assert!(
                at > last_at || seq > last_seq,
                "invariant violated: tie at {at:?} popped out of insertion order \
                 (seq {seq} after {last_seq})"
            );
        }
        self.last = Some((at, seq));
    }
}

/// Clock + queue + RNG. Shared mutably by every dispatch path.
pub(crate) struct SimCore {
    clock: SimTime,
    seq: u64,
    queue: EventQueue,
    pub(crate) rng: StdRng,
    /// Shared metrics handle (disabled by default: every publish is a no-op).
    pub(crate) telemetry: Telemetry,
    // Engine totals kept as plain scalars on the hot path and flushed into
    // the registry only when a snapshot is taken.
    events_scheduled: u64,
    events_processed: u64,
    queue_highwater: usize,
    #[cfg(debug_assertions)]
    invariants: PopInvariants,
}

impl SimCore {
    pub(crate) fn with_backend(seed: u64, telemetry: Telemetry, backend: SchedBackend) -> Self {
        SimCore {
            clock: SimTime::ZERO,
            seq: 0,
            queue: EventQueue::new(backend),
            rng: StdRng::seed_from_u64(seed),
            telemetry,
            events_scheduled: 0,
            events_processed: 0,
            queue_highwater: 0,
            #[cfg(debug_assertions)]
            invariants: PopInvariants::default(),
        }
    }

    pub(crate) fn now(&self) -> SimTime {
        self.clock
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub(crate) fn schedule(&mut self, delay: Duration, event: Event) {
        let at = self.clock + delay;
        self.schedule_at(at, event);
    }

    /// Schedules `event` at an absolute time (clamped to the present — the
    /// queue never travels backwards).
    pub(crate) fn schedule_at(&mut self, at: SimTime, event: Event) {
        let at = at.max(self.clock);
        let seq = self.seq;
        // Tie-break seqs are dense by construction (each schedule takes
        // the next integer); overflow would wrap ties back to the front.
        debug_assert!(seq < u64::MAX, "seq counter exhausted");
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
        self.events_scheduled += 1;
        if self.queue.len() > self.queue_highwater {
            self.queue_highwater = self.queue.len();
        }
    }

    /// Pops the next event if it fires at or before `horizon`, advancing the
    /// clock to the event time.
    pub(crate) fn pop_until(&mut self, horizon: SimTime) -> Option<Event> {
        let s = self.queue.pop_at_or_before(horizon)?;
        #[cfg(debug_assertions)]
        self.invariants.check(s.at, s.seq, self.clock);
        self.clock = s.at;
        self.events_processed += 1;
        Some(s.event)
    }

    /// Flushes the scalar engine totals into the registry (idempotent
    /// absolute writes; called when a snapshot is taken).
    pub(crate) fn flush_engine_metrics(&self) {
        self.telemetry
            .counter_set("netsim.engine.events_scheduled", self.events_scheduled);
        self.telemetry
            .counter_set("netsim.engine.events_processed", self.events_processed);
        self.telemetry.gauge_set(
            "netsim.engine.queue_highwater",
            i64::try_from(self.queue_highwater).unwrap_or(i64::MAX),
        );
        self.telemetry.gauge_set(
            "netsim.engine.clock_ns",
            i64::try_from(self.clock.as_nanos()).unwrap_or(i64::MAX),
        );
    }

    /// Advances the clock to `horizon` (used after draining events).
    pub(crate) fn advance_to(&mut self, horizon: SimTime) {
        if horizon > self.clock {
            self.clock = horizon;
        }
    }

    /// Number of pending events.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pushes a raw `(at, seq)` entry, bypassing the monotonic clamp and
    /// the dense seq counter — i.e. deliberately breaks the scheduler.
    /// Exists only so tests can prove the invariant checker catches it.
    #[cfg(test)]
    pub(crate) fn push_raw_for_test(&mut self, at: SimTime, seq: u64, event: Event) {
        self.queue.push(Scheduled { at, seq, event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [SchedBackend; 2] = [SchedBackend::Wheel, SchedBackend::Heap];

    #[test]
    fn scheduled_entries_are_sift_cheap() {
        // Every pending event is moved by heap sifts and wheel cascades;
        // boxing the fat payloads keeps each move to at most four machine
        // words: `at` + `seq` + a 16-byte `Event` (tag plus one aligned
        // word). A regression here means someone inlined a payload.
        assert!(
            std::mem::size_of::<Event>() <= 16,
            "Event grew to {} bytes — box the new payload",
            std::mem::size_of::<Event>()
        );
        assert!(
            std::mem::size_of::<Scheduled>() <= 32,
            "Scheduled grew to {} bytes — the sift bound is 32",
            std::mem::size_of::<Scheduled>()
        );
    }

    fn core(backend: SchedBackend) -> SimCore {
        SimCore::with_backend(1, Telemetry::disabled(), backend)
    }

    #[test]
    fn events_pop_in_time_order() {
        for backend in BACKENDS {
            let mut core = core(backend);
            core.schedule(Duration::from_millis(30), Event::ControllerTimer { id: 3 });
            core.schedule(Duration::from_millis(10), Event::ControllerTimer { id: 1 });
            core.schedule(Duration::from_millis(20), Event::ControllerTimer { id: 2 });
            let mut ids = Vec::new();
            while let Some(Event::ControllerTimer { id }) = core.pop_until(SimTime::from_secs(1)) {
                ids.push(id);
            }
            assert_eq!(ids, vec![1, 2, 3], "{backend:?}");
            assert_eq!(core.now(), SimTime::from_millis(30), "{backend:?}");
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for backend in BACKENDS {
            let mut core = core(backend);
            for id in 0..5 {
                core.schedule(Duration::from_millis(10), Event::ControllerTimer { id });
            }
            let mut ids = Vec::new();
            while let Some(Event::ControllerTimer { id }) = core.pop_until(SimTime::from_secs(1)) {
                ids.push(id);
            }
            assert_eq!(ids, vec![0, 1, 2, 3, 4], "{backend:?}");
        }
    }

    #[test]
    fn horizon_is_respected() {
        for backend in BACKENDS {
            let mut core = core(backend);
            core.schedule(Duration::from_millis(10), Event::ControllerTimer { id: 1 });
            core.schedule(Duration::from_millis(50), Event::ControllerTimer { id: 2 });
            assert!(core.pop_until(SimTime::from_millis(20)).is_some());
            assert!(core.pop_until(SimTime::from_millis(20)).is_none());
            assert_eq!(core.pending(), 1, "{backend:?}");
            core.advance_to(SimTime::from_millis(20));
            assert_eq!(core.now(), SimTime::from_millis(20), "{backend:?}");
        }
    }

    #[test]
    fn far_future_timers_survive_both_backends() {
        // Past the wheel span (≈18 min): exercises the overflow map.
        for backend in BACKENDS {
            let mut core = core(backend);
            core.schedule(Duration::from_secs(3600), Event::ControllerTimer { id: 1 });
            core.schedule(Duration::from_millis(5), Event::ControllerTimer { id: 2 });
            assert!(core.pop_until(SimTime::from_secs(1)).is_some());
            assert!(core.pop_until(SimTime::from_secs(1)).is_none());
            assert!(core.pop_until(SimTime::from_secs(7200)).is_some());
            assert_eq!(core.now(), SimTime::from_secs(3600), "{backend:?}");
            assert_eq!(core.pending(), 0, "{backend:?}");
        }
    }

    /// Runs `f` on a fresh core and reports whether it panicked, with the
    /// default panic hook silenced so expected panics don't spam test
    /// output.
    fn panics(
        backend: SchedBackend,
        f: impl FnOnce(&mut SimCore) + std::panic::UnwindSafe,
    ) -> bool {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(move || {
            let mut core = SimCore::with_backend(1, Telemetry::disabled(), backend);
            f(&mut core);
        });
        std::panic::set_hook(prev);
        result.is_err()
    }

    #[test]
    fn broken_scheduler_event_in_the_past_is_caught() {
        for backend in BACKENDS {
            assert!(
                panics(backend, |core| {
                    core.advance_to(SimTime::from_millis(10));
                    // A correct scheduler clamps to the present; push_raw does not.
                    core.push_raw_for_test(
                        SimTime::from_millis(5),
                        0,
                        Event::ControllerTimer { id: 1 },
                    );
                    core.pop_until(SimTime::from_secs(1));
                }),
                "{backend:?}"
            );
        }
    }

    #[test]
    fn broken_scheduler_duplicate_tie_break_is_caught() {
        for backend in BACKENDS {
            assert!(
                panics(backend, |core| {
                    // Two entries with the same (at, seq): the second pop violates
                    // the strictly-increasing-seq-within-a-tie invariant.
                    core.push_raw_for_test(
                        SimTime::from_millis(5),
                        7,
                        Event::ControllerTimer { id: 1 },
                    );
                    core.push_raw_for_test(
                        SimTime::from_millis(5),
                        7,
                        Event::ControllerTimer { id: 2 },
                    );
                    core.pop_until(SimTime::from_secs(1));
                    core.pop_until(SimTime::from_secs(1));
                }),
                "{backend:?}"
            );
        }
    }

    #[test]
    fn well_behaved_scheduling_passes_the_invariant_checker() {
        for backend in BACKENDS {
            assert!(
                !panics(backend, |core| {
                    for id in 0..100 {
                        core.schedule(Duration::from_millis(id % 7), Event::ControllerTimer { id });
                    }
                    while core.pop_until(SimTime::from_secs(1)).is_some() {}
                }),
                "{backend:?}"
            );
        }
    }

    #[test]
    fn clock_does_not_go_backward_on_advance() {
        let mut core = SimCore::with_backend(1, Telemetry::disabled(), SchedBackend::Wheel);
        core.advance_to(SimTime::from_millis(20));
        core.advance_to(SimTime::from_millis(10));
        assert_eq!(core.now(), SimTime::from_millis(20));
    }
}
