//! Built-in host applications: benign workloads and test instrumentation.

use std::any::Any;
use std::collections::VecDeque;

use sdn_types::packet::{
    ArpOp, ArpPacket, EthernetFrame, IcmpPacket, IcmpType, Ipv4Packet, Payload, Transport,
};
use sdn_types::{Duration, IpAddr, MacAddr, SimTime};

use crate::host::{FrameDisposition, HostApp, HostCtx};

const TIMER_TICK: u64 = 1;

/// A benign workload: resolves the target with ARP, then sends periodic
/// ICMP echo requests and records round-trip times.
///
/// This is the "normal dataplane traffic" used to mark ports as HOST in
/// TopoGuard's profiler and to verify fabricated links carry traffic.
pub struct PeriodicPinger {
    target_ip: IpAddr,
    period: Duration,
    start_delay: Duration,
    target_mac: Option<MacAddr>,
    next_seq: u16,
    in_flight: VecDeque<(u16, SimTime)>,
    /// Completed round-trip times, in milliseconds.
    pub rtts_ms: Vec<f64>,
    /// Echo requests sent.
    pub sent: u64,
    /// Echo replies received.
    pub received: u64,
}

impl PeriodicPinger {
    /// Creates a pinger targeting `target_ip` every `period`.
    pub fn new(target_ip: IpAddr, period: Duration) -> Self {
        PeriodicPinger {
            target_ip,
            period,
            start_delay: Duration::ZERO,
            target_mac: None,
            next_seq: 0,
            in_flight: VecDeque::new(),
            rtts_ms: Vec::new(),
            sent: 0,
            received: 0,
        }
    }

    /// Like [`PeriodicPinger::new`], but the first probe waits for
    /// `start_delay` after host start. Fabric scenarios use this to hold
    /// all dataplane broadcasts (the initial ARP resolution) until the
    /// controller's discovery has converged and floods are tree-scoped.
    pub fn starting_at(target_ip: IpAddr, period: Duration, start_delay: Duration) -> Self {
        let mut pinger = PeriodicPinger::new(target_ip, period);
        pinger.start_delay = start_delay;
        pinger
    }

    fn send_probe(&mut self, ctx: &mut HostCtx<'_>) {
        let info = ctx.info();
        match self.target_mac {
            None => {
                // Resolve first.
                let arp = ArpPacket::request(info.mac, info.ip, self.target_ip);
                ctx.send_frame(EthernetFrame::new(
                    info.mac,
                    MacAddr::BROADCAST,
                    Payload::Arp(arp),
                ));
            }
            Some(mac) => {
                self.next_seq = self.next_seq.wrapping_add(1);
                let seq = self.next_seq;
                let icmp =
                    IcmpPacket::echo_request((info.id.0 & 0xffff) as u16, seq, vec![0xAB; 16]);
                let pkt = Ipv4Packet::new(info.ip, self.target_ip, Transport::Icmp(icmp));
                if ctx.send_ipv4(mac, pkt) {
                    self.sent += 1;
                    self.in_flight.push_back((seq, ctx.now()));
                    if self.in_flight.len() > 64 {
                        self.in_flight.pop_front();
                    }
                }
            }
        }
    }
}

impl HostApp for PeriodicPinger {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // The first tick lands at `period` (unchanged historical behavior)
        // unless a start delay pushes it out.
        if self.start_delay > Duration::ZERO {
            ctx.set_timer(self.start_delay, TIMER_TICK);
        } else {
            ctx.set_timer(self.period, TIMER_TICK);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, id: u64) {
        if id == TIMER_TICK {
            self.send_probe(ctx);
            ctx.set_timer(self.period, TIMER_TICK);
        }
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) -> FrameDisposition {
        if let Some(arp) = frame.arp() {
            if arp.op == ArpOp::Reply && arp.sender_ip == self.target_ip {
                self.target_mac = Some(arp.sender_mac);
                return FrameDisposition::Pass;
            }
        }
        if let Some(ip) = frame.ipv4() {
            if ip.src == self.target_ip {
                if let Transport::Icmp(icmp) = &ip.transport {
                    if icmp.icmp_type == IcmpType::EchoReply {
                        if let Some(pos) =
                            self.in_flight.iter().position(|(s, _)| *s == icmp.sequence)
                        {
                            if let Some((_, sent_at)) = self.in_flight.remove(pos) {
                                self.received += 1;
                                self.rtts_ms.push(ctx.now().since(sent_at).as_millis_f64());
                            }
                        }
                        return FrameDisposition::Consume;
                    }
                }
            }
        }
        FrameDisposition::Pass
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Records every frame delivered to the host (the default stack still
/// responds). Useful in tests and as a tap.
#[derive(Default)]
pub struct FrameRecorder {
    /// Captured frames with arrival times.
    pub frames: Vec<(SimTime, EthernetFrame)>,
}

impl FrameRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        FrameRecorder::default()
    }

    /// Counts captured LLDP frames.
    pub fn lldp_count(&self) -> usize {
        self.frames.iter().filter(|(_, f)| f.is_lldp()).count()
    }
}

impl HostApp for FrameRecorder {
    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) -> FrameDisposition {
        self.frames.push((ctx.now(), frame.clone()));
        FrameDisposition::Pass
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkProfile, NetworkSpec, Simulator};
    use sdn_types::{DatapathId, HostId, PortNo};

    /// With no controller logic, pings go nowhere (table miss, PacketIn to a
    /// NullController) — but ARP broadcast still reaches the other host via
    /// nothing... it does not: no flow rules and no controller flooding.
    /// This test just checks the app schedules and sends.
    #[test]
    fn pinger_arps_first() {
        let mut spec = NetworkSpec::new();
        spec.add_switch(DatapathId::new(1));
        spec.add_host(
            HostId::new(1),
            MacAddr::from_index(1),
            IpAddr::new(10, 0, 0, 1),
        );
        spec.add_host(
            HostId::new(2),
            MacAddr::from_index(2),
            IpAddr::new(10, 0, 0, 2),
        );
        spec.attach_host(
            HostId::new(1),
            DatapathId::new(1),
            PortNo::new(1),
            LinkProfile::fixed(Duration::from_millis(1)),
        );
        spec.attach_host(
            HostId::new(2),
            DatapathId::new(1),
            PortNo::new(2),
            LinkProfile::fixed(Duration::from_millis(1)),
        );
        spec.set_host_app(
            HostId::new(1),
            Box::new(PeriodicPinger::new(
                IpAddr::new(10, 0, 0, 2),
                Duration::from_millis(100),
            )),
        );
        let mut sim = Simulator::new(spec, 7);
        sim.run_for(Duration::from_secs(1));
        // Without a forwarding controller the ARP dies at the switch, but
        // the app must have tried (PacketIns observed at the switch).
        assert!(sim.trace().count("PacketIn") > 0);
        let pinger: &PeriodicPinger = sim.host_app_as(HostId::new(1)).expect("app installed");
        assert_eq!(pinger.sent, 0, "no ARP reply -> no pings yet");
    }
}
