//! The interface between the simulator and a controller implementation.
//!
//! The `controller` crate implements [`ControllerLogic`]; the simulator
//! delivers OpenFlow messages and timer callbacks through it, and the logic
//! acts on the network exclusively through [`ControllerCtx`] — mirroring how
//! a real controller only sees its control channels.

use std::any::Any;

use tm_rand::StdRng;

use openflow::{OfMessage, PortDesc};
use sdn_types::{DatapathId, Duration, SimTime};

use crate::engine::{CtrlDelivery, Event, SimCore};
use crate::sim::NetState;

/// A controller-chosen timer identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(pub u64);

/// The capabilities the simulator grants a controller.
pub struct ControllerCtx<'a> {
    pub(crate) core: &'a mut SimCore,
    pub(crate) net: &'a mut NetState,
}

impl ControllerCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// The seeded RNG (for controller-side randomness, e.g. echo payloads).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }

    /// The simulation's telemetry handle (cheap clone; controllers grab it
    /// in `on_start` and publish into it for the rest of the run).
    pub fn telemetry(&self) -> tm_telemetry::Telemetry {
        self.core.telemetry.clone()
    }

    /// Sends `msg` to switch `dpid` over its control channel. Returns
    /// `false` if no such switch exists.
    pub fn send(&mut self, dpid: DatapathId, msg: OfMessage) -> bool {
        let Some(sw) = self.net.switches.get(&dpid) else {
            return false;
        };
        // Control-channel congestion faults add queuing delay on the way
        // down (PacketOut direction).
        let latency =
            sw.ctrl_latency + self.net.faults.ctrl_extra_delay(dpid, &self.core.telemetry);
        self.core.schedule(
            latency,
            Event::CtrlToSwitch(Box::new(CtrlDelivery { dpid, msg })),
        );
        true
    }

    /// Schedules `ControllerLogic::on_timer(id)` to fire after `delay`.
    pub fn set_timer(&mut self, delay: Duration, id: TimerId) {
        self.core
            .schedule(delay, Event::ControllerTimer { id: id.0 });
    }

    /// Datapath ids of all connected switches, in ascending order.
    pub fn switch_ids(&self) -> Vec<DatapathId> {
        self.net.switches.keys().copied().collect()
    }

    /// Port descriptions for `dpid` (the switch's current physical view).
    pub fn switch_ports(&self, dpid: DatapathId) -> Vec<PortDesc> {
        self.net
            .switches
            .get(&dpid)
            .map(|sw| sw.port_descs())
            .unwrap_or_default()
    }

    /// The configured control-link latency for `dpid` (used by experiments
    /// to validate latency estimation; a real controller would not know
    /// this and must measure it with echoes).
    pub fn ground_truth_ctrl_latency(&self, dpid: DatapathId) -> Option<Duration> {
        self.net.switches.get(&dpid).map(|sw| sw.ctrl_latency)
    }
}

/// A controller implementation.
///
/// All methods receive a [`ControllerCtx`] granting access to control
/// channels and timers. Implementations must provide `as_any`/`as_any_mut`
/// so tests and experiments can downcast to the concrete controller type
/// and inspect its state.
pub trait ControllerLogic {
    /// Called once at simulation start, before any messages.
    fn on_start(&mut self, ctx: &mut ControllerCtx<'_>);

    /// Called for every control message arriving from a switch.
    fn on_message(&mut self, ctx: &mut ControllerCtx<'_>, dpid: DatapathId, msg: OfMessage);

    /// Called when a timer set via [`ControllerCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut ControllerCtx<'_>, id: TimerId);

    /// Downcasting support.
    fn as_any(&self) -> &dyn Any;

    /// Downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A controller that ignores everything — useful for dataplane-only tests.
#[derive(Debug, Default)]
pub struct NullController;

impl ControllerLogic for NullController {
    fn on_start(&mut self, _ctx: &mut ControllerCtx<'_>) {}
    fn on_message(&mut self, _ctx: &mut ControllerCtx<'_>, _dpid: DatapathId, _msg: OfMessage) {}
    fn on_timer(&mut self, _ctx: &mut ControllerCtx<'_>, _id: TimerId) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
