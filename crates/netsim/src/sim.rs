//! The top-level simulator: network construction and the event loop.

use std::collections::BTreeMap;

use openflow::OfMessage;
use sdn_types::packet::EthernetFrame;
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SimTime};
use tm_telemetry::{MetricsSnapshot, Telemetry};

use crate::controller_api::{ControllerCtx, ControllerLogic, NullController};
use crate::engine::{CtrlDelivery, Event, SimCore};
use crate::faults::{FaultPlan, FaultState, FaultWindowKind};
use crate::host::{deliver_frame, HostApp, HostCtx, HostInfo, HostState};
use crate::link::LinkProfile;
use crate::sched::SchedBackend;
use crate::switch::{self, Peer, SwitchState};
use crate::trace::{Trace, TraceEvent};
use crate::traffic::{self, TrafficPlan, TrafficState};

/// An out-of-band channel between two colluding hosts (the paper's 802.11
/// side link, Fig. 1), with propagation latency and per-packet
/// encode/decode cost.
pub(crate) struct OobChannel {
    pub(crate) a: HostId,
    pub(crate) b: HostId,
    pub(crate) latency: Duration,
    pub(crate) codec_cost: Duration,
}

/// All network state (switches, hosts, channels, trace).
pub(crate) struct NetState {
    pub(crate) switches: BTreeMap<DatapathId, SwitchState>,
    pub(crate) hosts: BTreeMap<HostId, HostState>,
    pub(crate) oob_channels: Vec<OobChannel>,
    pub(crate) trace: Trace,
    /// Runtime state of the installed fault plan (empty by default:
    /// every query is rejected without touching the RNG).
    pub(crate) faults: FaultState,
    /// Runtime state of the installed traffic plan (empty by default:
    /// no groups, no RNG streams, no flow cache).
    pub(crate) traffic: TrafficState,
}

/// Declarative description of a network, consumed by [`Simulator::new`].
///
/// The default control-link latency is 1 ms per switch.
pub struct NetworkSpec {
    net: NetState,
    controller: Box<dyn ControllerLogic>,
    default_ctrl_latency: Duration,
    telemetry: Telemetry,
    sched_backend: Option<SchedBackend>,
}

impl NetworkSpec {
    /// Creates an empty specification with a [`NullController`].
    pub fn new() -> Self {
        NetworkSpec {
            net: NetState {
                switches: BTreeMap::new(),
                hosts: BTreeMap::new(),
                oob_channels: Vec::new(),
                trace: Trace::default(),
                faults: FaultState::default(),
                traffic: TrafficState::default(),
            },
            controller: Box::new(NullController),
            default_ctrl_latency: Duration::from_millis(1),
            telemetry: Telemetry::disabled(),
            sched_backend: None,
        }
    }

    /// Pins the event-queue backend for simulators built from this spec,
    /// overriding the process default (see
    /// [`crate::set_global_sched_backend`]). Backend choice can never
    /// affect simulation output — the differential scheduler suite proves
    /// byte-identical traces — only wall-clock speed.
    pub fn set_sched_backend(&mut self, backend: SchedBackend) -> &mut Self {
        self.sched_backend = Some(backend);
        self
    }

    /// Installs a telemetry handle; every layer of the simulation publishes
    /// metrics into it. The default is a disabled handle (all publishes are
    /// no-ops).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.telemetry = telemetry;
        self
    }

    /// Adds a switch with the default control-link latency.
    pub fn add_switch(&mut self, dpid: DatapathId) -> &mut Self {
        let latency = self.default_ctrl_latency;
        self.add_switch_with_ctrl_latency(dpid, latency)
    }

    /// Adds a switch with a specific control-link latency.
    ///
    /// # Panics
    /// Panics if the datapath id is already in use.
    pub fn add_switch_with_ctrl_latency(
        &mut self,
        dpid: DatapathId,
        ctrl_latency: Duration,
    ) -> &mut Self {
        let prev = self
            .net
            .switches
            .insert(dpid, SwitchState::new(dpid, ctrl_latency));
        assert!(prev.is_none(), "duplicate switch {dpid}");
        self
    }

    /// Adds a host with the given identifiers (initially unattached).
    ///
    /// # Panics
    /// Panics if the host id is already in use.
    pub fn add_host(&mut self, id: HostId, mac: MacAddr, ip: IpAddr) -> &mut Self {
        let prev = self.net.hosts.insert(id, HostState::new(id, mac, ip));
        assert!(prev.is_none(), "duplicate host {id}");
        self
    }

    /// Attaches a host to a switch port over `link`.
    ///
    /// # Panics
    /// Panics if host or switch does not exist, or the port is in use.
    pub fn attach_host(
        &mut self,
        host: HostId,
        dpid: DatapathId,
        port: PortNo,
        link: LinkProfile,
    ) -> &mut Self {
        // tm-lint: allow(unwrap-in-lib) -- documented builder panic ("# Panics"): a malformed spec must fail loudly at build time, not mid-simulation
        let sw = self.net.switches.get_mut(&dpid).expect("switch exists");
        assert!(
            !sw.ports.contains_key(&port),
            "port {port} on {dpid} already attached"
        );
        sw.attach(port, Peer::Host { host }, link);
        // tm-lint: allow(unwrap-in-lib) -- documented builder panic ("# Panics"): a malformed spec must fail loudly at build time, not mid-simulation
        let h = self.net.hosts.get_mut(&host).expect("host exists");
        assert!(h.attachment.is_none(), "host {host} already attached");
        h.attachment = Some((dpid, port, link));
        self
    }

    /// Connects two switch ports with a symmetric link.
    ///
    /// # Panics
    /// Panics if either switch is missing or a port is in use.
    pub fn link_switches(
        &mut self,
        a: DatapathId,
        port_a: PortNo,
        b: DatapathId,
        port_b: PortNo,
        link: LinkProfile,
    ) -> &mut Self {
        {
            // tm-lint: allow(unwrap-in-lib) -- documented builder panic ("# Panics"): a malformed spec must fail loudly at build time, not mid-simulation
            let sw_a = self.net.switches.get_mut(&a).expect("switch a exists");
            assert!(!sw_a.ports.contains_key(&port_a), "port in use on {a}");
            sw_a.attach(
                port_a,
                Peer::Switch {
                    dpid: b,
                    port: port_b,
                },
                link,
            );
        }
        {
            // tm-lint: allow(unwrap-in-lib) -- documented builder panic ("# Panics"): a malformed spec must fail loudly at build time, not mid-simulation
            let sw_b = self.net.switches.get_mut(&b).expect("switch b exists");
            assert!(!sw_b.ports.contains_key(&port_b), "port in use on {b}");
            sw_b.attach(
                port_b,
                Peer::Switch {
                    dpid: a,
                    port: port_a,
                },
                link,
            );
        }
        self
    }

    /// Adds an out-of-band channel between two hosts.
    pub fn add_oob_channel(
        &mut self,
        a: HostId,
        b: HostId,
        latency: Duration,
        codec_cost: Duration,
    ) -> &mut Self {
        self.net.oob_channels.push(OobChannel {
            a,
            b,
            latency,
            codec_cost,
        });
        self
    }

    /// Installs a host application.
    ///
    /// # Panics
    /// Panics if the host does not exist.
    pub fn set_host_app(&mut self, host: HostId, app: Box<dyn HostApp>) -> &mut Self {
        // tm-lint: allow(unwrap-in-lib) -- documented builder panic ("# Panics"): a malformed spec must fail loudly at build time, not mid-simulation
        self.net.hosts.get_mut(&host).expect("host exists").app = Some(app);
        self
    }

    /// Installs the controller.
    pub fn set_controller(&mut self, controller: Box<dyn ControllerLogic>) -> &mut Self {
        self.controller = controller;
        self
    }
}

impl Default for NetworkSpec {
    fn default() -> Self {
        NetworkSpec::new()
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    core: SimCore,
    net: NetState,
    controller: Option<Box<dyn ControllerLogic>>,
}

impl Simulator {
    /// Builds a simulator from `spec`, seeds the RNG, performs the
    /// controller handshake (Hello + FeaturesReply per switch), and invokes
    /// `on_start` hooks.
    pub fn new(spec: NetworkSpec, seed: u64) -> Self {
        let backend = spec
            .sched_backend
            .unwrap_or_else(crate::sched::default_sched_backend);
        let mut sim = Simulator {
            core: SimCore::with_backend(seed, spec.telemetry, backend),
            net: spec.net,
            controller: Some(spec.controller),
        };

        // Switch handshake: each switch announces itself.
        let dpids: Vec<DatapathId> = sim.net.switches.keys().copied().collect();
        for dpid in &dpids {
            let sw = &sim.net.switches[dpid];
            let latency = sw.ctrl_latency;
            let ports = sw.port_descs();
            sim.core.schedule(
                latency,
                Event::CtrlToController(Box::new(CtrlDelivery {
                    dpid: *dpid,
                    msg: OfMessage::Hello,
                })),
            );
            sim.core.schedule(
                latency,
                Event::CtrlToController(Box::new(CtrlDelivery {
                    dpid: *dpid,
                    msg: OfMessage::FeaturesReply { dpid: *dpid, ports },
                })),
            );
            let tick = sw.expiry_tick;
            sim.core
                .schedule(tick, Event::SwitchExpiryTick { dpid: *dpid });
        }

        // Controller start hook.
        sim.with_controller(|logic, ctx| logic.on_start(ctx));

        // Host app start hooks.
        let hosts: Vec<HostId> = sim.net.hosts.keys().copied().collect();
        for host in hosts {
            sim.with_host_app(host, |app, ctx| app.on_start(ctx));
        }
        sim
    }

    /// Builds a simulator like [`Simulator::new`] and installs a fault
    /// plan: every entry becomes ordinary scheduled events in the
    /// deterministic queue (see [`crate::faults`]). An empty plan schedules
    /// nothing and draws nothing — the run is byte-identical to
    /// `Simulator::new(spec, seed)`.
    pub fn with_fault_plan(spec: NetworkSpec, seed: u64, plan: FaultPlan) -> Self {
        let mut sim = Simulator::new(spec, seed);
        sim.install_fault_plan(plan);
        sim
    }

    /// Builds a simulator like [`Simulator::new`] and installs a traffic
    /// plan: one aggregation host is attached per group (before the
    /// handshake, so the controller's `FeaturesReply` already lists the
    /// aggregation ports) and each group's arrival chain becomes ordinary
    /// scheduled events drawing from per-group RNG streams (see
    /// [`crate::traffic`]). An empty plan attaches nothing, schedules
    /// nothing and draws nothing — the run is byte-identical to
    /// `Simulator::new(spec, seed)`.
    ///
    /// # Panics
    /// Panics if a group names a missing switch or an occupied port.
    pub fn with_traffic_plan(spec: NetworkSpec, seed: u64, plan: TrafficPlan) -> Self {
        Simulator::with_plans(spec, seed, FaultPlan::new(), plan)
    }

    /// Builds a simulator with both a fault plan and a traffic plan
    /// installed (either may be empty; an empty plan changes nothing).
    ///
    /// # Panics
    /// Panics if a traffic group names a missing switch or an occupied
    /// port.
    pub fn with_plans(
        mut spec: NetworkSpec,
        seed: u64,
        faults: FaultPlan,
        traffic: TrafficPlan,
    ) -> Self {
        traffic::prepare_spec(&mut spec, &traffic);
        let mut sim = Simulator::new(spec, seed);
        if !faults.is_empty() {
            sim.install_fault_plan(faults);
        }
        sim.install_traffic_plan(seed, traffic);
        sim
    }

    /// Schedules each traffic group's window-start phase event and stores
    /// the runtime traffic state. An empty plan schedules zero events and
    /// constructs zero RNG streams.
    fn install_traffic_plan(&mut self, seed: u64, plan: TrafficPlan) {
        if plan.is_empty() {
            return;
        }
        for (index, g) in plan.groups().iter().enumerate() {
            self.core.schedule_at(
                g.window.from,
                Event::TrafficPhase {
                    group: index as u32,
                },
            );
        }
        self.net.traffic = TrafficState::install(plan, seed);
    }

    /// Schedules the plan's window/flap/restart edges and stores the
    /// runtime fault state.
    fn install_fault_plan(&mut self, plan: FaultPlan) {
        for (index, f) in plan.loss().iter().enumerate() {
            self.schedule_window(FaultWindowKind::Loss, index, f.window);
        }
        for (index, f) in plan.spikes().iter().enumerate() {
            self.schedule_window(FaultWindowKind::Spike, index, f.window);
        }
        for (index, f) in plan.congestion().iter().enumerate() {
            self.schedule_window(FaultWindowKind::Congestion, index, f.window);
        }
        for (index, f) in plan.flaps().iter().enumerate() {
            self.core
                .schedule_at(f.down_at, Event::FaultLinkDown { index });
            self.core.schedule_at(f.up_at, Event::FaultLinkUp { index });
        }
        for (index, f) in plan.restarts().iter().enumerate() {
            self.core
                .schedule_at(f.at, Event::FaultSwitchRestart { index });
            self.core
                .schedule_at(f.at + f.outage, Event::FaultSwitchReconnect { index });
        }
        self.net.faults = FaultState::install(plan);
    }

    fn schedule_window(
        &mut self,
        kind: FaultWindowKind,
        index: usize,
        window: crate::faults::FaultWindow,
    ) {
        self.core
            .schedule_at(window.from, Event::FaultWindowStart { kind, index });
        self.core
            .schedule_at(window.until, Event::FaultWindowEnd { kind, index });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Runs until the event queue is empty or `deadline` is reached; the
    /// clock ends exactly at `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(event) = self.core.pop_until(deadline) {
            self.dispatch(event);
        }
        self.core.advance_to(deadline);
    }

    /// Runs for `duration` of virtual time.
    pub fn run_for(&mut self, duration: Duration) {
        let deadline = self.now() + duration;
        self.run_until(deadline);
    }

    /// The simulator's telemetry handle (clone it to publish from outside).
    pub fn telemetry(&self) -> &Telemetry {
        &self.core.telemetry
    }

    /// Takes a deterministic snapshot of every metric published so far,
    /// flushing the engine's hot-path counters first. Byte-identical across
    /// runs with the same seed.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.core.flush_engine_metrics();
        self.core.telemetry.snapshot()
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.net.trace
    }

    /// Clears retained trace records.
    pub fn clear_trace(&mut self) {
        self.net.trace.clear();
    }

    /// Snapshot of a host's state.
    pub fn host_info(&self, host: HostId) -> Option<HostInfo> {
        self.net.hosts.get(&host).map(|h| h.info())
    }

    /// Number of rules installed on a switch.
    pub fn flow_count(&self, dpid: DatapathId) -> Option<usize> {
        self.net.switches.get(&dpid).map(|sw| sw.table.len())
    }

    /// Per-port statistics for a switch.
    pub fn port_stats(&self, dpid: DatapathId) -> Option<Vec<openflow::PortStatsEntry>> {
        self.net.switches.get(&dpid).map(|sw| sw.port_stats())
    }

    /// Administratively disables or enables a switch port (failure
    /// injection). Generates the same PortStatus messages a cable pull
    /// would.
    pub fn set_switch_port_admin(&mut self, dpid: DatapathId, port: PortNo, up: bool) {
        // One lookup covers the change check and the admin-down
        // transition, so no re-lookup has to assert the port still exists.
        let down_desc = {
            let Some(sw) = self.net.switches.get_mut(&dpid) else {
                return;
            };
            let Some(p) = sw.ports.get_mut(&port) else {
                return;
            };
            if p.admin_up == up {
                return;
            }
            p.admin_up = up;
            if up {
                None
            } else {
                // Admin-down is observed immediately (no pulse wait).
                p.detected_up = false;
                Some(openflow::PortDesc {
                    port_no: port,
                    hw_addr: p.hw_addr,
                    state: openflow::PortLinkState::Down,
                })
            }
        };
        if up {
            switch::declare_port_up(&mut self.core, &mut self.net, dpid, port);
        } else if let Some(desc) = down_desc {
            let now = self.core.now();
            self.net.trace.push(TraceEvent::PortDown {
                at: now,
                dpid,
                port,
            });
            switch::send_to_controller(
                &mut self.core,
                &self.net,
                dpid,
                OfMessage::PortStatus {
                    reason: openflow::PortStatusReason::Modify,
                    desc,
                    observed_at: now,
                },
            );
        }
    }

    /// Downcasts the controller to a concrete type.
    pub fn controller_as<T: 'static>(&self) -> Option<&T> {
        self.controller
            .as_ref()
            .and_then(|c| c.as_any().downcast_ref())
    }

    /// Downcasts the controller to a concrete type, mutably.
    pub fn controller_as_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.controller
            .as_mut()
            .and_then(|c| c.as_any_mut().downcast_mut())
    }

    /// Downcasts a host's app to a concrete type.
    pub fn host_app_as<T: 'static>(&self, host: HostId) -> Option<&T> {
        self.net
            .hosts
            .get(&host)?
            .app
            .as_ref()
            .and_then(|a| a.as_any().downcast_ref())
    }

    /// Downcasts a host's app to a concrete type, mutably.
    pub fn host_app_as_mut<T: 'static>(&mut self, host: HostId) -> Option<&mut T> {
        self.net
            .hosts
            .get_mut(&host)?
            .app
            .as_mut()
            .and_then(|a| a.as_any_mut().downcast_mut())
    }

    /// Imperatively takes a host's interface down (scenario scripting).
    /// Unknown host ids are ignored (scenario input must not panic).
    pub fn host_iface_down(&mut self, host: HostId) {
        if !self.net.hosts.contains_key(&host) {
            return;
        }
        let mut ctx = HostCtx {
            core: &mut self.core,
            net: &mut self.net,
            host,
        };
        ctx.iface_down();
    }

    /// Imperatively schedules a host's interface to come up. Unknown host
    /// ids are ignored (scenario input must not panic).
    pub fn host_schedule_iface_up(
        &mut self,
        host: HostId,
        delay: Duration,
        identity: Option<(MacAddr, IpAddr)>,
    ) {
        if !self.net.hosts.contains_key(&host) {
            return;
        }
        let mut ctx = HostCtx {
            core: &mut self.core,
            net: &mut self.net,
            host,
        };
        ctx.schedule_iface_up(delay, identity);
    }

    /// Imperatively sends a frame from a host. Returns `false` for an
    /// unknown host id (scenario input must not panic).
    pub fn host_send_frame(&mut self, host: HostId, frame: EthernetFrame) -> bool {
        if !self.net.hosts.contains_key(&host) {
            return false;
        }
        let mut ctx = HostCtx {
            core: &mut self.core,
            net: &mut self.net,
            host,
        };
        ctx.send_frame(frame)
    }

    /// Runs `f` with mutable access to a host's app and its context —
    /// the escape hatch scenario drivers use to poke attack state machines.
    pub fn with_host_app<R>(
        &mut self,
        host: HostId,
        f: impl FnOnce(&mut dyn HostApp, &mut HostCtx<'_>) -> R,
    ) -> Option<R> {
        let mut app = self.net.hosts.get_mut(&host)?.app.take()?;
        let mut ctx = HostCtx {
            core: &mut self.core,
            net: &mut self.net,
            host,
        };
        let r = f(app.as_mut(), &mut ctx);
        if let Some(h) = self.net.hosts.get_mut(&host) {
            h.app = Some(app);
        }
        Some(r)
    }

    fn with_controller<R>(
        &mut self,
        f: impl FnOnce(&mut dyn ControllerLogic, &mut ControllerCtx<'_>) -> R,
    ) -> Option<R> {
        let mut controller = self.controller.take()?;
        let mut ctx = ControllerCtx {
            core: &mut self.core,
            net: &mut self.net,
        };
        let r = f(controller.as_mut(), &mut ctx);
        self.controller = Some(controller);
        Some(r)
    }

    fn dispatch(&mut self, event: Event) {
        self.core.telemetry.counter_inc(event.kind());
        match event {
            Event::DeliverToSwitch(d) => {
                switch::handle_frame(&mut self.core, &mut self.net, d.dpid, d.port, d.frame);
            }
            Event::DeliverToHost(d) => {
                deliver_frame(&mut self.core, &mut self.net, d.host, d.frame);
            }
            Event::DeliverOob(d) => {
                self.net.trace.push(TraceEvent::OobRelay {
                    at: self.core.now(),
                    from: d.from,
                    to: d.to,
                });
                self.with_host_app(d.to, |app, ctx| app.on_oob_frame(ctx, d.from, d.frame));
            }
            Event::CtrlToSwitch(d) => {
                switch::handle_ctrl(&mut self.core, &mut self.net, d.dpid, d.msg);
            }
            Event::CtrlToController(d) => {
                self.with_controller(|logic, ctx| logic.on_message(ctx, d.dpid, d.msg));
            }
            Event::ControllerTimer { id } => {
                self.with_controller(|logic, ctx| {
                    logic.on_timer(ctx, crate::controller_api::TimerId(id))
                });
            }
            Event::HostTimer { host, id } => {
                self.with_host_app(host, |app, ctx| app.on_timer(ctx, id));
            }
            Event::SwitchExpiryTick { dpid } => {
                switch::handle_expiry_tick(&mut self.core, &mut self.net, dpid);
            }
            Event::PulseCheck(d) => {
                switch::handle_pulse_check(
                    &mut self.core,
                    &mut self.net,
                    d.dpid,
                    d.port,
                    d.down_epoch,
                );
            }
            Event::PulseCheckUp { dpid, port } => {
                let host_up = match self
                    .net
                    .switches
                    .get(&dpid)
                    .and_then(|sw| sw.ports.get(&port))
                {
                    Some(p) => match p.peer {
                        Peer::Host { host } => self
                            .net
                            .hosts
                            .get(&host)
                            .map(|h| h.iface_up)
                            .unwrap_or(false),
                        Peer::Switch { .. } => true,
                    },
                    None => return,
                };
                if host_up {
                    switch::declare_port_up(&mut self.core, &mut self.net, dpid, port);
                }
            }
            Event::HostIfaceUp(d) => {
                let host = d.host;
                let current = match self.net.hosts.get(&host) {
                    Some(h) => h.up_epoch,
                    None => return,
                };
                if current != d.epoch {
                    return; // superseded by a later down/up cycle
                }
                {
                    let mut ctx = HostCtx {
                        core: &mut self.core,
                        net: &mut self.net,
                        host,
                    };
                    ctx.complete_iface_up(d.identity);
                }
                self.with_host_app(host, |app, ctx| app.on_iface_up(ctx));
            }
            Event::TrafficArrival { group, epoch } => {
                traffic::on_arrival(&mut self.core, &mut self.net, group, epoch);
            }
            Event::TrafficPhase { group } => {
                traffic::on_phase(&mut self.core, &mut self.net, group);
            }
            Event::FaultWindowStart { kind, index } => {
                self.core
                    .telemetry
                    .counter_inc("netsim.fault.windows_opened");
                self.net.faults.set_window(kind, index, true);
            }
            Event::FaultWindowEnd { kind, index } => {
                self.net.faults.set_window(kind, index, false);
            }
            Event::FaultLinkDown { index } => {
                let Some(f) = self.net.faults.plan.flaps().get(index).copied() else {
                    return;
                };
                self.core.telemetry.counter_inc("netsim.fault.link_flaps");
                self.set_switch_port_admin(f.dpid, f.port, false);
            }
            Event::FaultLinkUp { index } => {
                let Some(f) = self.net.faults.plan.flaps().get(index).copied() else {
                    return;
                };
                self.set_switch_port_admin(f.dpid, f.port, true);
            }
            Event::FaultSwitchRestart { index } => {
                let Some(f) = self.net.faults.plan.restarts().get(index).copied() else {
                    return;
                };
                let Some(sw) = self.net.switches.get_mut(&f.dpid) else {
                    return;
                };
                // The restart wipes all installed state; in-flight traffic
                // starts table-missing into PacketIns immediately.
                sw.table = openflow::FlowTable::new();
                self.core
                    .telemetry
                    .counter_inc("netsim.fault.switch_restarts");
            }
            Event::FaultSwitchReconnect { index } => {
                let Some(f) = self.net.faults.plan.restarts().get(index).copied() else {
                    return;
                };
                let Some(sw) = self.net.switches.get(&f.dpid) else {
                    return;
                };
                // The control channel comes back: the switch re-runs the
                // same handshake it performed at simulation start, so the
                // controller observes a reconnect. Routed through
                // send_to_controller so congestion faults apply to it too.
                let ports = sw.port_descs();
                switch::send_to_controller(&mut self.core, &self.net, f.dpid, OfMessage::Hello);
                switch::send_to_controller(
                    &mut self.core,
                    &self.net,
                    f.dpid,
                    OfMessage::FeaturesReply {
                        dpid: f.dpid,
                        ports,
                    },
                );
            }
        }
    }
}
