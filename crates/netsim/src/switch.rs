//! The simulated OpenFlow switch: dataplane forwarding, control-channel
//! handling, and the physical-layer port state machine.

use std::collections::BTreeMap;

use openflow::{
    FlowEntry, FlowModCommand, FlowTable, MatchOutcome, OfMessage, PacketInReason, PortDesc,
    PortLinkState, PortStatsEntry, PortStatusReason,
};
use sdn_types::packet::EthernetFrame;
use sdn_types::{DatapathId, Duration, HostId, MacAddr, PortNo, SimTime};

use crate::engine::{CtrlDelivery, Event, HostDelivery, SimCore, SwitchDelivery};
use crate::link::LinkProfile;
use crate::sim::NetState;
use crate::trace::TraceEvent;

/// What is plugged into a switch port.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Peer {
    /// Another switch's port.
    Switch {
        /// The peer switch.
        dpid: DatapathId,
        /// The peer port.
        port: PortNo,
    },
    /// A host interface.
    Host {
        /// The host.
        host: HostId,
    },
}

/// Per-port switch state.
#[derive(Clone, Debug)]
pub(crate) struct PortState {
    pub(crate) peer: Peer,
    pub(crate) link: LinkProfile,
    pub(crate) hw_addr: MacAddr,
    /// The switch's physical-layer view of the link (updated by the
    /// link-integrity-pulse state machine).
    pub(crate) detected_up: bool,
    /// Administrative state (failure injection).
    pub(crate) admin_up: bool,
    /// Latest delivery time already scheduled on this egress channel. A
    /// physical link is a FIFO pipe: a frame sent later can never overtake
    /// one sent earlier, so jittered/bursty samples are clamped to this.
    pub(crate) next_delivery: SimTime,
    pub(crate) rx_packets: u64,
    pub(crate) tx_packets: u64,
    pub(crate) rx_bytes: u64,
    pub(crate) tx_bytes: u64,
}

impl PortState {
    fn is_up(&self) -> bool {
        self.detected_up && self.admin_up
    }

    fn desc(&self, port_no: PortNo) -> PortDesc {
        PortDesc {
            port_no,
            hw_addr: self.hw_addr,
            state: if self.is_up() {
                PortLinkState::Up
            } else {
                PortLinkState::Down
            },
        }
    }
}

/// A simulated switch.
pub(crate) struct SwitchState {
    pub(crate) dpid: DatapathId,
    pub(crate) table: FlowTable,
    pub(crate) ports: BTreeMap<PortNo, PortState>,
    pub(crate) ctrl_latency: Duration,
    /// Fixed processing delay for echo replies (models switch CPU).
    pub(crate) echo_processing: Duration,
    pub(crate) expiry_tick: Duration,
}

impl SwitchState {
    pub(crate) fn new(dpid: DatapathId, ctrl_latency: Duration) -> Self {
        SwitchState {
            dpid,
            table: FlowTable::new(),
            ports: BTreeMap::new(),
            ctrl_latency,
            echo_processing: Duration::from_micros(50),
            expiry_tick: Duration::from_secs(1),
        }
    }

    pub(crate) fn attach(&mut self, port: PortNo, peer: Peer, link: LinkProfile) {
        debug_assert!(
            self.dpid.raw() <= 0x00ff_ffff,
            "switch MACs encode a 24-bit dpid"
        );
        let hw = MacAddr::from_index((self.dpid.raw() as u32) << 8 | u32::from(port.raw()));
        self.ports.insert(
            port,
            PortState {
                peer,
                link,
                hw_addr: hw,
                detected_up: true,
                admin_up: true,
                next_delivery: SimTime::ZERO,
                rx_packets: 0,
                tx_packets: 0,
                rx_bytes: 0,
                tx_bytes: 0,
            },
        );
    }

    pub(crate) fn port_descs(&self) -> Vec<PortDesc> {
        self.ports.iter().map(|(no, p)| p.desc(*no)).collect()
    }

    pub(crate) fn port_stats(&self) -> Vec<PortStatsEntry> {
        self.ports
            .iter()
            .map(|(no, p)| PortStatsEntry {
                port_no: *no,
                rx_packets: p.rx_packets,
                tx_packets: p.tx_packets,
                rx_bytes: p.rx_bytes,
                tx_bytes: p.tx_bytes,
            })
            .collect()
    }
}

/// Sends `msg` from switch `dpid` up to the controller.
pub(crate) fn send_to_controller(
    core: &mut SimCore,
    net: &NetState,
    dpid: DatapathId,
    msg: OfMessage,
) {
    let latency = match net.switches.get(&dpid) {
        Some(sw) => sw.ctrl_latency,
        None => return,
    };
    // Control-channel congestion faults add queuing delay on the way up
    // (PacketIn direction).
    let latency = latency + net.faults.ctrl_extra_delay(dpid, &core.telemetry);
    core.schedule(
        latency,
        Event::CtrlToController(Box::new(CtrlDelivery { dpid, msg })),
    );
}

/// Marks a port down at the physical layer and notifies the controller
/// (the `PortStatus`/Port-Down message Port Amnesia relies on).
pub(crate) fn declare_port_down(
    core: &mut SimCore,
    net: &mut NetState,
    dpid: DatapathId,
    port: PortNo,
) {
    let desc = {
        let Some(sw) = net.switches.get_mut(&dpid) else {
            return;
        };
        let Some(p) = sw.ports.get_mut(&port) else {
            return;
        };
        if !p.detected_up {
            return; // already down
        }
        p.detected_up = false;
        p.desc(port)
    };
    net.trace.push(TraceEvent::PortDown {
        at: core.now(),
        dpid,
        port,
    });
    send_to_controller(
        core,
        net,
        dpid,
        OfMessage::PortStatus {
            reason: PortStatusReason::Modify,
            desc,
            observed_at: core.now(),
        },
    );
}

/// Marks a port up at the physical layer and notifies the controller.
pub(crate) fn declare_port_up(
    core: &mut SimCore,
    net: &mut NetState,
    dpid: DatapathId,
    port: PortNo,
) {
    let desc = {
        let Some(sw) = net.switches.get_mut(&dpid) else {
            return;
        };
        let Some(p) = sw.ports.get_mut(&port) else {
            return;
        };
        if p.detected_up {
            return; // already up
        }
        p.detected_up = true;
        p.desc(port)
    };
    net.trace.push(TraceEvent::PortUp {
        at: core.now(),
        dpid,
        port,
    });
    send_to_controller(
        core,
        net,
        dpid,
        OfMessage::PortStatus {
            reason: PortStatusReason::Modify,
            desc,
            observed_at: core.now(),
        },
    );
}

/// Emits `frame` out of physical port `port` on switch `dpid`.
pub(crate) fn emit_on_port(
    core: &mut SimCore,
    net: &mut NetState,
    dpid: DatapathId,
    port: PortNo,
    frame: &EthernetFrame,
) {
    let wire_len = frame.wire_len() as u64;
    // One port lookup does everything: stats, the jitter sample (core and
    // net are disjoint borrows), and the FIFO clamp.
    let (peer, at, sampled_at) = {
        let Some(sw) = net.switches.get_mut(&dpid) else {
            return;
        };
        let Some(p) = sw.ports.get_mut(&port) else {
            return;
        };
        if !p.is_up() {
            net.trace.push(TraceEvent::Dropped {
                at: core.now(),
                reason: "egress port down",
            });
            core.telemetry.counter_inc("netsim.switch.drop_egress_down");
            return;
        }
        p.tx_packets += 1;
        p.tx_bytes += wire_len;
        // Fault injection on the wire: the frame left the port (tx counted)
        // but an active loss fault may eat it before the peer sees it.
        // Disjoint field borrows: `p` lives in net.switches, the fault
        // state in net.faults, the RNG and telemetry in core.
        if net
            .faults
            .should_drop(dpid, port, &mut core.rng, &core.telemetry)
        {
            net.trace.push(TraceEvent::Dropped {
                at: core.now(),
                reason: "fault-injected loss",
            });
            return;
        }
        let delay = p.link.sample(&mut core.rng)
            + net
                .faults
                .extra_link_delay(dpid, port, &mut core.rng, &core.telemetry);
        // FIFO enforcement: a later frame on the same wire can never
        // arrive before an earlier one, however the jitter/burst samples
        // came out.
        let sampled_at = core.now() + delay;
        let at = sampled_at.max(p.next_delivery);
        debug_assert!(
            at >= p.next_delivery,
            "per-link FIFO violated on {dpid}:{port}"
        );
        p.next_delivery = at;
        (p.peer, at, sampled_at)
    };
    if at > sampled_at {
        core.telemetry.counter_inc("netsim.link.fifo_clamped");
    }
    core.telemetry.counter_inc("netsim.switch.tx_frames");
    core.telemetry
        .observe_duration("netsim.link.transit_ns", at.since(core.now()));
    match peer {
        Peer::Switch {
            dpid: peer_dpid,
            port: peer_port,
        } => core.schedule_at(
            at,
            Event::DeliverToSwitch(Box::new(SwitchDelivery {
                dpid: peer_dpid,
                port: peer_port,
                frame: frame.clone(),
            })),
        ),
        Peer::Host { host } => core.schedule_at(
            at,
            Event::DeliverToHost(Box::new(HostDelivery {
                host,
                frame: frame.clone(),
            })),
        ),
    }
}

/// Resolves an output port list (which may contain FLOOD / ALL /
/// CONTROLLER) into emissions.
pub(crate) fn emit_outputs(
    core: &mut SimCore,
    net: &mut NetState,
    dpid: DatapathId,
    in_port: PortNo,
    outputs: &[PortNo],
    frame: &EthernetFrame,
) {
    for &out in outputs {
        match out {
            PortNo::FLOOD | PortNo::ALL => {
                let ports: Vec<PortNo> = match net.switches.get(&dpid) {
                    Some(sw) => sw
                        .ports
                        .iter()
                        .filter(|(no, p)| p.is_up() && (out == PortNo::ALL || **no != in_port))
                        .map(|(no, _)| *no)
                        .collect(),
                    None => continue,
                };
                for p in ports {
                    emit_on_port(core, net, dpid, p, frame);
                }
            }
            PortNo::CONTROLLER => {
                net.trace.push(TraceEvent::PacketIn {
                    at: core.now(),
                    dpid,
                    port: in_port,
                    ethertype: frame.ethertype().0,
                });
                send_to_controller(
                    core,
                    net,
                    dpid,
                    OfMessage::PacketIn {
                        in_port,
                        reason: PacketInReason::Action,
                        data: frame.encode().to_vec(),
                    },
                );
            }
            physical => emit_on_port(core, net, dpid, physical, frame),
        }
    }
}

/// Handles a dataplane frame arriving at `(dpid, port)`.
pub(crate) fn handle_frame(
    core: &mut SimCore,
    net: &mut NetState,
    dpid: DatapathId,
    in_port: PortNo,
    frame: EthernetFrame,
) {
    let now = core.now();
    let wire_len = frame.wire_len() as u64;
    let mut became_up = false;
    let outcome = {
        let Some(sw) = net.switches.get_mut(&dpid) else {
            return;
        };
        let Some(p) = sw.ports.get_mut(&in_port) else {
            return;
        };
        if !p.admin_up {
            return; // administratively down: frame lost
        }
        if !p.detected_up {
            // Traffic implies the link is physically up: fast up-detection.
            p.detected_up = true;
            became_up = true;
        }
        p.rx_packets += 1;
        p.rx_bytes += wire_len;
        sw.table.process(&frame, in_port, now)
    };

    if became_up {
        debug_assert!(
            net.switches.contains_key(&dpid) && net.switches[&dpid].ports.contains_key(&in_port),
            "became_up was set while borrowing this exact port"
        );
        let desc = net.switches[&dpid].ports[&in_port].desc(in_port);
        net.trace.push(TraceEvent::PortUp {
            at: now,
            dpid,
            port: in_port,
        });
        send_to_controller(
            core,
            net,
            dpid,
            OfMessage::PortStatus {
                reason: PortStatusReason::Modify,
                desc,
                observed_at: now,
            },
        );
    }

    match outcome {
        MatchOutcome::Forward { ports, frame } => {
            emit_outputs(core, net, dpid, in_port, &ports, &frame);
        }
        MatchOutcome::Miss => {
            core.telemetry.counter_inc("netsim.switch.table_miss");
            net.trace.push(TraceEvent::PacketIn {
                at: now,
                dpid,
                port: in_port,
                ethertype: frame.ethertype().0,
            });
            send_to_controller(
                core,
                net,
                dpid,
                OfMessage::PacketIn {
                    in_port,
                    reason: PacketInReason::NoMatch,
                    data: frame.encode().to_vec(),
                },
            );
        }
    }
}

/// Handles a control message arriving at switch `dpid`.
pub(crate) fn handle_ctrl(
    core: &mut SimCore,
    net: &mut NetState,
    dpid: DatapathId,
    msg: OfMessage,
) {
    match msg {
        OfMessage::PacketOut {
            in_port,
            actions,
            data,
        } => {
            let Ok(mut frame) = EthernetFrame::parse(&data) else {
                net.trace.push(TraceEvent::Dropped {
                    at: core.now(),
                    reason: "unparseable PacketOut",
                });
                return;
            };
            let mut outputs = Vec::new();
            for action in &actions {
                action.apply(&mut frame);
                if let openflow::Action::Output(p) = action {
                    outputs.push(*p);
                }
            }
            emit_outputs(core, net, dpid, in_port, &outputs, &frame);
        }
        OfMessage::FlowMod {
            command,
            flow_match,
            priority,
            idle_timeout_secs,
            hard_timeout_secs,
            actions,
            cookie,
        } => {
            let now = core.now();
            let Some(sw) = net.switches.get_mut(&dpid) else {
                return;
            };
            match command {
                FlowModCommand::Add => {
                    let mut entry = FlowEntry::new(flow_match, actions)
                        .with_priority(priority)
                        .with_cookie(cookie);
                    if idle_timeout_secs > 0 {
                        entry =
                            entry.with_idle_timeout(Duration::from_secs(idle_timeout_secs.into()));
                    }
                    if hard_timeout_secs > 0 {
                        entry =
                            entry.with_hard_timeout(Duration::from_secs(hard_timeout_secs.into()));
                    }
                    sw.table.insert(entry, now);
                    net.trace.push(TraceEvent::FlowInstalled { at: now, dpid });
                }
                FlowModCommand::Delete => {
                    let removed = sw.table.delete(&flow_match);
                    for r in removed {
                        send_to_controller(
                            core,
                            net,
                            dpid,
                            OfMessage::FlowRemoved {
                                flow_match: r.entry.flow_match,
                                priority: r.entry.priority,
                                reason: r.reason,
                                packet_count: r.entry.packet_count,
                                byte_count: r.entry.byte_count,
                            },
                        );
                    }
                }
            }
        }
        OfMessage::EchoRequest { xid, payload } => {
            let (processing, latency) = match net.switches.get(&dpid) {
                Some(sw) => (sw.echo_processing, sw.ctrl_latency),
                None => return,
            };
            core.schedule(
                processing + latency,
                Event::CtrlToController(Box::new(CtrlDelivery {
                    dpid,
                    msg: OfMessage::EchoReply { xid, payload },
                })),
            );
        }
        OfMessage::FeaturesRequest => {
            let reply = match net.switches.get(&dpid) {
                Some(sw) => OfMessage::FeaturesReply {
                    dpid,
                    ports: sw.port_descs(),
                },
                None => return,
            };
            send_to_controller(core, net, dpid, reply);
        }
        OfMessage::FlowStatsRequest { xid } => {
            let reply = match net.switches.get(&dpid) {
                Some(sw) => OfMessage::FlowStatsReply {
                    xid,
                    flows: sw.table.stats(),
                },
                None => return,
            };
            send_to_controller(core, net, dpid, reply);
        }
        OfMessage::PortStatsRequest { xid } => {
            let reply = match net.switches.get(&dpid) {
                Some(sw) => OfMessage::PortStatsReply {
                    xid,
                    ports: sw.port_stats(),
                },
                None => return,
            };
            send_to_controller(core, net, dpid, reply);
        }
        // Switches ignore messages that only flow switch -> controller.
        _ => {}
    }
}

/// Periodic flow expiry scan.
pub(crate) fn handle_expiry_tick(core: &mut SimCore, net: &mut NetState, dpid: DatapathId) {
    let now = core.now();
    let (removed, tick) = {
        let Some(sw) = net.switches.get_mut(&dpid) else {
            return;
        };
        (sw.table.expire(now), sw.expiry_tick)
    };
    for r in removed {
        send_to_controller(
            core,
            net,
            dpid,
            OfMessage::FlowRemoved {
                flow_match: r.entry.flow_match,
                priority: r.entry.priority,
                reason: r.reason,
                packet_count: r.entry.packet_count,
                byte_count: r.entry.byte_count,
            },
        );
    }
    core.schedule(tick, Event::SwitchExpiryTick { dpid });
}

/// When a `SimTime`-stamped pulse deadline fires: if the attached host's
/// interface has been continuously down since `down_epoch`, declare the
/// port down.
pub(crate) fn handle_pulse_check(
    core: &mut SimCore,
    net: &mut NetState,
    dpid: DatapathId,
    port: PortNo,
    down_epoch: u64,
) {
    let still_down = {
        let host_id = match net.switches.get(&dpid).and_then(|sw| sw.ports.get(&port)) {
            Some(PortState {
                peer: Peer::Host { host },
                ..
            }) => *host,
            _ => return,
        };
        match net.hosts.get(&host_id) {
            Some(h) => !h.iface_up && h.down_epoch == down_epoch,
            None => return,
        }
    };
    if still_down {
        declare_port_down(core, net, dpid, port);
    }
}
