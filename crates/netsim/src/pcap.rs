//! Export captured frames as pcap files for inspection in Wireshark.
//!
//! The classic libpcap format is trivially simple: a 24-byte global header
//! followed by `(16-byte record header, packet bytes)` pairs. Virtual
//! timestamps map onto the pcap second/microsecond fields, so packet
//! timing in Wireshark matches the simulation exactly.
//!
//! ```no_run
//! use netsim::pcap::PcapWriter;
//! use sdn_types::packet::{EthernetFrame, Payload};
//! use sdn_types::{MacAddr, SimTime};
//!
//! let mut w = PcapWriter::create("capture.pcap").unwrap();
//! let frame = EthernetFrame::new(
//!     MacAddr::from_index(1),
//!     MacAddr::BROADCAST,
//!     Payload::Opaque { ethertype: 0x1234, data: vec![1, 2, 3] },
//! );
//! w.write_frame(SimTime::from_millis(5), &frame).unwrap();
//! ```

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use sdn_types::packet::EthernetFrame;
use sdn_types::SimTime;

/// Linktype for Ethernet frames (LINKTYPE_ETHERNET).
const LINKTYPE_ETHERNET: u32 = 1;
/// Classic pcap magic (microsecond timestamps, native endian).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// Snapshot length: we never truncate.
const SNAPLEN: u32 = 65_535;

/// A pcap file writer over any [`Write`] sink.
pub struct PcapWriter<W: Write> {
    sink: W,
    frames_written: u64,
}

impl PcapWriter<BufWriter<File>> {
    /// Creates (truncating) a pcap file at `path` and writes the global
    /// header.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        PcapWriter::new(BufWriter::new(File::create(path)?))
    }
}

impl<W: Write> PcapWriter<W> {
    /// Wraps an arbitrary sink, writing the global header immediately.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(&PCAP_MAGIC.to_le_bytes())?;
        sink.write_all(&2u16.to_le_bytes())?; // version major
        sink.write_all(&4u16.to_le_bytes())?; // version minor
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&SNAPLEN.to_le_bytes())?;
        sink.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter {
            sink,
            frames_written: 0,
        })
    }

    /// Appends one frame captured at virtual time `at`.
    pub fn write_frame(&mut self, at: SimTime, frame: &EthernetFrame) -> io::Result<()> {
        let bytes = frame.encode();
        let secs = (at.as_nanos() / 1_000_000_000) as u32;
        let micros = ((at.as_nanos() % 1_000_000_000) / 1_000) as u32;
        self.sink.write_all(&secs.to_le_bytes())?;
        self.sink.write_all(&micros.to_le_bytes())?;
        self.sink.write_all(&(bytes.len() as u32).to_le_bytes())?; // incl_len
        self.sink.write_all(&(bytes.len() as u32).to_le_bytes())?; // orig_len
        self.sink.write_all(&bytes)?;
        self.frames_written += 1;
        Ok(())
    }

    /// Writes a whole capture (e.g. a
    /// [`FrameRecorder`](crate::apps::FrameRecorder)'s `frames`).
    pub fn write_all_frames<'a>(
        &mut self,
        frames: impl IntoIterator<Item = &'a (SimTime, EthernetFrame)>,
    ) -> io::Result<()> {
        for (at, frame) in frames {
            self.write_frame(*at, frame)?;
        }
        Ok(())
    }

    /// Number of frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.frames_written
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_types::packet::Payload;
    use sdn_types::MacAddr;

    fn frame(n: u8) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Payload::Opaque {
                ethertype: 0x1234,
                data: vec![n; 10],
            },
        )
    }

    #[test]
    fn header_and_records_have_correct_layout() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(SimTime::from_millis(1500), &frame(7))
            .unwrap();
        let out = w.finish().unwrap();

        // Global header.
        assert_eq!(
            u32::from_le_bytes(out[0..4].try_into().unwrap()),
            PCAP_MAGIC
        );
        assert_eq!(
            u32::from_le_bytes(out[20..24].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );

        // Record header: ts = 1.5 s.
        assert_eq!(u32::from_le_bytes(out[24..28].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(out[28..32].try_into().unwrap()), 500_000);
        let incl = u32::from_le_bytes(out[32..36].try_into().unwrap()) as usize;
        assert_eq!(incl, frame(7).wire_len());
        assert_eq!(out.len(), 24 + 16 + incl);

        // The payload is the exact wire encoding.
        assert_eq!(&out[40..], &frame(7).encode()[..]);
    }

    #[test]
    fn write_all_counts() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let capture = vec![
            (SimTime::from_millis(1), frame(1)),
            (SimTime::from_millis(2), frame(2)),
            (SimTime::from_millis(3), frame(3)),
        ];
        w.write_all_frames(&capture).unwrap();
        assert_eq!(w.frames_written(), 3);
    }
}
