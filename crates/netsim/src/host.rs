//! Simulated end hosts: a default network stack plus a pluggable
//! application hook through which benign workloads and attacks are scripted.

use std::any::Any;
use std::collections::BTreeSet;

use tm_rand::Rng;
use tm_rand::StdRng;

use sdn_types::packet::{
    ArpOp, ArpPacket, EthernetFrame, IcmpPacket, IcmpType, Ipv4Packet, Payload, TcpSegment,
    Transport,
};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SimTime, SwitchPort};

use crate::engine::{Event, IfaceUp, OobDelivery, PulseDue, SimCore, SwitchDelivery, PULSE_WINDOW};
use crate::sim::NetState;
use crate::trace::TraceEvent;

/// What a [`HostApp`] did with an incoming frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameDisposition {
    /// The app consumed the frame; the default stack will not see it.
    Consume,
    /// Pass the frame on to the default stack (ARP/ICMP/TCP responders).
    Pass,
}

/// Public snapshot of a host's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostInfo {
    /// The host's id.
    pub id: HostId,
    /// Current MAC address.
    pub mac: MacAddr,
    /// Current IPv4 address.
    pub ip: IpAddr,
    /// Where the host is attached, if anywhere.
    pub attachment: Option<SwitchPort>,
    /// Whether the interface is up.
    pub iface_up: bool,
}

/// A host application: traffic generator, server workload, or attack
/// script. All interaction with the network goes through [`HostCtx`].
pub trait HostApp {
    /// Called once at simulation start.
    fn on_start(&mut self, _ctx: &mut HostCtx<'_>) {}

    /// Called for every frame delivered to the host (before the default
    /// stack). Return [`FrameDisposition::Consume`] to suppress default
    /// protocol handling.
    fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, _frame: &EthernetFrame) -> FrameDisposition {
        FrameDisposition::Pass
    }

    /// Called for frames arriving over an out-of-band channel.
    fn on_oob_frame(&mut self, _ctx: &mut HostCtx<'_>, _from: HostId, _frame: EthernetFrame) {}

    /// Called when a timer set via [`HostCtx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut HostCtx<'_>, _id: u64) {}

    /// Called when a scheduled interface bring-up completes.
    fn on_iface_up(&mut self, _ctx: &mut HostCtx<'_>) {}

    /// Downcasting support.
    fn as_any(&self) -> &dyn Any;

    /// Downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A host app that does nothing (the default stack still responds to
/// ARP/ICMP/TCP).
#[derive(Debug, Default)]
pub struct NullHostApp;

impl HostApp for NullHostApp {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Internal host state.
pub(crate) struct HostState {
    pub(crate) id: HostId,
    pub(crate) mac: MacAddr,
    pub(crate) ip: IpAddr,
    pub(crate) attachment: Option<(DatapathId, PortNo, crate::link::LinkProfile)>,
    /// Latest delivery time already scheduled on the host's uplink (FIFO
    /// enforcement; see `PortState::next_delivery`).
    pub(crate) next_delivery: SimTime,
    pub(crate) iface_up: bool,
    /// Incremented each time the interface goes down; stale pulse checks
    /// compare against it.
    pub(crate) down_epoch: u64,
    /// Incremented each time a bring-up is scheduled; stale bring-ups are
    /// ignored.
    pub(crate) up_epoch: u64,
    /// IP identification counter (incremented per originated IPv4 packet —
    /// the idle-scan side channel).
    pub(crate) ip_ident: u16,
    /// TCP ports with a listener (SYN → SYN-ACK; others → RST).
    pub(crate) tcp_listeners: BTreeSet<u16>,
    /// Default-stack responder switches (attackers disable these to stay
    /// silent while impersonating).
    pub(crate) respond_arp: bool,
    pub(crate) respond_icmp: bool,
    pub(crate) respond_tcp: bool,
    pub(crate) app: Option<Box<dyn HostApp>>,
}

impl HostState {
    pub(crate) fn new(id: HostId, mac: MacAddr, ip: IpAddr) -> Self {
        HostState {
            id,
            mac,
            ip,
            attachment: None,
            next_delivery: SimTime::ZERO,
            iface_up: true,
            down_epoch: 0,
            up_epoch: 0,
            ip_ident: 0,
            tcp_listeners: BTreeSet::new(),
            respond_arp: true,
            respond_icmp: true,
            respond_tcp: true,
            app: None,
        }
    }

    pub(crate) fn info(&self) -> HostInfo {
        HostInfo {
            id: self.id,
            mac: self.mac,
            ip: self.ip,
            attachment: self
                .attachment
                .map(|(dpid, port, _)| SwitchPort::new(dpid, port)),
            iface_up: self.iface_up,
        }
    }
}

/// The capabilities the simulator grants a host application.
pub struct HostCtx<'a> {
    pub(crate) core: &'a mut SimCore,
    pub(crate) net: &'a mut NetState,
    pub(crate) host: HostId,
}

impl HostCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// The seeded RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.core.rng
    }

    /// This host's id.
    pub fn host_id(&self) -> HostId {
        self.host
    }

    /// Snapshot of this host's state.
    pub fn info(&self) -> HostInfo {
        debug_assert!(
            self.net.hosts.contains_key(&self.host),
            "HostCtx is only built for hosts already in the map"
        );
        self.net.hosts[&self.host].info()
    }

    fn state(&mut self) -> &mut HostState {
        // tm-lint: allow(unwrap-in-lib) -- HostCtx is only constructed for hosts already in the map (Simulator guards its public entry points)
        self.net.hosts.get_mut(&self.host).expect("ctx host exists")
    }

    /// Sends a raw frame out of the host's interface. Returns `false` if the
    /// interface is down or unattached (the frame is silently lost, as on a
    /// real NIC).
    pub fn send_frame(&mut self, frame: EthernetFrame) -> bool {
        let (dpid, port, link, up) = {
            let h = self.state();
            match h.attachment {
                Some((dpid, port, link)) => (dpid, port, link, h.iface_up),
                None => return false,
            }
        };
        if !up {
            self.net.trace.push(TraceEvent::Dropped {
                at: self.core.now(),
                reason: "host iface down",
            });
            return false;
        }
        let delay = link.sample(&mut self.core.rng);
        // FIFO enforcement: same rule as switch egress — no overtaking on
        // one wire.
        let sampled_at = self.core.now() + delay;
        let at = {
            let h = self.state();
            let at = sampled_at.max(h.next_delivery);
            debug_assert!(at >= h.next_delivery, "per-link FIFO violated at host");
            h.next_delivery = at;
            at
        };
        if at > sampled_at {
            self.core.telemetry.counter_inc("netsim.link.fifo_clamped");
        }
        self.core.telemetry.counter_inc("netsim.host.tx_frames");
        self.core.schedule_at(
            at,
            Event::DeliverToSwitch(Box::new(SwitchDelivery { dpid, port, frame })),
        );
        true
    }

    /// The simulation's telemetry handle (cheap clone).
    pub fn telemetry(&self) -> tm_telemetry::Telemetry {
        self.core.telemetry.clone()
    }

    /// Builds and sends an IPv4 frame, stamping the host's IP-ID counter.
    /// `dst_mac` is the next-hop MAC. Returns `false` if the interface is
    /// down.
    pub fn send_ipv4(&mut self, dst_mac: MacAddr, mut pkt: Ipv4Packet) -> bool {
        let (mac, ident) = {
            let h = self.state();
            h.ip_ident = h.ip_ident.wrapping_add(1);
            (h.mac, h.ip_ident)
        };
        pkt.ident = ident;
        self.send_frame(EthernetFrame::new(mac, dst_mac, Payload::Ipv4(pkt)))
    }

    /// Takes the interface down immediately. The attached switch will
    /// declare the port down only if the interface stays down past the
    /// link-integrity-pulse window (16 ± 8 ms).
    pub fn iface_down(&mut self) {
        let (dpid, port, epoch) = {
            let h = self.state();
            if !h.iface_up {
                return;
            }
            h.iface_up = false;
            h.down_epoch += 1;
            match h.attachment {
                Some((dpid, port, _)) => (dpid, port, h.down_epoch),
                None => return,
            }
        };
        let (lo, hi) = PULSE_WINDOW;
        let window = Duration::from_nanos(self.core.rng.gen_range(lo.as_nanos()..hi.as_nanos()));
        self.core.schedule(
            window,
            Event::PulseCheck(Box::new(PulseDue {
                dpid,
                port,
                down_epoch: epoch,
            })),
        );
    }

    /// Brings the interface up immediately (keeping current identifiers).
    pub fn iface_up_now(&mut self) {
        self.complete_iface_up(None);
    }

    /// Schedules the interface to come up after `delay`, optionally
    /// assuming a new `(MAC, IP)` identity — the `ifconfig down; ifconfig
    /// up` cycle whose latency the attack toolkit models.
    pub fn schedule_iface_up(&mut self, delay: Duration, identity: Option<(MacAddr, IpAddr)>) {
        let (host, epoch) = {
            let h = self.state();
            h.up_epoch += 1;
            (h.id, h.up_epoch)
        };
        self.core.schedule(
            delay,
            Event::HostIfaceUp(Box::new(IfaceUp {
                host,
                epoch,
                identity,
            })),
        );
    }

    pub(crate) fn complete_iface_up(&mut self, identity: Option<(MacAddr, IpAddr)>) {
        let (dpid_port, was_up) = {
            let h = self.state();
            let was_up = h.iface_up;
            h.iface_up = true;
            if let Some((mac, ip)) = identity {
                h.mac = mac;
                h.ip = ip;
            }
            (h.attachment.map(|(d, p, _)| (d, p)), was_up)
        };
        if was_up {
            return;
        }
        if let Some((dpid, port)) = dpid_port {
            // Link pulses resume; the switch notices within one pulse
            // interval unless dataplane traffic arrives first.
            let detect = Duration::from_nanos(
                self.core
                    .rng
                    .gen_range(Duration::from_millis(1).as_nanos()..PULSE_WINDOW.1.as_nanos()),
            );
            self.core
                .schedule(detect, Event::PulseCheckUp { dpid, port });
        }
    }

    /// Changes the host's identifiers instantly (packet-header spoofing —
    /// the paper notes `ifconfig` is fast enough that rewriting is not even
    /// necessary, §IV-B).
    pub fn set_identity(&mut self, mac: MacAddr, ip: IpAddr) {
        let h = self.state();
        h.mac = mac;
        h.ip = ip;
    }

    /// Registers a TCP listener (SYN to this port gets SYN-ACK).
    pub fn listen_tcp(&mut self, port: u16) {
        self.state().tcp_listeners.insert(port);
    }

    /// Enables/disables the default ARP responder.
    pub fn set_respond_arp(&mut self, on: bool) {
        self.state().respond_arp = on;
    }

    /// Enables/disables the default ICMP echo responder.
    pub fn set_respond_icmp(&mut self, on: bool) {
        self.state().respond_icmp = on;
    }

    /// Enables/disables the default TCP responder.
    pub fn set_respond_tcp(&mut self, on: bool) {
        self.state().respond_tcp = on;
    }

    /// Sets a timer; `HostApp::on_timer(id)` fires after `delay`.
    pub fn set_timer(&mut self, delay: Duration, id: u64) {
        let host = self.host;
        self.core.schedule(delay, Event::HostTimer { host, id });
    }

    /// Sends a frame over an out-of-band channel to `peer`. Returns `false`
    /// if no channel connects the two hosts.
    ///
    /// Delivery takes the channel's latency plus its per-packet
    /// encode/decode cost — the unavoidable overhead TopoGuard+'s Link
    /// Latency Inspector detects.
    pub fn oob_send(&mut self, peer: HostId, frame: EthernetFrame) -> bool {
        let me = self.host;
        let Some(ch) = self
            .net
            .oob_channels
            .iter()
            .find(|c| (c.a == me && c.b == peer) || (c.b == me && c.a == peer))
        else {
            return false;
        };
        let delay = ch.latency + ch.codec_cost;
        self.core.schedule(
            delay,
            Event::DeliverOob(Box::new(OobDelivery {
                to: peer,
                from: me,
                frame,
            })),
        );
        true
    }
}

/// Dispatches a frame delivered to a host: app hook first, then the default
/// protocol stack.
pub(crate) fn deliver_frame(
    core: &mut SimCore,
    net: &mut NetState,
    host: HostId,
    frame: EthernetFrame,
) {
    {
        let Some(h) = net.hosts.get(&host) else {
            return;
        };
        if !h.iface_up {
            net.trace.push(TraceEvent::Dropped {
                at: core.now(),
                reason: "rx while host iface down",
            });
            return;
        }
        net.trace.push(TraceEvent::HostRx {
            at: core.now(),
            host,
            ethertype: frame.ethertype().0,
        });
    }

    // App hook (take the app out to avoid aliasing).
    let mut app = net.hosts.get_mut(&host).and_then(|h| h.app.take());
    let disposition = match &mut app {
        Some(app) => {
            let mut ctx = HostCtx { core, net, host };
            app.on_frame(&mut ctx, &frame)
        }
        None => FrameDisposition::Pass,
    };
    if let Some(h) = net.hosts.get_mut(&host) {
        h.app = app;
    }
    if disposition == FrameDisposition::Consume {
        return;
    }

    default_stack(core, net, host, &frame);
}

/// The default protocol stack: ARP responder, ICMP echo responder, minimal
/// TCP (SYN → SYN-ACK or RST; stray SYN-ACK → RST, which is the idle-scan
/// side effect).
fn default_stack(core: &mut SimCore, net: &mut NetState, host: HostId, frame: &EthernetFrame) {
    debug_assert!(
        net.hosts.contains_key(&host),
        "deliver_frame resolved this host"
    );
    let (my_mac, my_ip, respond_arp, respond_icmp, respond_tcp) = {
        let h = &net.hosts[&host];
        (h.mac, h.ip, h.respond_arp, h.respond_icmp, h.respond_tcp)
    };

    let for_me = frame.dst == my_mac || frame.dst.is_broadcast() || frame.dst.is_multicast();
    if !for_me {
        return;
    }

    match &frame.payload {
        Payload::Arp(arp) if respond_arp && arp.op == ArpOp::Request && arp.target_ip == my_ip => {
            let reply = ArpPacket::reply_to(arp, my_mac);
            let out = EthernetFrame::new(my_mac, arp.sender_mac, Payload::Arp(reply));
            let mut ctx = HostCtx { core, net, host };
            ctx.send_frame(out);
        }
        Payload::Ipv4(ip) if ip.dst == my_ip => match &ip.transport {
            Transport::Icmp(icmp) if respond_icmp && icmp.icmp_type == IcmpType::EchoRequest => {
                let reply =
                    Ipv4Packet::new(my_ip, ip.src, Transport::Icmp(IcmpPacket::reply_to(icmp)));
                let mut ctx = HostCtx { core, net, host };
                ctx.send_ipv4(frame.src, reply);
            }
            Transport::Tcp(tcp) => {
                if !respond_tcp {
                    return;
                }
                let listening = net.hosts[&host].tcp_listeners.contains(&tcp.dst_port);
                let reply_seg = if tcp.is_syn() {
                    if listening {
                        let isn = core.rng.gen::<u32>();
                        Some(TcpSegment::syn_ack_to(tcp, isn))
                    } else {
                        Some(TcpSegment::rst_to(tcp))
                    }
                } else if tcp.is_syn_ack() {
                    // Unsolicited SYN-ACK: RFC-mandated RST. This is the
                    // packet that increments the zombie's IP-ID during a
                    // TCP idle scan.
                    Some(TcpSegment::rst_to(tcp))
                } else {
                    None
                };
                if let Some(seg) = reply_seg {
                    let reply = Ipv4Packet::new(my_ip, ip.src, Transport::Tcp(seg));
                    let mut ctx = HostCtx { core, net, host };
                    ctx.send_ipv4(frame.src, reply);
                }
            }
            _ => {}
        },
        _ => {}
    }
}
