//! Property tests for the simulator: determinism and port state machine
//! invariants under arbitrary interface bounce schedules.

use tm_prop::prelude::*;

use netsim::{LinkProfile, NetworkSpec, Simulator, TraceEvent};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SimTime};

const SW: DatapathId = DatapathId::new(1);
const H: HostId = HostId::new(1);

fn spec() -> NetworkSpec {
    let mut spec = NetworkSpec::new();
    spec.add_switch(SW);
    spec.add_host(H, MacAddr::from_index(1), IpAddr::new(10, 0, 0, 1));
    spec.attach_host(
        H,
        SW,
        PortNo::new(1),
        LinkProfile::jittered(Duration::from_millis(5), Duration::from_millis(1)),
    );
    spec
}

/// Replays a bounce schedule: (down_at_ms, hold_ms) pairs.
fn run_schedule(seed: u64, schedule: &[(u64, u64)]) -> Vec<(String, u64)> {
    let mut sim = Simulator::new(spec(), seed);
    let mut t = 0u64;
    for (gap, hold) in schedule {
        t += gap + 1;
        sim.run_until(SimTime::from_millis(t));
        sim.host_iface_down(H);
        sim.host_schedule_iface_up(H, Duration::from_millis(*hold), None);
    }
    sim.run_until(SimTime::from_millis(t + 200));
    sim.trace()
        .records()
        .iter()
        .map(|r| match r {
            TraceEvent::PortDown { at, .. } => ("down".to_string(), at.as_nanos()),
            TraceEvent::PortUp { at, .. } => ("up".to_string(), at.as_nanos()),
            other => (other.kind().to_string(), 0),
        })
        .collect()
}

tm_prop! {
    #![tm_config(cases = 32)]

    /// Same seed + same schedule => byte-identical event traces.
    #[test]
    fn simulation_is_deterministic(
        seed in any::<u64>(),
        schedule in collection::vec((1u64..500, 1u64..100), 0..8),
    ) {
        let a = run_schedule(seed, &schedule);
        let b = run_schedule(seed, &schedule);
        prop_assert_eq!(a, b);
    }

    /// Port state machine: Port-Down and Port-Up events strictly
    /// alternate, starting with Down; bounces shorter than the minimum
    /// pulse window (8 ms) never generate events.
    #[test]
    fn port_events_alternate_and_respect_pulse_window(
        seed in any::<u64>(),
        schedule in collection::vec((100u64..400, 1u64..100), 1..6),
    ) {
        let events = run_schedule(seed, &schedule);
        let port_events: Vec<&(String, u64)> = events
            .iter()
            .filter(|(k, _)| k == "down" || k == "up")
            .collect();
        let mut expect = "down";
        for (kind, _) in &port_events {
            prop_assert_eq!(kind.as_str(), expect, "events must alternate");
            expect = if expect == "down" { "up" } else { "down" };
        }
        // Bounces held under the minimum pulse window can never fire.
        if schedule.iter().all(|(_, hold)| *hold < 8) {
            prop_assert!(port_events.is_empty(), "sub-window bounces must be invisible");
        }
        // At least one bounce held past the maximum window always fires.
        // (Not one event *per* long bounce: if the host drops again before
        // the switch has re-detected the link, the switch legitimately sees
        // one continuous outage.)
        let long_bounces = schedule.iter().filter(|(_, hold)| *hold >= 24).count();
        let downs = port_events.iter().filter(|(k, _)| k == "down").count();
        if long_bounces > 0 {
            prop_assert!(downs >= 1, "a >=24 ms bounce must be detected");
        }
        prop_assert!(
            downs <= schedule.len(),
            "more Port-Downs ({downs}) than bounces ({})",
            schedule.len()
        );
    }

    /// The host's identity after any schedule matches the last completed
    /// bring-up's identity.
    #[test]
    fn identity_follows_last_completed_up(
        seed in any::<u64>(),
        ids in collection::vec(1u32..100, 1..6),
    ) {
        let mut sim = Simulator::new(spec(), seed);
        let mut t = 0u64;
        for (i, id) in ids.iter().enumerate() {
            t += 50;
            sim.run_until(SimTime::from_millis(t));
            sim.host_iface_down(H);
            sim.host_schedule_iface_up(
                H,
                Duration::from_millis(10),
                Some((MacAddr::from_index(*id), IpAddr::from_index(*id as u16))),
            );
            let _ = i;
        }
        sim.run_until(SimTime::from_millis(t + 100));
        let info = sim.host_info(H).unwrap();
        let last = *ids.last().unwrap();
        prop_assert!(info.iface_up);
        prop_assert_eq!(info.mac, MacAddr::from_index(last));
        prop_assert_eq!(info.ip, IpAddr::from_index(last as u16));
    }
}
