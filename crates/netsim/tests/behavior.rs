//! Integration tests for the simulator's core mechanics: the
//! link-integrity-pulse port state machine, control-channel round trips,
//! flow-table forwarding, out-of-band channels, and determinism.

use std::any::Any;

use netsim::{
    ControllerCtx, ControllerLogic, FrameDisposition, HostApp, HostCtx, LinkProfile, NetworkSpec,
    Simulator, TimerId,
};
use openflow::{Action, FlowMatch, FlowModCommand, OfMessage, Xid};
use sdn_types::packet::{EthernetFrame, Payload};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SimTime};

const SW1: DatapathId = DatapathId::new(1);
const H1: HostId = HostId::new(1);
const H2: HostId = HostId::new(2);

fn two_host_spec() -> NetworkSpec {
    let mut spec = NetworkSpec::new();
    spec.add_switch(SW1);
    spec.add_host(H1, MacAddr::from_index(1), IpAddr::new(10, 0, 0, 1));
    spec.add_host(H2, MacAddr::from_index(2), IpAddr::new(10, 0, 0, 2));
    spec.attach_host(
        H1,
        SW1,
        PortNo::new(1),
        LinkProfile::fixed(Duration::from_millis(1)),
    );
    spec.attach_host(
        H2,
        SW1,
        PortNo::new(2),
        LinkProfile::fixed(Duration::from_millis(1)),
    );
    spec
}

fn opaque(src: MacAddr, dst: MacAddr) -> EthernetFrame {
    EthernetFrame::new(
        src,
        dst,
        Payload::Opaque {
            ethertype: 0x1234,
            data: vec![1, 2, 3],
        },
    )
}

/// A flood-everything controller: every PacketIn becomes a PacketOut FLOOD.
struct FloodController {
    packet_ins: Vec<(DatapathId, PortNo)>,
    echo_rtts_ms: Vec<f64>,
    echo_sent: Option<SimTime>,
}

impl FloodController {
    fn new() -> Self {
        FloodController {
            packet_ins: Vec::new(),
            echo_rtts_ms: Vec::new(),
            echo_sent: None,
        }
    }
}

impl ControllerLogic for FloodController {
    fn on_start(&mut self, ctx: &mut ControllerCtx<'_>) {
        ctx.set_timer(Duration::from_millis(10), TimerId(1));
    }

    fn on_message(&mut self, ctx: &mut ControllerCtx<'_>, dpid: DatapathId, msg: OfMessage) {
        match msg {
            OfMessage::PacketIn { in_port, data, .. } => {
                self.packet_ins.push((dpid, in_port));
                ctx.send(
                    dpid,
                    OfMessage::PacketOut {
                        in_port,
                        actions: vec![Action::Output(PortNo::FLOOD)],
                        data,
                    },
                );
            }
            OfMessage::EchoReply { .. } => {
                if let Some(sent) = self.echo_sent.take() {
                    self.echo_rtts_ms
                        .push(ctx.now().since(sent).as_millis_f64());
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut ControllerCtx<'_>, _id: TimerId) {
        self.echo_sent = Some(ctx.now());
        ctx.send(
            SW1,
            OfMessage::EchoRequest {
                xid: Xid(1),
                payload: 7,
            },
        );
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn table_miss_reaches_controller_and_flood_reaches_peer() {
    let mut spec = two_host_spec();
    spec.set_controller(Box::new(FloodController::new()));
    let mut sim = Simulator::new(spec, 1);
    sim.run_for(Duration::from_millis(5));
    sim.host_send_frame(H1, opaque(MacAddr::from_index(1), MacAddr::BROADCAST));
    sim.run_for(Duration::from_millis(50));

    let ctrl: &FloodController = sim.controller_as().expect("controller type");
    assert_eq!(ctrl.packet_ins, vec![(SW1, PortNo::new(1))]);
    // The flood must reach h2 but not loop back to h1 (FLOOD excludes ingress).
    assert_eq!(sim.trace().count("HostRx"), 1);
}

#[test]
fn echo_round_trip_is_twice_control_latency_plus_processing() {
    let mut spec = two_host_spec();
    spec.set_controller(Box::new(FloodController::new()));
    let mut sim = Simulator::new(spec, 1);
    sim.run_for(Duration::from_millis(100));
    let ctrl: &FloodController = sim.controller_as().expect("controller type");
    assert_eq!(ctrl.echo_rtts_ms.len(), 1);
    // 1 ms each way + 50 us switch processing.
    let rtt = ctrl.echo_rtts_ms[0];
    assert!((rtt - 2.05).abs() < 1e-9, "rtt {rtt}");
}

#[test]
fn short_iface_bounce_does_not_trigger_port_down() {
    // §V-A: changing identifiers faster than the link pulse window will not
    // trigger a port-down in the switch.
    let mut sim = Simulator::new(two_host_spec(), 3);
    sim.run_for(Duration::from_millis(10));
    sim.host_iface_down(H1);
    sim.host_schedule_iface_up(H1, Duration::from_millis(5), None);
    sim.run_for(Duration::from_millis(100));
    assert_eq!(sim.trace().count("PortDown"), 0);
    assert_eq!(sim.trace().count("PortUp"), 0);
}

#[test]
fn long_iface_down_triggers_port_down_within_pulse_window() {
    let mut sim = Simulator::new(two_host_spec(), 3);
    sim.run_for(Duration::from_millis(10));
    sim.host_iface_down(H1);
    sim.host_schedule_iface_up(H1, Duration::from_millis(100), None);
    sim.run_for(Duration::from_millis(300));
    assert_eq!(sim.trace().count("PortDown"), 1);
    assert_eq!(sim.trace().count("PortUp"), 1);
    // Detection must land inside the 8-24 ms pulse window after the down.
    let down_event = sim.trace().of_kind("PortDown").next().cloned().unwrap();
    if let netsim::TraceEvent::PortDown { at, .. } = down_event {
        let detect_ms = at.since(SimTime::from_millis(10)).as_millis_f64();
        assert!(
            (8.0..24.0).contains(&detect_ms),
            "detected after {detect_ms} ms"
        );
    }
}

#[test]
fn identity_change_applies_on_iface_up() {
    let mut sim = Simulator::new(two_host_spec(), 3);
    sim.host_iface_down(H1);
    let new_mac = MacAddr::from_index(99);
    let new_ip = IpAddr::new(10, 0, 0, 99);
    sim.host_schedule_iface_up(H1, Duration::from_millis(30), Some((new_mac, new_ip)));
    sim.run_for(Duration::from_millis(50));
    let info = sim.host_info(H1).unwrap();
    assert!(info.iface_up);
    assert_eq!(info.mac, new_mac);
    assert_eq!(info.ip, new_ip);
}

#[test]
fn frames_to_downed_host_are_dropped() {
    let mut spec = two_host_spec();
    spec.set_controller(Box::new(FloodController::new()));
    let mut sim = Simulator::new(spec, 5);
    sim.run_for(Duration::from_millis(5));
    sim.host_iface_down(H2);
    // Send while the switch has not yet detected the down (inside the pulse
    // window): the frame reaches the port but the NIC is down -> dropped at
    // the host.
    sim.run_for(Duration::from_millis(2));
    sim.host_send_frame(H1, opaque(MacAddr::from_index(1), MacAddr::BROADCAST));
    sim.run_for(Duration::from_millis(50));
    assert_eq!(sim.trace().count("HostRx"), 0);
    assert!(sim.trace().count("Dropped") >= 1);

    // After detection, floods exclude the downed port entirely.
    let drops_before = sim.trace().count("Dropped");
    sim.host_send_frame(H1, opaque(MacAddr::from_index(1), MacAddr::BROADCAST));
    sim.run_for(Duration::from_millis(50));
    assert_eq!(sim.trace().count("HostRx"), 0);
    assert_eq!(sim.trace().count("Dropped"), drops_before);
}

#[test]
fn installed_flow_rules_forward_without_controller() {
    let mut spec = two_host_spec();
    spec.set_controller(Box::new(FloodController::new()));
    let mut sim = Simulator::new(spec, 5);
    sim.run_for(Duration::from_millis(5));
    // Install h1->h2 rule directly via a controller-side FlowMod.
    let ctrl_msg = OfMessage::FlowMod {
        command: FlowModCommand::Add,
        flow_match: FlowMatch::new().with_eth_dst(MacAddr::from_index(2)),
        priority: 10,
        idle_timeout_secs: 0,
        hard_timeout_secs: 0,
        actions: vec![Action::Output(PortNo::new(2))],
        cookie: 0,
    };
    // Deliver the FlowMod by driving the controller's send path: simplest is
    // to use the simulator's switch-facing entry point via a PacketOut-less
    // path — here we emulate by sending from the controller on a timer; for
    // the test, reach in via set_switch_port_admin no-op then direct message.
    // The public API path: a controller would send this; we use a one-off
    // controller call through run loop is complex, so instead verify via
    // flow_count after injecting with a scripted controller below.
    let _ = ctrl_msg;

    // Scripted controller that installs the rule at start.
    struct Installer;
    impl ControllerLogic for Installer {
        fn on_start(&mut self, ctx: &mut ControllerCtx<'_>) {
            ctx.send(
                SW1,
                OfMessage::FlowMod {
                    command: FlowModCommand::Add,
                    flow_match: FlowMatch::new().with_eth_dst(MacAddr::from_index(2)),
                    priority: 10,
                    idle_timeout_secs: 0,
                    hard_timeout_secs: 0,
                    actions: vec![Action::Output(PortNo::new(2))],
                    cookie: 0,
                },
            );
        }
        fn on_message(&mut self, _: &mut ControllerCtx<'_>, _: DatapathId, _: OfMessage) {}
        fn on_timer(&mut self, _: &mut ControllerCtx<'_>, _: TimerId) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let mut spec = two_host_spec();
    spec.set_controller(Box::new(Installer));
    let mut sim = Simulator::new(spec, 5);
    sim.run_for(Duration::from_millis(5));
    assert_eq!(sim.flow_count(SW1), Some(1));
    sim.host_send_frame(H1, opaque(MacAddr::from_index(1), MacAddr::from_index(2)));
    sim.run_for(Duration::from_millis(10));
    assert_eq!(sim.trace().count("HostRx"), 1, "rule must forward to h2");
    assert_eq!(sim.trace().count("PacketIn"), 0, "no table miss");
}

/// An app that relays every received OOB frame count.
struct OobCounter {
    received: usize,
    arrival: Option<SimTime>,
}

impl HostApp for OobCounter {
    fn on_oob_frame(&mut self, ctx: &mut HostCtx<'_>, _from: HostId, _frame: EthernetFrame) {
        self.received += 1;
        self.arrival = Some(ctx.now());
    }
    fn on_frame(&mut self, _: &mut HostCtx<'_>, _: &EthernetFrame) -> FrameDisposition {
        FrameDisposition::Pass
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn oob_channel_delivers_with_latency_and_codec_cost() {
    let mut spec = two_host_spec();
    spec.add_oob_channel(H1, H2, Duration::from_millis(10), Duration::from_millis(2));
    spec.set_host_app(
        H2,
        Box::new(OobCounter {
            received: 0,
            arrival: None,
        }),
    );
    let mut sim = Simulator::new(spec, 9);
    sim.run_until(SimTime::from_millis(100));
    sim.with_host_app(H1, |_, ctx| {
        ctx.oob_send(H2, opaque(MacAddr::from_index(1), MacAddr::from_index(2)))
    });
    // H1 has no app installed -> with_host_app returns None; install via spec
    // instead: drive the send from H2's side (channel is bidirectional).
    sim.with_host_app(H2, |_, ctx| {
        assert!(ctx.oob_send(H1, opaque(MacAddr::from_index(2), MacAddr::from_index(1))));
    });
    sim.run_for(Duration::from_millis(50));
    assert_eq!(sim.trace().count("OobRelay"), 1);
}

#[test]
fn oob_send_fails_without_channel() {
    let mut spec = two_host_spec();
    spec.set_host_app(
        H2,
        Box::new(OobCounter {
            received: 0,
            arrival: None,
        }),
    );
    let mut sim = Simulator::new(spec, 9);
    let sent = sim
        .with_host_app(H2, |_, ctx| {
            ctx.oob_send(H1, opaque(MacAddr::from_index(2), MacAddr::from_index(1)))
        })
        .unwrap();
    assert!(!sent);
}

#[test]
fn default_stack_answers_arp_and_ping_over_flood_controller() {
    use netsim::apps::PeriodicPinger;
    let mut spec = two_host_spec();
    spec.set_controller(Box::new(FloodController::new()));
    spec.set_host_app(
        H1,
        Box::new(PeriodicPinger::new(
            IpAddr::new(10, 0, 0, 2),
            Duration::from_millis(50),
        )),
    );
    let mut sim = Simulator::new(spec, 11);
    sim.run_for(Duration::from_secs(2));
    let pinger: &PeriodicPinger = sim.host_app_as(H1).expect("app");
    assert!(pinger.sent >= 10, "sent {}", pinger.sent);
    assert!(pinger.received >= 9, "received {}", pinger.received);
    // RTT = 4 hops * 1 ms + controller round trips; with flooding every
    // packet goes through the controller: 1ms (h->sw) + 1ms ctrl + 1ms ctrl
    // + 1ms (sw->h) each way = 8 ms.
    let mean: f64 = pinger.rtts_ms.iter().sum::<f64>() / pinger.rtts_ms.len() as f64;
    assert!((mean - 8.0).abs() < 0.5, "mean rtt {mean}");
}

#[test]
fn same_seed_same_trace_different_seed_diverges() {
    fn run(seed: u64) -> (u64, usize) {
        let mut spec = two_host_spec();
        spec.set_controller(Box::new(FloodController::new()));
        spec.add_host(
            HostId::new(3),
            MacAddr::from_index(3),
            IpAddr::new(10, 0, 0, 3),
        );
        spec.attach_host(
            HostId::new(3),
            SW1,
            PortNo::new(3),
            LinkProfile::jittered(Duration::from_millis(5), Duration::from_millis(1)),
        );
        spec.set_host_app(
            HostId::new(3),
            Box::new(netsim::apps::PeriodicPinger::new(
                IpAddr::new(10, 0, 0, 1),
                Duration::from_millis(20),
            )),
        );
        let mut sim = Simulator::new(spec, seed);
        sim.run_for(Duration::from_secs(2));
        let rtt_bits = sim
            .host_app_as::<netsim::apps::PeriodicPinger>(HostId::new(3))
            .unwrap()
            .rtts_ms
            .iter()
            .map(|r| r.to_bits())
            .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b));
        (rtt_bits, sim.trace().records().len())
    }
    let a = run(42);
    let b = run(42);
    let c = run(43);
    assert_eq!(a, b, "same seed must reproduce exactly");
    assert_ne!(a.0, c.0, "different seed should produce different jitter");
}

#[test]
fn admin_port_down_is_immediate_and_reversible() {
    let mut spec = two_host_spec();
    spec.set_controller(Box::new(FloodController::new()));
    let mut sim = Simulator::new(spec, 2);
    sim.run_for(Duration::from_millis(5));
    sim.set_switch_port_admin(SW1, PortNo::new(2), false);
    assert_eq!(sim.trace().count("PortDown"), 1);
    sim.host_send_frame(H1, opaque(MacAddr::from_index(1), MacAddr::BROADCAST));
    sim.run_for(Duration::from_millis(20));
    assert_eq!(sim.trace().count("HostRx"), 0, "flood skips downed port");
    sim.set_switch_port_admin(SW1, PortNo::new(2), true);
    assert_eq!(sim.trace().count("PortUp"), 1);
}
