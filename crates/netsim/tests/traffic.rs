//! Flow-level traffic-engine contract tests.
//!
//! The two load-bearing guarantees of `netsim::traffic`:
//!
//! 1. **Zero-cost when disabled** — an empty [`TrafficPlan`] produces a
//!    byte-identical run (trace *and* telemetry snapshot) to a run built
//!    without any plan: no aggregation hosts, no events, no RNG streams.
//! 2. **Deterministic when enabled** — a non-trivial plan is a pure
//!    function of `(scenario, plan, seed)`: two runs are byte-identical.
//!
//! Plus behavioural checks: flows aggregate (packet counters advance far
//! faster than expanded frames), expansion happens only at the ARP /
//! first-packet boundaries, and arrival chains respect their windows.

use netsim::traffic::{ArrivalProcess, SizeMix};
use netsim::{
    DemandProfile, LinkProfile, NetworkSpec, Simulator, TraceEvent, TrafficPlan, TrafficWindow,
};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SimTime};
use tm_telemetry::Telemetry;

const SW1: DatapathId = DatapathId::new(1);
const SW2: DatapathId = DatapathId::new(2);
const H1: HostId = HostId::new(1);
const H2: HostId = HostId::new(2);
const TRUNK: PortNo = PortNo::new(2);
const AGG: PortNo = PortNo::new(3);

/// Two switches with a jittered trunk and one real host each; traffic
/// groups park on port 3 of either switch.
fn two_switch_spec() -> NetworkSpec {
    let edge = LinkProfile::fixed(Duration::from_millis(1));
    let trunk = LinkProfile::testbed_dataplane();
    let mut spec = NetworkSpec::new();
    spec.add_switch(SW1);
    spec.add_switch(SW2);
    spec.link_switches(SW1, TRUNK, SW2, PortNo::new(1), trunk);
    spec.add_host(H1, MacAddr::from_index(1), IpAddr::new(10, 0, 0, 1));
    spec.add_host(H2, MacAddr::from_index(2), IpAddr::new(10, 0, 0, 2));
    spec.attach_host(H1, SW1, PortNo::new(1), edge);
    spec.attach_host(H2, SW2, PortNo::new(2), edge);
    spec.set_telemetry(Telemetry::new());
    spec
}

fn window() -> TrafficWindow {
    TrafficWindow::new(SimTime::from_secs(1), SimTime::from_secs(6))
}

/// A two-group plan exercising both arrival processes: steady Poisson
/// demand on SW1, bursty on/off demand on SW2.
fn two_group_plan() -> TrafficPlan {
    let mut plan = TrafficPlan::new();
    plan.group(SW1, AGG, 500, DemandProfile::datacenter(0.4), window());
    plan.group(SW2, AGG, 300, DemandProfile::bursty(1.0), window());
    plan
}

fn fingerprint(sim: &Simulator) -> (Vec<TraceEvent>, String) {
    (
        sim.trace().records().to_vec(),
        sim.metrics_snapshot().render(),
    )
}

#[test]
fn empty_traffic_plan_is_byte_identical_to_a_run_with_no_plan() {
    for seed in [1_u64, 7, 0xD5_2018] {
        let mut plain = Simulator::new(two_switch_spec(), seed);
        plain.run_for(Duration::from_secs(5));
        let mut with_empty =
            Simulator::with_traffic_plan(two_switch_spec(), seed, TrafficPlan::new());
        with_empty.run_for(Duration::from_secs(5));
        let (trace_a, metrics_a) = fingerprint(&plain);
        let (trace_b, metrics_b) = fingerprint(&with_empty);
        assert_eq!(trace_a, trace_b, "seed {seed}: traces diverged");
        assert_eq!(metrics_a, metrics_b, "seed {seed}: snapshots diverged");
        assert!(
            !metrics_a.contains("traffic."),
            "seed {seed}: no traffic counters may appear without a plan"
        );
    }
}

#[test]
fn nontrivial_plan_is_deterministic_across_runs() {
    for seed in [3_u64, 99] {
        let run = |_: ()| {
            let mut sim = Simulator::with_traffic_plan(two_switch_spec(), seed, two_group_plan());
            sim.run_for(Duration::from_secs(8));
            fingerprint(&sim)
        };
        let (trace_a, metrics_a) = run(());
        let (trace_b, metrics_b) = run(());
        assert_eq!(trace_a, trace_b, "seed {seed}: traces diverged");
        assert_eq!(metrics_a, metrics_b, "seed {seed}: snapshots diverged");
    }
}

#[test]
fn flows_aggregate_instead_of_expanding() {
    let mut sim = Simulator::with_traffic_plan(two_switch_spec(), 5, two_group_plan());
    sim.run_for(Duration::from_secs(8));
    let metrics = sim.metrics_snapshot();
    let offered = metrics.counter("traffic.flows_offered").unwrap_or(0);
    let aggregated = metrics.counter("traffic.packets_aggregated").unwrap_or(0);
    let expanded = metrics.counter("traffic.packets_expanded").unwrap_or(0);
    let announced = metrics.counter("traffic.hosts_announced").unwrap_or(0);
    assert!(offered > 100, "expected real load, got {offered} flows");
    assert!(
        aggregated > 50 * expanded.max(1),
        "aggregation is the whole point: {aggregated} aggregated vs {expanded} expanded"
    );
    // Expansions are bounded by the boundaries: one ARP per announced host
    // plus one first packet per cold edge-pair aggregate.
    let first_packets = metrics
        .counter("traffic.expansions_first_packet")
        .unwrap_or(0);
    assert_eq!(
        expanded,
        announced + first_packets,
        "every expanded frame must be an ARP or a first packet"
    );
    // Aggregate accounting advanced the ingress port counters by whole
    // flows: far more packets than frames ever crossed the port.
    let stats = sim.port_stats(SW1).expect("switch exists");
    let agg_port = stats
        .iter()
        .find(|p| p.port_no == AGG)
        .expect("aggregation port");
    assert!(
        agg_port.rx_packets > aggregated / 2,
        "ingress counters must advance in O(flows): {} rx vs {aggregated} aggregated",
        agg_port.rx_packets
    );
}

#[test]
fn arrival_chains_respect_their_windows() {
    let mut sim = Simulator::with_traffic_plan(two_switch_spec(), 9, two_group_plan());
    // Before the window opens: nothing offered.
    sim.run_until(SimTime::from_millis(900));
    assert_eq!(
        sim.metrics_snapshot().counter("traffic.flows_offered"),
        None,
        "no flows before the window"
    );
    // After the window closes: the offered count freezes.
    sim.run_until(SimTime::from_secs(7));
    let at_close = sim
        .metrics_snapshot()
        .counter("traffic.flows_offered")
        .unwrap_or(0);
    assert!(at_close > 0, "flows must be offered inside the window");
    sim.run_for(Duration::from_secs(5));
    let later = sim
        .metrics_snapshot()
        .counter("traffic.flows_offered")
        .unwrap_or(0);
    assert_eq!(at_close, later, "no flows after the window closes");
}

#[test]
fn table_misses_reach_the_controller_as_packet_ins() {
    // Even with a null controller, every expanded first packet and ARP
    // table-misses into a PacketIn event on the control channel.
    let mut sim = Simulator::with_traffic_plan(two_switch_spec(), 13, two_group_plan());
    sim.run_for(Duration::from_secs(8));
    let metrics = sim.metrics_snapshot();
    let expanded = metrics.counter("traffic.packets_expanded").unwrap_or(0);
    let to_controller = metrics
        .counter("netsim.event.ctrl_to_controller")
        .unwrap_or(0);
    assert!(expanded > 0, "the plan must expand some packets");
    assert!(
        to_controller > expanded,
        "each expansion should produce control-plane load \
         ({to_controller} control deliveries vs {expanded} expansions)"
    );
}

#[test]
fn size_mix_governs_aggregate_byte_volume() {
    // An all-mice plan moves orders of magnitude fewer bytes than the
    // datacenter mix at the same flow rate — the elephant fraction, not
    // the flow count, carries the volume.
    let run_bytes = |mix: SizeMix| {
        let profile = DemandProfile::new(0.4, ArrivalProcess::Poisson, mix);
        let mut plan = TrafficPlan::new();
        plan.group(SW1, AGG, 500, profile, window());
        let mut sim = Simulator::with_traffic_plan(two_switch_spec(), 17, plan);
        sim.run_for(Duration::from_secs(8));
        let m = sim.metrics_snapshot();
        (
            m.counter("traffic.flows_offered").unwrap_or(0),
            m.counter("traffic.bytes_offered").unwrap_or(0),
        )
    };
    let (flows_dc, bytes_dc) = run_bytes(SizeMix::datacenter());
    let (flows_mice, bytes_mice) = run_bytes(SizeMix::new(0.0, 1, 20 * 1024));
    assert!(flows_dc > 100 && flows_mice > 100);
    assert!(
        bytes_dc > 100 * bytes_mice,
        "elephants must dominate volume: {bytes_dc} vs {bytes_mice}"
    );
}
