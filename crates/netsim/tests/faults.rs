//! Fault-injection contract tests.
//!
//! The two load-bearing guarantees of `netsim::faults`:
//!
//! 1. **Zero-cost when disabled** — an empty [`FaultPlan`] produces a
//!    byte-identical run (trace *and* telemetry snapshot) to a run built
//!    without any plan: no events scheduled, no RNG draws, no seq drift.
//! 2. **Deterministic when enabled** — a non-trivial plan is a pure
//!    function of `(scenario, plan, seed)`: two runs are byte-identical.
//!
//! Plus behavioural checks for each fault kind (loss actually drops, flaps
//! produce `PortStatus` edges, restarts wipe the flow table).

use std::any::Any;

use netsim::{
    ControllerCtx, ControllerLogic, FaultPlan, FaultWindow, FrameDisposition, HostApp, HostCtx,
    LinkProfile, LossModel, NetworkSpec, Simulator, TimerId, TraceEvent,
};
use openflow::{Action, FlowMatch, FlowModCommand, OfMessage};
use sdn_types::packet::{EthernetFrame, Payload};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SimTime};
use tm_telemetry::Telemetry;

const SW1: DatapathId = DatapathId::new(1);
const SW2: DatapathId = DatapathId::new(2);
const H1: HostId = HostId::new(1);
const H2: HostId = HostId::new(2);
const TRUNK: PortNo = PortNo::new(2);

/// Installs "everything out port 2" on both switches at start: frames from
/// H1 cross the trunk to SW2 and land on H2.
struct StaticForwarder;

impl ControllerLogic for StaticForwarder {
    fn on_start(&mut self, ctx: &mut ControllerCtx<'_>) {
        for dpid in [SW1, SW2] {
            ctx.send(
                dpid,
                OfMessage::FlowMod {
                    command: FlowModCommand::Add,
                    flow_match: FlowMatch::new(),
                    priority: 1,
                    idle_timeout_secs: 0,
                    hard_timeout_secs: 0,
                    actions: vec![Action::Output(PortNo::new(2))],
                    cookie: 0,
                },
            );
        }
    }
    fn on_message(&mut self, _ctx: &mut ControllerCtx<'_>, _dpid: DatapathId, _msg: OfMessage) {}
    fn on_timer(&mut self, _ctx: &mut ControllerCtx<'_>, _id: TimerId) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts opaque test frames.
#[derive(Default)]
struct Recorder {
    seen: u64,
}

impl HostApp for Recorder {
    fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, frame: &EthernetFrame) -> FrameDisposition {
        if let Payload::Opaque {
            ethertype: 0x1234, ..
        } = &frame.payload
        {
            self.seen += 1;
        }
        FrameDisposition::Consume
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn test_frame(i: u16) -> EthernetFrame {
    EthernetFrame::new(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        Payload::Opaque {
            ethertype: 0x1234,
            data: i.to_le_bytes().to_vec(),
        },
    )
}

/// Two switches, jittered+bursty trunk (so the RNG is exercised hard),
/// a host on each end, static forwarding toward H2.
fn two_switch_spec() -> NetworkSpec {
    let edge = LinkProfile::fixed(Duration::from_millis(1));
    let trunk = LinkProfile::testbed_dataplane();
    let mut spec = NetworkSpec::new();
    spec.add_switch(SW1);
    spec.add_switch(SW2);
    spec.link_switches(SW1, TRUNK, SW2, PortNo::new(1), trunk);
    spec.add_host(H1, MacAddr::from_index(1), IpAddr::new(10, 0, 0, 1));
    spec.add_host(H2, MacAddr::from_index(2), IpAddr::new(10, 0, 0, 2));
    spec.attach_host(H1, SW1, PortNo::new(1), edge);
    spec.attach_host(H2, SW2, PortNo::new(2), edge);
    spec.set_host_app(H2, Box::<Recorder>::default());
    spec.set_controller(Box::new(StaticForwarder));
    spec.set_telemetry(Telemetry::new());
    spec
}

/// Drives the same traffic script on any simulator: frame bursts at 1 s
/// intervals for `secs` seconds.
fn drive(sim: &mut Simulator, secs: u16) {
    sim.run_for(Duration::from_millis(10)); // let the wildcard rules land
    for s in 0..secs {
        for i in 0..5_u16 {
            assert!(sim.host_send_frame(H1, test_frame(s * 10 + i)));
        }
        sim.run_for(Duration::from_secs(1));
    }
}

fn fingerprint(sim: &Simulator) -> (Vec<TraceEvent>, String) {
    (
        sim.trace().records().to_vec(),
        sim.metrics_snapshot().render(),
    )
}

#[test]
fn empty_fault_plan_is_byte_identical_to_a_run_with_no_plan() {
    for seed in [1_u64, 7, 0xD5_2018] {
        let mut plain = Simulator::new(two_switch_spec(), seed);
        drive(&mut plain, 5);
        let mut with_empty = Simulator::with_fault_plan(two_switch_spec(), seed, FaultPlan::new());
        drive(&mut with_empty, 5);
        let (trace_a, metrics_a) = fingerprint(&plain);
        let (trace_b, metrics_b) = fingerprint(&with_empty);
        assert_eq!(trace_a, trace_b, "seed {seed}: traces diverged");
        assert_eq!(metrics_a, metrics_b, "seed {seed}: snapshots diverged");
        assert!(
            !metrics_a.contains("netsim.fault."),
            "seed {seed}: no fault counters may appear without faults"
        );
    }
}

/// A plan exercising all five fault kinds at once.
fn kitchen_sink_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    let window = FaultWindow::new(SimTime::from_secs(2), SimTime::from_secs(6));
    // Bursty loss on the trunk (SW1 egress) + independent loss on the
    // reverse direction.
    plan.link_loss(
        SW1,
        TRUNK,
        LossModel::gilbert_elliott(0.3, 0.4, 0.05, 0.9),
        window,
    );
    plan.link_loss(SW2, PortNo::new(1), LossModel::bernoulli(0.5), window);
    // Latency spikes with jitter on the trunk.
    plan.latency_spike(
        SW1,
        TRUNK,
        Duration::from_millis(6),
        Duration::from_millis(2),
        window,
    );
    // Flap H2's port mid-run.
    plan.link_flap(
        SW2,
        PortNo::new(2),
        SimTime::from_secs(3),
        SimTime::from_millis(3500),
    );
    // Restart SW1 at 4 s with a 200 ms outage.
    plan.switch_restart(SW1, SimTime::from_secs(4), Duration::from_millis(200));
    // Congest SW1's control channel across the restart (the re-handshake
    // and the post-wipe PacketIns are all delayed).
    plan.ctrl_congestion(
        SW1,
        Duration::from_millis(15),
        FaultWindow::new(SimTime::from_secs(1), SimTime::from_secs(7)),
    );
    plan
}

#[test]
fn nontrivial_plan_is_deterministic_across_runs() {
    for seed in [3_u64, 99] {
        let run = |_: ()| {
            let mut sim = Simulator::with_fault_plan(two_switch_spec(), seed, kitchen_sink_plan());
            drive(&mut sim, 8);
            fingerprint(&sim)
        };
        let (trace_a, metrics_a) = run(());
        let (trace_b, metrics_b) = run(());
        assert_eq!(trace_a, trace_b, "seed {seed}: traces diverged");
        assert_eq!(metrics_a, metrics_b, "seed {seed}: snapshots diverged");
    }
}

#[test]
fn every_fault_kind_is_attributed_in_telemetry() {
    let mut sim = Simulator::with_fault_plan(two_switch_spec(), 5, kitchen_sink_plan());
    drive(&mut sim, 8);
    let metrics = sim.metrics_snapshot();
    for counter in [
        "netsim.fault.loss_drops",
        "netsim.fault.latency_spikes",
        "netsim.fault.link_flaps",
        "netsim.fault.switch_restarts",
        "netsim.fault.ctrl_congested_msgs",
    ] {
        assert!(
            metrics.counter(counter).unwrap_or(0) > 0,
            "expected {counter} > 0\n{}",
            metrics.render()
        );
    }
    // One window edge per windowed entry: 2 loss + 1 spike + 1 congestion.
    assert_eq!(metrics.counter("netsim.fault.windows_opened"), Some(4));
}

#[test]
fn total_loss_window_blackholes_the_trunk() {
    let mut plan = FaultPlan::new();
    plan.link_loss(
        SW1,
        TRUNK,
        LossModel::bernoulli(1.0),
        FaultWindow::new(SimTime::from_secs(1), SimTime::from_secs(3)),
    );
    let mut sim = Simulator::with_fault_plan(two_switch_spec(), 11, plan);
    sim.run_for(Duration::from_millis(10));

    // Before the window: frames cross.
    for i in 0..5_u16 {
        assert!(sim.host_send_frame(H1, test_frame(i)));
    }
    sim.run_for(Duration::from_millis(500));
    let before = sim.host_app_as::<Recorder>(H2).expect("recorder").seen;
    assert_eq!(before, 5, "pre-window frames must arrive");

    // Inside the window: every trunk transit is eaten.
    sim.run_until(SimTime::from_millis(1500));
    for i in 10..15_u16 {
        assert!(sim.host_send_frame(H1, test_frame(i)));
    }
    sim.run_until(SimTime::from_millis(2500));
    let during = sim.host_app_as::<Recorder>(H2).expect("recorder").seen;
    assert_eq!(during, before, "in-window frames must be dropped");

    // After the window: connectivity returns.
    sim.run_until(SimTime::from_secs(4));
    for i in 20..25_u16 {
        assert!(sim.host_send_frame(H1, test_frame(i)));
    }
    sim.run_for(Duration::from_secs(1));
    let after = sim.host_app_as::<Recorder>(H2).expect("recorder").seen;
    assert_eq!(after, before + 5, "post-window frames must arrive");

    let metrics = sim.metrics_snapshot();
    assert_eq!(metrics.counter("netsim.fault.loss_drops"), Some(5));
    assert_eq!(sim.trace().count("Dropped"), 5);
}

#[test]
fn link_flap_emits_port_down_then_port_up() {
    let mut plan = FaultPlan::new();
    plan.link_flap(
        SW2,
        PortNo::new(2),
        SimTime::from_secs(2),
        SimTime::from_secs(3),
    );
    let mut sim = Simulator::with_fault_plan(two_switch_spec(), 21, plan);
    sim.run_for(Duration::from_secs(5));
    let downs: Vec<_> = sim
        .trace()
        .records()
        .iter()
        .filter(|e| {
            matches!(e, TraceEvent::PortDown { dpid, port, at }
                if *dpid == SW2 && *port == PortNo::new(2) && *at == SimTime::from_secs(2))
        })
        .collect();
    let ups: Vec<_> = sim
        .trace()
        .records()
        .iter()
        .filter(|e| {
            matches!(e, TraceEvent::PortUp { dpid, port, at }
                if *dpid == SW2 && *port == PortNo::new(2) && *at == SimTime::from_secs(3))
        })
        .collect();
    assert_eq!(downs.len(), 1, "one PortDown at the flap edge");
    assert_eq!(ups.len(), 1, "one PortUp at the flap edge");
    assert_eq!(
        sim.metrics_snapshot().counter("netsim.fault.link_flaps"),
        Some(1)
    );
}

#[test]
fn switch_restart_wipes_the_flow_table() {
    let mut plan = FaultPlan::new();
    plan.switch_restart(SW1, SimTime::from_secs(2), Duration::from_millis(100));
    let mut sim = Simulator::with_fault_plan(two_switch_spec(), 31, plan);
    sim.run_for(Duration::from_secs(1));
    assert_eq!(
        sim.flow_count(SW1),
        Some(1),
        "rule installed before restart"
    );
    sim.run_for(Duration::from_secs(2));
    assert_eq!(sim.flow_count(SW1), Some(0), "restart wiped the table");
    assert_eq!(
        sim.metrics_snapshot()
            .counter("netsim.fault.switch_restarts"),
        Some(1)
    );
}
