//! Direct tests of the default host network stack: ARP/ICMP/TCP
//! responders, responder toggles, and the IP-ID counter.

use std::any::Any;

use netsim::{
    ControllerCtx, ControllerLogic, FrameDisposition, HostApp, HostCtx, LinkProfile, NetworkSpec,
    Simulator, TimerId,
};
use openflow::{Action, FlowMatch, FlowModCommand, OfMessage};
use sdn_types::packet::{
    ArpOp, ArpPacket, EthernetFrame, IcmpPacket, IcmpType, Ipv4Packet, Payload, TcpSegment,
    Transport,
};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo};

const SW: DatapathId = DatapathId::new(1);
const PROBER: HostId = HostId::new(1);
const TARGET: HostId = HostId::new(2);

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index(i)
}
fn ip(i: u8) -> IpAddr {
    IpAddr::new(10, 0, 0, i)
}

/// Captures every frame and offers helpers to fish out replies.
#[derive(Default)]
struct Capture {
    frames: Vec<EthernetFrame>,
}

impl HostApp for Capture {
    fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, frame: &EthernetFrame) -> FrameDisposition {
        self.frames.push(frame.clone());
        FrameDisposition::Consume // prober has no stack of its own
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Hub;
impl ControllerLogic for Hub {
    fn on_start(&mut self, ctx: &mut ControllerCtx<'_>) {
        ctx.send(
            SW,
            OfMessage::FlowMod {
                command: FlowModCommand::Add,
                flow_match: FlowMatch::new(),
                priority: 1,
                idle_timeout_secs: 0,
                hard_timeout_secs: 0,
                actions: vec![Action::Output(PortNo::FLOOD)],
                cookie: 0,
            },
        );
    }
    fn on_message(&mut self, _: &mut ControllerCtx<'_>, _: DatapathId, _: OfMessage) {}
    fn on_timer(&mut self, _: &mut ControllerCtx<'_>, _: TimerId) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn sim() -> Simulator {
    let mut spec = NetworkSpec::new();
    spec.add_switch(SW);
    let link = LinkProfile::fixed(Duration::from_millis(1));
    spec.add_host(PROBER, mac(1), ip(1));
    spec.add_host(TARGET, mac(2), ip(2));
    spec.attach_host(PROBER, SW, PortNo::new(1), link);
    spec.attach_host(TARGET, SW, PortNo::new(2), link);
    spec.set_host_app(PROBER, Box::new(Capture::default()));
    spec.set_host_app(TARGET, Box::new(netsim::NullHostApp));
    spec.set_controller(Box::new(Hub));
    let mut s = Simulator::new(spec, 5);
    s.run_for(Duration::from_millis(10));
    s
}

fn send(sim: &mut Simulator, frame: EthernetFrame) {
    sim.host_send_frame(PROBER, frame);
    sim.run_for(Duration::from_millis(20));
}

fn replies(sim: &Simulator) -> Vec<EthernetFrame> {
    sim.host_app_as::<Capture>(PROBER).unwrap().frames.clone()
}

#[test]
fn arp_request_gets_reply_with_correct_binding() {
    let mut s = sim();
    send(
        &mut s,
        EthernetFrame::new(
            mac(1),
            MacAddr::BROADCAST,
            Payload::Arp(ArpPacket::request(mac(1), ip(1), ip(2))),
        ),
    );
    let r = replies(&s);
    let arp = r.iter().find_map(|f| f.arp()).expect("ARP reply");
    assert_eq!(arp.op, ArpOp::Reply);
    assert_eq!(arp.sender_mac, mac(2));
    assert_eq!(arp.sender_ip, ip(2));
    assert_eq!(arp.target_mac, mac(1));
}

#[test]
fn arp_for_someone_else_is_ignored() {
    let mut s = sim();
    send(
        &mut s,
        EthernetFrame::new(
            mac(1),
            MacAddr::BROADCAST,
            Payload::Arp(ArpPacket::request(mac(1), ip(1), ip(99))),
        ),
    );
    assert!(replies(&s).iter().all(|f| f.arp().is_none()));
}

#[test]
fn icmp_echo_is_answered_with_matching_id_and_seq() {
    let mut s = sim();
    send(
        &mut s,
        EthernetFrame::new(
            mac(1),
            mac(2),
            Payload::Ipv4(Ipv4Packet::new(
                ip(1),
                ip(2),
                Transport::Icmp(IcmpPacket::echo_request(0x55, 9, vec![1, 2, 3])),
            )),
        ),
    );
    let r = replies(&s);
    let reply = r
        .iter()
        .find_map(|f| f.ipv4())
        .and_then(|p| match &p.transport {
            Transport::Icmp(i) if i.icmp_type == IcmpType::EchoReply => Some(i.clone()),
            _ => None,
        })
        .expect("echo reply");
    assert_eq!(reply.identifier, 0x55);
    assert_eq!(reply.sequence, 9);
    assert_eq!(reply.data, vec![1, 2, 3]);
}

#[test]
fn tcp_syn_to_closed_port_gets_rst_open_port_gets_syn_ack() {
    let mut s = sim();
    // Closed port.
    send(
        &mut s,
        EthernetFrame::new(
            mac(1),
            mac(2),
            Payload::Ipv4(Ipv4Packet::new(
                ip(1),
                ip(2),
                Transport::Tcp(TcpSegment::syn(40_000, 81, 5)),
            )),
        ),
    );
    let rst = replies(&s)
        .iter()
        .filter_map(|f| f.ipv4().cloned())
        .find_map(|p| match p.transport {
            Transport::Tcp(t) if t.is_rst() => Some(t),
            _ => None,
        })
        .expect("RST for closed port");
    assert_eq!(rst.dst_port, 40_000);

    // Open port.
    s.with_host_app(TARGET, |_, ctx| ctx.listen_tcp(80));
    send(
        &mut s,
        EthernetFrame::new(
            mac(1),
            mac(2),
            Payload::Ipv4(Ipv4Packet::new(
                ip(1),
                ip(2),
                Transport::Tcp(TcpSegment::syn(40_001, 80, 6)),
            )),
        ),
    );
    let syn_ack = replies(&s)
        .iter()
        .filter_map(|f| f.ipv4().cloned())
        .find_map(|p| match p.transport {
            Transport::Tcp(t) if t.is_syn_ack() => Some(t),
            _ => None,
        })
        .expect("SYN-ACK for open port");
    assert_eq!(syn_ack.ack, 7, "acks ISN+1");
}

#[test]
fn ip_ident_increments_per_originated_packet() {
    let mut s = sim();
    for seq in 0..3u16 {
        send(
            &mut s,
            EthernetFrame::new(
                mac(1),
                mac(2),
                Payload::Ipv4(Ipv4Packet::new(
                    ip(1),
                    ip(2),
                    Transport::Icmp(IcmpPacket::echo_request(1, seq, vec![])),
                )),
            ),
        );
    }
    let idents: Vec<u16> = replies(&s)
        .iter()
        .filter_map(|f| f.ipv4())
        .map(|p| p.ident)
        .collect();
    assert_eq!(idents.len(), 3);
    assert_eq!(idents[1], idents[0] + 1, "global sequential IP-ID");
    assert_eq!(idents[2], idents[1] + 1);
}

#[test]
fn responder_toggles_silence_the_stack() {
    let mut s = sim();
    s.with_host_app(TARGET, |_, ctx| {
        ctx.set_respond_arp(false);
        ctx.set_respond_icmp(false);
        ctx.set_respond_tcp(false);
    });
    send(
        &mut s,
        EthernetFrame::new(
            mac(1),
            MacAddr::BROADCAST,
            Payload::Arp(ArpPacket::request(mac(1), ip(1), ip(2))),
        ),
    );
    send(
        &mut s,
        EthernetFrame::new(
            mac(1),
            mac(2),
            Payload::Ipv4(Ipv4Packet::new(
                ip(1),
                ip(2),
                Transport::Icmp(IcmpPacket::echo_request(1, 1, vec![])),
            )),
        ),
    );
    send(
        &mut s,
        EthernetFrame::new(
            mac(1),
            mac(2),
            Payload::Ipv4(Ipv4Packet::new(
                ip(1),
                ip(2),
                Transport::Tcp(TcpSegment::syn(40_000, 80, 1)),
            )),
        ),
    );
    assert!(
        replies(&s).is_empty(),
        "a silenced host answers nothing: {:?}",
        replies(&s).len()
    );
}

#[test]
fn frames_not_addressed_to_host_are_ignored() {
    let mut s = sim();
    // Unicast to a third MAC (flooded to everyone by the hub).
    send(
        &mut s,
        EthernetFrame::new(
            mac(1),
            mac(77),
            Payload::Ipv4(Ipv4Packet::new(
                ip(1),
                ip(2), // even though the IP matches, L2 dst does not
                Transport::Icmp(IcmpPacket::echo_request(1, 1, vec![])),
            )),
        ),
    );
    assert!(replies(&s).is_empty(), "stack must check L2 destination");
}
