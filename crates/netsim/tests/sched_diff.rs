//! Differential scheduler suite: the timing wheel and the binary heap must
//! be observationally indistinguishable.
//!
//! The wheel replaces the heap as the engine's event queue for throughput;
//! the determinism contract demands the swap be invisible — same `(time,
//! seq)` pop order, hence byte-identical traces and telemetry. These tests
//! run *identical scenarios* under both backends (selected per-spec via
//! [`NetworkSpec::set_sched_backend`]) and compare the full trace `Debug`
//! rendering plus the metrics snapshot, byte for byte:
//!
//! * a scripted periodic-control-load scenario (LLDP-ish timers, echo
//!   probes, flow churn) over a jittered fabric,
//! * the same scenario under a kitchen-sink fault plan (loss, spikes,
//!   flaps, a switch restart, control congestion),
//! * a Port-Amnesia-shaped hijack cycle (victim iface down, attacker
//!   re-announces the identity, victim returns) — exercising the engine's
//!   epoch-based cancellation idiom,
//! * a `tm_prop!`-generated randomized workload (burst traffic, identity
//!   flaps, odd run slices) shrunk to a minimal divergence on failure.

use std::any::Any;

use netsim::{
    ControllerCtx, ControllerLogic, FaultPlan, FaultWindow, FrameDisposition, HostApp, HostCtx,
    LinkProfile, LossModel, NetworkSpec, SchedBackend, Simulator, TimerId,
};
use openflow::{Action, FlowMatch, FlowModCommand, OfMessage, Xid};
use sdn_types::packet::{EthernetFrame, Payload};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SimTime};
use tm_prop::prelude::*;
use tm_telemetry::Telemetry;

const SW1: DatapathId = DatapathId::new(1);
const SW2: DatapathId = DatapathId::new(2);
const SW3: DatapathId = DatapathId::new(3);
const H1: HostId = HostId::new(1);
const H2: HostId = HostId::new(2);

const LLDP_TICK: TimerId = TimerId(1);
const PROBE_TICK: TimerId = TimerId(2);

/// A controller producing the periodic LLDP-and-probe control load the
/// wheel is tuned for: a 1 s "discovery round" re-arming timer, a 150 ms
/// echo-probe timer, and flow churn (install/delete cycles) on every third
/// probe tick.
struct PeriodicController {
    probes: u64,
}

impl PeriodicController {
    fn new() -> Self {
        PeriodicController { probes: 0 }
    }
}

impl ControllerLogic for PeriodicController {
    fn on_start(&mut self, ctx: &mut ControllerCtx<'_>) {
        for dpid in ctx.switch_ids() {
            ctx.send(
                dpid,
                OfMessage::FlowMod {
                    command: FlowModCommand::Add,
                    flow_match: FlowMatch::new(),
                    priority: 1,
                    idle_timeout_secs: 0,
                    hard_timeout_secs: 0,
                    actions: vec![Action::Output(PortNo::new(2))],
                    cookie: 0,
                },
            );
        }
        ctx.set_timer(Duration::from_secs(1), LLDP_TICK);
        ctx.set_timer(Duration::from_millis(150), PROBE_TICK);
    }

    fn on_message(&mut self, _ctx: &mut ControllerCtx<'_>, _dpid: DatapathId, _msg: OfMessage) {}

    fn on_timer(&mut self, ctx: &mut ControllerCtx<'_>, id: TimerId) {
        match id {
            LLDP_TICK => {
                // A discovery round: touch every switch, re-arm.
                for dpid in ctx.switch_ids() {
                    ctx.send(dpid, OfMessage::FeaturesRequest);
                }
                ctx.set_timer(Duration::from_secs(1), LLDP_TICK);
            }
            PROBE_TICK => {
                self.probes += 1;
                let targets = ctx.switch_ids();
                let target = targets[(self.probes as usize) % targets.len()];
                ctx.send(
                    target,
                    OfMessage::EchoRequest {
                        xid: Xid(self.probes),
                        payload: self.probes * 31,
                    },
                );
                if self.probes % 3 == 0 {
                    // Flow churn: a short-lived narrow rule on the target.
                    ctx.send(
                        target,
                        OfMessage::FlowMod {
                            command: FlowModCommand::Add,
                            flow_match: FlowMatch::new().with_ethertype(0x1234),
                            priority: 200,
                            idle_timeout_secs: 1,
                            hard_timeout_secs: 2,
                            actions: vec![Action::Output(PortNo::new(1))],
                            cookie: self.probes,
                        },
                    );
                }
                ctx.set_timer(Duration::from_millis(150), PROBE_TICK);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Consumes everything so bursts terminate at the far host.
#[derive(Default)]
struct Sink;

impl HostApp for Sink {
    fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, _frame: &EthernetFrame) -> FrameDisposition {
        FrameDisposition::Consume
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn test_frame(i: u16) -> EthernetFrame {
    EthernetFrame::new(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        Payload::Opaque {
            ethertype: 0x1234,
            data: i.to_le_bytes().to_vec(),
        },
    )
}

/// Three switches in a chain (loop-free, so FLOOD is safe), jittered
/// trunks, a host on each end, the periodic controller in the slot.
fn chain_spec(backend: SchedBackend) -> NetworkSpec {
    let edge = LinkProfile::fixed(Duration::from_millis(1));
    let trunk = LinkProfile::testbed_dataplane();
    let mut spec = NetworkSpec::new();
    spec.add_switch(SW1);
    spec.add_switch(SW2);
    spec.add_switch(SW3);
    spec.link_switches(SW1, PortNo::new(2), SW2, PortNo::new(1), trunk);
    spec.link_switches(SW2, PortNo::new(2), SW3, PortNo::new(1), trunk);
    spec.add_host(H1, MacAddr::from_index(1), IpAddr::new(10, 0, 0, 1));
    spec.add_host(H2, MacAddr::from_index(2), IpAddr::new(10, 0, 0, 2));
    spec.attach_host(H1, SW1, PortNo::new(1), edge);
    spec.attach_host(H2, SW3, PortNo::new(2), edge);
    spec.set_host_app(H2, Box::<Sink>::default());
    spec.set_controller(Box::new(PeriodicController::new()));
    spec.set_telemetry(Telemetry::new());
    spec.set_sched_backend(backend);
    spec
}

/// The full observable output of a run: trace rendered via `Debug` plus the
/// telemetry snapshot. Backend equivalence means these strings are equal.
fn fingerprint(sim: &Simulator) -> String {
    format!(
        "{:#?}\n{}",
        sim.trace().records(),
        sim.metrics_snapshot().render()
    )
}

fn diff_scenario(seed: u64, label: &str, scenario: impl Fn(NetworkSpec) -> String) {
    let wheel = scenario(chain_spec(SchedBackend::Wheel));
    let heap = scenario(chain_spec(SchedBackend::Heap));
    assert_eq!(
        wheel, heap,
        "{label} (seed {seed}): wheel and heap traces diverged"
    );
}

/// Host bursts at staggered offsets, run in uneven slices so the engine
/// horizon lands both inside and between wheel windows.
fn drive_bursts(sim: &mut Simulator, secs: u16) {
    sim.run_for(Duration::from_millis(10));
    for s in 0..secs {
        for i in 0..5_u16 {
            sim.host_send_frame(H1, test_frame(s * 10 + i));
        }
        sim.run_for(Duration::from_millis(333));
        sim.run_for(Duration::from_millis(667));
    }
}

#[test]
fn periodic_control_load_is_backend_identical() {
    for seed in [1_u64, 7, 0xD5_2018] {
        diff_scenario(seed, "periodic load", |spec| {
            let mut sim = Simulator::new(spec, seed);
            drive_bursts(&mut sim, 6);
            fingerprint(&sim)
        });
    }
}

/// Loss, latency spikes, a flap, a restart, and control congestion — every
/// fault kind runs through the queue under test.
fn fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    let window = FaultWindow::new(SimTime::from_secs(1), SimTime::from_secs(4));
    plan.link_loss(
        SW1,
        PortNo::new(2),
        LossModel::gilbert_elliott(0.3, 0.4, 0.05, 0.9),
        window,
    );
    plan.latency_spike(
        SW2,
        PortNo::new(2),
        Duration::from_millis(6),
        Duration::from_millis(2),
        window,
    );
    plan.link_flap(
        SW3,
        PortNo::new(2),
        SimTime::from_secs(2),
        SimTime::from_millis(2600),
    );
    plan.switch_restart(SW2, SimTime::from_secs(3), Duration::from_millis(200));
    plan.ctrl_congestion(
        SW1,
        Duration::from_millis(15),
        FaultWindow::new(SimTime::from_secs(1), SimTime::from_secs(5)),
    );
    plan
}

#[test]
fn faulted_run_is_backend_identical() {
    for seed in [3_u64, 99] {
        diff_scenario(seed, "faulted run", |spec| {
            let mut sim = Simulator::with_fault_plan(spec, seed, fault_plan());
            drive_bursts(&mut sim, 6);
            fingerprint(&sim)
        });
    }
}

/// A Port-Amnesia-shaped host-location hijack: the victim's interface goes
/// down, the "attacker" brings it back up wearing the victim's identity,
/// then the victim returns. Every down/up cycle bumps the host's epoch,
/// invalidating in-flight timers — the engine's cancellation idiom.
#[test]
fn hijack_cycle_is_backend_identical() {
    for seed in [5_u64, 42] {
        diff_scenario(seed, "hijack cycle", |spec| {
            let mut sim = Simulator::new(spec, seed);
            drive_bursts(&mut sim, 2);
            sim.host_iface_down(H2);
            sim.host_schedule_iface_up(
                H2,
                Duration::from_millis(40),
                Some((MacAddr::from_index(1), IpAddr::new(10, 0, 0, 1))),
            );
            sim.run_for(Duration::from_secs(1));
            // Victim comes back under its own name; stale timers from the
            // first cycle must already be dead under both backends.
            sim.host_iface_down(H2);
            sim.host_schedule_iface_up(
                H2,
                Duration::from_millis(25),
                Some((MacAddr::from_index(2), IpAddr::new(10, 0, 0, 2))),
            );
            drive_bursts(&mut sim, 2);
            fingerprint(&sim)
        });
    }
}

/// One step of the randomized workload script.
#[derive(Clone, Debug)]
enum Step {
    /// Send `n` back-to-back frames from H1.
    Burst(u8),
    /// Advance virtual time by `ms` milliseconds (1..=1500).
    Run(u16),
    /// Flap H2's interface, coming back after `ms` with a toggled identity.
    Flap(u16),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u8..8).prop_map(Step::Burst),
        (1u16..1500).prop_map(Step::Run),
        (1u16..300).prop_map(Step::Flap),
    ]
}

tm_prop! {
    #![tm_config(cases = 16)]

    /// Randomized end-to-end diff: any interleaving of bursts, uneven run
    /// slices, and identity flaps must fingerprint identically under both
    /// backends. On failure tm-prop shrinks the script to the minimal
    /// diverging sequence.
    #[test]
    fn random_workloads_are_backend_identical(
        steps in collection::vec(step_strategy(), 1..12),
        seed in 0u64..1_000,
    ) {
        let run = |backend: SchedBackend| {
            let mut sim = Simulator::new(chain_spec(backend), seed);
            let mut frame_no = 0u16;
            let mut masquerade = false;
            for step in &steps {
                match step {
                    Step::Burst(n) => {
                        for _ in 0..*n {
                            frame_no += 1;
                            sim.host_send_frame(H1, test_frame(frame_no));
                        }
                    }
                    Step::Run(ms) => sim.run_for(Duration::from_millis(*ms as u64)),
                    Step::Flap(ms) => {
                        masquerade = !masquerade;
                        let identity = if masquerade {
                            (MacAddr::from_index(1), IpAddr::new(10, 0, 0, 1))
                        } else {
                            (MacAddr::from_index(2), IpAddr::new(10, 0, 0, 2))
                        };
                        sim.host_iface_down(H2);
                        sim.host_schedule_iface_up(
                            H2,
                            Duration::from_millis(*ms as u64),
                            Some(identity),
                        );
                    }
                }
            }
            sim.run_for(Duration::from_secs(1));
            fingerprint(&sim)
        };
        prop_assert_eq!(run(SchedBackend::Wheel), run(SchedBackend::Heap));
    }
}
