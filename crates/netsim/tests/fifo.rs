//! Regression test: a physical link is a FIFO pipe. Frames sent
//! back-to-back over a heavily jittered link must arrive in send order —
//! independently sampled per-transit delays used to let later frames
//! overtake earlier ones, perturbing LLDP/probe ordering.

use std::any::Any;

use netsim::{
    ControllerCtx, ControllerLogic, FrameDisposition, HostApp, HostCtx, LinkProfile, NetworkSpec,
    Simulator, TimerId,
};
use openflow::{Action, FlowMatch, FlowModCommand, OfMessage};
use sdn_types::packet::{EthernetFrame, Payload};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo};
use tm_telemetry::Telemetry;

const SW1: DatapathId = DatapathId::new(1);
const H1: HostId = HostId::new(1);
const H2: HostId = HostId::new(2);
const FRAMES: u16 = 150;

/// Installs one wildcard rule on start: everything out port 2 (toward H2).
struct StaticForwarder;

impl ControllerLogic for StaticForwarder {
    fn on_start(&mut self, ctx: &mut ControllerCtx<'_>) {
        ctx.send(
            SW1,
            OfMessage::FlowMod {
                command: FlowModCommand::Add,
                flow_match: FlowMatch::new(),
                priority: 1,
                idle_timeout_secs: 0,
                hard_timeout_secs: 0,
                actions: vec![Action::Output(PortNo::new(2))],
                cookie: 0,
            },
        );
    }
    fn on_message(&mut self, _ctx: &mut ControllerCtx<'_>, _dpid: DatapathId, _msg: OfMessage) {}
    fn on_timer(&mut self, _ctx: &mut ControllerCtx<'_>, _id: TimerId) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Records the sequence numbers of every opaque frame it receives.
#[derive(Default)]
struct Recorder {
    seen: Vec<u16>,
}

impl HostApp for Recorder {
    fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, frame: &EthernetFrame) -> FrameDisposition {
        if let Payload::Opaque {
            ethertype: 0x1234,
            data,
        } = &frame.payload
        {
            self.seen.push(u16::from_le_bytes([data[0], data[1]]));
        }
        FrameDisposition::Consume
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn numbered_frame(i: u16) -> EthernetFrame {
    EthernetFrame::new(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        Payload::Opaque {
            ethertype: 0x1234,
            data: i.to_le_bytes().to_vec(),
        },
    )
}

fn jittery_spec() -> NetworkSpec {
    // Jitter SD comparable to the base latency: without FIFO enforcement,
    // back-to-back frames reorder with near certainty.
    let wild = LinkProfile::jittered(Duration::from_millis(5), Duration::from_millis(2));
    let mut spec = NetworkSpec::new();
    spec.add_switch(SW1);
    spec.add_host(H1, MacAddr::from_index(1), IpAddr::new(10, 0, 0, 1));
    spec.add_host(H2, MacAddr::from_index(2), IpAddr::new(10, 0, 0, 2));
    spec.attach_host(H1, SW1, PortNo::new(1), wild);
    spec.attach_host(H2, SW1, PortNo::new(2), wild);
    spec.set_host_app(H2, Box::<Recorder>::default());
    spec.set_controller(Box::new(StaticForwarder));
    spec.set_telemetry(Telemetry::new());
    spec
}

#[test]
fn jittered_link_delivers_in_send_order() {
    for seed in [1_u64, 7, 42, 1234] {
        let mut sim = Simulator::new(jittery_spec(), seed);
        // Let the wildcard rule land before traffic starts.
        sim.run_for(Duration::from_millis(2));
        // A burst of back-to-back frames: all enter the wire in the same
        // instant, so independent jitter samples would scramble them.
        for i in 0..FRAMES {
            assert!(sim.host_send_frame(H1, numbered_frame(i)));
        }
        sim.run_for(Duration::from_secs(2));

        let recorder = sim.host_app_as::<Recorder>(H2).expect("recorder");
        assert_eq!(
            recorder.seen.len(),
            usize::from(FRAMES),
            "seed {seed}: all frames must be delivered"
        );
        let expected: Vec<u16> = (0..FRAMES).collect();
        assert_eq!(
            recorder.seen, expected,
            "seed {seed}: frames must arrive in send order"
        );

        // The burst is tight enough that the clamp must actually fire.
        let metrics = sim.metrics_snapshot();
        let clamped = metrics.counter("netsim.link.fifo_clamped").unwrap_or(0);
        assert!(
            clamped > 0,
            "seed {seed}: expected FIFO clamps on a jittered burst, got none"
        );
    }
}

#[test]
fn fifo_clamp_never_fires_on_fixed_links() {
    let fixed = LinkProfile::fixed(Duration::from_millis(1));
    let mut spec = NetworkSpec::new();
    spec.add_switch(SW1);
    spec.add_host(H1, MacAddr::from_index(1), IpAddr::new(10, 0, 0, 1));
    spec.add_host(H2, MacAddr::from_index(2), IpAddr::new(10, 0, 0, 2));
    spec.attach_host(H1, SW1, PortNo::new(1), fixed);
    spec.attach_host(H2, SW1, PortNo::new(2), fixed);
    spec.set_host_app(H2, Box::<Recorder>::default());
    spec.set_controller(Box::new(StaticForwarder));
    spec.set_telemetry(Telemetry::new());
    let mut sim = Simulator::new(spec, 9);
    sim.run_for(Duration::from_millis(2));
    for i in 0..FRAMES {
        assert!(sim.host_send_frame(H1, numbered_frame(i)));
    }
    sim.run_for(Duration::from_secs(1));
    let metrics = sim.metrics_snapshot();
    assert_eq!(metrics.counter("netsim.link.fifo_clamped"), None);
    let recorder = sim.host_app_as::<Recorder>(H2).expect("recorder");
    assert_eq!(recorder.seen.len(), usize::from(FRAMES));
}
