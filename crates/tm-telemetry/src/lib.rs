//! A deterministic metrics registry for the TopoMirage stack.
//!
//! Every layer of the reproduction — the `netsim` event loop, switch
//! pipeline, links and hosts; the controller's discovery, forwarding and
//! latency services; the TopoGuard/TopoGuard+/SPHINX defense modules —
//! publishes run-level metrics into a shared [`Telemetry`] handle. The
//! registry is deliberately boring:
//!
//! * **Counters** — monotonically increasing `u64` event counts.
//! * **Gauges** — last-write-wins or high-water `i64` levels (queue depth).
//! * **Histograms** — fixed-bucket latency/size distributions. Buckets are
//!   fixed at first observation, so two runs that observe the same values
//!   produce byte-identical snapshots.
//! * **Span timers** — [`SpanTimer`] measures *virtual-time* intervals
//!   (deterministic, part of the snapshot); [`WallSpan`] measures
//!   *wall-clock* phases (nondeterministic by nature, reported separately
//!   and never part of a snapshot).
//!
//! # Determinism
//!
//! [`MetricsSnapshot`] contains only virtual-time-derived data, keyed by
//! `BTreeMap` (stable iteration order) and rendered by [`MetricsSnapshot::render`]
//! into a canonical text form. Two simulation runs with the same seed must
//! produce byte-identical renders — the workspace determinism suite pins
//! this. Wall-clock spans live in a separate side channel
//! ([`Telemetry::wall_report`]) precisely so they cannot leak
//! nondeterminism into the snapshot.
//!
//! # Zero cost when unused
//!
//! A handle created with [`Telemetry::disabled`] carries no registry at
//! all: every publish call is a branch on `Option` and returns
//! immediately, with no allocation and no `RefCell` traffic. Components
//! default to a disabled handle so standalone unit tests pay nothing.
//!
//! The handle is a `Rc<RefCell<...>>` clone — the simulator is
//! single-threaded by design, and every subsystem (controller logic, host
//! apps, defense modules) can hold its own cheap clone of the same
//! registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
// tm-lint: allow(wall-clock) -- Instant feeds only WallSpan, the wall-clock side channel snapshots deliberately exclude
use std::time::Instant;

use sdn_types::{Duration, SimTime};

/// Default histogram bucket upper bounds, in nanoseconds: 1 µs to 10 s,
/// shaped for the latency scales the simulator produces (link transits are
/// milliseconds, control round trips are low milliseconds, discovery
/// cadences are seconds). Values above the last bound land in the implicit
/// overflow bucket.
pub const DEFAULT_BUCKET_BOUNDS_NS: [u64; 12] = [
    1_000,          // 1 µs
    10_000,         // 10 µs
    100_000,        // 100 µs
    1_000_000,      // 1 ms
    2_000_000,      // 2 ms
    5_000_000,      // 5 ms
    10_000_000,     // 10 ms
    20_000_000,     // 20 ms
    50_000_000,     // 50 ms
    100_000_000,    // 100 ms
    1_000_000_000,  // 1 s
    10_000_000_000, // 10 s
];

/// A fixed-bucket histogram plus running count/sum/min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Histogram {
    /// Upper bounds (inclusive) of each bucket, ascending.
    bounds: &'static [u64],
    /// One count per bound, plus a final overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive), ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one entry per bound plus a final overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// Wall-clock span statistics (nondeterministic side channel).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WallStats {
    /// Completed spans.
    pub count: u64,
    /// Total wall time across spans, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
    wall: BTreeMap<&'static str, WallStats>,
}

/// A cheaply cloneable handle onto a shared metrics registry (or onto
/// nothing, when disabled).
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Registry>>>,
}

impl Telemetry {
    /// Creates an enabled handle with a fresh, empty registry.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Registry::default()))),
        }
    }

    /// Creates a disabled handle: every publish call is a no-op and
    /// [`Telemetry::snapshot`] returns an empty snapshot.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle is connected to a registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increments counter `name` by one.
    pub fn counter_inc(&self, name: &'static str) {
        self.counter_add(name, 1);
    }

    /// Increments counter `name` by `n`.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            *inner.borrow_mut().counters.entry(name).or_insert(0) += n;
        }
    }

    /// Sets counter `name` to an absolute value (for flushing totals that
    /// are accumulated outside the registry on hot paths). Idempotent.
    pub fn counter_set(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().counters.insert(name, value);
        }
    }

    /// Sets gauge `name` (last write wins).
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().gauges.insert(name, value);
        }
    }

    /// Raises gauge `name` to `value` if `value` is higher (high-water
    /// mark).
    pub fn gauge_max(&self, name: &'static str, value: i64) {
        if let Some(inner) = &self.inner {
            let mut reg = inner.borrow_mut();
            let g = reg.gauges.entry(name).or_insert(i64::MIN);
            if value > *g {
                *g = value;
            }
        }
    }

    /// Records `ns` into histogram `name` (default bucket ladder).
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        if let Some(inner) = &self.inner {
            inner
                .borrow_mut()
                .histograms
                .entry(name)
                .or_insert_with(|| Histogram::new(&DEFAULT_BUCKET_BOUNDS_NS))
                .observe(ns);
        }
    }

    /// Records a virtual-time duration into histogram `name`.
    pub fn observe_duration(&self, name: &'static str, d: Duration) {
        self.observe_ns(name, d.as_nanos());
    }

    /// Starts a deterministic span at virtual time `start`; finish it with
    /// [`SpanTimer::finish`] to record the elapsed virtual time.
    pub fn span(&self, name: &'static str, start: SimTime) -> SpanTimer {
        SpanTimer {
            telemetry: self.clone(),
            name,
            start,
        }
    }

    /// Starts a wall-clock span; the elapsed wall time is recorded when
    /// the guard drops. Wall spans are reported via
    /// [`Telemetry::wall_report`] and are **never** part of a
    /// [`MetricsSnapshot`].
    pub fn wall_span(&self, name: &'static str) -> WallSpan {
        WallSpan {
            telemetry: self.clone(),
            name,
            // tm-lint: allow(wall-clock) -- wall spans exist to read the wall clock; excluded from MetricsSnapshot by design
            start: Instant::now(),
        }
    }

    fn record_wall(&self, name: &'static str, elapsed_ns: u64) {
        if let Some(inner) = &self.inner {
            let mut reg = inner.borrow_mut();
            let w = reg.wall.entry(name).or_default();
            w.count += 1;
            w.total_ns = w.total_ns.saturating_add(elapsed_ns);
            w.max_ns = w.max_ns.max(elapsed_ns);
        }
    }

    /// Takes a deterministic snapshot of all counters, gauges and
    /// histograms. Wall-clock spans are deliberately excluded.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => {
                let reg = inner.borrow();
                MetricsSnapshot {
                    counters: reg
                        .counters
                        .iter()
                        .map(|(k, v)| (k.to_string(), *v))
                        .collect(),
                    gauges: reg
                        .gauges
                        .iter()
                        .map(|(k, v)| (k.to_string(), *v))
                        .collect(),
                    histograms: reg
                        .histograms
                        .iter()
                        .map(|(k, h)| (k.to_string(), h.snapshot()))
                        .collect(),
                }
            }
        }
    }

    /// The wall-clock spans recorded so far, sorted by name. These are
    /// nondeterministic and kept out of [`MetricsSnapshot`] by design.
    pub fn wall_report(&self) -> Vec<(String, WallStats)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .borrow()
                .wall
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }
}

/// A deterministic span over virtual time. Created by [`Telemetry::span`];
/// call [`SpanTimer::finish`] with the end time to record it.
#[must_use = "a span records nothing until finished"]
pub struct SpanTimer {
    telemetry: Telemetry,
    name: &'static str,
    start: SimTime,
}

impl SpanTimer {
    /// Records `end − start` (saturating at zero) into the span's
    /// histogram.
    pub fn finish(self, end: SimTime) {
        self.telemetry
            .observe_duration(self.name, end.since(self.start));
    }
}

/// An RAII wall-clock span. Recorded on drop into the wall side channel.
pub struct WallSpan {
    telemetry: Telemetry,
    name: &'static str,
    // tm-lint: allow(wall-clock) -- the span's start is wall time by definition; never enters a snapshot
    start: Instant,
}

impl Drop for WallSpan {
    fn drop(&mut self) {
        let elapsed_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.telemetry.record_wall(self.name, elapsed_ns);
    }
}

/// A point-in-time, fully deterministic copy of the registry.
///
/// Entries are sorted by metric name. [`MetricsSnapshot::render`] produces
/// a canonical text form that is byte-identical across runs with the same
/// seed — the format the workspace determinism tests compare.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counter pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded (or telemetry was disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot into its canonical text form: one metric per
    /// line, sorted, with a fixed grammar. Byte-identical across runs with
    /// the same seed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = write!(
                out,
                "hist {name} count={} sum={} min={} max={} buckets=",
                h.count, h.sum, h.min, h.max
            );
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match h.bounds.get(i) {
                    Some(b) => {
                        let _ = write!(out, "{b}:{c}");
                    }
                    None => {
                        let _ = write!(out, "+inf:{c}");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let t = Telemetry::new();
        t.counter_inc("b.two");
        t.counter_add("a.one", 5);
        t.counter_inc("b.two");
        let s = t.snapshot();
        assert_eq!(
            s.counters,
            vec![("a.one".to_string(), 5), ("b.two".to_string(), 2)]
        );
        assert_eq!(s.counter("b.two"), Some(2));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn disabled_handle_is_a_no_op() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter_inc("x");
        t.gauge_set("y", 1);
        t.observe_ns("z", 10);
        let span = t.span("s", SimTime::ZERO);
        span.finish(SimTime::from_millis(5));
        drop(t.wall_span("w"));
        assert!(t.snapshot().is_empty());
        assert!(t.wall_report().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let a = Telemetry::new();
        let b = a.clone();
        a.counter_inc("shared");
        b.counter_inc("shared");
        assert_eq!(a.snapshot().counter("shared"), Some(2));
    }

    #[test]
    fn gauge_set_and_high_water() {
        let t = Telemetry::new();
        t.gauge_set("level", 3);
        t.gauge_set("level", 1);
        t.gauge_max("hw", 4);
        t.gauge_max("hw", 2);
        let s = t.snapshot();
        assert_eq!(s.gauge("level"), Some(1));
        assert_eq!(s.gauge("hw"), Some(4));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let t = Telemetry::new();
        t.observe_ns("lat", 500); // <= 1 µs bucket
        t.observe_ns("lat", 4_000_000); // <= 5 ms bucket
        t.observe_ns("lat", 99_000_000_000); // overflow
        let s = t.snapshot();
        let h = s.histogram("lat").expect("recorded");
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 500);
        assert_eq!(h.max, 99_000_000_000);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[5], 1); // the 5 ms bucket
        assert_eq!(*h.counts.last().unwrap(), 1); // overflow
        assert_eq!(h.sum, 500 + 4_000_000 + 99_000_000_000);
    }

    #[test]
    fn sim_spans_record_virtual_time() {
        let t = Telemetry::new();
        let span = t.span("phase", SimTime::from_millis(10));
        span.finish(SimTime::from_millis(25));
        let s = t.snapshot();
        let h = s.histogram("phase").expect("recorded");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, Duration::from_millis(15).as_nanos());
    }

    #[test]
    fn wall_spans_stay_out_of_the_snapshot() {
        let t = Telemetry::new();
        drop(t.wall_span("phase.wall"));
        assert!(t.snapshot().is_empty());
        let wall = t.wall_report();
        assert_eq!(wall.len(), 1);
        assert_eq!(wall[0].0, "phase.wall");
        assert_eq!(wall[0].1.count, 1);
    }

    #[test]
    fn render_is_stable_and_complete() {
        let t = Telemetry::new();
        t.counter_add("c", 7);
        t.gauge_set("g", -2);
        t.observe_ns("h", 3);
        let a = t.snapshot().render();
        let b = t.snapshot().render();
        assert_eq!(a, b);
        assert!(a.contains("counter c 7\n"));
        assert!(a.contains("gauge g -2\n"));
        assert!(a.contains("hist h count=1 sum=3 min=3 max=3 buckets=1000:1,"));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn identical_publish_sequences_render_identically() {
        let publish = |t: &Telemetry| {
            for i in 0..100u64 {
                t.counter_inc("events");
                t.observe_ns("delay", i * 1_000);
            }
            t.gauge_max("depth", 42);
        };
        let (a, b) = (Telemetry::new(), Telemetry::new());
        publish(&a);
        publish(&b);
        assert_eq!(a.snapshot().render(), b.snapshot().render());
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
