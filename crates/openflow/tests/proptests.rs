//! Property tests for flow-table invariants.

use tm_prop::prelude::*;

use openflow::{Action, FlowEntry, FlowMatch, FlowTable, MatchOutcome};
use sdn_types::packet::{EthernetFrame, Payload};
use sdn_types::{Duration, MacAddr, PortNo, SimTime};

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        option::of(0u16..8),
        option::of(any::<u8>()),
        option::of(any::<u8>()),
    )
        .prop_map(|(in_port, src, dst)| {
            let mut m = FlowMatch::new();
            if let Some(p) = in_port {
                m = m.with_in_port(PortNo::new(p));
            }
            if let Some(s) = src {
                m = m.with_eth_src(MacAddr::new([s; 6]));
            }
            if let Some(d) = dst {
                m = m.with_eth_dst(MacAddr::new([d; 6]));
            }
            m
        })
}

fn arb_entry() -> impl Strategy<Value = FlowEntry> {
    (arb_match(), 0u16..1000, 0u16..8).prop_map(|(m, priority, port)| {
        FlowEntry::new(m, vec![Action::Output(PortNo::new(port))]).with_priority(priority)
    })
}

fn frame(src: u8, dst: u8) -> EthernetFrame {
    EthernetFrame::new(
        MacAddr::new([src; 6]),
        MacAddr::new([dst; 6]),
        Payload::Opaque {
            ethertype: 0x1234,
            data: vec![0; 10],
        },
    )
}

tm_prop! {
    /// The table always consults rules in non-increasing priority order.
    #[test]
    fn priorities_are_sorted_after_any_insert_sequence(entries in collection::vec(arb_entry(), 0..40)) {
        let mut table = FlowTable::new();
        for e in entries {
            table.insert(e, SimTime::ZERO);
        }
        let priorities: Vec<u16> = table.entries().map(|e| e.priority).collect();
        for pair in priorities.windows(2) {
            prop_assert!(pair[0] >= pair[1], "priorities must be non-increasing: {priorities:?}");
        }
    }

    /// A returned match must actually match the frame, and must be the
    /// first (highest-priority) matching rule.
    #[test]
    fn process_returns_highest_priority_match(
        entries in collection::vec(arb_entry(), 1..30),
        src in any::<u8>(),
        dst in any::<u8>(),
        in_port in 0u16..8,
    ) {
        let mut table = FlowTable::new();
        for e in entries {
            table.insert(e, SimTime::ZERO);
        }
        let f = frame(src, dst);
        let port = PortNo::new(in_port);
        let expected = table
            .entries()
            .find(|e| e.flow_match.matches(&f, port))
            .map(|e| e.actions.clone());
        let snapshot: Vec<FlowEntry> = table.entries().cloned().collect();
        match (table.process(&f, port, SimTime::ZERO), expected) {
            (MatchOutcome::Miss, None) => {}
            (MatchOutcome::Miss, Some(_)) => prop_assert!(false, "missed but a rule matches"),
            (MatchOutcome::Forward { .. }, None) => prop_assert!(false, "forwarded with no matching rule: {snapshot:?}"),
            (MatchOutcome::Forward { ports, .. }, Some(actions)) => {
                let want: Vec<PortNo> = actions.iter().filter_map(|a| match a {
                    Action::Output(p) => Some(*p),
                    _ => None,
                }).collect();
                prop_assert_eq!(ports, want);
            }
        }
    }

    /// Counters: total packet count across rules equals the number of hits.
    #[test]
    fn counters_sum_to_hits(
        entries in collection::vec(arb_entry(), 1..10),
        frames in collection::vec((any::<u8>(), any::<u8>(), 0u16..8), 0..50),
    ) {
        let mut table = FlowTable::new();
        for e in entries {
            table.insert(e, SimTime::ZERO);
        }
        let mut hits = 0u64;
        for (src, dst, port) in frames {
            if let MatchOutcome::Forward { .. } =
                table.process(&frame(src, dst), PortNo::new(port), SimTime::ZERO)
            {
                hits += 1;
            }
        }
        let total: u64 = table.stats().iter().map(|s| s.packet_count).sum();
        prop_assert_eq!(total, hits);
    }

    /// Expiry is total: after expire(t ≥ all hard timeouts), no timed rule
    /// survives, and expire never removes a rule with no timeout.
    #[test]
    fn expiry_respects_timeouts(
        timeouts in collection::vec(option::of(1u64..100), 1..20),
    ) {
        let mut table = FlowTable::new();
        let mut timed = 0usize;
        for (i, t) in timeouts.iter().enumerate() {
            let mut e = FlowEntry::new(
                FlowMatch::new().with_in_port(PortNo::new(i as u16)),
                vec![Action::Output(PortNo::new(1))],
            );
            if let Some(secs) = t {
                e = e.with_hard_timeout(Duration::from_secs(*secs));
                timed += 1;
            }
            table.insert(e, SimTime::ZERO);
        }
        let total = table.len();
        let removed = table.expire(SimTime::from_secs(200));
        prop_assert_eq!(removed.len(), timed);
        prop_assert_eq!(table.len(), total - timed);
    }
}

// ---------- wire codec ----------

use openflow::wire;
use openflow::{FlowModCommand, OfMessage, Xid};
use sdn_types::{IpAddr, MacAddr as Mac};

fn arb_full_match() -> impl Strategy<Value = FlowMatch> {
    (
        option::of(0u16..0xff00),
        option::of(any::<[u8; 6]>()),
        option::of(any::<[u8; 6]>()),
        option::of(any::<u16>()),
        option::of(any::<[u8; 4]>()),
        option::of(any::<[u8; 4]>()),
        option::of(any::<u8>()),
        option::of(any::<u16>()),
        option::of(any::<u16>()),
    )
        .prop_map(
            |(in_port, src, dst, et, ip_s, ip_d, proto, l4s, l4d)| FlowMatch {
                in_port: in_port.map(PortNo::new),
                eth_src: src.map(Mac::new),
                eth_dst: dst.map(Mac::new),
                ethertype: et,
                ip_src: ip_s.map(IpAddr::from),
                ip_dst: ip_d.map(IpAddr::from),
                ip_proto: proto,
                l4_src: l4s,
                l4_dst: l4d,
            },
        )
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    collection::vec(
        prop_oneof![
            (0u16..0xff00).prop_map(|p| Action::Output(PortNo::new(p))),
            any::<[u8; 6]>().prop_map(|m| Action::SetEthSrc(Mac::new(m))),
            any::<[u8; 6]>().prop_map(|m| Action::SetEthDst(Mac::new(m))),
            any::<[u8; 4]>().prop_map(|ip| Action::SetIpSrc(IpAddr::from(ip))),
            any::<[u8; 4]>().prop_map(|ip| Action::SetIpDst(IpAddr::from(ip))),
        ],
        0..5,
    )
}

tm_prop! {
    /// Any FlowMod survives the OpenFlow 1.0 binary wire format.
    #[test]
    fn wire_flow_mod_round_trips(
        xid in any::<u32>(),
        m in arb_full_match(),
        actions in arb_actions(),
        priority in any::<u16>(),
        idle in any::<u16>(),
        hard in any::<u16>(),
        cookie in any::<u64>(),
        delete in any::<bool>(),
    ) {
        let msg = OfMessage::FlowMod {
            command: if delete { FlowModCommand::Delete } else { FlowModCommand::Add },
            flow_match: m,
            priority,
            idle_timeout_secs: idle,
            hard_timeout_secs: hard,
            actions,
            cookie,
        };
        let bytes = wire::encode(Xid(u64::from(xid)), &msg);
        let (got_xid, decoded) = wire::decode(&bytes).expect("round trip");
        prop_assert_eq!(got_xid, Xid(u64::from(xid)));
        prop_assert_eq!(decoded, msg);
    }

    /// PacketIn/PacketOut data payloads survive byte-exactly.
    #[test]
    fn wire_packet_messages_round_trip(
        data in collection::vec(any::<u8>(), 0..256),
        in_port in 0u16..0xff00,
        actions in arb_actions(),
    ) {
        let pin = OfMessage::PacketIn {
            in_port: PortNo::new(in_port),
            reason: openflow::PacketInReason::NoMatch,
            data: data.clone(),
        };
        let (_, decoded) = wire::decode(&wire::encode(Xid(1), &pin)).expect("packet-in");
        prop_assert_eq!(decoded, pin);

        let pout = OfMessage::PacketOut {
            in_port: PortNo::new(in_port),
            actions,
            data,
        };
        let (_, decoded) = wire::decode(&wire::encode(Xid(2), &pout)).expect("packet-out");
        prop_assert_eq!(decoded, pout);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn wire_decoder_is_total(bytes in collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&bytes);
    }
}
