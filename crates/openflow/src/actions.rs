//! OpenFlow actions.

use sdn_types::packet::{EthernetFrame, Payload};
use sdn_types::{IpAddr, MacAddr, PortNo};

/// An action applied to a matched packet. An empty action list drops the
/// packet (OpenFlow 1.0 semantics).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Forward out of a port (physical or reserved: FLOOD, CONTROLLER, ...).
    Output(PortNo),
    /// Rewrite the Ethernet source address.
    SetEthSrc(MacAddr),
    /// Rewrite the Ethernet destination address.
    SetEthDst(MacAddr),
    /// Rewrite the IPv4 source address (no-op for non-IPv4).
    SetIpSrc(IpAddr),
    /// Rewrite the IPv4 destination address (no-op for non-IPv4).
    SetIpDst(IpAddr),
}

impl Action {
    /// Applies header-rewrite actions to `frame` in place. `Output` is a
    /// forwarding directive and leaves the frame unchanged.
    pub fn apply(&self, frame: &mut EthernetFrame) {
        match self {
            Action::Output(_) => {}
            Action::SetEthSrc(mac) => frame.src = *mac,
            Action::SetEthDst(mac) => frame.dst = *mac,
            Action::SetIpSrc(ip) => {
                if let Payload::Ipv4(pkt) = &mut frame.payload {
                    pkt.src = *ip;
                }
            }
            Action::SetIpDst(ip) => {
                if let Payload::Ipv4(pkt) = &mut frame.payload {
                    pkt.dst = *ip;
                }
            }
        }
    }
}

/// Applies a rule's action list to `frame`, returning the ports the
/// (possibly rewritten) frame must be emitted on.
pub(crate) fn apply_actions(actions: &[Action], frame: &mut EthernetFrame) -> Vec<PortNo> {
    let mut outputs = Vec::new();
    for action in actions {
        action.apply(frame);
        if let Action::Output(port) = action {
            outputs.push(*port);
        }
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_types::packet::{IcmpPacket, Ipv4Packet, Transport};

    fn frame() -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::new([1; 6]),
            MacAddr::new([2; 6]),
            Payload::Ipv4(Ipv4Packet::new(
                IpAddr::new(10, 0, 0, 1),
                IpAddr::new(10, 0, 0, 2),
                Transport::Icmp(IcmpPacket::echo_request(1, 1, vec![])),
            )),
        )
    }

    #[test]
    fn rewrites_apply() {
        let mut f = frame();
        Action::SetEthSrc(MacAddr::new([9; 6])).apply(&mut f);
        Action::SetIpDst(IpAddr::new(10, 0, 0, 9)).apply(&mut f);
        assert_eq!(f.src, MacAddr::new([9; 6]));
        assert_eq!(f.ipv4().unwrap().dst, IpAddr::new(10, 0, 0, 9));
    }

    #[test]
    fn ip_rewrite_noop_on_non_ip() {
        let mut f = EthernetFrame::new(
            MacAddr::new([1; 6]),
            MacAddr::new([2; 6]),
            Payload::Opaque {
                ethertype: 0x1234,
                data: vec![],
            },
        );
        Action::SetIpSrc(IpAddr::new(1, 2, 3, 4)).apply(&mut f);
        assert!(f.ipv4().is_none());
    }

    #[test]
    fn apply_actions_collects_outputs_in_order() {
        let mut f = frame();
        let out = apply_actions(
            &[
                Action::SetEthDst(MacAddr::new([7; 6])),
                Action::Output(PortNo::new(1)),
                Action::Output(PortNo::new(2)),
            ],
            &mut f,
        );
        assert_eq!(out, vec![PortNo::new(1), PortNo::new(2)]);
        assert_eq!(f.dst, MacAddr::new([7; 6]));
    }

    #[test]
    fn empty_actions_drop() {
        let mut f = frame();
        assert!(apply_actions(&[], &mut f).is_empty());
    }
}
