//! OpenFlow 1.0 binary wire encoding.
//!
//! The simulator passes [`crate::OfMessage`] values in memory,
//! but a controller library is only complete if it can speak the actual
//! protocol. This module implements the OpenFlow 1.0 (wire version `0x01`)
//! binary format for the message subset the workspace uses:
//!
//! `HELLO`, `ECHO_REQUEST`/`ECHO_REPLY`, `FEATURES_REQUEST`/`FEATURES_REPLY`,
//! `PACKET_IN`, `PACKET_OUT`, `FLOW_MOD`, `FLOW_REMOVED`, `PORT_STATUS`,
//! and `STATS_REQUEST`/`STATS_REPLY` (flow + port statistics).
//!
//! Every message round-trips: `decode(encode(m)) == m` (up to the
//! simulator-side `observed_at` diagnostic on `PortStatus`, which has no
//! wire representation and decodes as zero). Unknown or malformed bytes
//! decode to an error, never a panic — verified by fuzz-style property
//! tests.

use sdn_types::buf::BytesMut;

use sdn_types::{IpAddr, MacAddr, ParseError, PortNo, SimTime};

use crate::messages::{
    FlowModCommand, FlowRemovedReason, FlowStatsEntry, OfMessage, PacketInReason, PortStatsEntry,
    PortStatusReason, Xid,
};
use crate::{Action, FlowMatch, PortDesc, PortLinkState};

/// The OpenFlow wire version this codec speaks.
pub const OFP_VERSION: u8 = 0x01;

// Message type codes (OpenFlow 1.0 §5.1).
mod msg_type {
    pub const HELLO: u8 = 0;
    pub const ECHO_REQUEST: u8 = 2;
    pub const ECHO_REPLY: u8 = 3;
    pub const FEATURES_REQUEST: u8 = 5;
    pub const FEATURES_REPLY: u8 = 6;
    pub const PACKET_IN: u8 = 10;
    pub const FLOW_REMOVED: u8 = 11;
    pub const PORT_STATUS: u8 = 12;
    pub const PACKET_OUT: u8 = 13;
    pub const FLOW_MOD: u8 = 14;
    pub const STATS_REQUEST: u8 = 16;
    pub const STATS_REPLY: u8 = 17;
}

// ofp_flow_wildcards bits (OpenFlow 1.0 §5.2.3).
mod wildcard {
    pub const IN_PORT: u32 = 1 << 0;
    pub const DL_VLAN: u32 = 1 << 1;
    pub const DL_SRC: u32 = 1 << 2;
    pub const DL_DST: u32 = 1 << 3;
    pub const DL_TYPE: u32 = 1 << 4;
    pub const NW_PROTO: u32 = 1 << 5;
    pub const TP_SRC: u32 = 1 << 6;
    pub const TP_DST: u32 = 1 << 7;
    pub const NW_SRC_ALL: u32 = 32 << 8;
    pub const NW_DST_ALL: u32 = 32 << 14;
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    pub const NW_TOS: u32 = 1 << 21;
}

// ofp_action_type codes.
mod action_type {
    pub const OUTPUT: u16 = 0;
    pub const SET_DL_SRC: u16 = 4;
    pub const SET_DL_DST: u16 = 5;
    pub const SET_NW_SRC: u16 = 6;
    pub const SET_NW_DST: u16 = 7;
}

// ofp_stats_types.
const STATS_FLOW: u16 = 1;
const STATS_PORT: u16 = 4;

const HEADER_LEN: usize = 8;

const PHY_PORT_LEN: usize = 48;

/// Encodes `msg` (with transaction id `xid`) to OpenFlow 1.0 wire bytes.
pub fn encode(xid: Xid, msg: &OfMessage) -> Vec<u8> {
    let mut body = BytesMut::new();
    let (ty, xid) = match msg {
        OfMessage::Hello => (msg_type::HELLO, xid),
        OfMessage::EchoRequest { xid, payload } => {
            body.put_u64(*payload);
            (msg_type::ECHO_REQUEST, *xid)
        }
        OfMessage::EchoReply { xid, payload } => {
            body.put_u64(*payload);
            (msg_type::ECHO_REPLY, *xid)
        }
        OfMessage::FeaturesRequest => (msg_type::FEATURES_REQUEST, xid),
        OfMessage::FeaturesReply { dpid, ports } => {
            body.put_u64(dpid.raw());
            body.put_u32(256); // n_buffers
            body.put_u8(1); // n_tables
            body.put_slice(&[0; 3]); // pad
            body.put_u32(0); // capabilities
            body.put_u32(0xfff); // actions bitmap
            for p in ports {
                encode_phy_port(&mut body, p);
            }
            (msg_type::FEATURES_REPLY, xid)
        }
        OfMessage::PacketIn {
            in_port,
            reason,
            data,
        } => {
            body.put_u32(u32::MAX); // buffer_id: none (full packet included)
            debug_assert!(
                data.len() <= usize::from(u16::MAX),
                "PacketIn data fits total_len"
            );
            body.put_u16(data.len() as u16);
            body.put_u16(in_port.raw());
            body.put_u8(match reason {
                PacketInReason::NoMatch => 0,
                PacketInReason::Action => 1,
            });
            body.put_u8(0); // pad
            body.put_slice(data);
            (msg_type::PACKET_IN, xid)
        }
        OfMessage::PacketOut {
            in_port,
            actions,
            data,
        } => {
            body.put_u32(u32::MAX); // buffer_id: none
            body.put_u16(in_port.raw());
            let mut acts = BytesMut::new();
            for a in actions {
                encode_action(&mut acts, a);
            }
            debug_assert!(
                acts.len() <= usize::from(u16::MAX),
                "actions fit the length field"
            );
            body.put_u16(acts.len() as u16);
            body.put_slice(&acts);
            body.put_slice(data);
            (msg_type::PACKET_OUT, xid)
        }
        OfMessage::FlowMod {
            command,
            flow_match,
            priority,
            idle_timeout_secs,
            hard_timeout_secs,
            actions,
            cookie,
        } => {
            encode_match(&mut body, flow_match);
            body.put_u64(*cookie);
            body.put_u16(match command {
                FlowModCommand::Add => 0,
                FlowModCommand::Delete => 3,
            });
            body.put_u16(*idle_timeout_secs);
            body.put_u16(*hard_timeout_secs);
            body.put_u16(*priority);
            body.put_u32(u32::MAX); // buffer_id
            body.put_u16(PortNo::NONE.raw()); // out_port
            body.put_u16(1); // flags: OFPFF_SEND_FLOW_REM
            for a in actions {
                encode_action(&mut body, a);
            }
            (msg_type::FLOW_MOD, xid)
        }
        OfMessage::FlowRemoved {
            flow_match,
            priority,
            reason,
            packet_count,
            byte_count,
        } => {
            encode_match(&mut body, flow_match);
            body.put_u64(0); // cookie
            body.put_u16(*priority);
            body.put_u8(match reason {
                FlowRemovedReason::IdleTimeout => 0,
                FlowRemovedReason::HardTimeout => 1,
                FlowRemovedReason::Delete => 2,
            });
            body.put_u8(0); // pad
            body.put_u32(0); // duration_sec
            body.put_u32(0); // duration_nsec
            body.put_u16(0); // idle_timeout
            body.put_slice(&[0; 2]); // pad
            body.put_u64(*packet_count);
            body.put_u64(*byte_count);
            (msg_type::FLOW_REMOVED, xid)
        }
        OfMessage::PortStatus { reason, desc, .. } => {
            body.put_u8(match reason {
                PortStatusReason::Add => 0,
                PortStatusReason::Delete => 1,
                PortStatusReason::Modify => 2,
            });
            body.put_slice(&[0; 7]); // pad
            encode_phy_port(&mut body, desc);
            (msg_type::PORT_STATUS, xid)
        }
        OfMessage::FlowStatsRequest { xid } => {
            body.put_u16(STATS_FLOW);
            body.put_u16(0); // flags
            encode_match(&mut body, &FlowMatch::new());
            body.put_u8(0xff); // table_id: all
            body.put_u8(0); // pad
            body.put_u16(PortNo::NONE.raw()); // out_port
            (msg_type::STATS_REQUEST, *xid)
        }
        OfMessage::PortStatsRequest { xid } => {
            body.put_u16(STATS_PORT);
            body.put_u16(0);
            body.put_u16(PortNo::NONE.raw());
            body.put_slice(&[0; 6]); // pad
            (msg_type::STATS_REQUEST, *xid)
        }
        OfMessage::FlowStatsReply { xid, flows } => {
            body.put_u16(STATS_FLOW);
            body.put_u16(0);
            for f in flows {
                encode_flow_stats(&mut body, f);
            }
            (msg_type::STATS_REPLY, *xid)
        }
        OfMessage::PortStatsReply { xid, ports } => {
            body.put_u16(STATS_PORT);
            body.put_u16(0);
            for p in ports {
                encode_port_stats(&mut body, p);
            }
            (msg_type::STATS_REPLY, *xid)
        }
    };

    debug_assert!(
        HEADER_LEN + body.len() <= usize::from(u16::MAX),
        "message fits header length"
    );
    debug_assert!(
        xid.0 <= u64::from(u32::MAX),
        "xid fits the 32-bit wire field"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.push(OFP_VERSION);
    out.push(ty);
    out.extend_from_slice(&((HEADER_LEN + body.len()) as u16).to_be_bytes());
    out.extend_from_slice(&(xid.0 as u32).to_be_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decodes one OpenFlow 1.0 message, returning its transaction id and the
/// parsed message.
pub fn decode(bytes: &[u8]) -> Result<(Xid, OfMessage), ParseError> {
    if bytes.len() < HEADER_LEN {
        return Err(ParseError::truncated("OfMessage", HEADER_LEN, bytes.len()));
    }
    if bytes[0] != OFP_VERSION {
        return Err(ParseError::bad_field("OfMessage", "unsupported version"));
    }
    let ty = bytes[1];
    let length = usize::from(u16::from_be_bytes([bytes[2], bytes[3]]));
    if length < HEADER_LEN || length > bytes.len() {
        return Err(ParseError::bad_field("OfMessage", "bad length"));
    }
    let xid = Xid(u64::from(u32::from_be_bytes([
        bytes[4], bytes[5], bytes[6], bytes[7],
    ])));
    let body = &bytes[HEADER_LEN..length];
    let mut r = Reader::new(body);

    let msg = match ty {
        msg_type::HELLO => OfMessage::Hello,
        msg_type::ECHO_REQUEST => OfMessage::EchoRequest {
            xid,
            payload: r.u64()?,
        },
        msg_type::ECHO_REPLY => OfMessage::EchoReply {
            xid,
            payload: r.u64()?,
        },
        msg_type::FEATURES_REQUEST => OfMessage::FeaturesRequest,
        msg_type::FEATURES_REPLY => {
            let dpid = sdn_types::DatapathId::new(r.u64()?);
            r.skip(4 + 1 + 3 + 4 + 4)?;
            let mut ports = Vec::new();
            while r.remaining() >= PHY_PORT_LEN {
                ports.push(decode_phy_port(&mut r)?);
            }
            OfMessage::FeaturesReply { dpid, ports }
        }
        msg_type::PACKET_IN => {
            let _buffer_id = r.u32()?;
            let total_len = usize::from(r.u16()?);
            let in_port = PortNo::new(r.u16()?);
            let reason = match r.u8()? {
                0 => PacketInReason::NoMatch,
                1 => PacketInReason::Action,
                _ => return Err(ParseError::bad_field("PacketIn", "bad reason")),
            };
            r.skip(1)?;
            let data = r.rest().to_vec();
            if data.len() != total_len {
                return Err(ParseError::bad_field("PacketIn", "length mismatch"));
            }
            OfMessage::PacketIn {
                in_port,
                reason,
                data,
            }
        }
        msg_type::PACKET_OUT => {
            let _buffer_id = r.u32()?;
            let in_port = PortNo::new(r.u16()?);
            let actions_len = usize::from(r.u16()?);
            let mut actions_reader = Reader::new(r.take(actions_len)?);
            let mut actions = Vec::new();
            while actions_reader.remaining() > 0 {
                actions.push(decode_action(&mut actions_reader)?);
            }
            OfMessage::PacketOut {
                in_port,
                actions,
                data: r.rest().to_vec(),
            }
        }
        msg_type::FLOW_MOD => {
            let flow_match = decode_match(&mut r)?;
            let cookie = r.u64()?;
            let command = match r.u16()? {
                0 => FlowModCommand::Add,
                3 => FlowModCommand::Delete,
                _ => return Err(ParseError::bad_field("FlowMod", "unsupported command")),
            };
            let idle_timeout_secs = r.u16()?;
            let hard_timeout_secs = r.u16()?;
            let priority = r.u16()?;
            r.skip(4 + 2 + 2)?;
            let mut actions = Vec::new();
            while r.remaining() > 0 {
                actions.push(decode_action(&mut r)?);
            }
            OfMessage::FlowMod {
                command,
                flow_match,
                priority,
                idle_timeout_secs,
                hard_timeout_secs,
                actions,
                cookie,
            }
        }
        msg_type::FLOW_REMOVED => {
            let flow_match = decode_match(&mut r)?;
            let _cookie = r.u64()?;
            let priority = r.u16()?;
            let reason = match r.u8()? {
                0 => FlowRemovedReason::IdleTimeout,
                1 => FlowRemovedReason::HardTimeout,
                2 => FlowRemovedReason::Delete,
                _ => return Err(ParseError::bad_field("FlowRemoved", "bad reason")),
            };
            r.skip(1 + 4 + 4 + 2 + 2)?;
            let packet_count = r.u64()?;
            let byte_count = r.u64()?;
            OfMessage::FlowRemoved {
                flow_match,
                priority,
                reason,
                packet_count,
                byte_count,
            }
        }
        msg_type::PORT_STATUS => {
            let reason = match r.u8()? {
                0 => PortStatusReason::Add,
                1 => PortStatusReason::Delete,
                2 => PortStatusReason::Modify,
                _ => return Err(ParseError::bad_field("PortStatus", "bad reason")),
            };
            r.skip(7)?;
            let desc = decode_phy_port(&mut r)?;
            OfMessage::PortStatus {
                reason,
                desc,
                observed_at: SimTime::ZERO,
            }
        }
        msg_type::STATS_REQUEST => match r.u16()? {
            STATS_FLOW => OfMessage::FlowStatsRequest { xid },
            STATS_PORT => OfMessage::PortStatsRequest { xid },
            _ => return Err(ParseError::bad_field("StatsRequest", "unsupported type")),
        },
        msg_type::STATS_REPLY => {
            let stats_type = r.u16()?;
            r.skip(2)?; // flags
            match stats_type {
                STATS_FLOW => {
                    let mut flows = Vec::new();
                    while r.remaining() > 0 {
                        flows.push(decode_flow_stats(&mut r)?);
                    }
                    OfMessage::FlowStatsReply { xid, flows }
                }
                STATS_PORT => {
                    let mut ports = Vec::new();
                    while r.remaining() > 0 {
                        ports.push(decode_port_stats(&mut r)?);
                    }
                    OfMessage::PortStatsReply { xid, ports }
                }
                _ => return Err(ParseError::bad_field("StatsReply", "unsupported type")),
            }
        }
        _ => return Err(ParseError::bad_field("OfMessage", "unsupported type")),
    };
    Ok((xid, msg))
}

// ---------- sub-structures ----------

fn encode_match(buf: &mut BytesMut, m: &FlowMatch) {
    let mut wc = 0u32;
    if m.in_port.is_none() {
        wc |= wildcard::IN_PORT;
    }
    wc |= wildcard::DL_VLAN | wildcard::DL_VLAN_PCP | wildcard::NW_TOS;
    if m.eth_src.is_none() {
        wc |= wildcard::DL_SRC;
    }
    if m.eth_dst.is_none() {
        wc |= wildcard::DL_DST;
    }
    if m.ethertype.is_none() {
        wc |= wildcard::DL_TYPE;
    }
    if m.ip_proto.is_none() {
        wc |= wildcard::NW_PROTO;
    }
    if m.l4_src.is_none() {
        wc |= wildcard::TP_SRC;
    }
    if m.l4_dst.is_none() {
        wc |= wildcard::TP_DST;
    }
    if m.ip_src.is_none() {
        wc |= wildcard::NW_SRC_ALL;
    }
    if m.ip_dst.is_none() {
        wc |= wildcard::NW_DST_ALL;
    }
    buf.put_u32(wc);
    buf.put_u16(m.in_port.map(|p| p.raw()).unwrap_or(0));
    buf.put_slice(&m.eth_src.unwrap_or(MacAddr::ZERO).octets());
    buf.put_slice(&m.eth_dst.unwrap_or(MacAddr::ZERO).octets());
    buf.put_u16(0xffff); // dl_vlan: none
    buf.put_u8(0); // dl_vlan_pcp
    buf.put_u8(0); // pad
    buf.put_u16(m.ethertype.unwrap_or(0));
    buf.put_u8(0); // nw_tos
    buf.put_u8(m.ip_proto.unwrap_or(0));
    buf.put_slice(&[0; 2]); // pad
    buf.put_u32(m.ip_src.map(|ip| ip.to_u32()).unwrap_or(0));
    buf.put_u32(m.ip_dst.map(|ip| ip.to_u32()).unwrap_or(0));
    buf.put_u16(m.l4_src.unwrap_or(0));
    buf.put_u16(m.l4_dst.unwrap_or(0));
}

fn decode_match(r: &mut Reader<'_>) -> Result<FlowMatch, ParseError> {
    let wc = r.u32()?;
    let in_port = r.u16()?;
    let eth_src = r.mac()?;
    let eth_dst = r.mac()?;
    r.skip(2 + 1 + 1)?; // vlan, pcp, pad
    let ethertype = r.u16()?;
    r.skip(1)?; // tos
    let ip_proto = r.u8()?;
    r.skip(2)?;
    let ip_src = r.u32()?;
    let ip_dst = r.u32()?;
    let l4_src = r.u16()?;
    let l4_dst = r.u16()?;

    let nw_src_bits = (wc >> 8) & 0x3f;
    let nw_dst_bits = (wc >> 14) & 0x3f;
    Ok(FlowMatch {
        in_port: (wc & wildcard::IN_PORT == 0).then_some(PortNo::new(in_port)),
        eth_src: (wc & wildcard::DL_SRC == 0).then_some(eth_src),
        eth_dst: (wc & wildcard::DL_DST == 0).then_some(eth_dst),
        ethertype: (wc & wildcard::DL_TYPE == 0).then_some(ethertype),
        ip_src: (nw_src_bits < 32).then_some(IpAddr::from_u32(ip_src)),
        ip_dst: (nw_dst_bits < 32).then_some(IpAddr::from_u32(ip_dst)),
        ip_proto: (wc & wildcard::NW_PROTO == 0).then_some(ip_proto),
        l4_src: (wc & wildcard::TP_SRC == 0).then_some(l4_src),
        l4_dst: (wc & wildcard::TP_DST == 0).then_some(l4_dst),
    })
}

fn encode_action(buf: &mut BytesMut, action: &Action) {
    match action {
        Action::Output(port) => {
            buf.put_u16(action_type::OUTPUT);
            buf.put_u16(8);
            buf.put_u16(port.raw());
            buf.put_u16(0xffff); // max_len: send full packet to controller
        }
        Action::SetEthSrc(mac) => {
            buf.put_u16(action_type::SET_DL_SRC);
            buf.put_u16(16);
            buf.put_slice(&mac.octets());
            buf.put_slice(&[0; 6]);
        }
        Action::SetEthDst(mac) => {
            buf.put_u16(action_type::SET_DL_DST);
            buf.put_u16(16);
            buf.put_slice(&mac.octets());
            buf.put_slice(&[0; 6]);
        }
        Action::SetIpSrc(ip) => {
            buf.put_u16(action_type::SET_NW_SRC);
            buf.put_u16(8);
            buf.put_u32(ip.to_u32());
        }
        Action::SetIpDst(ip) => {
            buf.put_u16(action_type::SET_NW_DST);
            buf.put_u16(8);
            buf.put_u32(ip.to_u32());
        }
    }
}

fn decode_action(r: &mut Reader<'_>) -> Result<Action, ParseError> {
    let ty = r.u16()?;
    let len = usize::from(r.u16()?);
    if len < 4 {
        return Err(ParseError::bad_field("Action", "length too small"));
    }
    let mut body = Reader::new(r.take(len - 4)?);
    match ty {
        action_type::OUTPUT => {
            let port = PortNo::new(body.u16()?);
            let _max_len = body.u16()?;
            Ok(Action::Output(port))
        }
        action_type::SET_DL_SRC => Ok(Action::SetEthSrc(body.mac()?)),
        action_type::SET_DL_DST => Ok(Action::SetEthDst(body.mac()?)),
        action_type::SET_NW_SRC => Ok(Action::SetIpSrc(IpAddr::from_u32(body.u32()?))),
        action_type::SET_NW_DST => Ok(Action::SetIpDst(IpAddr::from_u32(body.u32()?))),
        _ => Err(ParseError::bad_field("Action", "unsupported type")),
    }
}

fn encode_phy_port(buf: &mut BytesMut, p: &PortDesc) {
    buf.put_u16(p.port_no.raw());
    buf.put_slice(&p.hw_addr.octets());
    let mut name = [0u8; 16];
    let label = format!("port{}", p.port_no.raw());
    name[..label.len().min(16)].copy_from_slice(&label.as_bytes()[..label.len().min(16)]);
    buf.put_slice(&name);
    buf.put_u32(0); // config
    buf.put_u32(match p.state {
        PortLinkState::Up => 0,
        PortLinkState::Down => 1, // OFPPS_LINK_DOWN
    });
    buf.put_u32(0); // curr
    buf.put_u32(0); // advertised
    buf.put_u32(0); // supported
    buf.put_u32(0); // peer
}

fn decode_phy_port(r: &mut Reader<'_>) -> Result<PortDesc, ParseError> {
    let port_no = PortNo::new(r.u16()?);
    let hw_addr = r.mac()?;
    r.skip(16)?; // name
    r.skip(4)?; // config
    let state = r.u32()?;
    r.skip(16)?; // curr/advertised/supported/peer
    Ok(PortDesc {
        port_no,
        hw_addr,
        state: if state & 1 == 0 {
            PortLinkState::Up
        } else {
            PortLinkState::Down
        },
    })
}

const FLOW_STATS_LEN: usize = 88;

fn encode_flow_stats(buf: &mut BytesMut, f: &FlowStatsEntry) {
    buf.put_u16(FLOW_STATS_LEN as u16);
    buf.put_u8(0); // table_id
    buf.put_u8(0); // pad
    encode_match(buf, &f.flow_match);
    buf.put_u32(0); // duration_sec
    buf.put_u32(0); // duration_nsec
    buf.put_u16(f.priority);
    buf.put_u16(0); // idle_timeout
    buf.put_u16(0); // hard_timeout
    buf.put_slice(&[0; 6]); // pad
    buf.put_u64(0); // cookie
    buf.put_u64(f.packet_count);
    buf.put_u64(f.byte_count);
}

fn decode_flow_stats(r: &mut Reader<'_>) -> Result<FlowStatsEntry, ParseError> {
    let len = usize::from(r.u16()?);
    if len != FLOW_STATS_LEN {
        return Err(ParseError::bad_field(
            "FlowStats",
            "unexpected entry length",
        ));
    }
    r.skip(2)?; // table_id + pad
    let flow_match = decode_match(r)?;
    r.skip(4 + 4)?;
    let priority = r.u16()?;
    r.skip(2 + 2 + 6 + 8)?;
    let packet_count = r.u64()?;
    let byte_count = r.u64()?;
    Ok(FlowStatsEntry {
        flow_match,
        priority,
        packet_count,
        byte_count,
    })
}

fn encode_port_stats(buf: &mut BytesMut, p: &PortStatsEntry) {
    buf.put_u16(p.port_no.raw());
    buf.put_slice(&[0; 6]); // pad
    buf.put_u64(p.rx_packets);
    buf.put_u64(p.tx_packets);
    buf.put_u64(p.rx_bytes);
    buf.put_u64(p.tx_bytes);
    // rx_dropped .. collisions: unused counters.
    for _ in 0..8 {
        buf.put_u64(0);
    }
}

fn decode_port_stats(r: &mut Reader<'_>) -> Result<PortStatsEntry, ParseError> {
    let port_no = PortNo::new(r.u16()?);
    r.skip(6)?;
    let rx_packets = r.u64()?;
    let tx_packets = r.u64()?;
    let rx_bytes = r.u64()?;
    let tx_bytes = r.u64()?;
    r.skip(8 * 8)?;
    Ok(PortStatsEntry {
        port_no,
        rx_packets,
        tx_packets,
        rx_bytes,
        tx_bytes,
    })
}

// ---------- byte reader ----------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        let out = self
            .buf
            .get(self.pos..self.pos.saturating_add(n))
            .ok_or_else(|| ParseError::truncated("OfMessage", n, self.remaining()))?;
        self.pos += n;
        Ok(out)
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    fn skip(&mut self, n: usize) -> Result<(), ParseError> {
        self.take(n).map(|_| ())
    }

    fn u8(&mut self) -> Result<u8, ParseError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ParseError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ParseError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ParseError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn mac(&mut self) -> Result<MacAddr, ParseError> {
        let b = self.take(6)?;
        Ok(MacAddr::from([b[0], b[1], b[2], b[3], b[4], b[5]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_types::DatapathId;

    fn round_trip(msg: OfMessage) {
        let wire = encode(Xid(42), &msg);
        let (xid, decoded) = decode(&wire).expect("decodes");
        assert_eq!(xid, Xid(42));
        // PortStatus loses its simulator-side timestamp on the wire.
        let expected = match msg {
            OfMessage::PortStatus { reason, desc, .. } => OfMessage::PortStatus {
                reason,
                desc,
                observed_at: SimTime::ZERO,
            },
            other => other,
        };
        assert_eq!(decoded, expected);
    }

    #[test]
    fn header_is_openflow_1_0() {
        let wire = encode(Xid(7), &OfMessage::Hello);
        assert_eq!(wire[0], 0x01);
        assert_eq!(wire[1], msg_type::HELLO);
        assert_eq!(u16::from_be_bytes([wire[2], wire[3]]), 8);
        assert_eq!(u32::from_be_bytes([wire[4], wire[5], wire[6], wire[7]]), 7);
    }

    #[test]
    fn control_messages_round_trip() {
        round_trip(OfMessage::Hello);
        round_trip(OfMessage::EchoRequest {
            xid: Xid(42),
            payload: 0xdead_beef,
        });
        round_trip(OfMessage::EchoReply {
            xid: Xid(42),
            payload: 1,
        });
        round_trip(OfMessage::FeaturesRequest);
    }

    #[test]
    fn features_reply_round_trips() {
        round_trip(OfMessage::FeaturesReply {
            dpid: DatapathId::new(0xabc),
            ports: vec![
                PortDesc {
                    port_no: PortNo::new(1),
                    hw_addr: MacAddr::from_index(1),
                    state: PortLinkState::Up,
                },
                PortDesc {
                    port_no: PortNo::new(2),
                    hw_addr: MacAddr::from_index(2),
                    state: PortLinkState::Down,
                },
            ],
        });
    }

    #[test]
    fn packet_in_and_out_round_trip() {
        round_trip(OfMessage::PacketIn {
            in_port: PortNo::new(3),
            reason: PacketInReason::NoMatch,
            data: vec![1, 2, 3, 4, 5],
        });
        round_trip(OfMessage::PacketOut {
            in_port: PortNo::NONE,
            actions: vec![
                Action::SetEthDst(MacAddr::from_index(9)),
                Action::Output(PortNo::FLOOD),
            ],
            data: vec![9; 60],
        });
    }

    #[test]
    fn flow_mod_round_trips_with_full_match() {
        round_trip(OfMessage::FlowMod {
            command: FlowModCommand::Add,
            flow_match: FlowMatch::new()
                .with_in_port(PortNo::new(1))
                .with_eth_src(MacAddr::from_index(1))
                .with_eth_dst(MacAddr::from_index(2))
                .with_ethertype(0x0800)
                .with_ip_src(IpAddr::new(10, 0, 0, 1))
                .with_ip_dst(IpAddr::new(10, 0, 0, 2))
                .with_ip_proto(6)
                .with_l4_dst(80),
            priority: 1234,
            idle_timeout_secs: 5,
            hard_timeout_secs: 60,
            actions: vec![Action::Output(PortNo::new(2))],
            cookie: 0x1122_3344,
        });
    }

    #[test]
    fn wildcard_match_round_trips() {
        round_trip(OfMessage::FlowMod {
            command: FlowModCommand::Delete,
            flow_match: FlowMatch::new(),
            priority: 0,
            idle_timeout_secs: 0,
            hard_timeout_secs: 0,
            actions: vec![],
            cookie: 0,
        });
    }

    #[test]
    fn flow_removed_and_port_status_round_trip() {
        round_trip(OfMessage::FlowRemoved {
            flow_match: FlowMatch::new().with_eth_dst(MacAddr::from_index(4)),
            priority: 7,
            reason: FlowRemovedReason::IdleTimeout,
            packet_count: 100,
            byte_count: 6400,
        });
        round_trip(OfMessage::PortStatus {
            reason: PortStatusReason::Modify,
            desc: PortDesc {
                port_no: PortNo::new(5),
                hw_addr: MacAddr::from_index(5),
                state: PortLinkState::Down,
            },
            observed_at: SimTime::from_millis(123),
        });
    }

    #[test]
    fn stats_round_trip() {
        round_trip(OfMessage::FlowStatsRequest { xid: Xid(42) });
        round_trip(OfMessage::PortStatsRequest { xid: Xid(42) });
        round_trip(OfMessage::FlowStatsReply {
            xid: Xid(42),
            flows: vec![FlowStatsEntry {
                flow_match: FlowMatch::new().with_eth_src(MacAddr::from_index(1)),
                priority: 10,
                packet_count: 55,
                byte_count: 5500,
            }],
        });
        round_trip(OfMessage::PortStatsReply {
            xid: Xid(42),
            ports: vec![PortStatsEntry {
                port_no: PortNo::new(1),
                rx_packets: 1,
                tx_packets: 2,
                rx_bytes: 3,
                tx_bytes: 4,
            }],
        });
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert!(decode(&[]).is_err());
        assert!(
            decode(&[0x04, 0, 0, 8, 0, 0, 0, 0]).is_err(),
            "wrong version"
        );
        assert!(
            decode(&[0x01, 99, 0, 8, 0, 0, 0, 0]).is_err(),
            "unknown type"
        );
        assert!(decode(&[0x01, 0, 0, 99, 0, 0, 0, 0]).is_err(), "bad length");
    }
}
