//! The OpenFlow 1.0 match structure (wildcard-based).

use sdn_types::packet::{EthernetFrame, Payload, Transport};
use sdn_types::{IpAddr, MacAddr, PortNo};

/// A flow match: each field is optional, `None` meaning wildcarded.
///
/// Matching follows OpenFlow 1.0 semantics: a packet matches if every
/// specified field equals the packet's corresponding header value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct FlowMatch {
    /// Ingress port.
    pub in_port: Option<PortNo>,
    /// Ethernet source address.
    pub eth_src: Option<MacAddr>,
    /// Ethernet destination address.
    pub eth_dst: Option<MacAddr>,
    /// EtherType.
    pub ethertype: Option<u16>,
    /// IPv4 source address.
    pub ip_src: Option<IpAddr>,
    /// IPv4 destination address.
    pub ip_dst: Option<IpAddr>,
    /// IP protocol number.
    pub ip_proto: Option<u8>,
    /// TCP/UDP source port.
    pub l4_src: Option<u16>,
    /// TCP/UDP destination port.
    pub l4_dst: Option<u16>,
}

impl FlowMatch {
    /// The fully-wildcarded match (matches every packet).
    pub fn new() -> Self {
        FlowMatch::default()
    }

    /// Restricts to packets arriving on `port`.
    pub fn with_in_port(mut self, port: PortNo) -> Self {
        self.in_port = Some(port);
        self
    }

    /// Restricts to the given Ethernet source.
    pub fn with_eth_src(mut self, mac: MacAddr) -> Self {
        self.eth_src = Some(mac);
        self
    }

    /// Restricts to the given Ethernet destination.
    pub fn with_eth_dst(mut self, mac: MacAddr) -> Self {
        self.eth_dst = Some(mac);
        self
    }

    /// Restricts to the given EtherType.
    pub fn with_ethertype(mut self, ethertype: u16) -> Self {
        self.ethertype = Some(ethertype);
        self
    }

    /// Restricts to the given IPv4 source.
    pub fn with_ip_src(mut self, ip: IpAddr) -> Self {
        self.ip_src = Some(ip);
        self
    }

    /// Restricts to the given IPv4 destination.
    pub fn with_ip_dst(mut self, ip: IpAddr) -> Self {
        self.ip_dst = Some(ip);
        self
    }

    /// Restricts to the given IP protocol.
    pub fn with_ip_proto(mut self, proto: u8) -> Self {
        self.ip_proto = Some(proto);
        self
    }

    /// Restricts to the given L4 destination port.
    pub fn with_l4_dst(mut self, port: u16) -> Self {
        self.l4_dst = Some(port);
        self
    }

    /// Builds the exact match OpenFlow reactive forwarding would install for
    /// `frame` arriving on `in_port`: src/dst MACs, EtherType, and (for
    /// IPv4) addresses and protocol.
    pub fn exact_for(frame: &EthernetFrame, in_port: PortNo) -> Self {
        let mut m = FlowMatch::new()
            .with_in_port(in_port)
            .with_eth_src(frame.src)
            .with_eth_dst(frame.dst)
            .with_ethertype(frame.ethertype().0);
        if let Payload::Ipv4(ip) = &frame.payload {
            m = m
                .with_ip_src(ip.src)
                .with_ip_dst(ip.dst)
                .with_ip_proto(ip.transport.protocol().0);
        }
        m
    }

    /// Returns `true` if `frame` arriving on `in_port` matches this entry.
    pub fn matches(&self, frame: &EthernetFrame, in_port: PortNo) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(src) = self.eth_src {
            if src != frame.src {
                return false;
            }
        }
        if let Some(dst) = self.eth_dst {
            if dst != frame.dst {
                return false;
            }
        }
        if let Some(et) = self.ethertype {
            if et != frame.ethertype().0 {
                return false;
            }
        }
        let ip = frame.ipv4();
        if let Some(want) = self.ip_src {
            match ip {
                Some(ip) if ip.src == want => {}
                _ => return false,
            }
        }
        if let Some(want) = self.ip_dst {
            match ip {
                Some(ip) if ip.dst == want => {}
                _ => return false,
            }
        }
        if let Some(want) = self.ip_proto {
            match ip {
                Some(ip) if ip.transport.protocol().0 == want => {}
                _ => return false,
            }
        }
        if self.l4_src.is_some() || self.l4_dst.is_some() {
            let (src_port, dst_port) = match ip.map(|ip| &ip.transport) {
                Some(Transport::Tcp(tcp)) => (tcp.src_port, tcp.dst_port),
                Some(Transport::Udp(udp)) => (udp.src_port, udp.dst_port),
                _ => return false,
            };
            if let Some(want) = self.l4_src {
                if want != src_port {
                    return false;
                }
            }
            if let Some(want) = self.l4_dst {
                if want != dst_port {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if this (wildcard) pattern subsumes `other`: every
    /// field specified here is specified in `other` with the same value.
    /// This is OpenFlow 1.0 `DELETE` semantics — a delete pattern removes
    /// every rule it subsumes.
    pub fn subsumes(&self, other: &FlowMatch) -> bool {
        fn covered<T: PartialEq>(pattern: &Option<T>, field: &Option<T>) -> bool {
            match pattern {
                None => true,
                Some(want) => field.as_ref() == Some(want),
            }
        }
        covered(&self.in_port, &other.in_port)
            && covered(&self.eth_src, &other.eth_src)
            && covered(&self.eth_dst, &other.eth_dst)
            && covered(&self.ethertype, &other.ethertype)
            && covered(&self.ip_src, &other.ip_src)
            && covered(&self.ip_dst, &other.ip_dst)
            && covered(&self.ip_proto, &other.ip_proto)
            && covered(&self.l4_src, &other.l4_src)
            && covered(&self.l4_dst, &other.l4_dst)
    }

    /// Number of specified (non-wildcard) fields — a specificity measure
    /// used for diagnostics.
    pub fn specificity(&self) -> u32 {
        self.in_port.is_some() as u32
            + self.eth_src.is_some() as u32
            + self.eth_dst.is_some() as u32
            + self.ethertype.is_some() as u32
            + self.ip_src.is_some() as u32
            + self.ip_dst.is_some() as u32
            + self.ip_proto.is_some() as u32
            + self.l4_src.is_some() as u32
            + self.l4_dst.is_some() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_types::packet::{ArpPacket, IcmpPacket, Ipv4Packet, TcpSegment};

    fn icmp_frame() -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::new([1; 6]),
            MacAddr::new([2; 6]),
            Payload::Ipv4(Ipv4Packet::new(
                IpAddr::new(10, 0, 0, 1),
                IpAddr::new(10, 0, 0, 2),
                Transport::Icmp(IcmpPacket::echo_request(1, 1, vec![])),
            )),
        )
    }

    fn tcp_frame(dst_port: u16) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::new([1; 6]),
            MacAddr::new([2; 6]),
            Payload::Ipv4(Ipv4Packet::new(
                IpAddr::new(10, 0, 0, 1),
                IpAddr::new(10, 0, 0, 2),
                Transport::Tcp(TcpSegment::syn(40000, dst_port, 1)),
            )),
        )
    }

    #[test]
    fn wildcard_matches_everything() {
        let m = FlowMatch::new();
        assert!(m.matches(&icmp_frame(), PortNo::new(1)));
        assert!(m.matches(&tcp_frame(80), PortNo::new(9)));
    }

    #[test]
    fn in_port_is_checked() {
        let m = FlowMatch::new().with_in_port(PortNo::new(1));
        assert!(m.matches(&icmp_frame(), PortNo::new(1)));
        assert!(!m.matches(&icmp_frame(), PortNo::new(2)));
    }

    #[test]
    fn mac_fields_are_checked() {
        let m = FlowMatch::new().with_eth_dst(MacAddr::new([2; 6]));
        assert!(m.matches(&icmp_frame(), PortNo::new(1)));
        let m = FlowMatch::new().with_eth_dst(MacAddr::new([9; 6]));
        assert!(!m.matches(&icmp_frame(), PortNo::new(1)));
    }

    #[test]
    fn ip_fields_require_ipv4() {
        let arp = EthernetFrame::new(
            MacAddr::new([1; 6]),
            MacAddr::BROADCAST,
            Payload::Arp(ArpPacket::request(
                MacAddr::new([1; 6]),
                IpAddr::new(10, 0, 0, 1),
                IpAddr::new(10, 0, 0, 2),
            )),
        );
        let m = FlowMatch::new().with_ip_src(IpAddr::new(10, 0, 0, 1));
        assert!(!m.matches(&arp, PortNo::new(1)), "ARP has no IPv4 header");
        assert!(m.matches(&icmp_frame(), PortNo::new(1)));
    }

    #[test]
    fn l4_ports_are_checked() {
        let m = FlowMatch::new().with_l4_dst(80);
        assert!(m.matches(&tcp_frame(80), PortNo::new(1)));
        assert!(!m.matches(&tcp_frame(443), PortNo::new(1)));
        assert!(
            !m.matches(&icmp_frame(), PortNo::new(1)),
            "ICMP has no ports"
        );
    }

    #[test]
    fn exact_for_matches_its_own_frame() {
        let frame = tcp_frame(80);
        let m = FlowMatch::exact_for(&frame, PortNo::new(3));
        assert!(m.matches(&frame, PortNo::new(3)));
        assert!(!m.matches(&frame, PortNo::new(4)));
        assert_eq!(m.specificity(), 7);
    }
}
