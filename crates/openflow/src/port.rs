//! Switch port descriptions.

use sdn_types::{MacAddr, PortNo};

/// The administrative/link state of a switch port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortLinkState {
    /// Link is up and carrying traffic.
    Up,
    /// Link is down (cable unplugged, interface disabled, or — in the Port
    /// Amnesia attack — deliberately bounced by the attacker).
    Down,
}

/// A description of one switch port, as carried in FeaturesReply and
/// PortStatus messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PortDesc {
    /// The port number.
    pub port_no: PortNo,
    /// The port's hardware address.
    pub hw_addr: MacAddr,
    /// Current link state.
    pub state: PortLinkState,
}

impl PortDesc {
    /// Creates an up port description.
    pub fn up(port_no: PortNo, hw_addr: MacAddr) -> Self {
        PortDesc {
            port_no,
            hw_addr,
            state: PortLinkState::Up,
        }
    }

    /// Returns `true` if the link is up.
    pub fn is_up(&self) -> bool {
        self.state == PortLinkState::Up
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_constructor() {
        let desc = PortDesc::up(PortNo::new(1), MacAddr::new([1; 6]));
        assert!(desc.is_up());
        let down = PortDesc {
            state: PortLinkState::Down,
            ..desc
        };
        assert!(!down.is_up());
    }
}
