//! OpenFlow control-channel messages.
//!
//! These are the events the paper's whole analysis revolves around:
//!
//! * `PacketIn` — drives the Host Tracking Service (and is how relayed LLDP
//!   packets reach the controller during link fabrication).
//! * `PortStatus` with reason `Down`/`Up` — the messages an attacker
//!   generates at will to mount Port Amnesia.
//! * `EchoRequest`/`EchoReply` — used by TopoGuard+ to measure per-switch
//!   control-link latency (`T_SW`).
//! * `FlowStats`/`PortStats` — the switch counters SPHINX audits.

use sdn_types::{DatapathId, PortNo, SimTime};

use crate::{Action, FlowMatch, PortDesc};

/// A transaction identifier correlating requests with replies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Xid(pub u64);

/// Why a packet was sent to the controller.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketInReason {
    /// No flow-table entry matched.
    NoMatch,
    /// An explicit `Output(CONTROLLER)` action fired.
    Action,
}

/// Why a PortStatus message was emitted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortStatusReason {
    /// A port was added.
    Add,
    /// A port was removed.
    Delete,
    /// A port's state changed (link up/down).
    Modify,
}

/// FlowMod commands (OpenFlow 1.0 subset).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowModCommand {
    /// Add a new rule.
    Add,
    /// Delete rules matching the given match.
    Delete,
}

/// Why a flow entry was removed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowRemovedReason {
    /// Idle timeout expired.
    IdleTimeout,
    /// Hard timeout expired.
    HardTimeout,
    /// Deleted by a controller FlowMod.
    Delete,
}

/// Per-flow statistics, as returned in a stats reply.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct FlowStatsEntry {
    /// The rule's match.
    pub flow_match: FlowMatch,
    /// The rule's priority.
    pub priority: u16,
    /// Packets that hit the rule.
    pub packet_count: u64,
    /// Bytes that hit the rule.
    pub byte_count: u64,
}

/// Per-port statistics, as returned in a stats reply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PortStatsEntry {
    /// The port.
    pub port_no: PortNo,
    /// Packets received on the port.
    pub rx_packets: u64,
    /// Packets transmitted on the port.
    pub tx_packets: u64,
    /// Bytes received on the port.
    pub rx_bytes: u64,
    /// Bytes transmitted on the port.
    pub tx_bytes: u64,
}

/// An OpenFlow control message, in either direction.
///
/// The `dpid` of the sending/receiving switch travels with the message in
/// the simulator's control-channel envelope, not inside the message itself
/// (matching how a real controller identifies messages by connection).
#[derive(Clone, PartialEq, Debug)]
pub enum OfMessage {
    /// Connection handshake.
    Hello,
    /// Controller-to-switch liveness/latency probe.
    EchoRequest {
        /// Transaction id.
        xid: Xid,
        /// Opaque payload echoed back (TopoGuard+ stores the send time
        /// controller-side, keyed by `xid`).
        payload: u64,
    },
    /// Switch's echo response.
    EchoReply {
        /// Transaction id copied from the request.
        xid: Xid,
        /// Payload copied from the request.
        payload: u64,
    },
    /// Controller requests switch features.
    FeaturesRequest,
    /// Switch describes itself.
    FeaturesReply {
        /// The switch's datapath id.
        dpid: DatapathId,
        /// The switch's ports.
        ports: Vec<PortDesc>,
    },
    /// A dataplane packet forwarded to the controller.
    PacketIn {
        /// The port the packet arrived on.
        in_port: PortNo,
        /// Why it was sent up.
        reason: PacketInReason,
        /// The full packet bytes.
        data: Vec<u8>,
    },
    /// The controller injects a packet into the dataplane.
    PacketOut {
        /// Ingress port for FLOOD semantics ([`PortNo::NONE`] if none).
        in_port: PortNo,
        /// Actions to apply (typically a single `Output`).
        actions: Vec<Action>,
        /// The packet bytes.
        data: Vec<u8>,
    },
    /// The controller modifies the flow table.
    FlowMod {
        /// Add or delete.
        command: FlowModCommand,
        /// The rule's match.
        flow_match: FlowMatch,
        /// The rule's priority (higher wins).
        priority: u16,
        /// Idle timeout in seconds (0 = none).
        idle_timeout_secs: u16,
        /// Hard timeout in seconds (0 = none).
        hard_timeout_secs: u16,
        /// The rule's actions.
        actions: Vec<Action>,
        /// Opaque controller cookie.
        cookie: u64,
    },
    /// A rule was removed from the flow table.
    FlowRemoved {
        /// The removed rule's match.
        flow_match: FlowMatch,
        /// The removed rule's priority.
        priority: u16,
        /// Why it was removed.
        reason: FlowRemovedReason,
        /// Final packet count.
        packet_count: u64,
        /// Final byte count.
        byte_count: u64,
    },
    /// A port's status changed.
    PortStatus {
        /// Add/delete/modify.
        reason: PortStatusReason,
        /// The port's new description.
        desc: PortDesc,
        /// When the switch observed the change (diagnostic; defenses use
        /// their own receive timestamps).
        observed_at: SimTime,
    },
    /// Controller requests flow statistics.
    FlowStatsRequest {
        /// Transaction id.
        xid: Xid,
    },
    /// Switch returns flow statistics.
    FlowStatsReply {
        /// Transaction id copied from the request.
        xid: Xid,
        /// One entry per installed rule.
        flows: Vec<FlowStatsEntry>,
    },
    /// Controller requests port statistics.
    PortStatsRequest {
        /// Transaction id.
        xid: Xid,
    },
    /// Switch returns port statistics.
    PortStatsReply {
        /// Transaction id copied from the request.
        xid: Xid,
        /// One entry per port.
        ports: Vec<PortStatsEntry>,
    },
}

impl OfMessage {
    /// A short name for logging and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            OfMessage::Hello => "Hello",
            OfMessage::EchoRequest { .. } => "EchoRequest",
            OfMessage::EchoReply { .. } => "EchoReply",
            OfMessage::FeaturesRequest => "FeaturesRequest",
            OfMessage::FeaturesReply { .. } => "FeaturesReply",
            OfMessage::PacketIn { .. } => "PacketIn",
            OfMessage::PacketOut { .. } => "PacketOut",
            OfMessage::FlowMod { .. } => "FlowMod",
            OfMessage::FlowRemoved { .. } => "FlowRemoved",
            OfMessage::PortStatus { .. } => "PortStatus",
            OfMessage::FlowStatsRequest { .. } => "FlowStatsRequest",
            OfMessage::FlowStatsReply { .. } => "FlowStatsReply",
            OfMessage::PortStatsRequest { .. } => "PortStatsRequest",
            OfMessage::PortStatsReply { .. } => "PortStatsReply",
        }
    }

    /// Returns `true` for PortStatus messages reporting a link-down — the
    /// profile-reset trigger exploited by Port Amnesia.
    pub fn is_port_down(&self) -> bool {
        matches!(
            self,
            OfMessage::PortStatus {
                reason: PortStatusReason::Modify,
                desc,
                ..
            } if !desc.is_up()
        )
    }

    /// Returns `true` for PortStatus messages reporting a link-up.
    pub fn is_port_up(&self) -> bool {
        matches!(
            self,
            OfMessage::PortStatus {
                reason: PortStatusReason::Modify,
                desc,
                ..
            } if desc.is_up()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortLinkState;
    use sdn_types::MacAddr;

    fn port_status(state: PortLinkState) -> OfMessage {
        OfMessage::PortStatus {
            reason: PortStatusReason::Modify,
            desc: PortDesc {
                port_no: PortNo::new(1),
                hw_addr: MacAddr::new([1; 6]),
                state,
            },
            observed_at: SimTime::ZERO,
        }
    }

    #[test]
    fn port_down_detection() {
        assert!(port_status(PortLinkState::Down).is_port_down());
        assert!(!port_status(PortLinkState::Down).is_port_up());
        assert!(port_status(PortLinkState::Up).is_port_up());
        assert!(!OfMessage::Hello.is_port_down());
    }

    #[test]
    fn add_reason_is_not_modify_down() {
        let msg = OfMessage::PortStatus {
            reason: PortStatusReason::Add,
            desc: PortDesc {
                port_no: PortNo::new(1),
                hw_addr: MacAddr::new([1; 6]),
                state: PortLinkState::Down,
            },
            observed_at: SimTime::ZERO,
        };
        assert!(!msg.is_port_down());
    }

    #[test]
    fn kinds_are_distinct_for_logging() {
        assert_eq!(OfMessage::Hello.kind(), "Hello");
        assert_eq!(
            OfMessage::EchoRequest {
                xid: Xid(1),
                payload: 0
            }
            .kind(),
            "EchoRequest"
        );
    }
}
