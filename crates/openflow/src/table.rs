//! The switch flow table: priority-ordered rules with timeouts and
//! counters.

use std::cmp::Reverse;
use std::collections::btree_map::Entry as BandEntry;
use std::collections::BTreeMap;

use sdn_types::packet::EthernetFrame;
use sdn_types::{Duration, PortNo, SimTime};

use crate::actions::apply_actions;
use crate::messages::{FlowRemovedReason, FlowStatsEntry};
use crate::{Action, FlowMatch};

/// One installed flow rule.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowEntry {
    /// The match guard.
    pub flow_match: FlowMatch,
    /// Priority; higher values are consulted first.
    pub priority: u16,
    /// Actions applied on match (empty = drop).
    pub actions: Vec<Action>,
    /// Idle timeout; rule is evicted after this long without a hit.
    pub idle_timeout: Option<Duration>,
    /// Hard timeout; rule is evicted this long after installation
    /// regardless of traffic.
    pub hard_timeout: Option<Duration>,
    /// Opaque controller cookie.
    pub cookie: u64,
    /// Packets that matched this rule.
    pub packet_count: u64,
    /// Bytes that matched this rule.
    pub byte_count: u64,
    installed_at: SimTime,
    last_hit: SimTime,
}

impl FlowEntry {
    /// Creates a rule with default priority 100 and no timeouts.
    pub fn new(flow_match: FlowMatch, actions: Vec<Action>) -> Self {
        FlowEntry {
            flow_match,
            priority: 100,
            actions,
            idle_timeout: None,
            hard_timeout: None,
            cookie: 0,
            packet_count: 0,
            byte_count: 0,
            installed_at: SimTime::ZERO,
            last_hit: SimTime::ZERO,
        }
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: u16) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the idle timeout.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Sets the hard timeout.
    pub fn with_hard_timeout(mut self, timeout: Duration) -> Self {
        self.hard_timeout = Some(timeout);
        self
    }

    /// Sets the cookie.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    fn expired_reason(&self, now: SimTime) -> Option<FlowRemovedReason> {
        if let Some(hard) = self.hard_timeout {
            if now.since(self.installed_at) >= hard {
                return Some(FlowRemovedReason::HardTimeout);
            }
        }
        if let Some(idle) = self.idle_timeout {
            if now.since(self.last_hit) >= idle {
                return Some(FlowRemovedReason::IdleTimeout);
            }
        }
        None
    }
}

/// A rule evicted from the table, with the reason and final counters —
/// the payload of a FlowRemoved message.
#[derive(Clone, Debug, PartialEq)]
pub struct RemovedFlow {
    /// The evicted rule.
    pub entry: FlowEntry,
    /// Why it was evicted.
    pub reason: FlowRemovedReason,
}

/// The outcome of offering a packet to the table.
#[derive(Clone, Debug, PartialEq)]
pub enum MatchOutcome {
    /// A rule matched; the (possibly rewritten) frame must be emitted on
    /// these ports. An empty list means the rule dropped the packet.
    Forward {
        /// Output ports, in action order.
        ports: Vec<PortNo>,
        /// The frame after rewrite actions.
        frame: EthernetFrame,
    },
    /// No rule matched (table miss) — becomes a PacketIn.
    Miss,
}

/// One priority level: rules in installation order plus a match index so
/// duplicate detection on insert is a lookup, not a scan.
#[derive(Clone, Debug, Default)]
struct Band {
    entries: Vec<FlowEntry>,
    by_match: BTreeMap<FlowMatch, usize>,
}

impl Band {
    /// Drops entries failing `keep`, appending them to `removed` with the
    /// reason `reason_of` yields, and reindexes if anything left.
    fn evict<K, R>(&mut self, removed: &mut Vec<RemovedFlow>, mut keep: K, mut reason_of: R)
    where
        K: FnMut(&FlowEntry) -> bool,
        R: FnMut(&FlowEntry) -> FlowRemovedReason,
    {
        let before = self.entries.len();
        self.entries.retain(|e| {
            if keep(e) {
                true
            } else {
                removed.push(RemovedFlow {
                    entry: e.clone(),
                    reason: reason_of(e),
                });
                false
            }
        });
        if self.entries.len() != before {
            self.by_match = self
                .entries
                .iter()
                .enumerate()
                .map(|(i, e)| (e.flow_match, i))
                .collect();
        }
    }
}

/// A priority-ordered flow table.
///
/// Rules are consulted highest-priority first; among equal priorities the
/// earliest-installed wins (stable order). Internally rules live in
/// per-priority bands (a `BTreeMap` keyed by descending priority), each
/// carrying a match→slot index, so `insert` does two ordered-map lookups
/// instead of the two full-table scans a flat vector needs — the difference
/// between O(log n) and O(n²) when a controller pushes thousands of rules
/// at one priority.
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    bands: BTreeMap<Reverse<u16>, Band>,
    len: usize,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over installed rules in consultation order.
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        self.bands.values().flat_map(|b| b.entries.iter())
    }

    /// Installs `entry` at time `now`. An existing rule with identical match
    /// and priority is replaced in place (counters reset), per OpenFlow
    /// semantics — replacement keeps the rule's consultation slot among its
    /// equal-priority peers.
    pub fn insert(&mut self, mut entry: FlowEntry, now: SimTime) {
        entry.installed_at = now;
        entry.last_hit = now;
        entry.packet_count = 0;
        entry.byte_count = 0;
        let band = self.bands.entry(Reverse(entry.priority)).or_default();
        match band.by_match.entry(entry.flow_match) {
            BandEntry::Occupied(slot) => {
                band.entries[*slot.get()] = entry;
            }
            BandEntry::Vacant(slot) => {
                slot.insert(band.entries.len());
                band.entries.push(entry);
                self.len += 1;
            }
        }
    }

    /// Deletes all rules subsumed by the wildcard pattern `flow_match`
    /// (OpenFlow 1.0 DELETE semantics), returning them in consultation
    /// order.
    pub fn delete(&mut self, flow_match: &FlowMatch) -> Vec<RemovedFlow> {
        let mut removed = Vec::new();
        for band in self.bands.values_mut() {
            band.evict(
                &mut removed,
                |e| !flow_match.subsumes(&e.flow_match),
                |_| FlowRemovedReason::Delete,
            );
        }
        self.finish_eviction(&removed);
        removed
    }

    /// Deletes every rule, returning them (used on switch restart).
    pub fn clear(&mut self) -> Vec<RemovedFlow> {
        let removed = self
            .bands
            .values_mut()
            .flat_map(|b| b.entries.drain(..))
            .map(|entry| RemovedFlow {
                entry,
                reason: FlowRemovedReason::Delete,
            })
            .collect();
        self.bands.clear();
        self.len = 0;
        removed
    }

    /// Offers `frame` (arriving on `in_port` at `now`) to the table.
    ///
    /// On a hit the matched rule's counters and idle timer are updated and
    /// the rewritten frame plus output ports are returned.
    pub fn process(
        &mut self,
        frame: &EthernetFrame,
        in_port: PortNo,
        now: SimTime,
    ) -> MatchOutcome {
        let wire_len = frame.wire_len() as u64;
        for entry in self.bands.values_mut().flat_map(|b| b.entries.iter_mut()) {
            if entry.expired_reason(now).is_some() {
                continue; // expired rules never match; eviction happens in `expire`
            }
            if entry.flow_match.matches(frame, in_port) {
                entry.packet_count += 1;
                entry.byte_count += wire_len;
                entry.last_hit = now;
                let mut rewritten = frame.clone();
                let ports = apply_actions(&entry.actions, &mut rewritten);
                return MatchOutcome::Forward {
                    ports,
                    frame: rewritten,
                };
            }
        }
        MatchOutcome::Miss
    }

    /// Evicts expired rules as of `now`, returning them in consultation
    /// order for FlowRemoved notifications.
    pub fn expire(&mut self, now: SimTime) -> Vec<RemovedFlow> {
        let mut removed = Vec::new();
        for band in self.bands.values_mut() {
            band.evict(
                &mut removed,
                |e| e.expired_reason(now).is_none(),
                // The closure runs only on entries whose expiry is Some.
                |e| e.expired_reason(now).unwrap_or(FlowRemovedReason::Delete),
            );
        }
        self.finish_eviction(&removed);
        removed
    }

    /// Drops now-empty bands and accounts for `removed` entries.
    fn finish_eviction(&mut self, removed: &[RemovedFlow]) {
        self.bands.retain(|_, b| !b.entries.is_empty());
        self.len -= removed.len();
    }

    /// Snapshots per-flow statistics (for a FlowStatsReply).
    pub fn stats(&self) -> Vec<FlowStatsEntry> {
        self.entries()
            .map(|e| FlowStatsEntry {
                flow_match: e.flow_match,
                priority: e.priority,
                packet_count: e.packet_count,
                byte_count: e.byte_count,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_types::packet::Payload;
    use sdn_types::MacAddr;

    fn frame(dst: u8) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::new([1; 6]),
            MacAddr::new([dst; 6]),
            Payload::Opaque {
                ethertype: 0x1234,
                data: vec![0; 50],
            },
        )
    }

    fn out(port: u16) -> Vec<Action> {
        vec![Action::Output(PortNo::new(port))]
    }

    #[test]
    fn miss_on_empty_table() {
        let mut table = FlowTable::new();
        assert_eq!(
            table.process(&frame(2), PortNo::new(1), SimTime::ZERO),
            MatchOutcome::Miss
        );
    }

    #[test]
    fn higher_priority_wins() {
        let mut table = FlowTable::new();
        table.insert(
            FlowEntry::new(FlowMatch::new(), out(1)).with_priority(1),
            SimTime::ZERO,
        );
        table.insert(
            FlowEntry::new(FlowMatch::new().with_eth_dst(MacAddr::new([2; 6])), out(2))
                .with_priority(10),
            SimTime::ZERO,
        );
        match table.process(&frame(2), PortNo::new(9), SimTime::ZERO) {
            MatchOutcome::Forward { ports, .. } => assert_eq!(ports, vec![PortNo::new(2)]),
            other => panic!("expected forward, got {other:?}"),
        }
        // Non-matching dst falls through to the low-priority catch-all.
        match table.process(&frame(3), PortNo::new(9), SimTime::ZERO) {
            MatchOutcome::Forward { ports, .. } => assert_eq!(ports, vec![PortNo::new(1)]),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut table = FlowTable::new();
        table.insert(FlowEntry::new(FlowMatch::new(), out(1)), SimTime::ZERO);
        let f = frame(2);
        let len = f.wire_len() as u64;
        for _ in 0..3 {
            table.process(&f, PortNo::new(1), SimTime::ZERO);
        }
        let stats = table.stats();
        assert_eq!(stats[0].packet_count, 3);
        assert_eq!(stats[0].byte_count, 3 * len);
    }

    #[test]
    fn reinsert_resets_counters() {
        let mut table = FlowTable::new();
        table.insert(FlowEntry::new(FlowMatch::new(), out(1)), SimTime::ZERO);
        table.process(&frame(2), PortNo::new(1), SimTime::ZERO);
        table.insert(
            FlowEntry::new(FlowMatch::new(), out(2)),
            SimTime::from_secs(1),
        );
        assert_eq!(table.len(), 1);
        assert_eq!(table.stats()[0].packet_count, 0);
    }

    #[test]
    fn hard_timeout_expires() {
        let mut table = FlowTable::new();
        table.insert(
            FlowEntry::new(FlowMatch::new(), out(1)).with_hard_timeout(Duration::from_secs(10)),
            SimTime::ZERO,
        );
        assert!(table.expire(SimTime::from_secs(9)).is_empty());
        let removed = table.expire(SimTime::from_secs(10));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::HardTimeout);
        assert!(table.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_hit() {
        let mut table = FlowTable::new();
        table.insert(
            FlowEntry::new(FlowMatch::new(), out(1)).with_idle_timeout(Duration::from_secs(5)),
            SimTime::ZERO,
        );
        // Traffic at t=4 keeps the rule alive past t=5.
        table.process(&frame(2), PortNo::new(1), SimTime::from_secs(4));
        assert!(table.expire(SimTime::from_secs(8)).is_empty());
        // No traffic from t=4 to t=9 -> idle-expired.
        let removed = table.expire(SimTime::from_secs(9));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::IdleTimeout);
    }

    #[test]
    fn expired_rule_does_not_match_before_eviction() {
        let mut table = FlowTable::new();
        table.insert(
            FlowEntry::new(FlowMatch::new(), out(1)).with_hard_timeout(Duration::from_secs(1)),
            SimTime::ZERO,
        );
        assert_eq!(
            table.process(&frame(2), PortNo::new(1), SimTime::from_secs(2)),
            MatchOutcome::Miss
        );
    }

    #[test]
    fn delete_by_match() {
        let mut table = FlowTable::new();
        let m = FlowMatch::new().with_eth_dst(MacAddr::new([2; 6]));
        table.insert(FlowEntry::new(m, out(1)), SimTime::ZERO);
        table.insert(FlowEntry::new(FlowMatch::new(), out(2)), SimTime::ZERO);
        let removed = table.delete(&m);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::Delete);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn rewrite_actions_apply_to_forwarded_frame() {
        let mut table = FlowTable::new();
        table.insert(
            FlowEntry::new(
                FlowMatch::new(),
                vec![
                    Action::SetEthDst(MacAddr::new([9; 6])),
                    Action::Output(PortNo::new(4)),
                ],
            ),
            SimTime::ZERO,
        );
        match table.process(&frame(2), PortNo::new(1), SimTime::ZERO) {
            MatchOutcome::Forward { frame, ports } => {
                assert_eq!(frame.dst, MacAddr::new([9; 6]));
                assert_eq!(ports, vec![PortNo::new(4)]);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn drop_rule_forwards_nowhere() {
        let mut table = FlowTable::new();
        table.insert(FlowEntry::new(FlowMatch::new(), vec![]), SimTime::ZERO);
        match table.process(&frame(2), PortNo::new(1), SimTime::ZERO) {
            MatchOutcome::Forward { ports, .. } => assert!(ports.is_empty()),
            other => panic!("expected forward(drop), got {other:?}"),
        }
    }

    #[test]
    fn consultation_order_is_priority_then_installation() {
        let mut table = FlowTable::new();
        let m = |d: u8| FlowMatch::new().with_eth_dst(MacAddr::new([d; 6]));
        table.insert(FlowEntry::new(m(1), out(1)).with_priority(5), SimTime::ZERO);
        table.insert(FlowEntry::new(m(2), out(2)).with_priority(9), SimTime::ZERO);
        table.insert(FlowEntry::new(m(3), out(3)).with_priority(5), SimTime::ZERO);
        table.insert(FlowEntry::new(m(4), out(4)).with_priority(7), SimTime::ZERO);
        let order: Vec<u16> = table.entries().map(|e| e.priority).collect();
        assert_eq!(order, vec![9, 7, 5, 5]);
        let dsts: Vec<_> = table.entries().map(|e| e.flow_match.eth_dst).collect();
        assert_eq!(
            dsts,
            vec![
                Some(MacAddr::new([2; 6])),
                Some(MacAddr::new([4; 6])),
                Some(MacAddr::new([1; 6])),
                Some(MacAddr::new([3; 6])),
            ]
        );
    }

    #[test]
    fn replace_keeps_the_original_consultation_slot() {
        // Two same-priority catch-alls that both match the test frame:
        // replacing the first must not demote it behind the second.
        let mut table = FlowTable::new();
        let first = FlowMatch::new().with_eth_src(MacAddr::new([1; 6]));
        let second = FlowMatch::new();
        table.insert(FlowEntry::new(first, out(1)), SimTime::ZERO);
        table.insert(FlowEntry::new(second, out(2)), SimTime::ZERO);
        table.insert(FlowEntry::new(first, out(3)), SimTime::from_secs(1));
        assert_eq!(table.len(), 2);
        match table.process(&frame(2), PortNo::new(9), SimTime::from_secs(1)) {
            MatchOutcome::Forward { ports, .. } => assert_eq!(ports, vec![PortNo::new(3)]),
            other => panic!("expected replaced rule to match first, got {other:?}"),
        }
    }

    #[test]
    fn expire_insert_interleaving_preserves_eviction_order_and_index() {
        let mut table = FlowTable::new();
        let m = |d: u8| FlowMatch::new().with_eth_dst(MacAddr::new([d; 6]));
        // Three same-priority rules; the middle one will idle out first.
        table.insert(
            FlowEntry::new(m(1), out(1)).with_idle_timeout(Duration::from_secs(10)),
            SimTime::ZERO,
        );
        table.insert(
            FlowEntry::new(m(2), out(2)).with_idle_timeout(Duration::from_secs(2)),
            SimTime::ZERO,
        );
        table.insert(
            FlowEntry::new(m(3), out(3)).with_hard_timeout(Duration::from_secs(4)),
            SimTime::ZERO,
        );
        let removed = table.expire(SimTime::from_secs(5));
        // Eviction order follows consultation order: m2 (idle) before m3 (hard).
        assert_eq!(
            removed
                .iter()
                .map(|r| (r.entry.flow_match.eth_dst, r.reason))
                .collect::<Vec<_>>(),
            vec![
                (Some(MacAddr::new([2; 6])), FlowRemovedReason::IdleTimeout),
                (Some(MacAddr::new([3; 6])), FlowRemovedReason::HardTimeout),
            ]
        );
        assert_eq!(table.len(), 1);
        // The survivor's index slot must have been rebuilt: replacing it
        // still lands on the survivor, not a stale position.
        table.insert(
            FlowEntry::new(m(1), out(7)).with_idle_timeout(Duration::from_secs(10)),
            SimTime::from_secs(5),
        );
        assert_eq!(table.len(), 1);
        match table.process(&frame(1), PortNo::new(9), SimTime::from_secs(5)) {
            MatchOutcome::Forward { ports, .. } => assert_eq!(ports, vec![PortNo::new(7)]),
            other => panic!("expected replaced survivor, got {other:?}"),
        }
        // Reinstalling an evicted match is a fresh install at the band tail.
        table.insert(FlowEntry::new(m(2), out(8)), SimTime::from_secs(5));
        assert_eq!(table.len(), 2);
        let dsts: Vec<_> = table.entries().map(|e| e.flow_match.eth_dst).collect();
        assert_eq!(
            dsts,
            vec![Some(MacAddr::new([1; 6])), Some(MacAddr::new([2; 6]))]
        );
    }

    #[test]
    fn delete_drops_empty_bands_and_keeps_len_consistent() {
        let mut table = FlowTable::new();
        let m = FlowMatch::new().with_eth_dst(MacAddr::new([2; 6]));
        table.insert(FlowEntry::new(m, out(1)).with_priority(50), SimTime::ZERO);
        table.insert(FlowEntry::new(FlowMatch::new(), out(2)), SimTime::ZERO);
        assert_eq!(table.delete(&m).len(), 1);
        assert_eq!(table.len(), 1);
        // Re-adding at the emptied priority works from scratch.
        table.insert(FlowEntry::new(m, out(3)).with_priority(50), SimTime::ZERO);
        assert_eq!(table.len(), 2);
        assert_eq!(table.entries().count(), 2);
    }

    #[test]
    fn clear_returns_all() {
        let mut table = FlowTable::new();
        table.insert(FlowEntry::new(FlowMatch::new(), out(1)), SimTime::ZERO);
        table.insert(
            FlowEntry::new(FlowMatch::new().with_in_port(PortNo::new(2)), out(2)),
            SimTime::ZERO,
        );
        assert_eq!(table.clear().len(), 2);
        assert!(table.is_empty());
    }
}
