//! The switch flow table: priority-ordered rules with timeouts and
//! counters.

use sdn_types::packet::EthernetFrame;
use sdn_types::{Duration, PortNo, SimTime};

use crate::actions::apply_actions;
use crate::messages::{FlowRemovedReason, FlowStatsEntry};
use crate::{Action, FlowMatch};

/// One installed flow rule.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowEntry {
    /// The match guard.
    pub flow_match: FlowMatch,
    /// Priority; higher values are consulted first.
    pub priority: u16,
    /// Actions applied on match (empty = drop).
    pub actions: Vec<Action>,
    /// Idle timeout; rule is evicted after this long without a hit.
    pub idle_timeout: Option<Duration>,
    /// Hard timeout; rule is evicted this long after installation
    /// regardless of traffic.
    pub hard_timeout: Option<Duration>,
    /// Opaque controller cookie.
    pub cookie: u64,
    /// Packets that matched this rule.
    pub packet_count: u64,
    /// Bytes that matched this rule.
    pub byte_count: u64,
    installed_at: SimTime,
    last_hit: SimTime,
}

impl FlowEntry {
    /// Creates a rule with default priority 100 and no timeouts.
    pub fn new(flow_match: FlowMatch, actions: Vec<Action>) -> Self {
        FlowEntry {
            flow_match,
            priority: 100,
            actions,
            idle_timeout: None,
            hard_timeout: None,
            cookie: 0,
            packet_count: 0,
            byte_count: 0,
            installed_at: SimTime::ZERO,
            last_hit: SimTime::ZERO,
        }
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: u16) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the idle timeout.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = Some(timeout);
        self
    }

    /// Sets the hard timeout.
    pub fn with_hard_timeout(mut self, timeout: Duration) -> Self {
        self.hard_timeout = Some(timeout);
        self
    }

    /// Sets the cookie.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    fn expired_reason(&self, now: SimTime) -> Option<FlowRemovedReason> {
        if let Some(hard) = self.hard_timeout {
            if now.since(self.installed_at) >= hard {
                return Some(FlowRemovedReason::HardTimeout);
            }
        }
        if let Some(idle) = self.idle_timeout {
            if now.since(self.last_hit) >= idle {
                return Some(FlowRemovedReason::IdleTimeout);
            }
        }
        None
    }
}

/// A rule evicted from the table, with the reason and final counters —
/// the payload of a FlowRemoved message.
#[derive(Clone, Debug, PartialEq)]
pub struct RemovedFlow {
    /// The evicted rule.
    pub entry: FlowEntry,
    /// Why it was evicted.
    pub reason: FlowRemovedReason,
}

/// The outcome of offering a packet to the table.
#[derive(Clone, Debug, PartialEq)]
pub enum MatchOutcome {
    /// A rule matched; the (possibly rewritten) frame must be emitted on
    /// these ports. An empty list means the rule dropped the packet.
    Forward {
        /// Output ports, in action order.
        ports: Vec<PortNo>,
        /// The frame after rewrite actions.
        frame: EthernetFrame,
    },
    /// No rule matched (table miss) — becomes a PacketIn.
    Miss,
}

/// A priority-ordered flow table.
///
/// Rules are consulted highest-priority first; among equal priorities the
/// earliest-installed wins (stable order).
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over installed rules in consultation order.
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Installs `entry` at time `now`. An existing rule with identical match
    /// and priority is replaced (counters reset), per OpenFlow semantics.
    pub fn insert(&mut self, mut entry: FlowEntry, now: SimTime) {
        entry.installed_at = now;
        entry.last_hit = now;
        entry.packet_count = 0;
        entry.byte_count = 0;
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.flow_match == entry.flow_match && e.priority == entry.priority)
        {
            *existing = entry;
            return;
        }
        // Insert maintaining descending priority, stable among equals.
        let pos = self
            .entries
            .iter()
            .position(|e| e.priority < entry.priority)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, entry);
    }

    /// Deletes all rules subsumed by the wildcard pattern `flow_match`
    /// (OpenFlow 1.0 DELETE semantics), returning them.
    pub fn delete(&mut self, flow_match: &FlowMatch) -> Vec<RemovedFlow> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if flow_match.subsumes(&e.flow_match) {
                removed.push(RemovedFlow {
                    entry: e.clone(),
                    reason: FlowRemovedReason::Delete,
                });
                false
            } else {
                true
            }
        });
        removed
    }

    /// Deletes every rule, returning them (used on switch restart).
    pub fn clear(&mut self) -> Vec<RemovedFlow> {
        self.entries
            .drain(..)
            .map(|entry| RemovedFlow {
                entry,
                reason: FlowRemovedReason::Delete,
            })
            .collect()
    }

    /// Offers `frame` (arriving on `in_port` at `now`) to the table.
    ///
    /// On a hit the matched rule's counters and idle timer are updated and
    /// the rewritten frame plus output ports are returned.
    pub fn process(
        &mut self,
        frame: &EthernetFrame,
        in_port: PortNo,
        now: SimTime,
    ) -> MatchOutcome {
        let wire_len = frame.wire_len() as u64;
        for entry in &mut self.entries {
            if entry.expired_reason(now).is_some() {
                continue; // expired rules never match; eviction happens in `expire`
            }
            if entry.flow_match.matches(frame, in_port) {
                entry.packet_count += 1;
                entry.byte_count += wire_len;
                entry.last_hit = now;
                let mut rewritten = frame.clone();
                let ports = apply_actions(&entry.actions, &mut rewritten);
                return MatchOutcome::Forward {
                    ports,
                    frame: rewritten,
                };
            }
        }
        MatchOutcome::Miss
    }

    /// Evicts expired rules as of `now`, returning them for FlowRemoved
    /// notifications.
    pub fn expire(&mut self, now: SimTime) -> Vec<RemovedFlow> {
        let mut removed = Vec::new();
        self.entries.retain(|e| match e.expired_reason(now) {
            Some(reason) => {
                removed.push(RemovedFlow {
                    entry: e.clone(),
                    reason,
                });
                false
            }
            None => true,
        });
        removed
    }

    /// Snapshots per-flow statistics (for a FlowStatsReply).
    pub fn stats(&self) -> Vec<FlowStatsEntry> {
        self.entries
            .iter()
            .map(|e| FlowStatsEntry {
                flow_match: e.flow_match,
                priority: e.priority,
                packet_count: e.packet_count,
                byte_count: e.byte_count,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdn_types::packet::Payload;
    use sdn_types::MacAddr;

    fn frame(dst: u8) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::new([1; 6]),
            MacAddr::new([dst; 6]),
            Payload::Opaque {
                ethertype: 0x1234,
                data: vec![0; 50],
            },
        )
    }

    fn out(port: u16) -> Vec<Action> {
        vec![Action::Output(PortNo::new(port))]
    }

    #[test]
    fn miss_on_empty_table() {
        let mut table = FlowTable::new();
        assert_eq!(
            table.process(&frame(2), PortNo::new(1), SimTime::ZERO),
            MatchOutcome::Miss
        );
    }

    #[test]
    fn higher_priority_wins() {
        let mut table = FlowTable::new();
        table.insert(
            FlowEntry::new(FlowMatch::new(), out(1)).with_priority(1),
            SimTime::ZERO,
        );
        table.insert(
            FlowEntry::new(FlowMatch::new().with_eth_dst(MacAddr::new([2; 6])), out(2))
                .with_priority(10),
            SimTime::ZERO,
        );
        match table.process(&frame(2), PortNo::new(9), SimTime::ZERO) {
            MatchOutcome::Forward { ports, .. } => assert_eq!(ports, vec![PortNo::new(2)]),
            other => panic!("expected forward, got {other:?}"),
        }
        // Non-matching dst falls through to the low-priority catch-all.
        match table.process(&frame(3), PortNo::new(9), SimTime::ZERO) {
            MatchOutcome::Forward { ports, .. } => assert_eq!(ports, vec![PortNo::new(1)]),
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut table = FlowTable::new();
        table.insert(FlowEntry::new(FlowMatch::new(), out(1)), SimTime::ZERO);
        let f = frame(2);
        let len = f.wire_len() as u64;
        for _ in 0..3 {
            table.process(&f, PortNo::new(1), SimTime::ZERO);
        }
        let stats = table.stats();
        assert_eq!(stats[0].packet_count, 3);
        assert_eq!(stats[0].byte_count, 3 * len);
    }

    #[test]
    fn reinsert_resets_counters() {
        let mut table = FlowTable::new();
        table.insert(FlowEntry::new(FlowMatch::new(), out(1)), SimTime::ZERO);
        table.process(&frame(2), PortNo::new(1), SimTime::ZERO);
        table.insert(
            FlowEntry::new(FlowMatch::new(), out(2)),
            SimTime::from_secs(1),
        );
        assert_eq!(table.len(), 1);
        assert_eq!(table.stats()[0].packet_count, 0);
    }

    #[test]
    fn hard_timeout_expires() {
        let mut table = FlowTable::new();
        table.insert(
            FlowEntry::new(FlowMatch::new(), out(1)).with_hard_timeout(Duration::from_secs(10)),
            SimTime::ZERO,
        );
        assert!(table.expire(SimTime::from_secs(9)).is_empty());
        let removed = table.expire(SimTime::from_secs(10));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::HardTimeout);
        assert!(table.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_hit() {
        let mut table = FlowTable::new();
        table.insert(
            FlowEntry::new(FlowMatch::new(), out(1)).with_idle_timeout(Duration::from_secs(5)),
            SimTime::ZERO,
        );
        // Traffic at t=4 keeps the rule alive past t=5.
        table.process(&frame(2), PortNo::new(1), SimTime::from_secs(4));
        assert!(table.expire(SimTime::from_secs(8)).is_empty());
        // No traffic from t=4 to t=9 -> idle-expired.
        let removed = table.expire(SimTime::from_secs(9));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::IdleTimeout);
    }

    #[test]
    fn expired_rule_does_not_match_before_eviction() {
        let mut table = FlowTable::new();
        table.insert(
            FlowEntry::new(FlowMatch::new(), out(1)).with_hard_timeout(Duration::from_secs(1)),
            SimTime::ZERO,
        );
        assert_eq!(
            table.process(&frame(2), PortNo::new(1), SimTime::from_secs(2)),
            MatchOutcome::Miss
        );
    }

    #[test]
    fn delete_by_match() {
        let mut table = FlowTable::new();
        let m = FlowMatch::new().with_eth_dst(MacAddr::new([2; 6]));
        table.insert(FlowEntry::new(m, out(1)), SimTime::ZERO);
        table.insert(FlowEntry::new(FlowMatch::new(), out(2)), SimTime::ZERO);
        let removed = table.delete(&m);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].reason, FlowRemovedReason::Delete);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn rewrite_actions_apply_to_forwarded_frame() {
        let mut table = FlowTable::new();
        table.insert(
            FlowEntry::new(
                FlowMatch::new(),
                vec![
                    Action::SetEthDst(MacAddr::new([9; 6])),
                    Action::Output(PortNo::new(4)),
                ],
            ),
            SimTime::ZERO,
        );
        match table.process(&frame(2), PortNo::new(1), SimTime::ZERO) {
            MatchOutcome::Forward { frame, ports } => {
                assert_eq!(frame.dst, MacAddr::new([9; 6]));
                assert_eq!(ports, vec![PortNo::new(4)]);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn drop_rule_forwards_nowhere() {
        let mut table = FlowTable::new();
        table.insert(FlowEntry::new(FlowMatch::new(), vec![]), SimTime::ZERO);
        match table.process(&frame(2), PortNo::new(1), SimTime::ZERO) {
            MatchOutcome::Forward { ports, .. } => assert!(ports.is_empty()),
            other => panic!("expected forward(drop), got {other:?}"),
        }
    }

    #[test]
    fn clear_returns_all() {
        let mut table = FlowTable::new();
        table.insert(FlowEntry::new(FlowMatch::new(), out(1)), SimTime::ZERO);
        table.insert(
            FlowEntry::new(FlowMatch::new().with_in_port(PortNo::new(2)), out(2)),
            SimTime::ZERO,
        );
        assert_eq!(table.clear().len(), 2);
        assert!(table.is_empty());
    }
}
