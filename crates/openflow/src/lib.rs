//! An OpenFlow 1.0-style control protocol model.
//!
//! This crate defines the message vocabulary spoken between the simulated
//! switches ([`netsim`](../netsim/index.html)) and the controller
//! ([`controller`](../controller/index.html)):
//!
//! * [`OfMessage`] — the control-channel messages the paper's attacks and
//!   defenses revolve around: `PacketIn`, `PacketOut`, `FlowMod`,
//!   `PortStatus` (Port-Up / Port-Down — the trigger for Port Amnesia),
//!   `EchoRequest`/`EchoReply` (used by TopoGuard+ to measure control-link
//!   latency), and flow/port statistics (used by SPHINX).
//! * [`FlowMatch`] / [`Action`] — the match/action model.
//! * [`FlowTable`] — a priority-ordered rule table with idle/hard timeouts
//!   and per-flow packet/byte counters.
//!
//! # Example
//!
//! ```
//! use openflow::{Action, FlowEntry, FlowMatch, FlowTable};
//! use sdn_types::{MacAddr, PortNo, SimTime};
//!
//! let mut table = FlowTable::new();
//! let entry = FlowEntry::new(
//!     FlowMatch::new().with_eth_dst(MacAddr::new([0xBB; 6])),
//!     vec![Action::Output(PortNo::new(2))],
//! );
//! table.insert(entry, SimTime::ZERO);
//! assert_eq!(table.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
mod flow_match;
mod messages;
mod port;
mod table;
pub mod wire;

pub use actions::Action;
pub use flow_match::FlowMatch;
pub use messages::{
    FlowModCommand, FlowRemovedReason, FlowStatsEntry, OfMessage, PacketInReason, PortStatsEntry,
    PortStatusReason, Xid,
};
pub use port::{PortDesc, PortLinkState};
pub use table::{FlowEntry, FlowTable, MatchOutcome, RemovedFlow};
