//! Topology tampering attacks (§IV of the paper).
//!
//! All attacks are implemented as [`netsim::HostApp`] state machines running
//! on compromised end hosts — exactly the paper's threat model: no
//! control-plane access, no software exploits, only protocol behaviour.
//!
//! * [`iface`] — the `ifconfig` timing model: identifier changes take a
//!   heavy-tailed ~10 ms (Fig. 4) and only interface bounces longer than
//!   the 802.3 link-pulse window trigger Port-Down events (§V-A).
//! * [`probe`] — liveness probes (Table I): ICMP ping, TCP SYN scan, ARP
//!   ping, and TCP idle scan, with per-technique timing overheads and
//!   stealth ratings, plus the quantile-based probe-timeout derivation
//!   (§V-B1).
//! * [`probing`] — **Port Probing** (§IV-B): ARP-probe a victim until it
//!   goes down, then win the migration race with a host-location hijack.
//! * [`amnesia`] — **Port Amnesia** (§IV-A): reset TopoGuard's port
//!   profile with interface bounces, enabling out-of-band (side channel)
//!   and in-band (context-switching) LLDP relay link fabrication, plus the
//!   post-fabrication man-in-the-middle bridge.
//! * [`flood`] — **Alert flooding** (§IV-B): spoof existing identifiers to
//!   bury real hijack alerts in noise.
//! * [`idle`] — the TCP idle-scan mechanics (IP-ID side channel via a
//!   zombie host).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amnesia;
pub mod flood;
pub mod idle;
pub mod iface;
pub mod probe;
pub mod probing;

pub use amnesia::{InBandRelayAttacker, OobRelayAttacker, RelayConfig, RelayStats};
pub use flood::{AlertFloodAttacker, FloodConfig};
pub use idle::{IdleScanProber, IdleScanResult};
pub use iface::IdentChangeModel;
pub use probe::{derive_probe_timeout, ProbeKind, ProbeTiming};
pub use probing::{PortProbingAttacker, ProbingConfig, ProbingPhase, ProbingTimeline};
