//! TCP idle scan mechanics (§IV-B1, Table I's "Very High" stealth probe).
//!
//! The attacker never contacts the victim directly. Instead it:
//!
//! 1. Sends an unsolicited SYN-ACK to a *zombie* host and reads the IP-ID
//!    of the RST that comes back (the baseline).
//! 2. Sends a SYN to the victim **spoofed as the zombie** (L2 and L3).
//!    If the victim's port is open it SYN-ACKs the zombie, and the zombie's
//!    RST response consumes one IP-ID.
//! 3. Re-probes the zombie. An IP-ID delta of 2 (one for step 2's side
//!    effect, one for this probe's RST) means the victim is alive with the
//!    port open; a delta of 1 means no side effect was triggered.
//!
//! The probe works because many legacy TCP stacks use a single global,
//! sequentially-incrementing IP-ID counter — modeled by `netsim`'s host
//! stack.

use std::any::Any;

use netsim::{FrameDisposition, HostApp, HostCtx};
use sdn_types::packet::{EthernetFrame, Ipv4Packet, Payload, TcpFlags, TcpSegment, Transport};
use sdn_types::{Duration, IpAddr, MacAddr, SimTime};

/// The outcome of one idle scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdleScanResult {
    /// The zombie's IP-ID before the spoofed probe.
    pub baseline_ident: u16,
    /// The zombie's IP-ID after the spoofed probe.
    pub followup_ident: u16,
    /// Whether the victim answered the zombie (delta ≥ 2).
    pub victim_alive: bool,
    /// When the verdict was reached.
    pub at: SimTime,
}

/// Idle-scan configuration.
#[derive(Clone, Copy, Debug)]
pub struct IdleScanConfig {
    /// The zombie's MAC (needed to spoof L2).
    pub zombie_mac: MacAddr,
    /// The zombie's IP.
    pub zombie_ip: IpAddr,
    /// The victim's MAC.
    pub victim_mac: MacAddr,
    /// The victim's IP.
    pub victim_ip: IpAddr,
    /// An open port on the victim.
    pub victim_port: u16,
    /// Delay between scan steps (waits for RSTs to land).
    pub step_delay: Duration,
    /// When to start the scan.
    pub start_delay: Duration,
}

const TIMER_STEP: u64 = 1;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Step {
    Baseline,
    SpoofedSyn,
    Followup,
    Done,
}

/// The idle-scan prober host application. Runs one scan and records the
/// result.
pub struct IdleScanProber {
    config: IdleScanConfig,
    step: Step,
    baseline: Option<u16>,
    /// The scan result, once complete.
    pub result: Option<IdleScanResult>,
}

impl IdleScanProber {
    /// Creates the prober.
    pub fn new(config: IdleScanConfig) -> Self {
        IdleScanProber {
            config,
            step: Step::Baseline,
            baseline: None,
            result: None,
        }
    }

    fn probe_zombie(&mut self, ctx: &mut HostCtx<'_>) {
        // An unsolicited SYN-ACK provokes an RST carrying the zombie's
        // current IP-ID.
        let info = ctx.info();
        let seg = TcpSegment {
            src_port: 55_555,
            dst_port: 55_556,
            seq: 1,
            ack: 1,
            flags: TcpFlags::SYN_ACK,
            window: 1024,
            data: vec![],
        };
        let pkt = Ipv4Packet::new(info.ip, self.config.zombie_ip, Transport::Tcp(seg));
        ctx.send_ipv4(self.config.zombie_mac, pkt);
    }

    fn spoofed_syn(&mut self, ctx: &mut HostCtx<'_>) {
        // SYN to the victim, spoofed as the zombie at both layers: the
        // victim's SYN-ACK goes to the zombie, not to us.
        let seg = TcpSegment::syn(44_444, self.config.victim_port, 7);
        let pkt = Ipv4Packet::new(
            self.config.zombie_ip,
            self.config.victim_ip,
            Transport::Tcp(seg),
        );
        ctx.send_frame(EthernetFrame::new(
            self.config.zombie_mac,
            self.config.victim_mac,
            Payload::Ipv4(pkt),
        ));
    }
}

impl HostApp for IdleScanProber {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_timer(self.config.start_delay, TIMER_STEP);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, id: u64) {
        if id != TIMER_STEP {
            return;
        }
        match self.step {
            Step::Baseline => {
                self.probe_zombie(ctx);
                // Wait for the RST in on_frame; it advances the step.
            }
            Step::SpoofedSyn => {
                self.spoofed_syn(ctx);
                self.step = Step::Followup;
                ctx.set_timer(self.config.step_delay, TIMER_STEP);
            }
            Step::Followup => {
                self.probe_zombie(ctx);
            }
            Step::Done => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) -> FrameDisposition {
        let Some(ip) = frame.ipv4() else {
            return FrameDisposition::Pass;
        };
        // Only RSTs the zombie addressed to *us* answer our probes; on a
        // broadcast medium we would otherwise misread the zombie's RST to
        // the victim's SYN-ACK as our follow-up response.
        if ip.src != self.config.zombie_ip || ip.dst != ctx.info().ip {
            return FrameDisposition::Pass;
        }
        let Transport::Tcp(tcp) = &ip.transport else {
            return FrameDisposition::Pass;
        };
        if !tcp.is_rst() {
            return FrameDisposition::Pass;
        }
        match self.step {
            Step::Baseline => {
                self.baseline = Some(ip.ident);
                self.step = Step::SpoofedSyn;
                ctx.set_timer(self.config.step_delay, TIMER_STEP);
            }
            Step::Followup => {
                // Followup is only entered after Baseline recorded the
                // ident; a stray RST without one is dropped, not a panic.
                debug_assert!(self.baseline.is_some(), "Followup implies baseline");
                let Some(baseline) = self.baseline else {
                    return FrameDisposition::Pass;
                };
                let delta = ip.ident.wrapping_sub(baseline);
                self.result = Some(IdleScanResult {
                    baseline_ident: baseline,
                    followup_ident: ip.ident,
                    victim_alive: delta >= 2,
                    at: ctx.now(),
                });
                self.step = Step::Done;
            }
            _ => {}
        }
        FrameDisposition::Consume
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
