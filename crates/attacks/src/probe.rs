//! Liveness probe techniques and their timing/stealth profiles (Table I),
//! plus the probe-timeout derivation of §V-B1.
//!
//! Table I of the paper (timing excludes attacker↔victim RTT):
//!
//! | Type          | Stealth   | Requirements    | Timing (ms)   |
//! |---------------|-----------|-----------------|---------------|
//! | ICMP Ping     | Low       | None            | 0.91 ± 0.04   |
//! | TCP SYN       | Medium    | Port known      | 492.3 ± 1.4   |
//! | ARP ping      | High      | Same subnet     | 133.5 ± 1.6   |
//! | TCP idle scan | Very High | Suitable zombie | 1.8 ± 0.1     |
//!
//! The timing column is per-technique *tool overhead* (nmap's scan
//! machinery: retransmission budgets, rate limiting, reply bookkeeping),
//! measured over 1000 scans on the authors' testbed. We model each as a
//! normal distribution calibrated to the reported mean ± sd; the protocol
//! *mechanics* (which packets are exchanged) are simulated for real.

use tm_rand::Rng;

use sdn_types::packet::{
    ArpPacket, EthernetFrame, IcmpPacket, Ipv4Packet, Payload, TcpSegment, Transport,
};
use sdn_types::{Duration, IpAddr, MacAddr};
use tm_stats::{normal_quantile, Distribution, Normal};

/// A liveness probe technique.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProbeKind {
    /// ICMP echo request.
    IcmpPing,
    /// TCP SYN to a known port.
    TcpSyn {
        /// The target port (must be known to the attacker).
        port: u16,
    },
    /// ARP who-has (requires same subnet). The paper's choice.
    ArpPing,
    /// TCP idle scan through a zombie (requires a suitable zombie).
    IdleScan {
        /// The zombie's IP.
        zombie: IpAddr,
        /// The target port to probe.
        port: u16,
    },
}

/// Timing/stealth profile of a technique.
#[derive(Clone, Copy, Debug)]
pub struct ProbeTiming {
    /// Mean tool overhead, milliseconds.
    pub overhead_mean_ms: f64,
    /// Standard deviation of the overhead, milliseconds.
    pub overhead_sd_ms: f64,
    /// Qualitative stealth (Table I).
    pub stealth: tm_ids::Stealth,
    /// The technique's requirement, as stated in Table I.
    pub requirement: &'static str,
}

impl ProbeKind {
    /// The Table I profile for this technique.
    pub fn timing(&self) -> ProbeTiming {
        match self {
            ProbeKind::IcmpPing => ProbeTiming {
                overhead_mean_ms: 0.91,
                overhead_sd_ms: 0.04,
                stealth: tm_ids::Stealth::Low,
                requirement: "None",
            },
            ProbeKind::TcpSyn { .. } => ProbeTiming {
                overhead_mean_ms: 492.3,
                overhead_sd_ms: 1.4,
                stealth: tm_ids::Stealth::Medium,
                requirement: "Port Known",
            },
            ProbeKind::ArpPing => ProbeTiming {
                overhead_mean_ms: 133.5,
                overhead_sd_ms: 1.6,
                stealth: tm_ids::Stealth::High,
                requirement: "Same subnet",
            },
            ProbeKind::IdleScan { .. } => ProbeTiming {
                overhead_mean_ms: 1.8,
                overhead_sd_ms: 0.1,
                stealth: tm_ids::Stealth::VeryHigh,
                requirement: "Suitable zombie",
            },
        }
    }

    /// Table I's name for the technique.
    pub fn name(&self) -> &'static str {
        match self {
            ProbeKind::IcmpPing => "ICMP Ping",
            ProbeKind::TcpSyn { .. } => "TCP SYN",
            ProbeKind::ArpPing => "ARP ping",
            ProbeKind::IdleScan { .. } => "TCP Idle Scan",
        }
    }

    /// Samples the tool overhead for one scan.
    pub fn sample_overhead<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let t = self.timing();
        Duration::from_millis_f64(
            Normal::new(t.overhead_mean_ms, t.overhead_sd_ms)
                .sample(rng)
                .max(0.0),
        )
    }

    /// Builds the probe frame(s) this technique sends directly to the
    /// victim. Idle scans probe indirectly and are driven by
    /// [`crate::idle::IdleScanProber`] instead.
    pub fn build_probe(
        &self,
        attacker_mac: MacAddr,
        attacker_ip: IpAddr,
        victim_mac: MacAddr,
        victim_ip: IpAddr,
        seq: u16,
    ) -> Option<EthernetFrame> {
        match self {
            ProbeKind::IcmpPing => Some(EthernetFrame::new(
                attacker_mac,
                victim_mac,
                Payload::Ipv4(Ipv4Packet::new(
                    attacker_ip,
                    victim_ip,
                    Transport::Icmp(IcmpPacket::echo_request(0x6e6d, seq, vec![])),
                )),
            )),
            ProbeKind::TcpSyn { port } => Some(EthernetFrame::new(
                attacker_mac,
                victim_mac,
                Payload::Ipv4(Ipv4Packet::new(
                    attacker_ip,
                    victim_ip,
                    Transport::Tcp(TcpSegment::syn(40_000 + seq, *port, u32::from(seq))),
                )),
            )),
            ProbeKind::ArpPing => Some(EthernetFrame::new(
                attacker_mac,
                MacAddr::BROADCAST,
                Payload::Arp(ArpPacket::request(attacker_mac, attacker_ip, victim_ip)),
            )),
            ProbeKind::IdleScan { .. } => None,
        }
    }

    /// Whether `frame` answers a probe of this kind for `victim_ip`.
    pub fn is_reply(&self, frame: &EthernetFrame, victim_ip: IpAddr) -> bool {
        match self {
            ProbeKind::IcmpPing => frame
                .ipv4()
                .is_some_and(|ip| ip.src == victim_ip && matches!(&ip.transport,
                    Transport::Icmp(icmp) if icmp.icmp_type == sdn_types::packet::IcmpType::EchoReply)),
            ProbeKind::TcpSyn { .. } => frame.ipv4().is_some_and(|ip| {
                ip.src == victim_ip
                    && matches!(&ip.transport,
                        Transport::Tcp(tcp) if tcp.is_syn_ack() || tcp.is_rst())
            }),
            ProbeKind::ArpPing => frame
                .arp()
                .is_some_and(|arp| arp.op == sdn_types::packet::ArpOp::Reply && arp.sender_ip == victim_ip),
            ProbeKind::IdleScan { .. } => false,
        }
    }
}

/// Derives the probe timeout for a desired false-positive rate given an RTT
/// distribution `N(rtt_mean_ms, rtt_sd_ms)` — §V-B1's quantile calculation.
///
/// With the paper's parameters (`20 ms`, `5 ms`, 1 % FP) this returns
/// ≈ 31.6 ms, which the authors round up to their 35 ms timeout.
pub fn derive_probe_timeout(
    rtt_mean_ms: f64,
    rtt_sd_ms: f64,
    false_positive_rate: f64,
) -> Duration {
    assert!(
        false_positive_rate > 0.0 && false_positive_rate < 1.0,
        "false-positive rate must be in (0, 1)"
    );
    Duration::from_millis_f64(normal_quantile(
        rtt_mean_ms,
        rtt_sd_ms,
        1.0 - false_positive_rate,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_rand::StdRng;
    use tm_stats::Summary;

    const AMAC: MacAddr = MacAddr::new([0xA; 6]);
    const VMAC: MacAddr = MacAddr::new([0xB; 6]);
    const AIP: IpAddr = IpAddr::new(10, 0, 0, 66);
    const VIP: IpAddr = IpAddr::new(10, 0, 0, 1);

    #[test]
    fn table1_overheads_reproduce() {
        let mut rng = StdRng::seed_from_u64(1);
        for (kind, mean) in [
            (ProbeKind::IcmpPing, 0.91),
            (ProbeKind::TcpSyn { port: 80 }, 492.3),
            (ProbeKind::ArpPing, 133.5),
            (
                ProbeKind::IdleScan {
                    zombie: AIP,
                    port: 80,
                },
                1.8,
            ),
        ] {
            let samples: Vec<f64> = (0..1000)
                .map(|_| kind.sample_overhead(&mut rng).as_millis_f64())
                .collect();
            let s = Summary::of(&samples);
            assert!(
                (s.mean - mean).abs() < mean * 0.02 + 0.02,
                "{}: mean {} vs {}",
                kind.name(),
                s.mean,
                mean
            );
        }
    }

    #[test]
    fn ordering_matches_table1() {
        // ICMP < idle < ARP < SYN.
        let mut rng = StdRng::seed_from_u64(2);
        let mut mean = |k: ProbeKind| {
            (0..200)
                .map(|_| k.sample_overhead(&mut rng).as_millis_f64())
                .sum::<f64>()
                / 200.0
        };
        let icmp = mean(ProbeKind::IcmpPing);
        let idle = mean(ProbeKind::IdleScan {
            zombie: AIP,
            port: 80,
        });
        let arp = mean(ProbeKind::ArpPing);
        let syn = mean(ProbeKind::TcpSyn { port: 80 });
        assert!(icmp < idle && idle < arp && arp < syn);
    }

    #[test]
    fn arp_probe_broadcasts_and_matches_reply() {
        let kind = ProbeKind::ArpPing;
        let probe = kind.build_probe(AMAC, AIP, VMAC, VIP, 1).unwrap();
        assert!(probe.dst.is_broadcast());
        let req = probe.arp().unwrap();
        let reply = EthernetFrame::new(VMAC, AMAC, Payload::Arp(ArpPacket::reply_to(req, VMAC)));
        assert!(kind.is_reply(&reply, VIP));
        assert!(!kind.is_reply(&probe, VIP));
    }

    #[test]
    fn tcp_syn_accepts_syn_ack_or_rst() {
        let kind = ProbeKind::TcpSyn { port: 80 };
        let probe = kind.build_probe(AMAC, AIP, VMAC, VIP, 3).unwrap();
        let syn = match &probe.ipv4().unwrap().transport {
            Transport::Tcp(t) => t.clone(),
            _ => unreachable!(),
        };
        for seg in [TcpSegment::syn_ack_to(&syn, 1), TcpSegment::rst_to(&syn)] {
            let reply = EthernetFrame::new(
                VMAC,
                AMAC,
                Payload::Ipv4(Ipv4Packet::new(VIP, AIP, Transport::Tcp(seg))),
            );
            assert!(kind.is_reply(&reply, VIP));
        }
    }

    #[test]
    fn paper_timeout_derivation() {
        let timeout = derive_probe_timeout(20.0, 5.0, 0.01);
        let ms = timeout.as_millis_f64();
        assert!((ms - 31.6).abs() < 0.1, "derived {ms} ms");
        assert!(ms < 35.0, "the paper rounds up to 35 ms");
    }

    #[test]
    fn stealth_ordering() {
        use tm_ids::Stealth;
        assert_eq!(ProbeKind::IcmpPing.timing().stealth, Stealth::Low);
        assert_eq!(
            ProbeKind::TcpSyn { port: 1 }.timing().stealth,
            Stealth::Medium
        );
        assert_eq!(ProbeKind::ArpPing.timing().stealth, Stealth::High);
        assert_eq!(
            ProbeKind::IdleScan {
                zombie: AIP,
                port: 1
            }
            .timing()
            .stealth,
            Stealth::VeryHigh
        );
    }
}
