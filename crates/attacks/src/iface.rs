//! The `ifconfig` timing model.
//!
//! The paper measures two interface-manipulation latencies on its testbed:
//!
//! * Changing a NIC's MAC and IP with `ifconfig` takes **9.94 ms on
//!   average, heavy-tailed with trials up to ~160 ms** (Fig. 4). We model
//!   this as a log-normal calibrated to that mean with a dispersion that
//!   reproduces the tail.
//! * A bare down/up cycle takes **3.25 ms on average** (§V-A) — faster
//!   than the 802.3 link-pulse window, which is why an attacker can change
//!   identifiers without triggering a Port-Down, and conversely must *hold*
//!   the interface down ≥ 16 ms when it wants one.

use tm_rand::Rng;

use sdn_types::Duration;
use tm_stats::{Distribution, LogNormal};

/// Samples interface-manipulation latencies.
#[derive(Clone, Copy, Debug)]
pub struct IdentChangeModel {
    ident_change: LogNormal,
    bare_cycle: LogNormal,
}

impl IdentChangeModel {
    /// The paper's testbed calibration: identifier change mean 9.94 ms with
    /// a tail reaching ~160 ms; bare down/up mean 3.25 ms.
    pub fn paper_default() -> Self {
        IdentChangeModel {
            // sd chosen so the 99.9th percentile lands near 160 ms.
            ident_change: LogNormal::from_mean_sd(9.94, 12.0),
            bare_cycle: LogNormal::from_mean_sd(3.25, 1.0),
        }
    }

    /// Custom calibration.
    pub fn new(ident_mean_ms: f64, ident_sd_ms: f64, cycle_mean_ms: f64, cycle_sd_ms: f64) -> Self {
        IdentChangeModel {
            ident_change: LogNormal::from_mean_sd(ident_mean_ms, ident_sd_ms),
            bare_cycle: LogNormal::from_mean_sd(cycle_mean_ms, cycle_sd_ms),
        }
    }

    /// Samples the time `ifconfig` takes to bring the interface down and
    /// back up with new MAC/IP identifiers.
    pub fn sample_ident_change<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        Duration::from_millis_f64(self.ident_change.sample(rng))
    }

    /// Samples the time of a bare down/up cycle (no identifier change).
    pub fn sample_bare_cycle<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        Duration::from_millis_f64(self.bare_cycle.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_rand::StdRng;
    use tm_stats::Summary;

    #[test]
    fn ident_change_matches_fig4_shape() {
        let model = IdentChangeModel::paper_default();
        let mut rng = StdRng::seed_from_u64(44);
        let samples: Vec<f64> = (0..10_000)
            .map(|_| model.sample_ident_change(&mut rng).as_millis_f64())
            .collect();
        let s = Summary::of(&samples);
        assert!(
            (s.mean - 9.94).abs() < 0.6,
            "mean {} vs paper 9.94 ms",
            s.mean
        );
        assert!(s.max > 80.0, "heavy tail expected, max {}", s.max);
        assert!(s.max < 400.0, "tail should not be absurd, max {}", s.max);
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn bare_cycle_is_faster_than_pulse_window() {
        let model = IdentChangeModel::paper_default();
        let mut rng = StdRng::seed_from_u64(45);
        let samples: Vec<f64> = (0..5_000)
            .map(|_| model.sample_bare_cycle(&mut rng).as_millis_f64())
            .collect();
        let s = Summary::of(&samples);
        assert!(
            (s.mean - 3.25).abs() < 0.2,
            "mean {} vs paper 3.25 ms",
            s.mean
        );
        // §V-A: typical cycles complete well inside the 8 ms minimum pulse
        // window, so they do not trigger Port-Down.
        let under_8ms = samples.iter().filter(|&&x| x < 8.0).count();
        assert!(under_8ms as f64 / samples.len() as f64 > 0.99);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = IdentChangeModel::paper_default();
        let a = model.sample_ident_change(&mut StdRng::seed_from_u64(1));
        let b = model.sample_ident_change(&mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
