//! Alert flooding (§IV-B, "Alert Floods"): spoofing existing identifiers
//! from the attacker's port to bury a real hijack in spurious migration
//! alerts.
//!
//! Because TopoGuard/SPHINX alerts "do not alter network state in any way",
//! an attacker can cheaply generate one alert per spoofed identifier and
//! overwhelm the operator's triage queue while a real hijack persists
//! elsewhere.

use std::any::Any;

use netsim::{HostApp, HostCtx};
use sdn_types::packet::{ArpPacket, EthernetFrame, Payload};
use sdn_types::{Duration, IpAddr, MacAddr};

/// Flood configuration.
#[derive(Clone, Debug)]
pub struct FloodConfig {
    /// Identifiers to spoof — typically every host the attacker has seen on
    /// the subnet.
    pub victims: Vec<(MacAddr, IpAddr)>,
    /// Delay between spoofed frames.
    pub interval: Duration,
    /// When to begin.
    pub start_delay: Duration,
}

const TIMER_NEXT: u64 = 1;

/// The alert-flooding host application.
pub struct AlertFloodAttacker {
    config: FloodConfig,
    cursor: usize,
    /// Spoofed frames sent.
    pub spoofs_sent: u64,
}

impl AlertFloodAttacker {
    /// Creates the attacker.
    pub fn new(config: FloodConfig) -> Self {
        AlertFloodAttacker {
            config,
            cursor: 0,
            spoofs_sent: 0,
        }
    }
}

impl HostApp for AlertFloodAttacker {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // Stay otherwise silent.
        ctx.set_respond_icmp(false);
        ctx.set_respond_tcp(false);
        ctx.set_respond_arp(false);
        ctx.set_timer(self.config.start_delay, TIMER_NEXT);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, id: u64) {
        if id != TIMER_NEXT || self.config.victims.is_empty() {
            return;
        }
        let (mac, ip) = self.config.victims[self.cursor % self.config.victims.len()];
        self.cursor += 1;
        // A spoofed broadcast ARP: a PacketIn with the victim's identifiers
        // originating from our port. No Port-Down preceded it, so
        // TopoGuard's migration pre-condition fires — one alert per frame.
        let arp = ArpPacket::request(mac, ip, IpAddr::new(10, 0, 0, 254));
        ctx.send_frame(EthernetFrame::new(
            mac,
            MacAddr::BROADCAST,
            Payload::Arp(arp),
        ));
        self.spoofs_sent += 1;
        ctx.set_timer(self.config.interval, TIMER_NEXT);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
