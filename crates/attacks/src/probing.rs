//! The Port Probing attack (§IV-B): precisely timing a host-location
//! hijack against a victim that is legitimately moving.
//!
//! The attacker (1) harvests the victim's MAC with `arping`, (2) probes the
//! victim's liveness on a tight loop, (3) the instant a probe times out,
//! changes its own identifiers to the victim's with `ifconfig`, and (4)
//! originates traffic so the controller "completes" the victim's migration
//! onto the attacker's port. Every phase transition is timestamped in
//! [`ProbingTimeline`], which is exactly the instrumentation behind the
//! paper's Figs. 3–8.

use std::any::Any;
use std::collections::BTreeMap;

use netsim::{FrameDisposition, HostApp, HostCtx};
use sdn_types::packet::{ArpPacket, EthernetFrame, Payload};
use sdn_types::{Duration, IpAddr, MacAddr, SimTime};

use crate::iface::IdentChangeModel;
use crate::probe::ProbeKind;

/// Attack configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProbingConfig {
    /// The victim's IP address (all the attacker needs up front).
    pub victim_ip: IpAddr,
    /// The liveness technique (the paper chooses ARP ping).
    pub probe: ProbeKind,
    /// Probe period. The paper settles on one probe every 50 ms (§V-B2).
    pub probe_interval: Duration,
    /// Probe timeout. The paper derives 35 ms from `N(20 ms, 5 ms)` at a
    /// 1 % false-positive rate (§V-B1).
    pub probe_timeout: Duration,
    /// When to begin the attack.
    pub start_delay: Duration,
    /// `ifconfig` latency model.
    pub ident_model: IdentChangeModel,
    /// An address to solicit after the hijack so the controller sees
    /// spoofed traffic immediately (any dataplane traffic suffices).
    pub originate_target: IpAddr,
}

impl ProbingConfig {
    /// The paper's parameters against `victim_ip`.
    pub fn paper_default(victim_ip: IpAddr, originate_target: IpAddr) -> Self {
        ProbingConfig {
            victim_ip,
            probe: ProbeKind::ArpPing,
            probe_interval: Duration::from_millis(50),
            probe_timeout: Duration::from_millis(35),
            start_delay: Duration::from_millis(500),
            ident_model: IdentChangeModel::paper_default(),
            originate_target,
        }
    }
}

/// The attack's phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProbingPhase {
    /// Harvesting the victim's MAC via `arping`.
    AcquireMac,
    /// Probing the victim's liveness.
    Monitoring,
    /// `ifconfig` is changing our identifiers to the victim's.
    Hijacking,
    /// We are the victim, as far as the network can tell.
    Impersonating,
}

/// Timestamped milestones (Fig. 3's timeline).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProbingTimeline {
    /// The harvested victim MAC.
    pub victim_mac: Option<MacAddr>,
    /// When the final (timed-out) probe was sent — Fig. 7's event.
    pub final_probe_start: Option<SimTime>,
    /// When that probe's timeout expired, i.e. the attacker first *knows*
    /// the victim is gone — Fig. 8's event.
    pub believed_down_at: Option<SimTime>,
    /// When `ifconfig` started.
    pub ident_change_started: Option<SimTime>,
    /// The sampled `ifconfig` duration (Fig. 4's distribution).
    pub ident_change_duration: Option<Duration>,
    /// When the interface came up bearing the victim's identity — Fig. 5's
    /// event.
    pub iface_up_at: Option<SimTime>,
    /// When the first spoofed frame was transmitted.
    pub first_spoofed_tx_at: Option<SimTime>,
    /// Probes sent while monitoring.
    pub probes_sent: u64,
    /// Probe replies seen.
    pub replies_seen: u64,
}

const TIMER_START: u64 = 1;
const TIMER_PROBE: u64 = 2;
const TIMER_ACQUIRE_RETRY: u64 = 3;
const TIMER_TIMEOUT_BASE: u64 = 1000;

/// The Port Probing attacker host application.
pub struct PortProbingAttacker {
    config: ProbingConfig,
    /// Current phase.
    pub phase: ProbingPhase,
    /// Milestones.
    pub timeline: ProbingTimeline,
    seq: u16,
    sent_at: BTreeMap<u16, SimTime>,
    last_reply_at: Option<SimTime>,
    own_mac: Option<MacAddr>,
    own_ip: Option<IpAddr>,
}

impl PortProbingAttacker {
    /// Creates the attacker.
    pub fn new(config: ProbingConfig) -> Self {
        PortProbingAttacker {
            config,
            phase: ProbingPhase::AcquireMac,
            timeline: ProbingTimeline::default(),
            seq: 0,
            sent_at: BTreeMap::new(),
            last_reply_at: None,
            own_mac: None,
            own_ip: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ProbingConfig {
        &self.config
    }

    fn arping(&mut self, ctx: &mut HostCtx<'_>) {
        let info = ctx.info();
        let arp = ArpPacket::request(info.mac, info.ip, self.config.victim_ip);
        ctx.send_frame(EthernetFrame::new(
            info.mac,
            MacAddr::BROADCAST,
            Payload::Arp(arp),
        ));
    }

    fn send_probe(&mut self, ctx: &mut HostCtx<'_>) {
        let Some(victim_mac) = self.timeline.victim_mac else {
            return;
        };
        let info = ctx.info();
        self.seq = self.seq.wrapping_add(1);
        let seq = self.seq;
        if let Some(frame) =
            self.config
                .probe
                .build_probe(info.mac, info.ip, victim_mac, self.config.victim_ip, seq)
        {
            if ctx.send_frame(frame) {
                self.timeline.probes_sent += 1;
                self.sent_at.insert(seq, ctx.now());
                ctx.set_timer(
                    self.config.probe_timeout,
                    TIMER_TIMEOUT_BASE + u64::from(seq),
                );
            }
        }
    }

    fn begin_hijack(&mut self, ctx: &mut HostCtx<'_>) {
        // The probing phase machine only reaches hijack after a probe
        // response revealed the victim's MAC; bail (debug-asserting)
        // rather than panic if a scenario drives the phases out of order.
        debug_assert!(
            self.timeline.victim_mac.is_some(),
            "hijack before MAC acquired"
        );
        let Some(victim_mac) = self.timeline.victim_mac else {
            return;
        };
        self.phase = ProbingPhase::Hijacking;
        self.timeline.ident_change_started = Some(ctx.now());
        let duration = self.config.ident_model.sample_ident_change(ctx.rng());
        self.timeline.ident_change_duration = Some(duration);
        // `ifconfig down; ifconfig hw ether <mac>; ifconfig <ip> up`.
        ctx.iface_down();
        ctx.schedule_iface_up(duration, Some((victim_mac, self.config.victim_ip)));
    }
}

impl HostApp for PortProbingAttacker {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let info = ctx.info();
        self.own_mac = Some(info.mac);
        self.own_ip = Some(info.ip);
        ctx.set_timer(self.config.start_delay, TIMER_START);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, id: u64) {
        match id {
            TIMER_START => {
                self.arping(ctx);
                ctx.set_timer(Duration::from_millis(200), TIMER_ACQUIRE_RETRY);
            }
            TIMER_ACQUIRE_RETRY if self.phase == ProbingPhase::AcquireMac => {
                self.arping(ctx);
                ctx.set_timer(Duration::from_millis(200), TIMER_ACQUIRE_RETRY);
            }
            TIMER_PROBE if self.phase == ProbingPhase::Monitoring => {
                self.send_probe(ctx);
                ctx.set_timer(self.config.probe_interval, TIMER_PROBE);
            }
            id if id >= TIMER_TIMEOUT_BASE => {
                if self.phase != ProbingPhase::Monitoring {
                    return;
                }
                let seq = (id - TIMER_TIMEOUT_BASE) as u16;
                let Some(&sent) = self.sent_at.get(&seq) else {
                    return;
                };
                // Did any reply arrive after this probe went out?
                let answered = self.last_reply_at.is_some_and(|r| r >= sent);
                if !answered {
                    // The victim is gone: this was the final probe.
                    self.timeline.final_probe_start = Some(sent);
                    self.timeline.believed_down_at = Some(ctx.now());
                    self.begin_hijack(ctx);
                }
                self.sent_at.remove(&seq);
            }
            _ => {}
        }
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) -> FrameDisposition {
        match self.phase {
            ProbingPhase::AcquireMac => {
                if let Some(arp) = frame.arp() {
                    if arp.op == sdn_types::packet::ArpOp::Reply
                        && arp.sender_ip == self.config.victim_ip
                    {
                        self.timeline.victim_mac = Some(arp.sender_mac);
                        self.phase = ProbingPhase::Monitoring;
                        ctx.set_timer(self.config.probe_interval, TIMER_PROBE);
                        return FrameDisposition::Consume;
                    }
                }
            }
            ProbingPhase::Monitoring => {
                if self.config.probe.is_reply(frame, self.config.victim_ip) {
                    self.last_reply_at = Some(ctx.now());
                    self.timeline.replies_seen += 1;
                    return FrameDisposition::Consume;
                }
            }
            // While hijacking/impersonating, let the default stack answer as
            // the victim (the whole point of the impersonation).
            ProbingPhase::Hijacking | ProbingPhase::Impersonating => {}
        }
        FrameDisposition::Pass
    }

    fn on_iface_up(&mut self, ctx: &mut HostCtx<'_>) {
        if self.phase != ProbingPhase::Hijacking {
            return;
        }
        self.phase = ProbingPhase::Impersonating;
        self.timeline.iface_up_at = Some(ctx.now());
        // Originate traffic as the victim: any dataplane packet creates the
        // PacketIn that completes the "migration" (§IV-B step 4).
        let info = ctx.info();
        let arp = ArpPacket::request(info.mac, info.ip, self.config.originate_target);
        if ctx.send_frame(EthernetFrame::new(
            info.mac,
            MacAddr::BROADCAST,
            Payload::Arp(arp),
        )) {
            self.timeline.first_spoofed_tx_at = Some(ctx.now());
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
