//! The Port Amnesia attack (§IV-A): link fabrication via LLDP relaying,
//! with behavioral-profile resets to evade TopoGuard.
//!
//! Two colluding hosts relay controller-emitted LLDP between their switch
//! ports, convincing the controller a direct switch-switch link exists
//! through them. TopoGuard would flag LLDP arriving at a HOST-profiled
//! port — so before injecting, the attacker bounces its interface long
//! enough to generate a Port-Down, resetting its profile to ANY
//! ("port amnesia").
//!
//! * [`OobRelayAttacker`] — relays over an out-of-band channel (Fig. 1's
//!   802.11 side link). One amnesia per port suffices; afterwards the
//!   fabricated link marks the ports as infrastructure and the bridge can
//!   carry man-in-the-middle traffic indefinitely. Evades TopoGuard and
//!   SPHINX; caught only by TopoGuard+'s Link Latency Inspector (the relay
//!   cannot avoid adding latency).
//! * [`InBandRelayAttacker`] — no side channel: the colluding hosts tunnel
//!   captured LLDP over the SDN dataplane itself (UDP encapsulation).
//!   Sending their own tunnel traffic re-profiles their ports HOST, so a
//!   *context switch* (another amnesia) is needed before every injection —
//!   adding ≥ 16 ms latency per relayed LLDP and producing the Port-Down-
//!   during-LLDP-propagation signature TopoGuard+'s CMM detects.

use std::any::Any;
use std::collections::VecDeque;

use netsim::{FrameDisposition, HostApp, HostCtx};
use sdn_types::packet::{EthernetFrame, Ipv4Packet, Payload, Transport, UdpDatagram};
use sdn_types::{Duration, HostId, IpAddr, MacAddr};

/// Timer id for the delayed warmup broadcast.
const TIMER_WARMUP: u64 = 1;

/// UDP port used for the in-band LLDP tunnel.
pub const INBAND_LLDP_PORT: u16 = 41_414;
/// UDP port used for the in-band data bridge.
pub const INBAND_DATA_PORT: u16 = 41_415;

/// Relay configuration (shared by both variants).
#[derive(Clone, Copy, Debug)]
pub struct RelayConfig {
    /// The colluding peer host.
    pub peer: HostId,
    /// How long to hold the interface down so the switch registers a
    /// Port-Down. Must exceed the 802.3 pulse window's maximum (24 ms in
    /// the simulator); the paper's analysis says "at least 16 ms" (§V-A).
    pub hold_down: Duration,
    /// Generate some benign traffic so the port begins the scenario
    /// HOST-profiled (Fig. 1's starting state).
    pub warmup_traffic: bool,
    /// When the warmup traffic is sent (after the defenses' startup grace
    /// period, before the attack window).
    pub warmup_delay: Duration,
    /// Perform the port-amnesia bounce before injecting. A *stealthy*
    /// out-of-band attacker whose port was never HOST-profiled can skip it
    /// (and thereby evade the CMM; only the LLI catches it).
    pub use_amnesia: bool,
    /// Bridge non-LLDP dataplane frames across the fabricated link
    /// (man-in-the-middle mode).
    pub bridge_dataplane: bool,
    /// Peer identifiers for the in-band tunnel (ignored by the OOB
    /// variant).
    pub peer_ip: IpAddr,
    /// Peer MAC for the in-band tunnel.
    pub peer_mac: MacAddr,
    /// Ignore LLDP until this much time has elapsed — the paper launches
    /// its attacks one minute after controller bootstrap (§VII-A), after
    /// the defenses' baselines have formed.
    pub start_after: Duration,
    /// Fraction of bridged dataplane frames to drop (a greedy MITM). The
    /// paper notes SPHINX's counters stay consistent only because "all
    /// packets sent to the link are faithfully transited" — a lossy bridge
    /// breaks counter conservation and gets caught.
    pub drop_fraction: f64,
}

impl RelayConfig {
    /// Defaults for an out-of-band relay toward `peer`.
    pub fn oob(peer: HostId) -> Self {
        RelayConfig {
            peer,
            hold_down: Duration::from_millis(25),
            warmup_traffic: true,
            use_amnesia: true,
            bridge_dataplane: true,
            peer_ip: IpAddr::UNSPECIFIED,
            peer_mac: MacAddr::ZERO,
            warmup_delay: Duration::from_secs(1),
            start_after: Duration::ZERO,
            drop_fraction: 0.0,
        }
    }

    /// A stealthy out-of-band relay: never originates traffic, never
    /// bounces its port.
    pub fn oob_stealthy(peer: HostId) -> Self {
        RelayConfig {
            warmup_traffic: false,
            use_amnesia: false,
            ..RelayConfig::oob(peer)
        }
    }

    /// Defaults for an in-band relay toward `peer` at `(peer_mac,
    /// peer_ip)`.
    pub fn in_band(peer: HostId, peer_mac: MacAddr, peer_ip: IpAddr) -> Self {
        RelayConfig {
            peer,
            hold_down: Duration::from_millis(25),
            warmup_traffic: true,
            use_amnesia: true,
            bridge_dataplane: false,
            peer_ip,
            peer_mac,
            warmup_delay: Duration::from_secs(1),
            start_after: Duration::ZERO,
            drop_fraction: 0.0,
        }
    }
}

/// Relay statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RelayStats {
    /// LLDP frames captured on the SDN interface.
    pub lldp_captured: u64,
    /// LLDP frames injected out of the SDN interface.
    pub lldp_injected: u64,
    /// Port-amnesia cycles performed.
    pub amnesia_cycles: u64,
    /// Dataplane frames bridged to the peer.
    pub bridged_to_peer: u64,
    /// Dataplane frames injected from the peer.
    pub bridged_from_peer: u64,
    /// Bridged frames deliberately dropped (greedy MITM mode).
    pub dropped: u64,
}

/// How long after the first LLDP injection the bridge waits before
/// carrying dataplane traffic — time for the controller to commit the link
/// and mark the ports as infrastructure (bridging earlier would register
/// bogus host migrations and give the game away).
const BRIDGE_GRACE: Duration = Duration::from_millis(200);

/// Out-of-band Port Amnesia relay (Fig. 1).
pub struct OobRelayAttacker {
    config: RelayConfig,
    /// Statistics.
    pub stats: RelayStats,
    /// Frames awaiting injection (held while the interface bounces).
    pending: VecDeque<EthernetFrame>,
    amnesia_done: bool,
    bouncing: bool,
    first_injected_at: Option<sdn_types::SimTime>,
}

impl OobRelayAttacker {
    /// Creates the relay endpoint.
    pub fn new(config: RelayConfig) -> Self {
        OobRelayAttacker {
            config,
            stats: RelayStats::default(),
            pending: VecDeque::new(),
            amnesia_done: false,
            bouncing: false,
            first_injected_at: None,
        }
    }

    fn bridge_active(&self, now: sdn_types::SimTime) -> bool {
        self.config.bridge_dataplane
            && self
                .first_injected_at
                .is_some_and(|t| now.since(t) >= BRIDGE_GRACE)
    }

    fn inject(&mut self, ctx: &mut HostCtx<'_>, frame: EthernetFrame) {
        if frame.is_lldp() {
            self.stats.lldp_injected += 1;
            if self.first_injected_at.is_none() {
                self.first_injected_at = Some(ctx.now());
            }
        } else {
            self.stats.bridged_from_peer += 1;
        }
        ctx.send_frame(frame);
    }
}

impl HostApp for OobRelayAttacker {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // Attackers are quiet hosts: they never answer probes as themselves
        // while acting as a link.
        ctx.set_respond_icmp(false);
        ctx.set_respond_tcp(false);
        if self.config.warmup_traffic {
            ctx.set_timer(self.config.warmup_delay, TIMER_WARMUP);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, id: u64) {
        if id == TIMER_WARMUP {
            // Originate one broadcast so TopoGuard profiles the port HOST —
            // the paper's starting condition (Fig. 1).
            let info = ctx.info();
            let arp = sdn_types::packet::ArpPacket::request(
                info.mac,
                info.ip,
                IpAddr::new(10, 0, 0, 254),
            );
            ctx.send_frame(EthernetFrame::new(
                info.mac,
                MacAddr::BROADCAST,
                Payload::Arp(arp),
            ));
        }
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) -> FrameDisposition {
        if ctx.now().as_nanos() < self.config.start_after.as_nanos() {
            // Lying low until the attack window opens.
            return FrameDisposition::Pass;
        }
        if frame.is_lldp() {
            // Step (1)-(2): capture and relay over the side channel.
            self.stats.lldp_captured += 1;
            ctx.oob_send(self.config.peer, frame.clone());
            return FrameDisposition::Consume;
        }
        if self.bridge_active(ctx.now()) {
            // Man-in-the-middle: once the fake link is committed,
            // everything else transits it — unless this is a greedy MITM
            // configured to drop a fraction of it.
            if self.config.drop_fraction > 0.0
                && tm_rand::Rng::gen_bool(ctx.rng(), self.config.drop_fraction)
            {
                self.stats.dropped += 1;
                return FrameDisposition::Consume;
            }
            self.stats.bridged_to_peer += 1;
            ctx.oob_send(self.config.peer, frame.clone());
            return FrameDisposition::Consume;
        }
        FrameDisposition::Pass
    }

    fn on_oob_frame(&mut self, ctx: &mut HostCtx<'_>, _from: HostId, frame: EthernetFrame) {
        let needs_amnesia = self.config.use_amnesia && frame.is_lldp() && !self.amnesia_done;
        if needs_amnesia {
            // Step (3): bounce the interface past the pulse window so the
            // profiler forgets this port was a HOST.
            self.pending.push_back(frame);
            if !self.bouncing {
                self.bouncing = true;
                self.stats.amnesia_cycles += 1;
                ctx.iface_down();
                ctx.schedule_iface_up(self.config.hold_down, None);
            }
            return;
        }
        if self.bouncing {
            // Queue everything while the interface is down.
            self.pending.push_back(frame);
            return;
        }
        self.inject(ctx, frame);
    }

    fn on_iface_up(&mut self, ctx: &mut HostCtx<'_>) {
        if !self.bouncing {
            return;
        }
        self.bouncing = false;
        self.amnesia_done = true;
        // Step (4): inject the relayed frames.
        while let Some(frame) = self.pending.pop_front() {
            self.inject(ctx, frame);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The attacker's belief about its port's current TopoGuard class — the
/// state it must context-switch between (§IV-A):
///
/// > "the colluding hosts must be seen as switches while originating
/// > packets sent over the inferred link, but also be seen as hosts while
/// > sending packets over their secure channel."
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PortBelief {
    /// Freshly reset (after a Port-Down) — anything may be sent next.
    Any,
    /// We last originated host-like (tunnel) traffic.
    Host,
    /// We last injected LLDP.
    Switch,
}

/// A queued action awaiting the right port class.
enum PendingAction {
    /// Tunnel `frame` to the peer over UDP `port` (host-like traffic).
    AsHost(EthernetFrame, u16),
    /// Inject `frame` raw onto the wire (switch-like traffic).
    AsSwitch(EthernetFrame),
}

impl PendingAction {
    fn required(&self) -> PortBelief {
        match self {
            PendingAction::AsHost(..) => PortBelief::Host,
            PendingAction::AsSwitch(..) => PortBelief::Switch,
        }
    }
}

/// In-band Port Amnesia relay: tunnels LLDP over the SDN dataplane and
/// context-switches (bounces its port) between HOST and SWITCH roles —
/// before every LLDP injection *and* before returning to tunnel traffic,
/// as the paper requires. Each switch costs at least one link-pulse window
/// (≥ 16 ms), the in-band channel's inherent latency penalty (§V-A).
pub struct InBandRelayAttacker {
    config: RelayConfig,
    /// Statistics.
    pub stats: RelayStats,
    queue: VecDeque<PendingAction>,
    belief: PortBelief,
    bouncing: bool,
}

impl InBandRelayAttacker {
    /// Creates the relay endpoint.
    pub fn new(config: RelayConfig) -> Self {
        InBandRelayAttacker {
            config,
            stats: RelayStats::default(),
            queue: VecDeque::new(),
            belief: PortBelief::Any,
            bouncing: false,
        }
    }

    fn tunnel_now(&mut self, ctx: &mut HostCtx<'_>, inner: &EthernetFrame, port: u16) {
        let info = ctx.info();
        let dgram = UdpDatagram::new(port, port, inner.encode().to_vec());
        let pkt = Ipv4Packet::new(info.ip, self.config.peer_ip, Transport::Udp(dgram));
        ctx.send_ipv4(self.config.peer_mac, pkt);
    }

    /// Executes queued actions whose required class matches the current
    /// belief; otherwise performs a port-amnesia bounce and retries on
    /// interface-up.
    fn pump(&mut self, ctx: &mut HostCtx<'_>) {
        if self.bouncing {
            return;
        }
        while let Some(front_kind) = self.queue.front().map(|a| a.required()) {
            if self.belief == PortBelief::Any || self.belief == front_kind {
                let Some(action) = self.queue.pop_front() else {
                    break;
                };
                match action {
                    PendingAction::AsHost(frame, port) => {
                        self.tunnel_now(ctx, &frame, port);
                        self.belief = PortBelief::Host;
                    }
                    PendingAction::AsSwitch(frame) => {
                        if frame.is_lldp() {
                            self.stats.lldp_injected += 1;
                        }
                        ctx.send_frame(frame);
                        self.belief = PortBelief::Switch;
                    }
                }
            } else {
                // Wrong class: context switch via port amnesia.
                self.bouncing = true;
                self.stats.amnesia_cycles += 1;
                ctx.iface_down();
                ctx.schedule_iface_up(self.config.hold_down, None);
                return;
            }
        }
    }

    fn enqueue(&mut self, ctx: &mut HostCtx<'_>, action: PendingAction) {
        self.queue.push_back(action);
        self.pump(ctx);
    }
}

impl HostApp for InBandRelayAttacker {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.set_respond_icmp(false);
        ctx.set_respond_tcp(false);
        if self.config.warmup_traffic {
            ctx.set_timer(self.config.warmup_delay, TIMER_WARMUP);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, id: u64) {
        if id == TIMER_WARMUP {
            let info = ctx.info();
            let arp = sdn_types::packet::ArpPacket::request(info.mac, info.ip, self.config.peer_ip);
            ctx.send_frame(EthernetFrame::new(
                info.mac,
                MacAddr::BROADCAST,
                Payload::Arp(arp),
            ));
            self.belief = PortBelief::Host;
        }
    }

    fn on_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) -> FrameDisposition {
        if ctx.now().as_nanos() < self.config.start_after.as_nanos() {
            return FrameDisposition::Pass;
        }
        if frame.is_lldp() {
            // Capture: tunnel to the peer over the dataplane. Tunnel
            // traffic is our own first-hop (host-like) traffic, so if the
            // port is currently profiled SWITCH we must context-switch
            // first — the cost of having no side channel.
            self.stats.lldp_captured += 1;
            self.enqueue(ctx, PendingAction::AsHost(frame.clone(), INBAND_LLDP_PORT));
            return FrameDisposition::Consume;
        }

        // Tunnel arrivals addressed to us. The destination check matters:
        // once the fabricated link shortcuts the attackers' own dataplane
        // path, the controller routes our tunnel packets back out our own
        // port — those echoes must be dropped, not decapsulated, or the
        // relay would advertise a switch port linked to itself.
        let Some(ip) = frame.ipv4() else {
            return FrameDisposition::Pass;
        };
        if ip.dst != ctx.info().ip {
            if let Transport::Udp(dgram) = &ip.transport {
                if dgram.dst_port == INBAND_LLDP_PORT || dgram.dst_port == INBAND_DATA_PORT {
                    return FrameDisposition::Consume; // our own echoed tunnel traffic
                }
            }
            return FrameDisposition::Pass;
        }
        if let Transport::Udp(dgram) = &ip.transport {
            if dgram.dst_port == INBAND_LLDP_PORT {
                if let Ok(inner) = EthernetFrame::parse(&dgram.data) {
                    // Injecting LLDP is switch-like: context-switch if the
                    // port is currently HOST — every single time.
                    self.enqueue(ctx, PendingAction::AsSwitch(inner));
                }
                return FrameDisposition::Consume;
            }
            if dgram.dst_port == INBAND_DATA_PORT {
                if let Ok(inner) = EthernetFrame::parse(&dgram.data) {
                    self.stats.bridged_from_peer += 1;
                    self.enqueue(ctx, PendingAction::AsSwitch(inner));
                }
                return FrameDisposition::Consume;
            }
        }

        if self.config.bridge_dataplane {
            self.stats.bridged_to_peer += 1;
            self.enqueue(ctx, PendingAction::AsHost(frame.clone(), INBAND_DATA_PORT));
            return FrameDisposition::Consume;
        }
        FrameDisposition::Pass
    }

    fn on_iface_up(&mut self, ctx: &mut HostCtx<'_>) {
        if !self.bouncing {
            return;
        }
        self.bouncing = false;
        self.belief = PortBelief::Any;
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
