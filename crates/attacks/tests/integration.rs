//! Integration tests for attack primitives on live simulated networks.

use attacks::idle::{IdleScanConfig, IdleScanProber};
use attacks::{AlertFloodAttacker, FloodConfig};
use netsim::{FrameDisposition, HostApp, HostCtx, LinkProfile, NetworkSpec, Simulator};
use sdn_types::packet::EthernetFrame;
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo};

const SW: DatapathId = DatapathId::new(1);
const ATTACKER: HostId = HostId::new(100);
const ZOMBIE: HostId = HostId::new(2);
const VICTIM: HostId = HostId::new(3);

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index(i)
}

/// A victim app that records frames attributable to the attacker and lets
/// the default stack answer everything.
struct RecordingVictim {
    addressed_by_attacker: usize,
}

impl HostApp for RecordingVictim {
    fn on_frame(&mut self, _ctx: &mut HostCtx<'_>, frame: &EthernetFrame) -> FrameDisposition {
        let attacker_l2 = frame.src == mac(100);
        let attacker_l3 = frame
            .ipv4()
            .is_some_and(|ip| ip.src == IpAddr::new(10, 0, 0, 100));
        if attacker_l2 || attacker_l3 {
            self.addressed_by_attacker += 1;
        }
        FrameDisposition::Pass
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A single switch pre-programmed as a learning-free hub via one FLOOD
/// rule, so hosts can talk without a smart controller.
fn hub_spec() -> NetworkSpec {
    use netsim::{ControllerCtx, ControllerLogic, TimerId};
    use openflow::{Action, FlowMatch, FlowModCommand, OfMessage};

    struct HubController;
    impl ControllerLogic for HubController {
        fn on_start(&mut self, ctx: &mut ControllerCtx<'_>) {
            ctx.send(
                SW,
                OfMessage::FlowMod {
                    command: FlowModCommand::Add,
                    flow_match: FlowMatch::new(),
                    priority: 1,
                    idle_timeout_secs: 0,
                    hard_timeout_secs: 0,
                    actions: vec![Action::Output(PortNo::FLOOD)],
                    cookie: 0,
                },
            );
        }
        fn on_message(&mut self, _: &mut ControllerCtx<'_>, _: DatapathId, _: OfMessage) {}
        fn on_timer(&mut self, _: &mut ControllerCtx<'_>, _: TimerId) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let mut spec = NetworkSpec::new();
    spec.add_switch(SW);
    let link = LinkProfile::fixed(Duration::from_millis(2));
    spec.add_host(ATTACKER, mac(100), IpAddr::new(10, 0, 0, 100));
    spec.add_host(ZOMBIE, mac(2), IpAddr::new(10, 0, 0, 2));
    spec.add_host(VICTIM, mac(3), IpAddr::new(10, 0, 0, 3));
    spec.attach_host(ATTACKER, SW, PortNo::new(1), link);
    spec.attach_host(ZOMBIE, SW, PortNo::new(2), link);
    spec.attach_host(VICTIM, SW, PortNo::new(3), link);
    spec.set_controller(Box::new(HubController));
    spec
}

fn idle_config() -> IdleScanConfig {
    IdleScanConfig {
        zombie_mac: mac(2),
        zombie_ip: IpAddr::new(10, 0, 0, 2),
        victim_mac: mac(3),
        victim_ip: IpAddr::new(10, 0, 0, 3),
        victim_port: 80,
        step_delay: Duration::from_millis(50),
        start_delay: Duration::from_millis(100),
    }
}

#[test]
fn idle_scan_detects_live_victim_with_open_port() {
    let mut spec = hub_spec();
    spec.set_host_app(ATTACKER, Box::new(IdleScanProber::new(idle_config())));
    spec.set_host_app(VICTIM, Box::new(netsim::NullHostApp));
    let mut sim = Simulator::new(spec, 1);
    sim.with_host_app(VICTIM, |_, ctx| ctx.listen_tcp(80));
    sim.run_for(Duration::from_secs(2));
    let prober: &IdleScanProber = sim.host_app_as(ATTACKER).expect("app");
    let result = prober.result.expect("scan completed");
    assert!(result.victim_alive, "{result:?}");
    assert_eq!(
        result.followup_ident.wrapping_sub(result.baseline_ident),
        2,
        "one RST for the victim's SYN-ACK plus one for our follow-up probe"
    );
}

#[test]
fn idle_scan_reports_dead_victim() {
    let mut spec = hub_spec();
    spec.set_host_app(ATTACKER, Box::new(IdleScanProber::new(idle_config())));
    let mut sim = Simulator::new(spec, 2);
    // Victim goes dark before the scan begins.
    sim.host_iface_down(VICTIM);
    sim.run_for(Duration::from_secs(2));
    let prober: &IdleScanProber = sim.host_app_as(ATTACKER).expect("app");
    let result = prober.result.expect("scan completed");
    assert!(!result.victim_alive, "{result:?}");
    assert_eq!(
        result.followup_ident.wrapping_sub(result.baseline_ident),
        1,
        "only our own follow-up probe consumed an IP-ID"
    );
}

#[test]
fn idle_scan_victim_sees_only_zombie_traffic() {
    // "Very high" stealth (Table I): every frame the victim can attribute
    // carries the zombie's identity, never the attacker's.
    let mut spec = hub_spec();
    spec.set_host_app(ATTACKER, Box::new(IdleScanProber::new(idle_config())));
    spec.set_host_app(
        VICTIM,
        Box::new(RecordingVictim {
            addressed_by_attacker: 0,
        }),
    );
    let mut sim = Simulator::new(spec, 3);
    sim.with_host_app(VICTIM, |_, ctx| ctx.listen_tcp(80));
    sim.run_for(Duration::from_secs(2));
    let prober: &IdleScanProber = sim.host_app_as(ATTACKER).expect("app");
    assert!(prober.result.expect("completed").victim_alive);
    // The hub floods, so the victim physically receives zombie-directed
    // frames too — but the spoofed SYN that hits its stack claims the
    // zombie's MAC and IP. The attacker's own zombie probes are the only
    // attacker-attributable frames on the wire, and the victim's recorder
    // sees them purely through flooding, with the victim never *addressed*.
    let victim: &RecordingVictim = sim.host_app_as(VICTIM).expect("app");
    // Flood leakage: the attacker's SYN-ACK probes to the zombie were
    // flooded to every port, so allow exactly those two.
    assert!(
        victim.addressed_by_attacker <= 2,
        "victim saw {} attacker frames",
        victim.addressed_by_attacker
    );
}

#[test]
fn alert_flood_spoofs_round_robin() {
    let victims: Vec<(MacAddr, IpAddr)> = (1..=5)
        .map(|i| (mac(i), IpAddr::new(10, 0, 0, i as u8)))
        .collect();
    let mut spec = hub_spec();
    spec.set_host_app(
        ATTACKER,
        Box::new(AlertFloodAttacker::new(FloodConfig {
            victims,
            interval: Duration::from_millis(20),
            start_delay: Duration::from_millis(10),
        })),
    );
    let mut sim = Simulator::new(spec, 4);
    sim.run_for(Duration::from_secs(1));
    let flooder: &AlertFloodAttacker = sim.host_app_as(ATTACKER).expect("app");
    assert!(flooder.spoofs_sent >= 45, "sent {}", flooder.spoofs_sent);
}
