//! Deterministic, dependency-free random number generation.
//!
//! The workspace's reproduction claims rest on *exact* replay: the same
//! seed must yield the same event trace on every machine, forever. That
//! rules out external RNG crates (whose algorithms and streaming rules can
//! change across versions) and anything seeded from the environment. This
//! crate owns the whole stack:
//!
//! * [`splitmix64`] — the seeding/stream-derivation mixer. Every `u64`
//!   seed is expanded through it into xoshiro's 256-bit state, following
//!   the initialization recommended by Blackman & Vigna.
//! * [`Xoshiro256StarStar`] — the core generator (xoshiro256\*\*), a
//!   public-domain algorithm with a 2²⁵⁶−1 period and excellent
//!   statistical quality at four words of state.
//! * [`Rng`] — the trait the rest of the workspace programs against:
//!   `next_u64`, `gen_range`, `gen_bool`, `fill_bytes`, `gen`.
//! * Stream support: [`Xoshiro256StarStar::fork`] splits off a child
//!   generator (advancing the parent), and
//!   [`Xoshiro256StarStar::stream`] derives the `id`-th independent
//!   stream without mutating the parent — used for per-host RNGs.
//!
//! All methods are `no_std`-shaped (no allocation, no syscalls, no time,
//! no entropy source): determinism is not an option here, it is the only
//! mode.

use std::ops::Range;

/// One step of the SplitMix64 sequence: advances `*state` and returns the
/// next output. Used to expand small seeds into full generator state and
/// to derive independent streams.
///
/// Constants are Sebastiano Vigna's reference implementation (public
/// domain).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The minimal random-generation interface the workspace uses.
///
/// Only [`Rng::next_u64`] is required; everything else is derived from it
/// with fixed, documented transforms so that two implementations with the
/// same `next_u64` sequence produce identical derived values.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (the high half of
    /// [`Rng::next_u64`], which for xoshiro256\*\* carries the
    /// best-mixed bits).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        // Compare against a 53-bit uniform in [0, 1); exact for p = 0 / 1.
        f64_from_bits53(self.next_u64()) < p
    }

    /// Fills `dest` with random bytes (little-endian words of
    /// [`Rng::next_u64`]).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Returns a uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Returns a uniform sample from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

// Allow `&mut R` and trait objects to be used where `R: Rng` is expected.
impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)` using the top
/// 53 bits (the full precision of an f64 mantissa).
fn f64_from_bits53(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly over their full domain via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits53(rng.next_u64())
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types that can be sampled uniformly from a half-open range via
/// [`Rng::gen_range`].
pub trait UniformSample: Copy + PartialOrd {
    /// Draws a uniform sample from `lo..hi`. Panics if `lo >= hi`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                lo + (uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_sint {
    ($($t:ty as $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_sint!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl UniformSample for u128 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let span = hi - lo;
        if span <= u128::from(u64::MAX) {
            lo + u128::from(uniform_u64_below(rng, span as u64))
        } else {
            // Wide ranges: rejection-sample a 128-bit value below span.
            loop {
                let x: u128 = u128::from_rng(rng);
                // Accept with negligible bias by masking to span's bit width.
                let mask = u128::MAX >> span.leading_zeros();
                let x = x & mask;
                if x < span {
                    return lo + x;
                }
            }
        }
    }
}

impl UniformSample for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let u = f64_from_bits53(rng.next_u64());
        let x = lo + u * (hi - lo);
        // Guard against rounding up to `hi` when the span is huge.
        if x < hi {
            x
        } else {
            lo
        }
    }
}

/// Unbiased uniform draw from `[0, span)` (`span == 0` means the full
/// 64-bit domain) via Lemire's multiply-shift with rejection.
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Lemire 2019: multiply a 64-bit draw by span; the high word is the
    // sample, the low word decides rejection of the biased region.
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// The workspace's standard generator: xoshiro256\*\* (Blackman & Vigna,
/// public domain).
///
/// State is four 64-bit words, never all zero. Seeding from a `u64` runs
/// SplitMix64 four times, exactly as the reference implementation
/// recommends, so seeds `0, 1, 2, …` give well-decorrelated sequences.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The default generator alias used across the workspace.
pub type StdRng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Seeds from a single `u64` by expanding it through SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256StarStar { s }
    }

    /// Constructs from raw state words.
    ///
    /// # Panics
    /// Panics if all four words are zero (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
        Xoshiro256StarStar { s }
    }

    /// The raw state words (for diagnostics and replay).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Splits off an independent child generator, advancing `self`.
    ///
    /// The child is seeded from fresh output of the parent, so repeated
    /// forks yield mutually decorrelated generators while the fork
    /// sequence itself stays fully deterministic.
    pub fn fork(&mut self) -> Self {
        Xoshiro256StarStar::seed_from_u64(self.next_u64())
    }

    /// Derives the `id`-th independent stream *without* advancing `self`.
    ///
    /// Streams are keyed off the current state and the id, so
    /// `rng.stream(a)` and `rng.stream(b)` are decorrelated for `a != b`,
    /// and `rng.stream(a)` is stable for as long as `rng` is not used.
    /// This is the per-host RNG construction: one engine seed, one stream
    /// id per entity.
    pub fn stream(&self, id: u64) -> Self {
        let mut sm = self.s[0] ^ self.s[2].rotate_left(17) ^ id.wrapping_mul(0xa076_1d64_78bd_642f);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256StarStar { s }
    }
}

/// Derives the `id`-th independent run seed from a campaign base seed.
///
/// This is the batch-runner counterpart of [`Xoshiro256StarStar::stream`]:
/// `stream_seed(base, a)` and `stream_seed(base, b)` give decorrelated
/// seeds for `a != b`, and the mapping is a pure function of `(base, id)` —
/// so a campaign's run `k` draws the same randomness no matter which
/// worker thread executes it or in what order runs complete.
pub fn stream_seed(base: u64, id: u64) -> u64 {
    let mut rng = Xoshiro256StarStar::seed_from_u64(base).stream(id);
    rng.next_u64()
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_matches_reference_vectors() {
        // Reference: xoshiro256** seeded with state {1, 2, 3, 4} produces
        // this prefix (from the public-domain reference implementation).
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expect: [u64; 6] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
        ];
        for (i, &want) in expect.iter().enumerate() {
            assert_eq!(rng.next_u64(), want, "output {i}");
        }
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference sequence for seed 1234567 (Vigna's splitmix64.c).
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let mut r3 = StdRng::seed_from_u64(43);
        let s1: Vec<u64> = (0..8).map(|_| r1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| r2.next_u64()).collect();
        let s3: Vec<u64> = (0..8).map(|_| r3.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let n = rng.gen_range(1u128..1_000_000_000_000);
            assert!((1..1_000_000_000_000).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Expected 10000 each; 4 sigma ≈ 380.
            assert!((9_500..10_500).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "hits {hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in 0..64 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn fork_decorrelates_and_stays_deterministic() {
        let mut parent1 = StdRng::seed_from_u64(99);
        let mut parent2 = StdRng::seed_from_u64(99);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_eq!(a, b, "same fork sequence must replay");
        let mut d = parent1.fork();
        let c: Vec<u64> = (0..8).map(|_| d.next_u64()).collect();
        assert_ne!(a, c, "successive forks must differ");
    }

    #[test]
    fn streams_are_independent_and_stable() {
        let rng = StdRng::seed_from_u64(5);
        let mut s0a = rng.stream(0);
        let mut s0b = rng.stream(0);
        let mut s1 = rng.stream(1);
        let a: Vec<u64> = (0..8).map(|_| s0a.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s0b.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_eq!(a, b, "stream(id) must be stable");
        assert_ne!(a, c, "distinct ids must be decorrelated");
    }

    #[test]
    fn stream_seed_is_stable_and_id_sensitive() {
        assert_eq!(stream_seed(7, 0), stream_seed(7, 0), "pure in (base, id)");
        assert_ne!(stream_seed(7, 0), stream_seed(7, 1), "ids decorrelate");
        assert_ne!(stream_seed(7, 0), stream_seed(8, 0), "bases decorrelate");
        // Matches the documented construction exactly.
        let mut manual = StdRng::seed_from_u64(7).stream(3);
        assert_eq!(stream_seed(7, 3), manual.next_u64());
    }

    #[test]
    fn mean_of_uniform_f64_is_centered() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
