//! End-to-end scenario tests reproducing the paper's headline claims:
//!
//! * TopoGuard stops a naive LLDP relay, but Port Amnesia bypasses it
//!   (out-of-band and in-band), and SPHINX notices neither.
//! * TOPOGUARD+ detects both Port Amnesia variants (CMM for in-band, LLI
//!   for out-of-band) and blocks the fabricated link.
//! * Port Probing wins the migration race against every stack; alerts only
//!   appear once the real victim rejoins.

use tm_core::hijack::{self, HijackScenario};
use tm_core::linkfab::{self, LinkFabScenario, RelayMode};
use tm_core::DefenseStack;

fn fab(mode: RelayMode, stack: DefenseStack, seed: u64) -> tm_core::LinkFabOutcome {
    linkfab::run(&LinkFabScenario::new(mode, stack, seed))
}

#[test]
fn oob_fabrication_succeeds_with_no_defense() {
    let out = fab(RelayMode::OutOfBand, DefenseStack::None, 1);
    assert!(out.link_established, "fake link must be inferred: {out:?}");
    assert!(out.stats_a.lldp_captured > 0 && out.stats_b.lldp_injected > 0);
}

#[test]
fn mitm_bridge_carries_benign_traffic() {
    // In the Fig. 1 topology the *only* path between h1 and h2 is the
    // fabricated link: completed pings prove the man-in-the-middle works.
    let out = fab(RelayMode::OutOfBand, DefenseStack::None, 2);
    assert!(out.link_established);
    assert!(
        out.benign_pings_ok > 10,
        "pings over fake link: {}",
        out.benign_pings_ok
    );
    assert!(out.bridged_frames > 20, "bridged: {}", out.bridged_frames);
}

#[test]
fn naive_relay_is_caught_by_topoguard() {
    // The defense baseline: without amnesia, LLDP arrives at a HOST port.
    let out = fab(RelayMode::NaiveNoAmnesia, DefenseStack::TopoGuard, 3);
    assert!(out.fabrication_alerts > 0, "TopoGuard must alert: {out:?}");
    assert!(!out.link_established, "TopoGuard blocks the link: {out:?}");
}

#[test]
fn port_amnesia_bypasses_topoguard() {
    // §V-A: "TopoGuard will not raise an alert when we create our false
    // link."
    let out = fab(RelayMode::OutOfBand, DefenseStack::TopoGuard, 4);
    assert!(out.link_established, "{out:?}");
    assert!(!out.detected(), "no alerts expected: {out:?}");
    assert!(out.benign_pings_ok > 10, "MITM functional under TopoGuard");
}

#[test]
fn port_amnesia_bypasses_sphinx() {
    let out = fab(RelayMode::OutOfBand, DefenseStack::Sphinx, 5);
    assert!(out.link_established, "{out:?}");
    assert!(!out.detected(), "SPHINX trusts new links: {out:?}");
}

#[test]
fn port_amnesia_bypasses_topoguard_and_sphinx_together() {
    let out = fab(RelayMode::OutOfBand, DefenseStack::TopoGuardSphinx, 6);
    assert!(out.link_established, "{out:?}");
    assert!(!out.detected(), "combined stack still blind: {out:?}");
}

#[test]
fn topoguard_plus_detects_oob_amnesia() {
    // The §VII evaluation setting: Fig. 9 testbed with real links forming
    // the LLI baseline, attack one minute after bootstrap. The CMM sees the
    // amnesia bounce and/or the LLI sees the relay latency; every
    // fabricated-link update is blocked.
    let out = linkfab::run(&LinkFabScenario::paper_eval(
        RelayMode::OutOfBand,
        DefenseStack::TopoGuardPlus,
        7,
    ));
    assert!(out.detected(), "TOPOGUARD+ must detect: {out:?}");
    assert!(!out.link_established, "TOPOGUARD+ must block: {out:?}");
}

#[test]
fn topoguard_plus_lli_detects_stealthy_oob_relay() {
    // Even with no warmup traffic and no amnesia (nothing for the CMM),
    // the out-of-band channel's latency betrays the relay (Fig. 13).
    let out = linkfab::run(&LinkFabScenario::paper_eval(
        RelayMode::OutOfBandStealthy,
        DefenseStack::TopoGuardPlus,
        8,
    ));
    assert!(out.lli_alerts > 0, "LLI must flag the latency: {out:?}");
    assert!(out.cmm_alerts == 0, "nothing for the CMM to see: {out:?}");
    assert!(!out.link_established, "{out:?}");
}

#[test]
fn stealthy_oob_relay_beats_topoguard_without_lli() {
    let out = fab(RelayMode::OutOfBandStealthy, DefenseStack::TopoGuard, 9);
    assert!(out.link_established, "{out:?}");
    assert!(!out.detected(), "{out:?}");
}

#[test]
fn in_band_amnesia_bypasses_topoguard() {
    let out = fab(RelayMode::InBand, DefenseStack::TopoGuard, 10);
    assert!(out.link_established, "{out:?}");
    assert!(!out.detected(), "{out:?}");
    assert!(
        out.stats_a.amnesia_cycles + out.stats_b.amnesia_cycles >= 2,
        "context switching required: {out:?}"
    );
}

#[test]
fn topoguard_plus_cmm_detects_in_band_amnesia() {
    // Fig. 12: the context switch generates Port-Down/Up during LLDP
    // propagation.
    let out = fab(RelayMode::InBand, DefenseStack::TopoGuardPlus, 11);
    assert!(out.cmm_alerts > 0, "CMM must fire: {out:?}");
    assert!(!out.link_established, "{out:?}");
}

#[test]
fn hijack_wins_the_race_against_every_stack() {
    for (i, stack) in DefenseStack::ALL.into_iter().enumerate() {
        let out = hijack::run(&HijackScenario {
            victim_rejoins: false,
            ..HijackScenario::new(stack, 100 + i as u64)
        });
        assert!(out.hijack_succeeded(), "{stack}: {out:?}");
        assert!(
            out.undetected_before_rejoin(),
            "{stack}: must be indistinguishable from a real migration: {out:?}"
        );
        // Traffic toward the victim now reaches the attacker.
        assert!(
            out.client_pings_during_hijack > 0,
            "{stack}: client flows must be redirected: {out:?}"
        );
    }
}

#[test]
fn hijack_timing_matches_paper_shape() {
    // §V-B: detection ≈ timeout-bound (tens of ms), interface-up within
    // ~hundreds of ms, all well inside a seconds-scale migration window.
    let out = hijack::run(&HijackScenario {
        victim_rejoins: false,
        ..HijackScenario::new(DefenseStack::TopoGuardSphinx, 42)
    });
    let detect = out.detect_delay_ms().expect("victim detected as down");
    assert!(
        (10.0..120.0).contains(&detect),
        "down->believed-down {detect} ms"
    );
    let up = out.iface_up_delay_ms().expect("iface came up");
    assert!(up < 500.0, "down->iface-up {up} ms");
    let ack = out.controller_ack_delay_ms().expect("controller acked");
    assert!(ack < 1000.0, "down->controller-ack {ack} ms");
    assert!(detect <= up && up <= ack, "ordering {detect} {up} {ack}");
}

#[test]
fn victim_rejoin_finally_raises_alerts() {
    // Step (5): once the real victim comes back, the identifier exists at
    // two live locations and the anomaly surfaces.
    let out = hijack::run(&HijackScenario {
        victim_rejoins: true,
        ..HijackScenario::new(DefenseStack::TopoGuardSphinx, 77)
    });
    assert!(out.hijack_succeeded(), "{out:?}");
    assert!(out.undetected_before_rejoin(), "{out:?}");
    assert!(
        out.alerts_total > out.alerts_before_rejoin,
        "rejoin must produce alerts: {out:?}"
    );
}

#[test]
fn identifier_binding_extension_defeats_port_probing() {
    // The §VI-A direction, implemented as an extension: secure identifier
    // binding blocks the unattested rebind, so the hijack never lands even
    // though the attacker wins the timing race.
    let out = hijack::run(&HijackScenario {
        victim_rejoins: true,
        ..HijackScenario::new(DefenseStack::TopoGuardPlusBinding, 321)
    });
    assert!(
        !out.hijack_succeeded(),
        "binding must keep the victim ID off the attacker port: {out:?}"
    );
    assert!(
        out.alerts_total > 0,
        "the spoof attempt must be alerted: {out:?}"
    );
    // The attacker still *tried* (it won the race mechanically).
    assert!(out.timeline.first_spoofed_tx_at.is_some(), "{out:?}");
}

#[test]
fn sphinx_catches_a_lossy_mitm_bridge() {
    // The flip side of "all packets sent to the link are faithfully
    // transited" (§V-A): a greedy MITM that drops traffic breaks SPHINX's
    // per-flow counter conservation and is detected.
    use attacks::{OobRelayAttacker, RelayConfig};
    use controller::{AlertKind, ControllerConfig, SdnController};
    use netsim::apps::PeriodicPinger;
    use netsim::Simulator;
    use sdn_types::Duration;
    use tm_core::testbed;

    let (mut spec, ids) = testbed::fig1_spec(DefenseStack::Sphinx, ControllerConfig::default());
    let lossy = |peer| RelayConfig {
        start_after: Duration::from_secs(5),
        drop_fraction: 0.7,
        ..RelayConfig::oob(peer)
    };
    spec.set_host_app(
        ids.attacker_a,
        Box::new(OobRelayAttacker::new(lossy(ids.attacker_b))),
    );
    spec.set_host_app(
        ids.attacker_b,
        Box::new(OobRelayAttacker::new(lossy(ids.attacker_a))),
    );
    spec.set_host_app(
        ids.h1,
        Box::new(PeriodicPinger::new(ids.h2_ip, Duration::from_millis(250))),
    );
    let mut sim = Simulator::new(spec, 99);
    sim.run_for(Duration::from_secs(60));

    let ctrl: &SdnController = sim.controller_as().expect("controller");
    assert!(
        ctrl.alerts().count(AlertKind::FlowInconsistency) > 0,
        "dropping most of the bridged traffic must break counter conservation: {:?}",
        ctrl.alerts().all().iter().take(3).collect::<Vec<_>>()
    );
    // Contrast: the faithful bridge in `port_amnesia_bypasses_sphinx`
    // produces zero alerts under the same stack.
}

#[test]
fn port_amnesia_is_cadence_agnostic_across_controller_profiles() {
    // Table III: POX and OpenDaylight probe every 5 s with shorter link
    // timeouts. The attack relays whatever cadence the controller uses —
    // the relay must just keep up with the refresh rate, which it does.
    use controller::ControllerProfile;
    for (i, profile) in [
        ControllerProfile::FLOODLIGHT,
        ControllerProfile::POX,
        ControllerProfile::OPENDAYLIGHT,
    ]
    .into_iter()
    .enumerate()
    {
        let out = linkfab::run(&LinkFabScenario {
            profile,
            ..LinkFabScenario::new(
                RelayMode::OutOfBand,
                DefenseStack::TopoGuard,
                400 + i as u64,
            )
        });
        assert!(out.link_established, "{}: {out:?}", profile.name);
        assert!(!out.detected(), "{}: {out:?}", profile.name);
    }
}

#[test]
fn forged_lldp_without_relay_is_stopped_by_authentication() {
    // A weaker attacker that *forges* LLDP (instead of relaying the
    // controller's signed packets) is exactly what authenticated LLDP
    // stops: the signature cannot be produced without the controller key.
    use controller::{ControllerConfig, DirectedLink, SdnController};
    use netsim::{FrameDisposition, HostApp, HostCtx, Simulator};
    use sdn_types::packet::{EthernetFrame, LldpPacket, Payload};
    use sdn_types::{DatapathId, Duration, MacAddr, PortNo};
    use tm_core::testbed;

    /// Claims a link from a switch port the attacker does not control by
    /// injecting self-made LLDP every second.
    struct Forger;
    impl HostApp for Forger {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.set_timer(Duration::from_secs(1), 1);
        }
        fn on_timer(&mut self, ctx: &mut HostCtx<'_>, _id: u64) {
            let info = ctx.info();
            // Forge: "this packet came from switch 0x1 port 2".
            let lldp = LldpPacket::new(DatapathId::new(0x1), PortNo::new(2));
            ctx.send_frame(EthernetFrame::new(
                info.mac,
                MacAddr::LLDP_MULTICAST,
                Payload::Lldp(lldp),
            ));
            ctx.set_timer(Duration::from_secs(1), 1);
        }
        fn on_frame(&mut self, _: &mut HostCtx<'_>, _: &EthernetFrame) -> FrameDisposition {
            FrameDisposition::Consume
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let forged_link = |ids: &tm_core::testbed::Fig1Testbed| {
        DirectedLink::new(
            sdn_types::SwitchPort::new(ids.s1, PortNo::new(2)),
            ids.port_b,
        )
    };

    // Without authentication (plain Floodlight): the forgery lands.
    let (mut spec, ids) = testbed::fig1_spec(DefenseStack::None, ControllerConfig::default());
    spec.set_host_app(ids.attacker_b, Box::new(Forger));
    let mut sim = Simulator::new(spec, 71);
    sim.run_for(Duration::from_secs(10));
    let ctrl: &SdnController = sim.controller_as().unwrap();
    assert!(
        ctrl.topology().contains(&forged_link(&ids)),
        "unsigned controllers accept forged LLDP"
    );

    // With TopoGuard's authenticated LLDP: rejected (and the alert names
    // the receiving port).
    let (mut spec, ids) = testbed::fig1_spec(DefenseStack::TopoGuard, ControllerConfig::default());
    spec.set_host_app(ids.attacker_b, Box::new(Forger));
    let mut sim = Simulator::new(spec, 71);
    sim.run_for(Duration::from_secs(10));
    let ctrl: &SdnController = sim.controller_as().unwrap();
    assert!(
        !ctrl.topology().contains(&forged_link(&ids)),
        "authenticated LLDP must reject forgeries"
    );
    assert!(ctrl.alerts().count(controller::AlertKind::LinkFabrication) > 0);
}
