//! Attack scenarios on generated fabrics: the paper's scenarios must run
//! unchanged on loopy topologies (fat-tree, ring) without broadcast storms,
//! and produce the same verdicts the hand-built testbeds do for the
//! undefended stack.

use tm_core::hijack::{self, HijackScenario};
use tm_core::linkfab::{self, LinkFabScenario, RelayMode};
use tm_core::DefenseStack;
use tm_topo::TopoKind;

#[test]
fn hijack_lands_on_a_fat_tree() {
    // Fat-tree k=4: 20 switches, 16 hosts, plenty of physical cycles. The
    // hijack mechanics (probe timeout -> identity theft -> controller
    // rebind) must work exactly as on the two-switch testbed.
    let out = hijack::run(&HijackScenario::on_fabric(
        TopoKind::FatTree { k: 4 },
        DefenseStack::None,
        3,
    ));
    assert!(out.hijack_succeeded(), "{:?}", out.controller_ack_at);
    assert!(out.undetected_before_rejoin());
    // The client's pings were captured by the attacker during the window.
    assert!(out.client_pings_during_hijack > 0);
}

#[test]
fn hijack_on_a_ring_is_deterministic() {
    let scenario = HijackScenario::on_fabric(
        TopoKind::Ring {
            switches: 4,
            hosts_per_switch: 2,
        },
        DefenseStack::TopoGuardPlus,
        7,
    );
    let a = hijack::run(&scenario);
    let b = hijack::run(&scenario);
    assert!(a.hijack_succeeded());
    assert_eq!(a.trace, b.trace, "same scenario, same seed, same trace");
    assert_eq!(a.metrics.render(), b.metrics.render());
}

#[test]
fn fat_tree_8_hijack_verdict_has_no_lli_false_positives() {
    // Regression for the EXPERIMENTS.md "verdict flip at 80 switches":
    // with a single global LLI latency store, the fat-tree-8 TOPOGUARD+
    // hijack cell read detected = 0.40 ± 0.68 — LLI false positives on
    // the 512-trunk fabric's pooled jitter, not the defense catching the
    // attack. These are the exact two campaign seeds (stream_seed of the
    // default experiment seed, k = 1 and k = 4) that flipped before the
    // per-trunk-baseline fix; the paper's verdict (Port Probing is
    // invisible to TOPOGUARD+) must now hold without alert-kind caveats.
    for k in [1_u64, 4] {
        let seed = tm_rand::stream_seed(0xD5_2018, k);
        let out = hijack::run(&HijackScenario {
            victim_rejoins: false, // the campaign cell measures the stealth window
            ..HijackScenario::on_fabric(
                TopoKind::FatTree { k: 8 },
                DefenseStack::TopoGuardPlus,
                seed,
            )
        });
        assert!(out.hijack_succeeded(), "k={k}: the hijack itself must land");
        assert_eq!(
            out.metrics.counter("topoguard.lli.detections"),
            None,
            "k={k}: per-trunk baselines must not flag honest trunks"
        );
        assert!(
            out.undetected_before_rejoin(),
            "k={k}: detected must read 0, got {} pre-rejoin alerts",
            out.alerts_before_rejoin
        );
    }
}

#[test]
fn oob_relay_fabricates_a_link_across_a_ring() {
    // Undefended controller on a 4-switch ring: the colluders' relayed
    // LLDP commits a fabricated link between their (host) ports.
    let out = linkfab::run(&LinkFabScenario::on_fabric(
        RelayMode::OutOfBand,
        TopoKind::Ring {
            switches: 4,
            hosts_per_switch: 2,
        },
        DefenseStack::None,
        5,
    ));
    assert!(out.link_established, "alerts={}", out.alerts_total);
    // Benign traffic survived the run: no broadcast storm ate the fabric.
    assert!(out.benign_pings_ok > 0);
}

#[test]
fn hijack_verdict_survives_background_load() {
    // The tentpole wiring: the same hijack, but the fabric carries
    // flow-level background traffic for the whole run. The load must be
    // visible (traffic counters advance, the controller fields its
    // Packet-Ins) without perturbing the paper's verdict — and the loaded
    // run stays a pure function of (scenario, seed).
    let scenario = HijackScenario {
        victim_rejoins: false,
        traffic: Some(tm_core::TrafficLoad::steady(64, 0.5)),
        ..HijackScenario::on_fabric(TopoKind::FatTree { k: 4 }, DefenseStack::TopoGuardPlus, 3)
    };
    let a = hijack::run(&scenario);
    assert!(a.hijack_succeeded(), "load must not break the hijack");
    assert!(
        a.undetected_before_rejoin(),
        "verdict must not flip under load: {} pre-rejoin alerts",
        a.alerts_before_rejoin
    );
    let flows = a.metrics.counter("traffic.flows_offered").unwrap_or(0);
    assert!(flows > 50, "background load must actually flow: {flows}");
    let b = hijack::run(&scenario);
    assert_eq!(a.trace, b.trace, "loaded run must stay deterministic");
    assert_eq!(a.metrics.render(), b.metrics.render());
}

#[test]
fn naive_relay_is_still_caught_under_background_load() {
    // TopoGuard's LLDP-integrity check must keep catching the naive relay
    // while the controller is busy with the load's Packet-In stream.
    let loaded = LinkFabScenario {
        traffic: Some(tm_core::TrafficLoad::bursty(64, 1.0)),
        ..LinkFabScenario::on_fabric(
            RelayMode::NaiveNoAmnesia,
            TopoKind::FatTree { k: 4 },
            DefenseStack::TopoGuard,
            5,
        )
    };
    let out = linkfab::run(&loaded);
    assert!(!out.link_established, "naive relay must stay blocked");
    assert!(out.detected(), "alerts={}", out.alerts_total);
    let flows = out.metrics.counter("traffic.flows_offered").unwrap_or(0);
    assert!(flows > 50, "background load must actually flow: {flows}");
}

#[test]
fn unloaded_scenario_is_byte_identical_to_traffic_none() {
    // `traffic: None` must leave the whole event trace byte-identical to
    // a scenario built before the traffic field existed (struct-update
    // from the constructors, which default to None).
    let base =
        HijackScenario::on_fabric(TopoKind::FatTree { k: 4 }, DefenseStack::TopoGuardPlus, 9);
    let explicit = HijackScenario {
        traffic: None,
        ..base
    };
    let a = hijack::run(&base);
    let b = hijack::run(&explicit);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.metrics.render(), b.metrics.render());
    assert_eq!(
        a.metrics.counter("traffic.flows_offered"),
        None,
        "no plan, no traffic counters"
    );
}
