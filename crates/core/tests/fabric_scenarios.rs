//! Attack scenarios on generated fabrics: the paper's scenarios must run
//! unchanged on loopy topologies (fat-tree, ring) without broadcast storms,
//! and produce the same verdicts the hand-built testbeds do for the
//! undefended stack.

use tm_core::hijack::{self, HijackScenario};
use tm_core::linkfab::{self, LinkFabScenario, RelayMode};
use tm_core::DefenseStack;
use tm_topo::TopoKind;

#[test]
fn hijack_lands_on_a_fat_tree() {
    // Fat-tree k=4: 20 switches, 16 hosts, plenty of physical cycles. The
    // hijack mechanics (probe timeout -> identity theft -> controller
    // rebind) must work exactly as on the two-switch testbed.
    let out = hijack::run(&HijackScenario::on_fabric(
        TopoKind::FatTree { k: 4 },
        DefenseStack::None,
        3,
    ));
    assert!(out.hijack_succeeded(), "{:?}", out.controller_ack_at);
    assert!(out.undetected_before_rejoin());
    // The client's pings were captured by the attacker during the window.
    assert!(out.client_pings_during_hijack > 0);
}

#[test]
fn hijack_on_a_ring_is_deterministic() {
    let scenario = HijackScenario::on_fabric(
        TopoKind::Ring {
            switches: 4,
            hosts_per_switch: 2,
        },
        DefenseStack::TopoGuardPlus,
        7,
    );
    let a = hijack::run(&scenario);
    let b = hijack::run(&scenario);
    assert!(a.hijack_succeeded());
    assert_eq!(a.trace, b.trace, "same scenario, same seed, same trace");
    assert_eq!(a.metrics.render(), b.metrics.render());
}

#[test]
fn oob_relay_fabricates_a_link_across_a_ring() {
    // Undefended controller on a 4-switch ring: the colluders' relayed
    // LLDP commits a fabricated link between their (host) ports.
    let out = linkfab::run(&LinkFabScenario::on_fabric(
        RelayMode::OutOfBand,
        TopoKind::Ring {
            switches: 4,
            hosts_per_switch: 2,
        },
        DefenseStack::None,
        5,
    ));
    assert!(out.link_established, "alerts={}", out.alerts_total);
    // Benign traffic survived the run: no broadcast storm ate the fabric.
    assert!(out.benign_pings_ok > 0);
}
