//! Defense robustness under degraded networks: reusable fault profiles and
//! a benign-traffic scenario that measures false positives.
//!
//! The paper's TopoGuard+ components are exactly the ones most sensitive to
//! real-network noise: the LLI's latency fence (§VIII-A) can be tripped by
//! jitter spikes or control-channel congestion with no attacker present,
//! and the CMM's port-state tracking reacts to every flap. This module
//! provides:
//!
//! * [`FaultProfile`] — a small, `Copy` vocabulary of degraded-network
//!   conditions, each expandable into a concrete [`FaultPlan`] for a given
//!   testbed via [`ProfileTargets`]. Scenario structs carry a profile
//!   field so the whole detection matrix can be re-run under faults
//!   (`experiments fault_matrix`).
//! * [`RobustnessScenario`] / [`run`] — the Fig. 9 testbed with benign
//!   traffic only (no attackers): every alert the defense raises is by
//!   construction a false positive, which is what the `lli-under-jitter`,
//!   `cmm-under-flaps`, and `discovery-under-loss` campaigns measure.

use controller::{AlertKind, ControllerConfig, ControllerProfile, SdnController};
use netsim::apps::PeriodicPinger;
use netsim::faults::{FaultPlan, FaultWindow, LossModel};
use netsim::Simulator;
use sdn_types::{DatapathId, Duration, PortNo, SimTime};

use crate::defense::DefenseStack;
use crate::testbed;

/// The fault targets of one testbed topology: which egress directions are
/// trunk links, which host port to flap, which switches exist.
#[derive(Clone, Debug)]
pub struct ProfileTargets {
    /// Egress directions of every inter-switch trunk (both ends).
    pub trunk_egresses: Vec<(DatapathId, PortNo)>,
    /// The host-facing port a flap profile bounces.
    pub flap_port: (DatapathId, PortNo),
    /// Every switch (congestion and restart targets).
    pub dpids: Vec<DatapathId>,
}

impl ProfileTargets {
    /// The Fig. 9 evaluation testbed: s1—s2—s3—s4 in a line, trunks on
    /// ports 1/2, benign host h1 on `(s2, 10)`.
    pub fn fig9() -> Self {
        let s = [
            DatapathId::new(0x1),
            DatapathId::new(0x2),
            DatapathId::new(0x3),
            DatapathId::new(0x4),
        ];
        ProfileTargets {
            trunk_egresses: vec![
                (s[0], PortNo::new(1)),
                (s[1], PortNo::new(1)),
                (s[1], PortNo::new(2)),
                (s[2], PortNo::new(1)),
                (s[2], PortNo::new(2)),
                (s[3], PortNo::new(1)),
            ],
            flap_port: (s[1], PortNo::new(10)),
            dpids: s.to_vec(),
        }
    }

    /// The Fig. 1 demonstration testbed: no real trunk exists (the only
    /// inter-switch path is the fabricated link), so link-directed faults
    /// target the switches' host-facing egresses instead.
    pub fn fig1() -> Self {
        let s1 = DatapathId::new(0x1);
        let s2 = DatapathId::new(0x2);
        ProfileTargets {
            trunk_egresses: vec![
                (s1, PortNo::new(1)),
                (s1, PortNo::new(2)),
                (s2, PortNo::new(1)),
                (s2, PortNo::new(2)),
            ],
            flap_port: (s1, PortNo::new(2)),
            dpids: vec![s1, s2],
        }
    }

    /// The host-location-hijack testbed: one trunk s1:1 ↔ s2:1, benign
    /// client on `(s2, 2)`.
    pub fn hijack() -> Self {
        let s1 = DatapathId::new(0x1);
        let s2 = DatapathId::new(0x2);
        ProfileTargets {
            trunk_egresses: vec![(s1, PortNo::new(1)), (s2, PortNo::new(1))],
            flap_port: (s2, PortNo::new(2)),
            dpids: vec![s1, s2],
        }
    }
}

/// A named degraded-network condition, expandable into a [`FaultPlan`] for
/// any testbed. `Clean` (and every zero-magnitude variant) expands to an
/// empty plan, which `netsim` guarantees is byte-identical to no plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultProfile {
    /// No faults: the baseline every other profile is compared against.
    Clean,
    /// Independent per-transit loss of `pct` percent on every trunk egress.
    TrunkLoss {
        /// Loss percentage (0–100).
        pct: u8,
    },
    /// Latency spikes of mean `spike_ms` (± a quarter of that as jitter)
    /// on every trunk egress.
    TrunkJitter {
        /// Mean extra one-way delay in milliseconds.
        spike_ms: u16,
    },
    /// `count` down/up cycles of the testbed's benign host port, one per
    /// `period_ms`, each outage a quarter period long.
    HostPortFlaps {
        /// Number of flaps.
        count: u8,
        /// Flap period in milliseconds.
        period_ms: u32,
    },
    /// `extra_ms` of queuing delay on every switch's control channel.
    CtrlCongestion {
        /// Extra per-message delay in milliseconds.
        extra_ms: u16,
    },
    /// Every switch restarts once (staggered 2 s apart, 200 ms outage
    /// each), wiping flow tables and re-handshaking.
    SwitchRestarts,
}

impl FaultProfile {
    /// A stable display label (campaign cell names, matrix headers).
    pub fn label(&self) -> String {
        match self {
            FaultProfile::Clean => "clean".to_string(),
            FaultProfile::TrunkLoss { pct } => format!("loss-{pct}pct"),
            FaultProfile::TrunkJitter { spike_ms } => format!("jitter-{spike_ms}ms"),
            FaultProfile::HostPortFlaps { count, .. } => format!("flaps-{count}"),
            FaultProfile::CtrlCongestion { extra_ms } => format!("congestion-{extra_ms}ms"),
            FaultProfile::SwitchRestarts => "restarts".to_string(),
        }
    }

    /// The matrix-robustness sweep: one representative magnitude per fault
    /// family, plus the clean baseline.
    pub const MATRIX_SWEEP: [FaultProfile; 5] = [
        FaultProfile::Clean,
        FaultProfile::TrunkLoss { pct: 20 },
        FaultProfile::TrunkJitter { spike_ms: 3 },
        FaultProfile::CtrlCongestion { extra_ms: 5 },
        FaultProfile::SwitchRestarts,
    ];

    /// Expands the profile into a concrete plan for `targets`, active in
    /// `[from, until)`. Zero-magnitude variants return an empty plan.
    pub fn plan(&self, targets: &ProfileTargets, from: SimTime, until: SimTime) -> FaultPlan {
        let mut plan = FaultPlan::new();
        match *self {
            FaultProfile::Clean => {}
            FaultProfile::TrunkLoss { pct } => {
                if pct > 0 {
                    let window = FaultWindow::new(from, until);
                    let model = LossModel::bernoulli(f64::from(pct.min(100)) / 100.0);
                    for &(dpid, port) in &targets.trunk_egresses {
                        plan.link_loss(dpid, port, model, window);
                    }
                }
            }
            FaultProfile::TrunkJitter { spike_ms } => {
                if spike_ms > 0 {
                    let window = FaultWindow::new(from, until);
                    let extra = Duration::from_micros(u64::from(spike_ms) * 1000);
                    let sd = Duration::from_micros(u64::from(spike_ms) * 250);
                    for &(dpid, port) in &targets.trunk_egresses {
                        plan.latency_spike(dpid, port, extra, sd, window);
                    }
                }
            }
            FaultProfile::HostPortFlaps { count, period_ms } => {
                let (dpid, port) = targets.flap_port;
                for i in 0..u64::from(count) {
                    let down_at = from + Duration::from_millis(u64::from(period_ms) * i);
                    let up_at = down_at + Duration::from_millis(u64::from(period_ms.max(4)) / 4);
                    plan.link_flap(dpid, port, down_at, up_at);
                }
            }
            FaultProfile::CtrlCongestion { extra_ms } => {
                if extra_ms > 0 {
                    let window = FaultWindow::new(from, until);
                    let extra = Duration::from_micros(u64::from(extra_ms) * 1000);
                    for &dpid in &targets.dpids {
                        plan.ctrl_congestion(dpid, extra, window);
                    }
                }
            }
            FaultProfile::SwitchRestarts => {
                for (i, &dpid) in targets.dpids.iter().enumerate() {
                    let at = from + Duration::from_secs(2 * i as u64);
                    plan.switch_restart(dpid, at, Duration::from_millis(200));
                }
            }
        }
        plan
    }
}

/// A benign run of the Fig. 9 testbed under a fault profile: h1 pings h2
/// every 500 ms, no attackers exist, and the defense stack watches a
/// network that is degraded but honest.
#[derive(Clone, Copy, Debug)]
pub struct RobustnessScenario {
    /// The defense stack under test.
    pub stack: DefenseStack,
    /// The injected condition.
    pub profile: FaultProfile,
    /// RNG seed.
    pub seed: u64,
    /// Total run length.
    pub run_for: Duration,
    /// Fault window start (after the defense baselines have formed).
    pub fault_from: Duration,
    /// Fault window end.
    pub fault_until: Duration,
}

impl RobustnessScenario {
    /// Defaults: 4-minute run; faults active from 150 s (after the LLI has
    /// collected its 10-sample baseline at the 15 s Floodlight cadence) to
    /// the end of the run.
    pub fn new(stack: DefenseStack, profile: FaultProfile, seed: u64) -> Self {
        RobustnessScenario {
            stack,
            profile,
            seed,
            run_for: Duration::from_secs(240),
            fault_from: Duration::from_secs(150),
            fault_until: Duration::from_secs(240),
        }
    }
}

/// Outcome of a benign run: with no attacker present, every alert is a
/// false positive.
#[derive(Clone, Debug)]
pub struct RobustnessOutcome {
    /// Total alerts (all false positives).
    pub alerts_total: usize,
    /// LLI (abnormal link latency) false positives.
    pub lli_alerts: usize,
    /// CMM (anomalous control message) false positives.
    pub cmm_alerts: usize,
    /// Link-integrity false positives (fabrication / changed / host-port
    /// traffic).
    pub link_alerts: usize,
    /// Directed links in the controller's topology at the end of the run
    /// (Fig. 9 ground truth: 6).
    pub links_discovered: usize,
    /// Benign pings completed.
    pub benign_pings_ok: u64,
    /// `PortDown` trace events observed.
    pub port_downs: usize,
    /// Telemetry snapshot (includes the `netsim.fault.*` injection
    /// counters attributing the degradation).
    pub metrics: tm_telemetry::MetricsSnapshot,
    /// The full event trace, for determinism checks.
    pub trace: Vec<netsim::TraceEvent>,
}

/// Runs the benign robustness scenario.
pub fn run(scenario: &RobustnessScenario) -> RobustnessOutcome {
    let (mut spec, ids) = testbed::fig9_spec(
        scenario.stack,
        ControllerConfig {
            profile: ControllerProfile::FLOODLIGHT,
            ..ControllerConfig::default()
        },
    );
    spec.set_host_app(
        ids.h1,
        Box::new(PeriodicPinger::new(ids.h2_ip, Duration::from_millis(500))),
    );
    spec.set_telemetry(tm_telemetry::Telemetry::new());

    let plan = scenario.profile.plan(
        &ProfileTargets::fig9(),
        SimTime::ZERO + scenario.fault_from,
        SimTime::ZERO + scenario.fault_until,
    );
    let mut sim = Simulator::with_fault_plan(spec, scenario.seed, plan);
    sim.run_for(scenario.run_for);

    // tm-lint: allow(unwrap-in-lib) -- this scenario installed SdnController itself during setup; a missing controller is a bug in this file, not scenario input
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let alerts = ctrl.alerts();
    RobustnessOutcome {
        alerts_total: alerts.len(),
        lli_alerts: alerts.count(AlertKind::AbnormalLinkLatency),
        cmm_alerts: alerts.count(AlertKind::AnomalousControlMessage),
        link_alerts: alerts.count(AlertKind::LinkFabrication)
            + alerts.count(AlertKind::LinkChanged)
            + alerts.count(AlertKind::TrafficFromSwitchPort),
        links_discovered: ctrl.topology().len(),
        benign_pings_ok: sim
            .host_app_as::<PeriodicPinger>(ids.h1)
            .map(|p| p.received)
            .unwrap_or(0),
        port_downs: sim.trace().count("PortDown"),
        metrics: sim.metrics_snapshot(),
        trace: sim.trace().records().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> (SimTime, SimTime) {
        (SimTime::from_secs(10), SimTime::from_secs(20))
    }

    #[test]
    fn clean_and_zero_magnitude_profiles_expand_to_empty_plans() {
        // The determinism contract hinges on this: an axis cell with a
        // zero-valued parameter must produce *no* plan entries at all, so
        // its run is byte-identical to the clean baseline (a Bernoulli
        // model with p = 0 would never drop, but would still consume RNG
        // draws and diverge the trace).
        let (from, until) = window();
        for targets in [
            ProfileTargets::fig9(),
            ProfileTargets::fig1(),
            ProfileTargets::hijack(),
        ] {
            for profile in [
                FaultProfile::Clean,
                FaultProfile::TrunkLoss { pct: 0 },
                FaultProfile::TrunkJitter { spike_ms: 0 },
                FaultProfile::HostPortFlaps {
                    count: 0,
                    period_ms: 1000,
                },
                FaultProfile::CtrlCongestion { extra_ms: 0 },
            ] {
                assert!(
                    profile.plan(&targets, from, until).is_empty(),
                    "{} must expand to an empty plan",
                    profile.label()
                );
            }
        }
    }

    #[test]
    fn nonzero_profiles_cover_their_targets() {
        let (from, until) = window();
        let targets = ProfileTargets::fig9();
        let loss = FaultProfile::TrunkLoss { pct: 30 }.plan(&targets, from, until);
        assert_eq!(loss.loss().len(), targets.trunk_egresses.len());
        let jitter = FaultProfile::TrunkJitter { spike_ms: 5 }.plan(&targets, from, until);
        assert_eq!(jitter.spikes().len(), targets.trunk_egresses.len());
        let flaps = FaultProfile::HostPortFlaps {
            count: 3,
            period_ms: 2000,
        }
        .plan(&targets, from, until);
        assert_eq!(flaps.flaps().len(), 3);
        let congestion = FaultProfile::CtrlCongestion { extra_ms: 5 }.plan(&targets, from, until);
        assert_eq!(congestion.congestion().len(), targets.dpids.len());
        let restarts = FaultProfile::SwitchRestarts.plan(&targets, from, until);
        assert_eq!(restarts.restarts().len(), targets.dpids.len());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultProfile::Clean.label(), "clean");
        assert_eq!(FaultProfile::TrunkLoss { pct: 20 }.label(), "loss-20pct");
        assert_eq!(
            FaultProfile::TrunkJitter { spike_ms: 3 }.label(),
            "jitter-3ms"
        );
        assert_eq!(
            FaultProfile::HostPortFlaps {
                count: 5,
                period_ms: 2000
            }
            .label(),
            "flaps-5"
        );
        assert_eq!(
            FaultProfile::CtrlCongestion { extra_ms: 5 }.label(),
            "congestion-5ms"
        );
        assert_eq!(FaultProfile::SwitchRestarts.label(), "restarts");
    }

    #[test]
    fn benign_robustness_run_is_deterministic() {
        let scenario = RobustnessScenario {
            run_for: Duration::from_secs(40),
            fault_from: Duration::from_secs(10),
            fault_until: Duration::from_secs(40),
            ..RobustnessScenario::new(
                DefenseStack::TopoGuardPlus,
                FaultProfile::TrunkLoss { pct: 30 },
                7,
            )
        };
        let a = run(&scenario);
        let b = run(&scenario);
        assert_eq!(a.trace, b.trace, "same scenario, same seed, same trace");
        assert_eq!(a.metrics.render(), b.metrics.render());
        assert!(
            a.metrics.counter("netsim.fault.loss_drops").unwrap_or(0) > 0,
            "the loss window must actually drop frames"
        );
    }
}
