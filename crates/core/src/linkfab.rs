//! Link-fabrication scenarios: Port Amnesia in all its variants (§IV-A,
//! §V-A), run against a selectable defense stack.
//!
//! Three topology families are available:
//!
//! * [`FabTopology::Fig1`] — the paper's attack illustration: two switches
//!   joined *only* by the fabricated link, demonstrating a working
//!   man-in-the-middle bridge.
//! * [`FabTopology::Fig9`] — the paper's evaluation testbed: four switches
//!   with real 5 ms links (the LLI's latency baseline), attack launched one
//!   minute after bootstrap as in §VII-A.
//! * [`FabTopology::Fabric`] — any generated fabric (`tm-topo`): the same
//!   attack with colluders placed by the spec's forked attacker stream.

use attacks::{InBandRelayAttacker, OobRelayAttacker, RelayConfig, RelayStats};
use controller::{AlertKind, ControllerConfig, ControllerProfile, DirectedLink, SdnController};
use netsim::apps::PeriodicPinger;
use netsim::{NetworkSpec, Simulator};
use sdn_types::{Duration, SimTime};
use tm_topo::TopoKind;

use crate::defense::DefenseStack;
use crate::fabric::{self, RelayEndpoints};
use crate::robustness::{FaultProfile, ProfileTargets};
use crate::testbed;

/// Which relay variant to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RelayMode {
    /// Out-of-band relay with warmup traffic and port amnesia (Fig. 1).
    OutOfBand,
    /// Out-of-band relay from never-active hosts — no amnesia needed, so
    /// only latency gives it away.
    OutOfBandStealthy,
    /// In-band relay with per-round context switching (§IV-A's weaker
    /// variant). Requires real dataplane connectivity, so always runs on
    /// the Fig. 9 topology.
    InBand,
    /// Out-of-band relay *without* amnesia despite HOST-profiled ports —
    /// the baseline TopoGuard was designed to stop.
    NaiveNoAmnesia,
}

impl RelayMode {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RelayMode::OutOfBand => "oob-amnesia",
            RelayMode::OutOfBandStealthy => "oob-stealthy",
            RelayMode::InBand => "in-band",
            RelayMode::NaiveNoAmnesia => "naive-relay",
        }
    }
}

/// Which testbed to run on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FabTopology {
    /// Two switches joined only by the fabricated link (MITM demo).
    Fig1,
    /// The four-switch evaluation testbed with real links.
    Fig9,
    /// A generated fabric (fat-tree / core–edge / linear / ring).
    Fabric(TopoKind),
}

/// Scenario parameters.
#[derive(Clone, Copy, Debug)]
pub struct LinkFabScenario {
    /// The relay variant.
    pub mode: RelayMode,
    /// The defense stack.
    pub stack: DefenseStack,
    /// RNG seed.
    pub seed: u64,
    /// The testbed. In-band always runs on Fig. 9.
    pub topology: FabTopology,
    /// When the attackers begin relaying (baselines form before this).
    pub attack_start: Duration,
    /// How long to run in total.
    pub run_for: Duration,
    /// Start benign cross-network traffic (exercises the MITM bridge in
    /// the Fig. 1 topology).
    pub benign_traffic: bool,
    /// The controller's timing personality (Table III). The attack is
    /// cadence-agnostic: it relays whatever LLDP the controller sends.
    pub profile: ControllerProfile,
    /// Network degradation active for the whole run ([`FaultProfile::Clean`]
    /// leaves the trace byte-identical to the pre-fault-layer simulator).
    pub faults: FaultProfile,
    /// Flow-level background load riding the fabric for the whole run
    /// (see [`crate::load`]). Only meaningful on
    /// [`FabTopology::Fabric`] — ignored on the hand-built testbeds;
    /// `None` leaves the trace byte-identical to an unloaded run.
    pub traffic: Option<crate::load::TrafficLoad>,
}

impl LinkFabScenario {
    /// The Fig. 1 demonstration: warmup traffic at 1 s, attack from 5 s
    /// (the first LLDP round it can relay is at 15.1 s), 40 s run.
    pub fn new(mode: RelayMode, stack: DefenseStack, seed: u64) -> Self {
        LinkFabScenario {
            mode,
            stack,
            seed,
            topology: FabTopology::Fig1,
            attack_start: Duration::from_secs(5),
            run_for: Duration::from_secs(40),
            benign_traffic: true,
            profile: ControllerProfile::FLOODLIGHT,
            faults: FaultProfile::Clean,
            traffic: None,
        }
    }

    /// The §VII evaluation setting: Fig. 9 testbed, attack launched one
    /// minute after controller bootstrap, 2.5-minute run (long enough for a
    /// blocked link to also age out of the topology).
    pub fn paper_eval(mode: RelayMode, stack: DefenseStack, seed: u64) -> Self {
        LinkFabScenario {
            mode,
            stack,
            seed,
            topology: FabTopology::Fig9,
            attack_start: Duration::from_secs(60),
            run_for: Duration::from_secs(150),
            benign_traffic: true,
            profile: ControllerProfile::FLOODLIGHT,
            faults: FaultProfile::Clean,
            traffic: None,
        }
    }

    /// The [`paper_eval`](LinkFabScenario::paper_eval) timing on a
    /// generated fabric: colluders drawn from the spec's attacker stream,
    /// attack one minute after bootstrap so defense baselines have formed.
    pub fn on_fabric(mode: RelayMode, kind: TopoKind, stack: DefenseStack, seed: u64) -> Self {
        LinkFabScenario {
            topology: FabTopology::Fabric(kind),
            ..LinkFabScenario::paper_eval(mode, stack, seed)
        }
    }
}

/// Scenario outcome.
#[derive(Clone, Debug)]
pub struct LinkFabOutcome {
    /// The fabricated link is present in the controller's topology at the
    /// end of the run.
    pub link_established: bool,
    /// Total defense alerts raised.
    pub alerts_total: usize,
    /// TopoGuard/SPHINX alerts that indicate the fabrication was noticed.
    pub fabrication_alerts: usize,
    /// CMM detections.
    pub cmm_alerts: usize,
    /// LLI detections.
    pub lli_alerts: usize,
    /// Frames the MITM bridge carried.
    pub bridged_frames: u64,
    /// Benign pings completed across the network.
    pub benign_pings_ok: u64,
    /// Relay statistics from attacker A.
    pub stats_a: RelayStats,
    /// Relay statistics from attacker B.
    pub stats_b: RelayStats,
    /// The full simulator event trace, for replay/determinism checks:
    /// two runs with the same scenario must produce identical traces.
    pub trace: Vec<netsim::TraceEvent>,
    /// Telemetry snapshot taken at the end of the run. Deterministic:
    /// same scenario, same seed → byte-identical [`MetricsSnapshot::render`]
    /// output.
    ///
    /// [`MetricsSnapshot::render`]: tm_telemetry::MetricsSnapshot::render
    pub metrics: tm_telemetry::MetricsSnapshot,
}

impl LinkFabOutcome {
    /// "Detected" in the paper's sense: any alert attributable to the
    /// fabrication (TopoGuard link alerts, migration flapping caused by
    /// the bridge, CMM, or LLI).
    pub fn detected(&self) -> bool {
        self.fabrication_alerts + self.cmm_alerts + self.lli_alerts > 0
    }

    /// The attack succeeded: fake link present and no detection.
    pub fn succeeded_undetected(&self) -> bool {
        self.link_established && !self.detected()
    }
}

/// Runs the scenario.
pub fn run(scenario: &LinkFabScenario) -> LinkFabOutcome {
    // The in-band relay needs real dataplane connectivity between the
    // colluders, which Fig. 1 lacks by construction: coerce it to Fig. 9.
    // Generated fabrics have real trunks, so they run in-band as-is.
    let topology = match (scenario.mode, scenario.topology) {
        (RelayMode::InBand, FabTopology::Fig1 | FabTopology::Fig9) => FabTopology::Fig9,
        (_, t) => t,
    };
    match topology {
        FabTopology::Fig1 => {
            let (spec, ids) = testbed::fig1_spec(scenario.stack, scenario_config(scenario));
            let endpoints = RelayEndpoints {
                attacker_a: ids.attacker_a,
                attacker_b: ids.attacker_b,
                port_a: ids.port_a,
                port_b: ids.port_b,
                identity_a: None,
                identity_b: None,
                pinger: Some((ids.h1, ids.h2_ip)),
                // The fabricated link is the sole inter-switch path:
                // bridging dataplane frames across it is loop-free (and is
                // the MITM demonstration itself).
                bridge_dataplane: true,
                traffic_start: Duration::ZERO,
            };
            run_relay(scenario, spec, endpoints, &ProfileTargets::fig1())
        }
        FabTopology::Fig9 => {
            let (spec, ids) = testbed::fig9_spec(scenario.stack, scenario_config(scenario));
            let endpoints = RelayEndpoints {
                attacker_a: ids.attacker_a,
                attacker_b: ids.attacker_b,
                port_a: ids.port_a,
                port_b: ids.port_b,
                identity_a: Some((ids.attacker_a_mac, ids.attacker_a_ip)),
                identity_b: Some((ids.attacker_b_mac, ids.attacker_b_ip)),
                pinger: Some((ids.h1, ids.h2_ip)),
                // On the Fig. 9 testbed the fabricated link closes a loop
                // with the real trunk links; bridging broadcasts across it
                // would start a classic broadcast storm (there is no
                // spanning tree). The paper's evaluation relays LLDP only
                // here — the MITM bridge demo lives on Fig. 1, where the
                // fabricated link is the sole path.
                bridge_dataplane: false,
                traffic_start: Duration::ZERO,
            };
            run_relay(scenario, spec, endpoints, &ProfileTargets::fig9())
        }
        FabTopology::Fabric(kind) => {
            let (spec, endpoints, targets) = fabric::relay_setup(
                kind,
                scenario.stack,
                scenario.seed,
                scenario_config(scenario),
            );
            run_relay(scenario, spec, endpoints, &targets)
        }
    }
}

/// The single relay driver: installs the relay apps described by
/// `endpoints`, runs the scenario, and collects the outcome. All three
/// topology families funnel through here, so scenario mechanics can never
/// drift between the hand-built testbeds and generated fabrics.
fn run_relay(
    scenario: &LinkFabScenario,
    mut spec: NetworkSpec,
    endpoints: RelayEndpoints,
    targets: &ProfileTargets,
) -> LinkFabOutcome {
    let in_band = scenario.mode == RelayMode::InBand;
    if in_band {
        // tm-lint: allow(unwrap-in-lib) -- every topology that reaches the in-band path (Fig. 9, fabrics) publishes colluder identities; Fig. 1 is coerced away in run()
        let (a_mac, a_ip) = endpoints.identity_a.expect("in-band needs A's identity");
        // tm-lint: allow(unwrap-in-lib) -- same contract as identity_a
        let (b_mac, b_ip) = endpoints.identity_b.expect("in-band needs B's identity");
        let cfg_a = RelayConfig {
            start_after: scenario.attack_start,
            ..RelayConfig::in_band(endpoints.attacker_b, b_mac, b_ip)
        };
        let cfg_b = RelayConfig {
            start_after: scenario.attack_start,
            ..RelayConfig::in_band(endpoints.attacker_a, a_mac, a_ip)
        };
        spec.set_host_app(
            endpoints.attacker_a,
            Box::new(InBandRelayAttacker::new(cfg_a)),
        );
        spec.set_host_app(
            endpoints.attacker_b,
            Box::new(InBandRelayAttacker::new(cfg_b)),
        );
    } else {
        let mk = |peer| {
            let base = oob_relay_config(scenario, peer);
            if endpoints.bridge_dataplane {
                base
            } else {
                RelayConfig {
                    bridge_dataplane: false,
                    ..base
                }
            }
        };
        spec.set_host_app(
            endpoints.attacker_a,
            Box::new(OobRelayAttacker::new(mk(endpoints.attacker_b))),
        );
        spec.set_host_app(
            endpoints.attacker_b,
            Box::new(OobRelayAttacker::new(mk(endpoints.attacker_a))),
        );
    }
    if scenario.benign_traffic {
        if let Some((host, target_ip)) = endpoints.pinger {
            spec.set_host_app(
                host,
                Box::new(PeriodicPinger::starting_at(
                    target_ip,
                    Duration::from_millis(500),
                    endpoints.traffic_start,
                )),
            );
        }
    }
    spec.set_telemetry(tm_telemetry::Telemetry::new());
    let mut sim = build_sim(spec, scenario, targets);
    sim.run_for(scenario.run_for);
    let (stats_a, stats_b) = if in_band {
        (
            sim.host_app_as::<InBandRelayAttacker>(endpoints.attacker_a)
                .map(|a| a.stats)
                .unwrap_or_default(),
            sim.host_app_as::<InBandRelayAttacker>(endpoints.attacker_b)
                .map(|a| a.stats)
                .unwrap_or_default(),
        )
    } else {
        (
            sim.host_app_as::<OobRelayAttacker>(endpoints.attacker_a)
                .map(|a| a.stats)
                .unwrap_or_default(),
            sim.host_app_as::<OobRelayAttacker>(endpoints.attacker_b)
                .map(|a| a.stats)
                .unwrap_or_default(),
        )
    };
    collect_outcome(
        &sim,
        endpoints.port_a,
        endpoints.port_b,
        endpoints
            .pinger
            .filter(|_| scenario.benign_traffic)
            .map(|(host, _)| host),
        stats_a,
        stats_b,
    )
}

fn build_sim(
    spec: netsim::NetworkSpec,
    scenario: &LinkFabScenario,
    targets: &ProfileTargets,
) -> Simulator {
    let plan = scenario
        .faults
        .plan(targets, SimTime::ZERO, SimTime::ZERO + scenario.run_for);
    // Flow-level background load: only meaningful on a generated fabric,
    // and opens with the broadcast-safety hold like all fabric traffic.
    let traffic = match (scenario.topology, scenario.traffic) {
        (FabTopology::Fabric(kind), Some(load)) => load.plan_for(
            kind,
            netsim::TrafficWindow::new(
                SimTime::ZERO + fabric::TRAFFIC_START,
                SimTime::ZERO + scenario.run_for,
            ),
        ),
        _ => netsim::TrafficPlan::new(),
    };
    Simulator::with_plans(spec, scenario.seed, plan, traffic)
}

fn scenario_config(scenario: &LinkFabScenario) -> ControllerConfig {
    ControllerConfig {
        profile: scenario.profile,
        ..ControllerConfig::default()
    }
}

fn oob_relay_config(scenario: &LinkFabScenario, peer: sdn_types::HostId) -> RelayConfig {
    let base = match scenario.mode {
        RelayMode::OutOfBand => RelayConfig::oob(peer),
        RelayMode::OutOfBandStealthy => RelayConfig::oob_stealthy(peer),
        RelayMode::NaiveNoAmnesia => RelayConfig {
            use_amnesia: false,
            ..RelayConfig::oob(peer)
        },
        RelayMode::InBand => unreachable!("handled by run_in_band"),
    };
    RelayConfig {
        start_after: scenario.attack_start,
        ..base
    }
}

fn collect_outcome(
    sim: &Simulator,
    fake_a: sdn_types::SwitchPort,
    fake_b: sdn_types::SwitchPort,
    pinger_host: Option<sdn_types::HostId>,
    stats_a: RelayStats,
    stats_b: RelayStats,
) -> LinkFabOutcome {
    let fake_link = DirectedLink::new(fake_a, fake_b);
    // tm-lint: allow(unwrap-in-lib) -- this scenario installed SdnController itself during setup; a missing controller is a bug in this file, not scenario input
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let link_established =
        ctrl.topology().contains(&fake_link) || ctrl.topology().contains(&fake_link.reversed());
    let alerts = ctrl.alerts();
    LinkFabOutcome {
        link_established,
        alerts_total: alerts.len(),
        fabrication_alerts: alerts.count(AlertKind::LinkFabrication)
            + alerts.count(AlertKind::TrafficFromSwitchPort)
            + alerts.count(AlertKind::LinkChanged),
        cmm_alerts: alerts.count(AlertKind::AnomalousControlMessage),
        lli_alerts: alerts.count(AlertKind::AbnormalLinkLatency),
        bridged_frames: stats_a.bridged_to_peer + stats_b.bridged_to_peer,
        benign_pings_ok: pinger_host
            .and_then(|h| sim.host_app_as::<PeriodicPinger>(h))
            .map(|p| p.received)
            .unwrap_or(0),
        stats_a,
        stats_b,
        trace: sim.trace().records().to_vec(),
        metrics: sim.metrics_snapshot(),
    }
}
