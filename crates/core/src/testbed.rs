//! Topology builders for the paper's testbeds.

use controller::ControllerConfig;
use netsim::{LinkProfile, NetworkSpec};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo, SwitchPort};

use crate::defense::DefenseStack;

/// Identifiers for the Fig. 1 testbed: two switches joined *only* by the
/// attackers' fabricated link.
#[derive(Clone, Copy, Debug)]
pub struct Fig1Testbed {
    /// Switch 0x1.
    pub s1: DatapathId,
    /// Switch 0x2.
    pub s2: DatapathId,
    /// Colluding host A (on s1).
    pub attacker_a: HostId,
    /// Colluding host B (on s2).
    pub attacker_b: HostId,
    /// Attacker A's switch port.
    pub port_a: SwitchPort,
    /// Attacker B's switch port.
    pub port_b: SwitchPort,
    /// Benign host on s1.
    pub h1: HostId,
    /// Benign host on s2.
    pub h2: HostId,
    /// Benign host IPs.
    pub h1_ip: IpAddr,
    /// Benign host IPs.
    pub h2_ip: IpAddr,
}

/// Builds the Fig. 1 network: switches 0x1 and 0x2, a colluding host on
/// each, an out-of-band channel between the colluders, and a benign host on
/// each switch. There is **no real inter-switch link** — if traffic flows
/// between h1 and h2, it flows over the fabricated link.
///
/// Dataplane links are 5 ms, the out-of-band channel is 10 ms + 1 ms
/// encode/decode (the Fig. 9 parameters).
pub fn fig1_spec(stack: DefenseStack, config: ControllerConfig) -> (NetworkSpec, Fig1Testbed) {
    let ids = Fig1Testbed {
        s1: DatapathId::new(0x1),
        s2: DatapathId::new(0x2),
        attacker_a: HostId::new(101),
        attacker_b: HostId::new(102),
        port_a: SwitchPort::new(DatapathId::new(0x1), PortNo::new(1)),
        port_b: SwitchPort::new(DatapathId::new(0x2), PortNo::new(1)),
        h1: HostId::new(1),
        h2: HostId::new(2),
        h1_ip: IpAddr::new(10, 0, 0, 1),
        h2_ip: IpAddr::new(10, 0, 0, 2),
    };
    let mut spec = NetworkSpec::new();
    spec.add_switch(ids.s1);
    spec.add_switch(ids.s2);
    let link = LinkProfile::fixed(Duration::from_millis(5));
    spec.add_host(
        ids.attacker_a,
        MacAddr::from_index(101),
        IpAddr::new(10, 0, 0, 101),
    );
    spec.add_host(
        ids.attacker_b,
        MacAddr::from_index(102),
        IpAddr::new(10, 0, 0, 102),
    );
    spec.add_host(ids.h1, MacAddr::from_index(1), ids.h1_ip);
    spec.add_host(ids.h2, MacAddr::from_index(2), ids.h2_ip);
    spec.attach_host(ids.attacker_a, ids.s1, PortNo::new(1), link);
    spec.attach_host(ids.attacker_b, ids.s2, PortNo::new(1), link);
    spec.attach_host(ids.h1, ids.s1, PortNo::new(2), link);
    spec.attach_host(ids.h2, ids.s2, PortNo::new(2), link);
    spec.add_oob_channel(
        ids.attacker_a,
        ids.attacker_b,
        Duration::from_millis(10),
        Duration::from_millis(1),
    );
    spec.set_controller(Box::new(stack.build_controller(config)));
    (spec, ids)
}

/// Identifiers for the Fig. 9 evaluation testbed.
#[derive(Clone, Copy, Debug)]
pub struct Fig9Testbed {
    /// The four switches, in line order s1—s2—s3—s4.
    pub switches: [DatapathId; 4],
    /// Colluding host A (on s1).
    pub attacker_a: HostId,
    /// Colluding host B (on s4).
    pub attacker_b: HostId,
    /// Attacker A's port.
    pub port_a: SwitchPort,
    /// Attacker B's port.
    pub port_b: SwitchPort,
    /// Attacker identifiers (needed for the in-band tunnel).
    pub attacker_a_mac: MacAddr,
    /// Attacker A's IP.
    pub attacker_a_ip: IpAddr,
    /// Attacker B's MAC.
    pub attacker_b_mac: MacAddr,
    /// Attacker B's IP.
    pub attacker_b_ip: IpAddr,
    /// Benign host on s2.
    pub h1: HostId,
    /// Benign host on s3.
    pub h2: HostId,
    /// h1's IP.
    pub h1_ip: IpAddr,
    /// h2's IP.
    pub h2_ip: IpAddr,
}

/// Builds the Fig. 9 evaluation testbed: four switches in a line with 5 ms
/// dataplane links (with the micro-burst model behind Fig. 10's latency
/// spikes), compromised hosts on the two end switches with a 10 ms
/// out-of-band channel, and benign hosts on the middle switches.
pub fn fig9_spec(stack: DefenseStack, config: ControllerConfig) -> (NetworkSpec, Fig9Testbed) {
    let switches = [
        DatapathId::new(0x1),
        DatapathId::new(0x2),
        DatapathId::new(0x3),
        DatapathId::new(0x4),
    ];
    let ids = Fig9Testbed {
        switches,
        attacker_a: HostId::new(101),
        attacker_b: HostId::new(102),
        port_a: SwitchPort::new(switches[0], PortNo::new(10)),
        port_b: SwitchPort::new(switches[3], PortNo::new(10)),
        attacker_a_mac: MacAddr::from_index(101),
        attacker_a_ip: IpAddr::new(10, 0, 0, 101),
        attacker_b_mac: MacAddr::from_index(102),
        attacker_b_ip: IpAddr::new(10, 0, 0, 102),
        h1: HostId::new(1),
        h2: HostId::new(2),
        h1_ip: IpAddr::new(10, 0, 0, 1),
        h2_ip: IpAddr::new(10, 0, 0, 2),
    };
    let mut spec = NetworkSpec::new();
    for dpid in switches {
        spec.add_switch(dpid);
    }
    let trunk = LinkProfile::testbed_dataplane();
    spec.link_switches(
        switches[0],
        PortNo::new(1),
        switches[1],
        PortNo::new(1),
        trunk,
    );
    spec.link_switches(
        switches[1],
        PortNo::new(2),
        switches[2],
        PortNo::new(1),
        trunk,
    );
    spec.link_switches(
        switches[2],
        PortNo::new(2),
        switches[3],
        PortNo::new(1),
        trunk,
    );

    let edge = LinkProfile::fixed(Duration::from_millis(5));
    spec.add_host(ids.attacker_a, ids.attacker_a_mac, ids.attacker_a_ip);
    spec.add_host(ids.attacker_b, ids.attacker_b_mac, ids.attacker_b_ip);
    spec.add_host(ids.h1, MacAddr::from_index(1), ids.h1_ip);
    spec.add_host(ids.h2, MacAddr::from_index(2), ids.h2_ip);
    spec.attach_host(ids.attacker_a, switches[0], PortNo::new(10), edge);
    spec.attach_host(ids.attacker_b, switches[3], PortNo::new(10), edge);
    spec.attach_host(ids.h1, switches[1], PortNo::new(10), edge);
    spec.attach_host(ids.h2, switches[2], PortNo::new(10), edge);
    spec.add_oob_channel(
        ids.attacker_a,
        ids.attacker_b,
        Duration::from_millis(10),
        Duration::from_millis(1),
    );
    spec.set_controller(Box::new(stack.build_controller(config)));
    (spec, ids)
}

/// Identifiers for the host-location-hijack testbed (Fig. 2's scenario).
#[derive(Clone, Copy, Debug)]
pub struct HijackTestbed {
    /// Switch 0x1 (victim's original switch, attacker's switch).
    pub s1: DatapathId,
    /// Switch 0x2 (victim's migration destination).
    pub s2: DatapathId,
    /// The victim host.
    pub victim: HostId,
    /// The victim's stand-in at the migration destination (enabled when
    /// the migration "completes").
    pub victim_new: HostId,
    /// The attacker.
    pub attacker: HostId,
    /// A benign client that keeps sessions toward the victim.
    pub client: HostId,
    /// The victim's MAC.
    pub victim_mac: MacAddr,
    /// The victim's IP.
    pub victim_ip: IpAddr,
    /// The attacker's (original) MAC.
    pub attacker_mac: MacAddr,
    /// The attacker's (original) IP.
    pub attacker_ip: IpAddr,
    /// The client's IP.
    pub client_ip: IpAddr,
    /// The attacker's port.
    pub attacker_port: SwitchPort,
    /// The victim's original port.
    pub victim_port: SwitchPort,
    /// The victim's destination port (on s2).
    pub victim_new_port: SwitchPort,
}

/// Builds the hijack testbed: victim and attacker share switch 0x1 (same
/// subnet — the ARP-ping requirement); the victim's migration target port
/// is on switch 0x2; a benign client on 0x2 talks to the victim.
///
/// The "migration" is modeled with two NICs bearing the victim's identity:
/// `victim` (original location, up initially) and `victim_new` (destination
/// port, brought up when the migration completes). The scenario driver
/// scripts the downtime window between them.
pub fn hijack_spec(stack: DefenseStack, config: ControllerConfig) -> (NetworkSpec, HijackTestbed) {
    let s1 = DatapathId::new(0x1);
    let s2 = DatapathId::new(0x2);
    let ids = HijackTestbed {
        s1,
        s2,
        victim: HostId::new(1),
        victim_new: HostId::new(2),
        attacker: HostId::new(100),
        client: HostId::new(3),
        victim_mac: MacAddr::new([0xAA; 6]),
        victim_ip: IpAddr::new(10, 0, 0, 1),
        attacker_mac: MacAddr::new([0xBB; 6]),
        attacker_ip: IpAddr::new(10, 0, 0, 2),
        client_ip: IpAddr::new(10, 0, 0, 3),
        attacker_port: SwitchPort::new(s1, PortNo::new(5)),
        victim_port: SwitchPort::new(s1, PortNo::new(2)),
        victim_new_port: SwitchPort::new(s2, PortNo::new(4)),
    };
    let mut spec = NetworkSpec::new();
    spec.add_switch(s1);
    spec.add_switch(s2);
    // 5 ms ± 1 ms per traversal: an attacker→victim probe RTT of ≈22 ms
    // with ≈2 ms spread — matching the paper's ≈20 ms enterprise delay
    // model (§V-B1), with enough tail headroom that the 35 ms probe
    // timeout false-positives less than once per million probes.
    let link = LinkProfile::jittered(Duration::from_millis(5), Duration::from_micros(1000));
    spec.link_switches(s1, PortNo::new(1), s2, PortNo::new(1), link);
    spec.add_host(ids.victim, ids.victim_mac, ids.victim_ip);
    spec.add_host(ids.victim_new, ids.victim_mac, ids.victim_ip);
    spec.add_host(ids.attacker, ids.attacker_mac, ids.attacker_ip);
    spec.add_host(ids.client, MacAddr::new([0xCC; 6]), ids.client_ip);
    spec.attach_host(ids.victim, s1, PortNo::new(2), link);
    spec.attach_host(ids.victim_new, s2, PortNo::new(4), link);
    spec.attach_host(ids.attacker, s1, PortNo::new(5), link);
    spec.attach_host(ids.client, s2, PortNo::new(2), link);
    spec.set_controller(Box::new(stack.build_controller(config)));
    (spec, ids)
}
