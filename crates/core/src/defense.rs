//! The defense stacks under evaluation.

use std::fmt;

use controller::{ControllerConfig, SdnController};
use sdn_types::Duration;
use sphinx::{Sphinx, SphinxConfig};
use topoguard::{Cmm, CmmConfig, IdentifierBinding, Lli, LliConfig, TopoGuard, TopoGuardConfig};

/// Which defenses are deployed on the controller.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DefenseStack {
    /// Plain Floodlight: no defense modules.
    None,
    /// TopoGuard (authenticated LLDP + profiler + migration verification).
    TopoGuard,
    /// The SPHINX surrogate (flow graphs + invariants).
    Sphinx,
    /// TopoGuard and SPHINX together — the paper's strongest prior stack.
    TopoGuardSphinx,
    /// TOPOGUARD+: TopoGuard plus the CMM and LLI extensions.
    TopoGuardPlus,
    /// Extension beyond the paper's implementation: TOPOGUARD+ plus the
    /// secure identifier binding the paper recommends against Port Probing
    /// (§VI-A). Scenarios must authorize legitimate migrations through
    /// [`topoguard::IdentifierBinding::authorize`].
    TopoGuardPlusBinding,
}

impl DefenseStack {
    /// The paper's stacks, in evaluation order.
    pub const ALL: [DefenseStack; 5] = [
        DefenseStack::None,
        DefenseStack::TopoGuard,
        DefenseStack::Sphinx,
        DefenseStack::TopoGuardSphinx,
        DefenseStack::TopoGuardPlus,
    ];

    /// The paper's stacks plus the identifier-binding extension.
    pub const ALL_EXTENDED: [DefenseStack; 6] = [
        DefenseStack::None,
        DefenseStack::TopoGuard,
        DefenseStack::Sphinx,
        DefenseStack::TopoGuardSphinx,
        DefenseStack::TopoGuardPlus,
        DefenseStack::TopoGuardPlusBinding,
    ];

    /// Builds a controller with this stack installed, on top of `config`.
    ///
    /// The stack adjusts controller features it depends on: TopoGuard turns
    /// on LLDP signing; SPHINX turns on stats polling; TOPOGUARD+
    /// additionally turns on LLDP timestamping and echo polling.
    pub fn build_controller(&self, mut config: ControllerConfig) -> SdnController {
        match self {
            DefenseStack::None => SdnController::new(config),
            DefenseStack::TopoGuard => {
                config.sign_lldp = true;
                SdnController::new(config)
                    .with_module(Box::new(TopoGuard::new(TopoGuardConfig::default())))
            }
            DefenseStack::Sphinx => {
                config.stats_interval = Some(Duration::from_secs(2));
                SdnController::new(config)
                    .with_module(Box::new(Sphinx::new(SphinxConfig::default())))
            }
            DefenseStack::TopoGuardSphinx => {
                config.sign_lldp = true;
                config.stats_interval = Some(Duration::from_secs(2));
                SdnController::new(config)
                    .with_module(Box::new(TopoGuard::new(TopoGuardConfig::default())))
                    .with_module(Box::new(Sphinx::new(SphinxConfig::default())))
            }
            DefenseStack::TopoGuardPlus => {
                config.sign_lldp = true;
                config.timestamp_lldp = true;
                config.echo_interval = Some(Duration::from_secs(1));
                SdnController::new(config)
                    .with_module(Box::new(TopoGuard::new(TopoGuardConfig::default())))
                    .with_module(Box::new(Cmm::new(CmmConfig::default())))
                    .with_module(Box::new(Lli::new(LliConfig::default())))
            }
            DefenseStack::TopoGuardPlusBinding => {
                config.sign_lldp = true;
                config.timestamp_lldp = true;
                config.echo_interval = Some(Duration::from_secs(1));
                SdnController::new(config)
                    .with_module(Box::new(TopoGuard::new(TopoGuardConfig::default())))
                    .with_module(Box::new(Cmm::new(CmmConfig::default())))
                    .with_module(Box::new(Lli::new(LliConfig::default())))
                    .with_module(Box::new(IdentifierBinding::new()))
            }
        }
    }
}

impl fmt::Display for DefenseStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DefenseStack::None => "none",
            DefenseStack::TopoGuard => "TopoGuard",
            DefenseStack::Sphinx => "SPHINX",
            DefenseStack::TopoGuardSphinx => "TopoGuard+SPHINX",
            DefenseStack::TopoGuardPlus => "TOPOGUARD+",
            DefenseStack::TopoGuardPlusBinding => "TOPOGUARD+ & binding",
        };
        f.write_str(s)
    }
}
