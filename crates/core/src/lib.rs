//! The TopoMirage scenario and evaluation harness.
//!
//! This crate assembles the substrates (simulator, controller, defenses,
//! attacks) into the paper's experiments:
//!
//! * [`defense`] — the defense stacks under evaluation: none, TopoGuard,
//!   SPHINX, TopoGuard+SPHINX, and TOPOGUARD+.
//! * [`testbed`] — topology builders: Fig. 1's two-switch colluding-host
//!   network, Fig. 9's four-switch evaluation testbed (5 ms dataplane
//!   links, 10 ms out-of-band side channel), and the host-location-hijack
//!   testbed.
//! * [`linkfab`] — link-fabrication scenarios (out-of-band, stealthy
//!   out-of-band, in-band, and a naive no-amnesia baseline).
//! * [`hijack`] — the Port Probing / host-location-hijacking scenario with
//!   the full Fig. 3 timeline instrumentation.
//! * [`fabric`] — topology-parameterized elaboration: runs the same
//!   scenarios on generated fat-tree / core–edge / linear / ring fabrics
//!   (`tm-topo`), with attacker placement drawn from the spec's forked
//!   stream.
//! * [`matrix`] — the headline attack × defense detection matrix, on the
//!   paper testbeds or any generated fabric.
//! * [`robustness`] — fault profiles (trunk loss, jitter, flaps, control
//!   congestion, switch restarts) and benign-traffic false-positive
//!   scenarios; every scenario in this crate can run under a profile, and
//!   [`matrix::run_matrix_under`] re-runs the whole matrix per profile.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defense;
pub mod fabric;
pub mod floodsc;
pub mod hijack;
pub mod induced;
pub mod linkfab;
pub mod load;
pub mod matrix;
pub mod robustness;
pub mod scale;
pub mod testbed;

pub use defense::DefenseStack;
pub use fabric::RelayEndpoints;
pub use floodsc::{FloodOutcome, FloodScenario};
pub use hijack::{HijackOutcome, HijackScenario};
pub use linkfab::{FabTopology, LinkFabOutcome, LinkFabScenario, RelayMode};
pub use load::{LoadOutcome, LoadPattern, LoadScenario, TrafficLoad};
pub use matrix::{run_matrix, run_matrix_on, run_matrix_on_loaded, run_matrix_under, MatrixEntry};
pub use robustness::{FaultProfile, ProfileTargets, RobustnessOutcome, RobustnessScenario};
pub use scale::{ScaleOutcome, ScaleScenario};
