//! Fabric elaboration: the bridge between generated topologies
//! (`tm-topo`) and the paper's attack scenarios.
//!
//! The paper evaluates on two hand-built testbeds (Figs. 1 and 9). This
//! module makes every scenario family *topology-parameterized*: it
//! elaborates a [`tm_topo::TopologySpec`] into a full [`NetworkSpec`]
//! (switch fabric, hosts, out-of-band channels, controller stack) and maps
//! the spec's reserved attacker draws onto the existing attacker toolkit,
//! so the hijack and link-fabrication scenarios run unchanged on
//! fat-tree / core–edge / linear / ring fabrics at 4–1000 switches.
//!
//! # Determinism contract
//!
//! The fabric (switches, links, host placements) is a pure function of the
//! topology parameters — the seed never moves a switch or a host. The seed
//! drives exactly one thing: *which* hosts the adversary controls, drawn
//! from the spec's forked attacker stream. Role mapping on top of the draw
//! (victim/client selection, relay-peer fallback) is itself deterministic
//! — first-match scans over the spec's creation-ordered host list — so the
//! whole elaboration is a pure function of `(kind, stack, seed)`.
//!
//! # Broadcast safety
//!
//! Unlike the loop-free paper testbeds, generated fabrics have physical
//! cycles (fat-tree, ring, multi-core core–edge). Scenario setups from
//! this module therefore (a) enable the controller's
//! [`tree_scoped_flood`](controller::ControllerConfig::tree_scoped_flood)
//! mode, and (b) hold all host traffic until [`TRAFFIC_START`], after the
//! controller's first LLDP round has mapped every trunk — before that
//! point every port looks host-facing and a scoped flood would still
//! storm.

use controller::ControllerConfig;
use netsim::{LinkProfile, NetworkSpec};
use sdn_types::{Duration, HostId, IpAddr, MacAddr, SwitchPort};
use tm_topo::{HostPlacement, TopoKind, TopologySpec};

use crate::defense::DefenseStack;
use crate::robustness::ProfileTargets;
use crate::testbed::HijackTestbed;

/// When fabric scenarios let hosts start talking. The first LLDP round
/// (at `first_discovery_delay` ≈ 100 ms) maps every trunk well within a
/// second even on 1000-switch fabrics; 2 s leaves generous margin.
pub const TRAFFIC_START: Duration = Duration::from_secs(2);

/// Trunk and edge links use the hijack-testbed profile (5 ms ± 1 ms per
/// traversal) so probe-RTT semantics — the 35 ms timeout derived from the
/// paper's ≈20 ms enterprise delay model — carry over unchanged.
fn link_profile() -> LinkProfile {
    LinkProfile::jittered(Duration::from_millis(5), Duration::from_micros(1000))
}

/// The controller configuration for fabric runs: `config` with
/// loop-safe flooding forced on.
fn fabric_config(config: ControllerConfig) -> ControllerConfig {
    ControllerConfig {
        tree_scoped_flood: true,
        ..config
    }
}

/// Fault-injection targets for a generated fabric: every trunk egress,
/// every switch, and the first host port as the flap target.
pub fn targets(topo: &TopologySpec) -> ProfileTargets {
    let mut trunk_egresses = Vec::with_capacity(topo.links.len() * 2);
    for l in &topo.links {
        trunk_egresses.push((l.a, l.port_a));
        trunk_egresses.push((l.b, l.port_b));
    }
    let flap_port = topo
        .hosts
        .first()
        .map(|h| (h.dpid, h.port))
        .unwrap_or_else(|| (topo.switches[0], sdn_types::PortNo::new(1)));
    ProfileTargets {
        trunk_egresses,
        flap_port,
        dpids: topo.switches.clone(),
    }
}

/// Elaborates `kind` into the host-location-hijack scenario: attacker and
/// victim co-located where the fabric allows it, a benign client on
/// another switch, and a migration-destination NIC synthesized on the
/// client's switch. Returns the network, the same identifier bundle the
/// hand-built testbed produces (so `hijack::run` is topology-agnostic),
/// and the fabric's fault targets.
pub fn hijack_setup(
    kind: TopoKind,
    stack: DefenseStack,
    seed: u64,
    config: ControllerConfig,
) -> (NetworkSpec, HijackTestbed, ProfileTargets) {
    let topo = kind.generate(seed, 1);
    assert!(
        topo.switches.len() >= 2 && topo.hosts.len() >= 3,
        "hijack on {} needs ≥2 switches and ≥3 hosts (attacker, victim, client)",
        topo.name
    );
    let attacker = *topo
        .placement(topo.attackers[0])
        // tm-lint: allow(unwrap-in-lib) -- generate() reserves exactly the requested attacker draws; a missing placement is a tm-topo bug, not scenario input
        .expect("attacker placement");
    // The victim shares the attacker's switch when possible (the paper's
    // same-subnet ARP-ping setting); otherwise the first other host.
    let victim = *topo
        .hosts
        .iter()
        .find(|h| h.dpid == attacker.dpid && h.id != attacker.id)
        .or_else(|| topo.hosts.iter().find(|h| h.id != attacker.id))
        // tm-lint: allow(unwrap-in-lib) -- the ≥3-hosts assert above guarantees a match
        .expect("victim host");
    // The client prefers a switch away from the victim, so its pings
    // traverse the fabric.
    let client = *topo
        .hosts
        .iter()
        .find(|h| h.id != attacker.id && h.id != victim.id && h.dpid != victim.dpid)
        .or_else(|| {
            topo.hosts
                .iter()
                .find(|h| h.id != attacker.id && h.id != victim.id)
        })
        // tm-lint: allow(unwrap-in-lib) -- the ≥3-hosts assert above guarantees a match
        .expect("client host");
    // The migration destination: the client's switch when distinct,
    // otherwise the first switch that is not the victim's.
    let dest_dpid = if client.dpid != victim.dpid {
        client.dpid
    } else {
        *topo
            .switches
            .iter()
            .find(|&&d| d != victim.dpid)
            // tm-lint: allow(unwrap-in-lib) -- the ≥2-switches assert above guarantees a match
            .expect("destination switch")
    };
    let victim_new = topo.next_host_id();
    let victim_new_port = SwitchPort::new(dest_dpid, topo.free_port(dest_dpid));

    let ids = HijackTestbed {
        s1: victim.dpid,
        s2: dest_dpid,
        victim: victim.id,
        victim_new,
        attacker: attacker.id,
        client: client.id,
        victim_mac: victim.mac,
        victim_ip: victim.ip,
        attacker_mac: attacker.mac,
        attacker_ip: attacker.ip,
        client_ip: client.ip,
        attacker_port: SwitchPort::new(attacker.dpid, attacker.port),
        victim_port: SwitchPort::new(victim.dpid, victim.port),
        victim_new_port,
    };

    let link = link_profile();
    let mut spec = topo.build_network(link, link);
    // The destination NIC carries the victim's identity, exactly like the
    // hand-built testbed's second NIC.
    spec.add_host(victim_new, victim.mac, victim.ip);
    spec.attach_host(victim_new, dest_dpid, victim_new_port.port, link);
    spec.set_controller(Box::new(stack.build_controller(fabric_config(config))));
    let targets = targets(&topo);
    (spec, ids, targets)
}

/// Where the relay scenario's actors sit — produced by the hand-built
/// testbeds and by [`relay_setup`] alike, consumed by the single
/// `linkfab` driver.
#[derive(Clone, Copy, Debug)]
pub struct RelayEndpoints {
    /// Colluding host A.
    pub attacker_a: HostId,
    /// Colluding host B.
    pub attacker_b: HostId,
    /// A's switch port (one end of the fabricated link).
    pub port_a: SwitchPort,
    /// B's switch port (the other end).
    pub port_b: SwitchPort,
    /// A's identity, for the in-band tunnel. `None` on testbeds that
    /// never run in-band (Fig. 1).
    pub identity_a: Option<(MacAddr, IpAddr)>,
    /// B's identity, for the in-band tunnel.
    pub identity_b: Option<(MacAddr, IpAddr)>,
    /// The benign pinger: `(host, target ip)`, when the testbed has a
    /// benign pair to exercise the network (or the MITM bridge).
    pub pinger: Option<(HostId, IpAddr)>,
    /// Whether the relay may bridge dataplane frames. Only safe when the
    /// fabricated link closes no loop (Fig. 1, where it is the sole
    /// inter-switch path).
    pub bridge_dataplane: bool,
    /// Hold benign traffic until this long after start (fabric broadcast
    /// safety; zero on the loop-free testbeds).
    pub traffic_start: Duration,
}

/// Elaborates `kind` into the link-fabrication setting: two colluders on
/// distinct switches joined by the paper's 10 ms out-of-band channel, and
/// a benign ping pair crossing the fabric.
pub fn relay_setup(
    kind: TopoKind,
    stack: DefenseStack,
    seed: u64,
    config: ControllerConfig,
) -> (NetworkSpec, RelayEndpoints, ProfileTargets) {
    let topo = kind.generate(seed, 2);
    assert!(
        topo.switches.len() >= 2,
        "link fabrication on {} needs ≥2 switches",
        topo.name
    );
    let a = *topo
        .placement(topo.attackers[0])
        // tm-lint: allow(unwrap-in-lib) -- generate() reserves exactly the requested attacker draws; a missing placement is a tm-topo bug, not scenario input
        .expect("attacker placement");
    // B must sit on a different switch for the fabricated link to mean
    // anything; when the second draw lands on A's switch, fall back to the
    // first host elsewhere (deterministic: creation order).
    let b = *topo
        .placement(topo.attackers[1])
        .filter(|h| h.dpid != a.dpid)
        .or_else(|| topo.hosts.iter().find(|h| h.dpid != a.dpid))
        // tm-lint: allow(unwrap-in-lib) -- the ≥2-switches assert plus generated fabrics attaching hosts to every edge switch guarantee a match
        .expect("peer attacker on a distinct switch");
    // The benign pair: first two non-colluder hosts on distinct switches.
    let not_colluder = |h: &&HostPlacement| h.id != a.id && h.id != b.id;
    let p1 = topo.hosts.iter().find(not_colluder);
    let p2 = p1.and_then(|p| {
        topo.hosts
            .iter()
            .find(|h| not_colluder(h) && h.id != p.id && h.dpid != p.dpid)
    });
    let pinger = match (p1, p2) {
        (Some(src), Some(dst)) => Some((src.id, dst.ip)),
        _ => None,
    };

    let link = link_profile();
    let mut spec = topo.build_network(link, link);
    spec.add_oob_channel(
        a.id,
        b.id,
        Duration::from_millis(10),
        Duration::from_millis(1),
    );
    spec.set_controller(Box::new(stack.build_controller(fabric_config(config))));

    let endpoints = RelayEndpoints {
        attacker_a: a.id,
        attacker_b: b.id,
        port_a: SwitchPort::new(a.dpid, a.port),
        port_b: SwitchPort::new(b.dpid, b.port),
        identity_a: Some((a.mac, a.ip)),
        identity_b: Some((b.mac, b.ip)),
        pinger,
        // The fabric's real trunks already connect the colluders' switches:
        // bridging broadcasts across the fabricated link would close a loop.
        bridge_dataplane: false,
        traffic_start: TRAFFIC_START,
    };
    let targets = targets(&topo);
    (spec, endpoints, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fat_tree4() -> TopoKind {
        TopoKind::FatTree { k: 4 }
    }

    #[test]
    fn hijack_roles_are_distinct_and_placed() {
        let (_, ids, targets) = hijack_setup(
            fat_tree4(),
            DefenseStack::None,
            7,
            ControllerConfig::default(),
        );
        assert_ne!(ids.victim, ids.attacker);
        assert_ne!(ids.victim, ids.client);
        assert_ne!(ids.attacker, ids.client);
        assert_ne!(ids.victim, ids.victim_new);
        // Co-location: fat-tree edge switches carry k/2 = 2 hosts, so the
        // victim shares the attacker's switch.
        assert_eq!(ids.attacker_port.dpid, ids.victim_port.dpid);
        // The destination is a different switch.
        assert_ne!(ids.victim_new_port.dpid, ids.victim_port.dpid);
        // Fat-tree k=4: 20 switches, 32 directed trunk endpoints… the
        // fault targets cover the fabric, not the Fig. 1 testbed.
        assert_eq!(targets.dpids.len(), 20);
        assert_eq!(targets.trunk_egresses.len(), 2 * 32);
    }

    #[test]
    fn hijack_setup_is_a_pure_function_of_kind_and_seed() {
        let (_, a, _) = hijack_setup(
            fat_tree4(),
            DefenseStack::None,
            42,
            ControllerConfig::default(),
        );
        let (_, b, _) = hijack_setup(
            fat_tree4(),
            DefenseStack::None,
            42,
            ControllerConfig::default(),
        );
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn relay_endpoints_span_two_switches() {
        for seed in 0..8 {
            let (_, ep, _) = relay_setup(
                TopoKind::Ring {
                    switches: 4,
                    hosts_per_switch: 2,
                },
                DefenseStack::None,
                seed,
                ControllerConfig::default(),
            );
            assert_ne!(ep.port_a.dpid, ep.port_b.dpid, "seed {seed}");
            assert!(!ep.bridge_dataplane);
            let (src, _) = ep.pinger.expect("ring-4x2 has benign hosts left over");
            assert_ne!(src, ep.attacker_a);
            assert_ne!(src, ep.attacker_b);
        }
    }
}
