//! Fabric elaboration: the bridge between generated topologies
//! (`tm-topo`) and the paper's attack scenarios.
//!
//! The paper evaluates on two hand-built testbeds (Figs. 1 and 9). This
//! module makes every scenario family *topology-parameterized*: it
//! elaborates a [`tm_topo::TopologySpec`] into a full [`NetworkSpec`]
//! (switch fabric, hosts, out-of-band channels, controller stack) and maps
//! the spec's reserved attacker draws onto the existing attacker toolkit,
//! so the hijack and link-fabrication scenarios run unchanged on
//! fat-tree / core–edge / linear / ring fabrics at 4–1000 switches.
//!
//! # Determinism contract
//!
//! The fabric (switches, links, host placements) is a pure function of the
//! topology parameters — the seed never moves a switch or a host. The seed
//! drives exactly one thing: *which* hosts the adversary controls, drawn
//! from the spec's forked attacker stream. Role mapping on top of the draw
//! (victim/client selection, relay-peer fallback) is itself deterministic
//! — first-match scans over the spec's creation-ordered host list — so the
//! whole elaboration is a pure function of `(kind, stack, seed)`.
//!
//! # Role synthesis
//!
//! Role mapping tolerates fabrics whose switches carry no hosts (the
//! core tier of a 1k-switch core–edge spec) and whose edge switches
//! carry a single host: when the paper's geometry demands a host the
//! fabric does not provide — a victim co-located with the attacker, a
//! relay peer on a distinct switch — the elaborator synthesizes the
//! missing NIC exactly like the hand-built testbeds do, rather than
//! bending the scenario onto a different shape.
//!
//! # Broadcast safety
//!
//! Unlike the loop-free paper testbeds, generated fabrics have physical
//! cycles (fat-tree, ring, multi-core core–edge). Scenario setups from
//! this module therefore (a) enable the controller's
//! [`tree_scoped_flood`](controller::ControllerConfig::tree_scoped_flood)
//! mode, and (b) hold all host traffic until [`TRAFFIC_START`], after the
//! controller's first LLDP round has mapped every trunk — before that
//! point every port looks host-facing and a scoped flood would still
//! storm.

use controller::ControllerConfig;
use netsim::{LinkProfile, NetworkSpec};
use sdn_types::{Duration, HostId, IpAddr, MacAddr, SwitchPort};
use tm_topo::{HostPlacement, TopoKind, TopologySpec};

use crate::defense::DefenseStack;
use crate::robustness::ProfileTargets;
use crate::testbed::HijackTestbed;

/// Synthesizes an extra host on `dpid` with the fabric's own identity
/// scheme (sequential id, id-derived MAC/IP) at the next free port —
/// the same construction [`TopologySpec::build_network`] applies to
/// generated hosts, so synthesized NICs are indistinguishable from
/// placed ones. `offset` spaces multiple synthesized ids apart.
fn synthesize_host(topo: &TopologySpec, dpid: sdn_types::DatapathId, offset: u32) -> HostPlacement {
    let id = HostId::new(topo.next_host_id().0 + offset);
    assert!(
        id.0 <= u16::MAX as u32,
        "synthesized host on {} exceeds the {} addressable hosts",
        topo.name,
        u16::MAX
    );
    HostPlacement {
        id,
        mac: MacAddr::from_index(id.0),
        ip: IpAddr::from_index(id.0 as u16),
        dpid,
        port: topo.free_port(dpid),
    }
}

/// When fabric scenarios let hosts start talking. The first LLDP round
/// (at `first_discovery_delay` ≈ 100 ms) maps every trunk well within a
/// second even on 1000-switch fabrics; 2 s leaves generous margin.
pub const TRAFFIC_START: Duration = Duration::from_secs(2);

/// Trunk and edge links use the hijack-testbed profile (5 ms ± 1 ms per
/// traversal) so probe-RTT semantics — the 35 ms timeout derived from the
/// paper's ≈20 ms enterprise delay model — carry over unchanged.
fn link_profile() -> LinkProfile {
    LinkProfile::jittered(Duration::from_millis(5), Duration::from_micros(1000))
}

/// The controller configuration for fabric runs: `config` with
/// loop-safe flooding forced on.
fn fabric_config(config: ControllerConfig) -> ControllerConfig {
    ControllerConfig {
        tree_scoped_flood: true,
        ..config
    }
}

/// Fault-injection targets for a generated fabric: every trunk egress,
/// every switch, and the first host port as the flap target.
pub fn targets(topo: &TopologySpec) -> ProfileTargets {
    let mut trunk_egresses = Vec::with_capacity(topo.links.len() * 2);
    for l in &topo.links {
        trunk_egresses.push((l.a, l.port_a));
        trunk_egresses.push((l.b, l.port_b));
    }
    let flap_port = topo
        .hosts
        .first()
        .map(|h| (h.dpid, h.port))
        .unwrap_or_else(|| (topo.switches[0], sdn_types::PortNo::new(1)));
    ProfileTargets {
        trunk_egresses,
        flap_port,
        dpids: topo.switches.clone(),
    }
}

/// Elaborates `kind` into the host-location-hijack scenario: attacker and
/// victim co-located where the fabric allows it, a benign client on
/// another switch, and a migration-destination NIC synthesized on the
/// client's switch. Returns the network, the same identifier bundle the
/// hand-built testbed produces (so `hijack::run` is topology-agnostic),
/// and the fabric's fault targets.
pub fn hijack_setup(
    kind: TopoKind,
    stack: DefenseStack,
    seed: u64,
    config: ControllerConfig,
) -> (NetworkSpec, HijackTestbed, ProfileTargets) {
    let topo = kind.generate(seed, 1);
    assert!(
        topo.switches.len() >= 2 && topo.hosts.len() >= 2,
        "hijack on {} needs ≥2 switches and ≥2 hosts (attacker, client; the \
         victim is synthesized when no host co-locates with the attacker)",
        topo.name
    );
    let attacker = *topo
        .placement(topo.attackers[0])
        // tm-lint: allow(unwrap-in-lib) -- generate() reserves exactly the requested attacker draws; a missing placement is a tm-topo bug, not scenario input
        .expect("attacker placement");
    // The victim shares the attacker's switch (the paper's same-subnet
    // ARP-ping setting). On fabrics whose edge switches carry a single
    // host (the 1k-switch core–edge specs), no placed host co-locates
    // with the attacker — synthesize the victim NIC there instead of
    // bending the hijack into a cross-switch migration the paper never
    // evaluates.
    let (victim, victim_synthesized) = match topo
        .hosts
        .iter()
        .find(|h| h.dpid == attacker.dpid && h.id != attacker.id)
    {
        Some(placed) => (*placed, false),
        None => (synthesize_host(&topo, attacker.dpid, 0), true),
    };
    // The client prefers a switch away from the victim, so its pings
    // traverse the fabric.
    let client = *topo
        .hosts
        .iter()
        .find(|h| h.id != attacker.id && h.id != victim.id && h.dpid != victim.dpid)
        .or_else(|| {
            topo.hosts
                .iter()
                .find(|h| h.id != attacker.id && h.id != victim.id)
        })
        // tm-lint: allow(unwrap-in-lib) -- the ≥2-hosts assert above guarantees a non-attacker host; a placed victim leaves one only when hosts ≥3, and generated fabrics with co-located pairs always carry more
        .expect("client host");
    // The migration destination: the client's switch when distinct,
    // otherwise the first switch that is not the victim's.
    let dest_dpid = if client.dpid != victim.dpid {
        client.dpid
    } else {
        *topo
            .switches
            .iter()
            .find(|&&d| d != victim.dpid)
            // tm-lint: allow(unwrap-in-lib) -- the ≥2-switches assert above guarantees a match
            .expect("destination switch")
    };
    // Synthesized ids stay sequential: the co-located victim (when the
    // fabric did not place one) takes `next_host_id`, the migration NIC
    // the id after it.
    let victim_new = HostId::new(topo.next_host_id().0 + u32::from(victim_synthesized));
    let victim_new_port = SwitchPort::new(dest_dpid, topo.free_port(dest_dpid));

    let ids = HijackTestbed {
        s1: victim.dpid,
        s2: dest_dpid,
        victim: victim.id,
        victim_new,
        attacker: attacker.id,
        client: client.id,
        victim_mac: victim.mac,
        victim_ip: victim.ip,
        attacker_mac: attacker.mac,
        attacker_ip: attacker.ip,
        client_ip: client.ip,
        attacker_port: SwitchPort::new(attacker.dpid, attacker.port),
        victim_port: SwitchPort::new(victim.dpid, victim.port),
        victim_new_port,
    };

    let link = link_profile();
    let mut spec = topo.build_network(link, link);
    if victim_synthesized {
        spec.add_host(victim.id, victim.mac, victim.ip);
        spec.attach_host(victim.id, victim.dpid, victim.port, link);
    }
    // The destination NIC carries the victim's identity, exactly like the
    // hand-built testbed's second NIC.
    spec.add_host(victim_new, victim.mac, victim.ip);
    spec.attach_host(victim_new, dest_dpid, victim_new_port.port, link);
    spec.set_controller(Box::new(stack.build_controller(fabric_config(config))));
    let targets = targets(&topo);
    (spec, ids, targets)
}

/// Where the relay scenario's actors sit — produced by the hand-built
/// testbeds and by [`relay_setup`] alike, consumed by the single
/// `linkfab` driver.
#[derive(Clone, Copy, Debug)]
pub struct RelayEndpoints {
    /// Colluding host A.
    pub attacker_a: HostId,
    /// Colluding host B.
    pub attacker_b: HostId,
    /// A's switch port (one end of the fabricated link).
    pub port_a: SwitchPort,
    /// B's switch port (the other end).
    pub port_b: SwitchPort,
    /// A's identity, for the in-band tunnel. `None` on testbeds that
    /// never run in-band (Fig. 1).
    pub identity_a: Option<(MacAddr, IpAddr)>,
    /// B's identity, for the in-band tunnel.
    pub identity_b: Option<(MacAddr, IpAddr)>,
    /// The benign pinger: `(host, target ip)`, when the testbed has a
    /// benign pair to exercise the network (or the MITM bridge).
    pub pinger: Option<(HostId, IpAddr)>,
    /// Whether the relay may bridge dataplane frames. Only safe when the
    /// fabricated link closes no loop (Fig. 1, where it is the sole
    /// inter-switch path).
    pub bridge_dataplane: bool,
    /// Hold benign traffic until this long after start (fabric broadcast
    /// safety; zero on the loop-free testbeds).
    pub traffic_start: Duration,
}

/// Elaborates `kind` into the link-fabrication setting: two colluders on
/// distinct switches joined by the paper's 10 ms out-of-band channel, and
/// a benign ping pair crossing the fabric.
pub fn relay_setup(
    kind: TopoKind,
    stack: DefenseStack,
    seed: u64,
    config: ControllerConfig,
) -> (NetworkSpec, RelayEndpoints, ProfileTargets) {
    let topo = kind.generate(seed, 2);
    assert!(
        topo.switches.len() >= 2,
        "link fabrication on {} needs ≥2 switches",
        topo.name
    );
    let a = *topo
        .placement(topo.attackers[0])
        // tm-lint: allow(unwrap-in-lib) -- generate() reserves exactly the requested attacker draws; a missing placement is a tm-topo bug, not scenario input
        .expect("attacker placement");
    // B must sit on a different switch for the fabricated link to mean
    // anything; when the second draw lands on A's switch, fall back to the
    // first host elsewhere (deterministic: creation order), and when the
    // fabric places no host off A's switch at all (every other switch is
    // a hostless core), synthesize the colluder's NIC on the first such
    // switch — colluders plug into whatever port they can reach.
    let (b, b_synthesized) = match topo
        .placement(topo.attackers[1])
        .filter(|h| h.dpid != a.dpid)
        .or_else(|| topo.hosts.iter().find(|h| h.dpid != a.dpid))
    {
        Some(placed) => (*placed, false),
        None => {
            let dpid = *topo
                .switches
                .iter()
                .find(|&&d| d != a.dpid)
                // tm-lint: allow(unwrap-in-lib) -- the ≥2-switches assert above guarantees a match
                .expect("a switch distinct from colluder A's");
            (synthesize_host(&topo, dpid, 0), true)
        }
    };
    // The benign pair: first two non-colluder hosts on distinct switches.
    let not_colluder = |h: &&HostPlacement| h.id != a.id && h.id != b.id;
    let p1 = topo.hosts.iter().find(not_colluder);
    let p2 = p1.and_then(|p| {
        topo.hosts
            .iter()
            .find(|h| not_colluder(h) && h.id != p.id && h.dpid != p.dpid)
    });
    let pinger = match (p1, p2) {
        (Some(src), Some(dst)) => Some((src.id, dst.ip)),
        _ => None,
    };

    let link = link_profile();
    let mut spec = topo.build_network(link, link);
    if b_synthesized {
        spec.add_host(b.id, b.mac, b.ip);
        spec.attach_host(b.id, b.dpid, b.port, link);
    }
    spec.add_oob_channel(
        a.id,
        b.id,
        Duration::from_millis(10),
        Duration::from_millis(1),
    );
    spec.set_controller(Box::new(stack.build_controller(fabric_config(config))));

    let endpoints = RelayEndpoints {
        attacker_a: a.id,
        attacker_b: b.id,
        port_a: SwitchPort::new(a.dpid, a.port),
        port_b: SwitchPort::new(b.dpid, b.port),
        identity_a: Some((a.mac, a.ip)),
        identity_b: Some((b.mac, b.ip)),
        pinger,
        // The fabric's real trunks already connect the colluders' switches:
        // bridging broadcasts across the fabricated link would close a loop.
        bridge_dataplane: false,
        traffic_start: TRAFFIC_START,
    };
    let targets = targets(&topo);
    (spec, endpoints, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fat_tree4() -> TopoKind {
        TopoKind::FatTree { k: 4 }
    }

    #[test]
    fn hijack_roles_are_distinct_and_placed() {
        let (_, ids, targets) = hijack_setup(
            fat_tree4(),
            DefenseStack::None,
            7,
            ControllerConfig::default(),
        );
        assert_ne!(ids.victim, ids.attacker);
        assert_ne!(ids.victim, ids.client);
        assert_ne!(ids.attacker, ids.client);
        assert_ne!(ids.victim, ids.victim_new);
        // Co-location: fat-tree edge switches carry k/2 = 2 hosts, so the
        // victim shares the attacker's switch.
        assert_eq!(ids.attacker_port.dpid, ids.victim_port.dpid);
        // The destination is a different switch.
        assert_ne!(ids.victim_new_port.dpid, ids.victim_port.dpid);
        // Fat-tree k=4: 20 switches, 32 directed trunk endpoints… the
        // fault targets cover the fabric, not the Fig. 1 testbed.
        assert_eq!(targets.dpids.len(), 20);
        assert_eq!(targets.trunk_egresses.len(), 2 * 32);
    }

    #[test]
    fn hijack_setup_is_a_pure_function_of_kind_and_seed() {
        let (_, a, _) = hijack_setup(
            fat_tree4(),
            DefenseStack::None,
            42,
            ControllerConfig::default(),
        );
        let (_, b, _) = hijack_setup(
            fat_tree4(),
            DefenseStack::None,
            42,
            ControllerConfig::default(),
        );
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// 1000 switches: 8 hostless cores, 992 single-host edges.
    fn core_edge_1k() -> TopoKind {
        TopoKind::CoreEdge {
            core: 8,
            edge: 992,
            hosts_per_edge: 1,
        }
    }

    #[test]
    fn hijack_roles_tolerate_single_host_edges_at_1k_switches() {
        for seed in 0..4 {
            let (_, ids, targets) = hijack_setup(
                core_edge_1k(),
                DefenseStack::None,
                seed,
                ControllerConfig::default(),
            );
            // No placed host shares the attacker's switch, so the victim
            // is synthesized co-located — the paper's same-subnet setting
            // survives single-host edges.
            assert_eq!(
                ids.attacker_port.dpid, ids.victim_port.dpid,
                "seed {seed}: victim must co-locate with the attacker"
            );
            assert_ne!(ids.victim_port.port, ids.attacker_port.port);
            assert_ne!(ids.victim, ids.attacker);
            assert_ne!(ids.victim, ids.client);
            assert_ne!(ids.victim, ids.victim_new, "ids stay sequential");
            assert_ne!(ids.victim_new_port.dpid, ids.victim_port.dpid);
            // The fault surface covers the full 1k fabric.
            assert_eq!(targets.dpids.len(), 1000);
            // Synthesized ids extend the fabric's sequence: 992 placed
            // hosts, then the victim, then the migration NIC.
            assert_eq!(ids.victim, sdn_types::HostId::new(993), "seed {seed}");
            assert_eq!(ids.victim_new, sdn_types::HostId::new(994), "seed {seed}");
        }
    }

    #[test]
    fn relay_peer_lands_on_a_hostless_core_when_no_edge_remains() {
        // 4 hostless cores + a single edge switch holding every host: the
        // only switches distinct from colluder A's are cores, so B's NIC
        // is synthesized on one of them.
        let (_, ep, _) = relay_setup(
            TopoKind::CoreEdge {
                core: 4,
                edge: 1,
                hosts_per_edge: 3,
            },
            DefenseStack::None,
            11,
            ControllerConfig::default(),
        );
        assert_ne!(ep.port_a.dpid, ep.port_b.dpid);
        assert_ne!(ep.attacker_a, ep.attacker_b);
        assert!(ep.identity_b.is_some());
    }

    #[test]
    fn relay_endpoints_span_two_switches_at_1k_switches() {
        for seed in 0..4 {
            let (_, ep, targets) = relay_setup(
                core_edge_1k(),
                DefenseStack::None,
                seed,
                ControllerConfig::default(),
            );
            assert_ne!(ep.port_a.dpid, ep.port_b.dpid, "seed {seed}");
            assert!(ep.pinger.is_some(), "seed {seed}: 990 benign hosts remain");
            assert_eq!(targets.dpids.len(), 1000);
        }
    }

    #[test]
    fn relay_endpoints_span_two_switches() {
        for seed in 0..8 {
            let (_, ep, _) = relay_setup(
                TopoKind::Ring {
                    switches: 4,
                    hosts_per_switch: 2,
                },
                DefenseStack::None,
                seed,
                ControllerConfig::default(),
            );
            assert_ne!(ep.port_a.dpid, ep.port_b.dpid, "seed {seed}");
            assert!(!ep.bridge_dataplane);
            let (src, _) = ep.pinger.expect("ring-4x2 has benign hosts left over");
            assert_ne!(src, ep.attacker_a);
            assert_ne!(src, ep.attacker_b);
        }
    }
}
