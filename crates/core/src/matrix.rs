//! The headline attack × defense detection matrix (§V, §VII).
//!
//! Expected shape (the paper's result):
//!
//! | Attack              | none | TopoGuard | SPHINX | TG+SPHINX | TOPOGUARD+ |
//! |---------------------|------|-----------|--------|-----------|------------|
//! | naive LLDP relay    | ✔    | ✘ caught  | ✔      | ✘ caught  | ✘ caught   |
//! | OOB Port Amnesia    | ✔    | ✔ bypass  | ✔      | ✔ bypass  | ✘ caught   |
//! | in-band Port Amnesia| ✔    | ✔ bypass  | ✔      | ✔ bypass  | ✘ caught   |
//! | Port Probing hijack | ✔    | ✔ bypass  | ✔      | ✔ bypass  | ✔ bypass   |
//!
//! (Port Probing is out of TOPOGUARD+'s scope; the paper defers to secure
//! identifier binding, §VI-A.)

use tm_topo::TopoKind;

use crate::defense::DefenseStack;
use crate::hijack::{self, HijackScenario};
use crate::linkfab::{self, LinkFabScenario, RelayMode};
use crate::load::TrafficLoad;
use crate::robustness::FaultProfile;

/// One matrix cell.
#[derive(Clone, Debug)]
pub struct MatrixEntry {
    /// The attack's name.
    pub attack: &'static str,
    /// The defense stack's name.
    pub defense: String,
    /// Did the attack achieve its goal (fake link committed / identity
    /// bound to the attacker)?
    pub succeeded: bool,
    /// Did any defense alert fire during the attack window?
    pub detected: bool,
    /// Total alerts observed.
    pub alerts: usize,
    /// The cell's panic message, when its scenario crashed instead of
    /// completing. A failed cell reports `FAILED(<cause>)` and the matrix
    /// run continues — one bad cell must not take down the whole driver.
    pub failure: Option<String>,
}

impl MatrixEntry {
    /// A cell whose scenario panicked; outcome fields are zeroed.
    fn failed(attack: &'static str, defense: String, cause: String) -> MatrixEntry {
        MatrixEntry {
            attack,
            defense,
            succeeded: false,
            detected: false,
            alerts: 0,
            failure: Some(cause),
        }
    }
}

/// Runs the paper's matrix (5 stacks) with the given base seed. Each
/// (attack, defense) cell runs one scenario; seeds are derived
/// deterministically.
pub fn run_matrix(base_seed: u64) -> Vec<MatrixEntry> {
    run_matrix_with(&DefenseStack::ALL, base_seed)
}

/// Runs the matrix including the identifier-binding extension row.
pub fn run_matrix_extended(base_seed: u64) -> Vec<MatrixEntry> {
    run_matrix_with(&DefenseStack::ALL_EXTENDED, base_seed)
}

/// Runs the matrix over an explicit stack list (on a clean network).
pub fn run_matrix_with(stacks: &[DefenseStack], base_seed: u64) -> Vec<MatrixEntry> {
    run_matrix_impl(stacks, base_seed, FaultProfile::Clean, None, None)
}

/// Runs the matrix on a generated fabric instead of the paper testbeds:
/// the same attacks and defenses, with actor placement drawn from the
/// spec's forked attacker stream. Comparing this against [`run_matrix`]
/// answers whether a verdict is a property of the defense or of the
/// two-switch demonstration topology.
pub fn run_matrix_on(kind: TopoKind, stacks: &[DefenseStack], base_seed: u64) -> Vec<MatrixEntry> {
    run_matrix_impl(stacks, base_seed, FaultProfile::Clean, Some(kind), None)
}

/// Runs the fabric matrix with flow-level background load riding every
/// cell (see [`crate::load`]): the same attacks and defenses, but the
/// detectors form their baselines — and must keep their verdicts — while
/// the controller fields the load's Packet-In stream.
pub fn run_matrix_on_loaded(
    kind: TopoKind,
    stacks: &[DefenseStack],
    base_seed: u64,
    load: TrafficLoad,
) -> Vec<MatrixEntry> {
    run_matrix_impl(
        stacks,
        base_seed,
        FaultProfile::Clean,
        Some(kind),
        Some(load),
    )
}

/// Re-runs the full matrix (5 stacks) with every scenario degraded by
/// `profile` — does detection survive a network that is lossy, jittery, or
/// congested? `experiments fault_matrix` sweeps this over
/// [`FaultProfile::MATRIX_SWEEP`].
pub fn run_matrix_under(profile: FaultProfile, base_seed: u64) -> Vec<MatrixEntry> {
    run_matrix_impl(&DefenseStack::ALL, base_seed, profile, None, None)
}

fn run_matrix_impl(
    stacks: &[DefenseStack],
    base_seed: u64,
    faults: FaultProfile,
    fabric: Option<TopoKind>,
    load: Option<TrafficLoad>,
) -> Vec<MatrixEntry> {
    let mut entries = Vec::new();
    for (i, stack) in stacks.iter().copied().enumerate() {
        let seed = base_seed.wrapping_add(i as u64 * 1009);

        for mode in [
            RelayMode::NaiveNoAmnesia,
            RelayMode::OutOfBand,
            RelayMode::InBand,
        ] {
            // The evaluation setting (§VII): Fig. 9 testbed (or the given
            // fabric), attack one minute after bootstrap so defense
            // baselines have formed. Isolated: a panicking cell becomes a
            // FAILED entry.
            match tm_campaign::isolate(|| {
                let base = match fabric {
                    None => LinkFabScenario::paper_eval(mode, stack, seed),
                    Some(kind) => LinkFabScenario::on_fabric(mode, kind, stack, seed),
                };
                linkfab::run(&LinkFabScenario {
                    faults,
                    traffic: load,
                    ..base
                })
            }) {
                Ok(outcome) => entries.push(MatrixEntry {
                    attack: mode.name(),
                    defense: stack.to_string(),
                    succeeded: outcome.link_established,
                    detected: outcome.detected(),
                    alerts: outcome.alerts_total,
                    failure: None,
                }),
                Err(cause) => {
                    entries.push(MatrixEntry::failed(mode.name(), stack.to_string(), cause))
                }
            }
        }

        match tm_campaign::isolate(|| {
            let base = match fabric {
                None => HijackScenario::new(stack, seed),
                Some(kind) => HijackScenario::on_fabric(kind, stack, seed),
            };
            hijack::run(&HijackScenario {
                victim_rejoins: false, // measure the stealth window itself
                faults,
                traffic: load,
                ..base
            })
        }) {
            Ok(outcome) => entries.push(MatrixEntry {
                attack: "port-probing-hijack",
                defense: stack.to_string(),
                succeeded: outcome.hijack_succeeded(),
                detected: outcome.alerts_before_rejoin > 0,
                alerts: outcome.alerts_total,
                failure: None,
            }),
            Err(cause) => {
                entries.push(MatrixEntry::failed(
                    "port-probing-hijack",
                    stack.to_string(),
                    cause,
                ));
            }
        }
    }
    entries
}

/// Renders the matrix as an aligned text table.
pub fn render(entries: &[MatrixEntry]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<18} {:<10} {:<10} {:<7}\n",
        "attack", "defense", "succeeded", "detected", "alerts"
    ));
    for e in entries {
        if let Some(cause) = &e.failure {
            out.push_str(&format!(
                "{:<22} {:<18} FAILED({cause})\n",
                e.attack, e.defense
            ));
        } else {
            out.push_str(&format!(
                "{:<22} {:<18} {:<10} {:<10} {:<7}\n",
                e.attack, e.defense, e.succeeded, e.detected, e.alerts
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_failed_cells_without_outcome_columns() {
        let entries = vec![
            MatrixEntry {
                attack: "oob-amnesia",
                defense: "TopoGuard".to_string(),
                succeeded: true,
                detected: false,
                alerts: 0,
                failure: None,
            },
            MatrixEntry::failed(
                "in-band",
                "TopoGuard".to_string(),
                "deliberate failure".to_string(),
            ),
        ];
        let text = render(&entries);
        assert!(text.contains("true       false      0"), "{text}");
        assert!(
            text.contains("in-band                TopoGuard          FAILED(deliberate failure)"),
            "{text}"
        );
    }

    #[test]
    fn a_panicking_cell_does_not_abort_the_matrix() {
        // Drive the isolation path directly: the scenario closure panics,
        // the entry records the cause.
        let entry = match tm_campaign::isolate(|| -> bool { panic!("cell exploded") }) {
            Ok(_) => unreachable!("closure panics"),
            Err(cause) => MatrixEntry::failed("test-attack", "none".to_string(), cause),
        };
        assert_eq!(entry.failure.as_deref(), Some("cell exploded"));
        assert!(!entry.succeeded && !entry.detected && entry.alerts == 0);
    }
}
