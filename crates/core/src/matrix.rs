//! The headline attack × defense detection matrix (§V, §VII).
//!
//! Expected shape (the paper's result):
//!
//! | Attack              | none | TopoGuard | SPHINX | TG+SPHINX | TOPOGUARD+ |
//! |---------------------|------|-----------|--------|-----------|------------|
//! | naive LLDP relay    | ✔    | ✘ caught  | ✔      | ✘ caught  | ✘ caught   |
//! | OOB Port Amnesia    | ✔    | ✔ bypass  | ✔      | ✔ bypass  | ✘ caught   |
//! | in-band Port Amnesia| ✔    | ✔ bypass  | ✔      | ✔ bypass  | ✘ caught   |
//! | Port Probing hijack | ✔    | ✔ bypass  | ✔      | ✔ bypass  | ✔ bypass   |
//!
//! (Port Probing is out of TOPOGUARD+'s scope; the paper defers to secure
//! identifier binding, §VI-A.)

use crate::defense::DefenseStack;
use crate::hijack::{self, HijackScenario};
use crate::linkfab::{self, LinkFabScenario, RelayMode};

/// One matrix cell.
#[derive(Clone, Debug)]
pub struct MatrixEntry {
    /// The attack's name.
    pub attack: &'static str,
    /// The defense stack's name.
    pub defense: String,
    /// Did the attack achieve its goal (fake link committed / identity
    /// bound to the attacker)?
    pub succeeded: bool,
    /// Did any defense alert fire during the attack window?
    pub detected: bool,
    /// Total alerts observed.
    pub alerts: usize,
}

/// Runs the paper's matrix (5 stacks) with the given base seed. Each
/// (attack, defense) cell runs one scenario; seeds are derived
/// deterministically.
pub fn run_matrix(base_seed: u64) -> Vec<MatrixEntry> {
    run_matrix_with(&DefenseStack::ALL, base_seed)
}

/// Runs the matrix including the identifier-binding extension row.
pub fn run_matrix_extended(base_seed: u64) -> Vec<MatrixEntry> {
    run_matrix_with(&DefenseStack::ALL_EXTENDED, base_seed)
}

/// Runs the matrix over an explicit stack list.
pub fn run_matrix_with(stacks: &[DefenseStack], base_seed: u64) -> Vec<MatrixEntry> {
    let mut entries = Vec::new();
    for (i, stack) in stacks.iter().copied().enumerate() {
        let seed = base_seed.wrapping_add(i as u64 * 1009);

        for mode in [
            RelayMode::NaiveNoAmnesia,
            RelayMode::OutOfBand,
            RelayMode::InBand,
        ] {
            // The evaluation setting (§VII): Fig. 9 testbed, attack one
            // minute after bootstrap so defense baselines have formed.
            let outcome = linkfab::run(&LinkFabScenario::paper_eval(mode, stack, seed));
            entries.push(MatrixEntry {
                attack: mode.name(),
                defense: stack.to_string(),
                succeeded: outcome.link_established,
                detected: outcome.detected(),
                alerts: outcome.alerts_total,
            });
        }

        let outcome = hijack::run(&HijackScenario {
            victim_rejoins: false, // measure the stealth window itself
            ..HijackScenario::new(stack, seed)
        });
        entries.push(MatrixEntry {
            attack: "port-probing-hijack",
            defense: stack.to_string(),
            succeeded: outcome.hijack_succeeded(),
            detected: outcome.alerts_before_rejoin > 0,
            alerts: outcome.alerts_total,
        });
    }
    entries
}

/// Renders the matrix as an aligned text table.
pub fn render(entries: &[MatrixEntry]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:<18} {:<10} {:<10} {:<7}\n",
        "attack", "defense", "succeeded", "detected", "alerts"
    ));
    for e in entries {
        out.push_str(&format!(
            "{:<22} {:<18} {:<10} {:<10} {:<7}\n",
            e.attack, e.defense, e.succeeded, e.detected, e.alerts
        ));
    }
    out
}
