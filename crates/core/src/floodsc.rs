//! The alert-flooding scenario (§IV-B "Alert Floods"): an attacker spoofs
//! many existing identifiers to bury a real hijack in spurious migration
//! alerts.

use attacks::{AlertFloodAttacker, FloodConfig};
use controller::{ControllerConfig, SdnController};
use netsim::apps::PeriodicPinger;
use netsim::{LinkProfile, NetworkSpec, Simulator};
use sdn_types::{DatapathId, Duration, HostId, IpAddr, MacAddr, PortNo};

use crate::defense::DefenseStack;

/// Scenario parameters.
#[derive(Clone, Copy, Debug)]
pub struct FloodScenario {
    /// The defense stack (TopoGuard-based stacks raise per-spoof alerts).
    pub stack: DefenseStack,
    /// RNG seed.
    pub seed: u64,
    /// Number of benign hosts whose identities get spoofed.
    pub victims: usize,
    /// Spoofed frames per second.
    pub spoof_rate_per_sec: u64,
    /// Run length.
    pub run_for: Duration,
}

impl FloodScenario {
    /// Defaults: 8 victims, 20 spoofs/second, 30 s run.
    pub fn new(stack: DefenseStack, seed: u64) -> Self {
        FloodScenario {
            stack,
            seed,
            victims: 8,
            spoof_rate_per_sec: 20,
            run_for: Duration::from_secs(30),
        }
    }
}

/// Scenario outcome.
#[derive(Clone, Debug)]
pub struct FloodOutcome {
    /// Spoofed frames the attacker sent.
    pub spoofs_sent: u64,
    /// Total alerts the operator must triage.
    pub alerts_total: usize,
    /// Alerts per second of attack.
    pub alerts_per_sec: f64,
    /// Distinct identifiers implicated in alerts — the triage fan-out.
    pub identities_implicated: usize,
    /// Telemetry snapshot taken at the end of the run.
    pub metrics: tm_telemetry::MetricsSnapshot,
}

/// Runs the scenario: `victims` benign hosts generate background traffic;
/// the attacker round-robins spoofed frames bearing their identities.
pub fn run(scenario: &FloodScenario) -> FloodOutcome {
    // Victim hosts use ids/IP octets/ports 1..=victims; the attacker sits
    // at 100 — more victims than that would silently collide with it.
    assert!(
        (1..=99).contains(&scenario.victims),
        "victims must be 1..=99 (the attacker occupies slot 100)"
    );
    let sw = DatapathId::new(0x1);
    let link = LinkProfile::fixed(Duration::from_millis(5));
    let mut spec = NetworkSpec::new();
    spec.add_switch(sw);

    let mut victims = Vec::new();
    for i in 0..scenario.victims as u32 {
        let host = HostId::new(i + 1);
        let mac = MacAddr::from_index(i + 1);
        let ip = IpAddr::new(10, 0, 0, (i + 1) as u8);
        spec.add_host(host, mac, ip);
        spec.attach_host(host, sw, PortNo::new((i + 1) as u16), link);
        victims.push((mac, ip));
        // Victims talk to their neighbour so they are tracked and active.
        let peer_ip = IpAddr::new(10, 0, 0, ((i % scenario.victims as u32) + 1) as u8);
        spec.set_host_app(
            host,
            Box::new(PeriodicPinger::new(peer_ip, Duration::from_millis(400))),
        );
    }

    let attacker = HostId::new(100);
    spec.add_host(
        attacker,
        MacAddr::from_index(100),
        IpAddr::new(10, 0, 0, 100),
    );
    spec.attach_host(attacker, sw, PortNo::new(100), link);
    let interval = Duration::from_nanos(1_000_000_000 / scenario.spoof_rate_per_sec.max(1));
    spec.set_host_app(
        attacker,
        Box::new(AlertFloodAttacker::new(FloodConfig {
            victims,
            interval,
            start_delay: Duration::from_secs(2),
        })),
    );

    spec.set_controller(Box::new(
        scenario.stack.build_controller(ControllerConfig::default()),
    ));

    spec.set_telemetry(tm_telemetry::Telemetry::new());
    let mut sim = Simulator::new(spec, scenario.seed);
    sim.run_for(scenario.run_for);

    let spoofs_sent = sim
        .host_app_as::<AlertFloodAttacker>(attacker)
        .map(|a| a.spoofs_sent)
        .unwrap_or(0);
    // tm-lint: allow(unwrap-in-lib) -- this scenario installed SdnController itself during setup; a missing controller is a bug in this file, not scenario input
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let alerts = ctrl.alerts();
    let attack_secs = (scenario.run_for - Duration::from_secs(2)).as_secs_f64();
    let mut identities: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for alert in alerts.all() {
        // Each alert's detail names the implicated identifier first.
        if let Some(word) = alert.detail.split_whitespace().find(|w| w.contains(':')) {
            identities.insert(word.to_string());
        }
    }
    FloodOutcome {
        spoofs_sent,
        alerts_total: alerts.len(),
        alerts_per_sec: alerts.len() as f64 / attack_secs.max(1e-9),
        identities_implicated: identities.len(),
        metrics: sim.metrics_snapshot(),
    }
}
