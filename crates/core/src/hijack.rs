//! The Port Probing / host-location-hijacking scenario (§IV-B, §V-B),
//! with the Fig. 3 timeline fully instrumented.
//!
//! Sequence of events (times relative to scenario start):
//!
//! 1. The network settles; the attacker arpings the victim and begins
//!    ARP-probing it every 50 ms with a 35 ms timeout.
//! 2. At `victim_down_at` the victim begins a migration: its interface
//!    drops (a Port-Down follows within the 802.3 pulse window).
//! 3. The attacker's next probe times out; it `ifconfig`s itself into the
//!    victim's identity and originates traffic.
//! 4. The controller registers the "migration" onto the attacker's port —
//!    the hijack is complete.
//! 5. Optionally, after `downtime`, the victim completes its real move at
//!    its destination port and starts talking — producing the identifier
//!    oscillation that finally trips anomaly detectors.

use attacks::{PortProbingAttacker, ProbingConfig, ProbingTimeline};
use controller::{AlertKind, ControllerConfig, SdnController};
use netsim::apps::PeriodicPinger;
use netsim::Simulator;
use sdn_types::{Duration, SimTime};

use crate::defense::DefenseStack;
use crate::fabric;
use crate::robustness::{FaultProfile, ProfileTargets};
use crate::testbed;

/// Scenario parameters.
#[derive(Clone, Copy, Debug)]
pub struct HijackScenario {
    /// The defense stack.
    pub stack: DefenseStack,
    /// RNG seed.
    pub seed: u64,
    /// When the victim goes down (must leave time for the network to
    /// settle and the attacker to acquire the victim's MAC).
    pub victim_down_at: SimTime,
    /// The victim's migration downtime window (VM live migration: order of
    /// seconds, §IV-B2).
    pub downtime: Duration,
    /// Whether the victim completes its move at the new location (step 5).
    pub victim_rejoins: bool,
    /// How long to run after the victim (maybe) rejoins.
    pub tail: Duration,
    /// Network degradation active for the whole run ([`FaultProfile::Clean`]
    /// leaves the trace byte-identical to the pre-fault-layer simulator).
    pub faults: FaultProfile,
    /// Run on a generated fabric instead of the hand-built two-switch
    /// testbed. Role placement comes from the spec's forked attacker
    /// stream (see [`fabric::hijack_setup`]).
    pub fabric: Option<tm_topo::TopoKind>,
    /// Flow-level background load riding the fabric for the whole run
    /// (see [`crate::load`]). Ignored on the hand-built testbed; `None`
    /// leaves the trace byte-identical to an unloaded run.
    pub traffic: Option<crate::load::TrafficLoad>,
}

impl HijackScenario {
    /// Defaults: victim drops at t=3 s, a 2 s migration window, rejoin on.
    pub fn new(stack: DefenseStack, seed: u64) -> Self {
        HijackScenario {
            stack,
            seed,
            victim_down_at: SimTime::from_secs(3),
            downtime: Duration::from_secs(2),
            victim_rejoins: true,
            tail: Duration::from_secs(5),
            faults: FaultProfile::Clean,
            fabric: None,
            traffic: None,
        }
    }

    /// The same attack on a generated fabric. Host traffic holds until
    /// [`fabric::TRAFFIC_START`] (broadcast safety on loopy fabrics), so
    /// the victim drops later (t = 6 s) — still ≈80 probe periods of
    /// baseline for the attacker.
    pub fn on_fabric(kind: tm_topo::TopoKind, stack: DefenseStack, seed: u64) -> Self {
        HijackScenario {
            victim_down_at: SimTime::from_secs(6),
            fabric: Some(kind),
            ..HijackScenario::new(stack, seed)
        }
    }
}

/// Scenario outcome.
#[derive(Clone, Debug)]
pub struct HijackOutcome {
    /// When the victim actually went down (scripted).
    pub victim_down_at: SimTime,
    /// The attacker's internal timeline (Figs. 4, 5, 7, 8).
    pub timeline: ProbingTimeline,
    /// When the controller's HTS first bound the victim's MAC to the
    /// attacker's port (Fig. 6's "controller Packet-In"), if the hijack
    /// landed.
    pub controller_ack_at: Option<SimTime>,
    /// Alerts raised before the victim rejoined (stealth window).
    pub alerts_before_rejoin: usize,
    /// Alerts raised in total.
    pub alerts_total: usize,
    /// Identifier-conflict (oscillation) alerts.
    pub conflict_alerts: usize,
    /// Migration-verification alerts.
    pub migration_alerts: usize,
    /// Pings the benign client completed against "the victim" during the
    /// impersonation window (traffic captured by the attacker).
    pub client_pings_during_hijack: u64,
    /// The full simulator event trace, for replay/determinism checks:
    /// two runs with the same scenario must produce identical traces.
    pub trace: Vec<netsim::TraceEvent>,
    /// Telemetry snapshot taken at the end of the run. Deterministic:
    /// same scenario, same seed → byte-identical [`MetricsSnapshot::render`]
    /// output.
    ///
    /// [`MetricsSnapshot::render`]: tm_telemetry::MetricsSnapshot::render
    pub metrics: tm_telemetry::MetricsSnapshot,
}

impl HijackOutcome {
    /// The hijack succeeded: the controller bound the victim's identity to
    /// the attacker's port.
    pub fn hijack_succeeded(&self) -> bool {
        self.controller_ack_at.is_some()
    }

    /// Undetected during the impersonation window (the paper's claim: no
    /// policy is violated until the victim rejoins).
    pub fn undetected_before_rejoin(&self) -> bool {
        self.alerts_before_rejoin == 0
    }

    /// Victim-down → attacker believes victim down (Fig. 8), ms.
    pub fn detect_delay_ms(&self) -> Option<f64> {
        Some(
            self.timeline
                .believed_down_at?
                .since(self.victim_down_at)
                .as_millis_f64(),
        )
    }

    /// Victim-down → attacker interface up as victim (Fig. 5), ms.
    pub fn iface_up_delay_ms(&self) -> Option<f64> {
        Some(
            self.timeline
                .iface_up_at?
                .since(self.victim_down_at)
                .as_millis_f64(),
        )
    }

    /// Victim-down → controller acknowledges the attacker as the victim
    /// (Fig. 6), ms.
    pub fn controller_ack_delay_ms(&self) -> Option<f64> {
        Some(
            self.controller_ack_at?
                .since(self.victim_down_at)
                .as_millis_f64(),
        )
    }

    /// Victim-down → start of the attacker's final (timed-out) probe
    /// (Fig. 7), ms. Negative values (probe began just before the victim
    /// dropped) are clamped to zero by the virtual clock, so this reports
    /// a signed value computed from raw nanoseconds.
    pub fn final_probe_start_delay_ms(&self) -> Option<f64> {
        let probe = self.timeline.final_probe_start?;
        Some((probe.as_nanos() as f64 - self.victim_down_at.as_nanos() as f64) / 1e6)
    }
}

/// Runs the scenario.
pub fn run(scenario: &HijackScenario) -> HijackOutcome {
    let (mut spec, ids, targets, traffic_start) = match scenario.fabric {
        None => {
            let (spec, ids) = testbed::hijack_spec(scenario.stack, ControllerConfig::default());
            (spec, ids, ProfileTargets::hijack(), Duration::ZERO)
        }
        Some(kind) => {
            let (spec, ids, targets) = fabric::hijack_setup(
                kind,
                scenario.stack,
                scenario.seed,
                ControllerConfig::default(),
            );
            (spec, ids, targets, fabric::TRAFFIC_START)
        }
    };
    let base_probing = ProbingConfig::paper_default(ids.victim_ip, ids.client_ip);
    let probing = ProbingConfig {
        start_delay: base_probing.start_delay.max(traffic_start),
        ..base_probing
    };
    spec.set_host_app(ids.attacker, Box::new(PortProbingAttacker::new(probing)));
    // The benign client keeps a session toward the victim.
    spec.set_host_app(
        ids.client,
        Box::new(PeriodicPinger::starting_at(
            ids.victim_ip,
            Duration::from_millis(250),
            traffic_start,
        )),
    );
    // The migration-destination NIC needs an app slot so the scenario can
    // script its rejoin traffic.
    spec.set_host_app(ids.victim_new, Box::new(netsim::NullHostApp));
    spec.set_telemetry(tm_telemetry::Telemetry::new());

    let run_end = scenario.victim_down_at + scenario.downtime + scenario.tail;
    let plan = scenario.faults.plan(&targets, SimTime::ZERO, run_end);
    // Flow-level background load: only meaningful on a generated fabric,
    // and opens with the broadcast-safety hold like all fabric traffic.
    let traffic = match (scenario.fabric, scenario.traffic) {
        (Some(kind), Some(load)) => load.plan_for(
            kind,
            netsim::TrafficWindow::new(SimTime::ZERO + fabric::TRAFFIC_START, run_end),
        ),
        _ => netsim::TrafficPlan::new(),
    };
    let mut sim = Simulator::with_plans(spec, scenario.seed, plan, traffic);
    // The migration-destination NIC starts down.
    sim.host_iface_down(ids.victim_new);

    // With the identifier-binding extension deployed, the orchestrator
    // attests the *planned* migration (victim -> its destination port).
    // The attacker's rebind attempt is, of course, never attested.
    if scenario.stack == DefenseStack::TopoGuardPlusBinding {
        if let Some(ctrl) = sim.controller_as_mut::<SdnController>() {
            if let Some(binding) = ctrl.module_as_mut::<topoguard::IdentifierBinding>() {
                binding.authorize(ids.victim_mac, ids.victim_new_port);
            }
        }
    }

    // Phase 1: settle + monitoring.
    sim.run_until(scenario.victim_down_at);

    // Phase 2: the victim begins its migration.
    sim.host_iface_down(ids.victim);
    let victim_down_at = sim.now();

    // Drive in 1 ms steps until the controller binds the victim's MAC to
    // the attacker's port (or the downtime window closes).
    let mut controller_ack_at = None;
    let rejoin_at = victim_down_at + scenario.downtime;
    while sim.now() < rejoin_at {
        sim.run_for(Duration::from_millis(1));
        // tm-lint: allow(unwrap-in-lib) -- this scenario installed SdnController itself during setup; a missing controller is a bug in this file, not scenario input
        let ctrl: &SdnController = sim.controller_as().expect("controller");
        if controller_ack_at.is_none()
            && ctrl.devices().location_of(&ids.victim_mac) == Some(ids.attacker_port)
        {
            controller_ack_at = Some(sim.now());
            break;
        }
    }
    let client_pings_at_hijack = sim
        .host_app_as::<PeriodicPinger>(ids.client)
        .map(|p| p.received)
        .unwrap_or(0);

    // Let the impersonation window play out.
    sim.run_until(rejoin_at);
    let alerts_before_rejoin = sim
        .controller_as::<SdnController>()
        // tm-lint: allow(unwrap-in-lib) -- this scenario installed SdnController itself during setup; a missing controller is a bug in this file, not scenario input
        .expect("controller")
        .alerts()
        .len();
    let client_pings_at_rejoin = sim
        .host_app_as::<PeriodicPinger>(ids.client)
        .map(|p| p.received)
        .unwrap_or(0);

    // Phase 5: the victim completes its move at the destination port.
    if scenario.victim_rejoins {
        sim.host_schedule_iface_up(ids.victim_new, Duration::from_millis(1), None);
        // The rejoined victim originates traffic (it resumes its sessions).
        sim.run_for(Duration::from_millis(50));
        sim.with_host_app(ids.victim_new, |_, ctx| {
            let info = ctx.info();
            let arp = sdn_types::packet::ArpPacket::request(info.mac, info.ip, ids.client_ip);
            ctx.send_frame(sdn_types::packet::EthernetFrame::new(
                info.mac,
                sdn_types::MacAddr::BROADCAST,
                sdn_types::packet::Payload::Arp(arp),
            ));
        });
    }
    sim.run_for(scenario.tail);

    // tm-lint: allow(unwrap-in-lib) -- this scenario installed SdnController itself during setup; a missing controller is a bug in this file, not scenario input
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let alerts = ctrl.alerts();
    let timeline = sim
        .host_app_as::<PortProbingAttacker>(ids.attacker)
        .map(|a| a.timeline)
        .unwrap_or_default();

    HijackOutcome {
        victim_down_at,
        timeline,
        controller_ack_at,
        alerts_before_rejoin,
        alerts_total: alerts.len(),
        conflict_alerts: alerts.count(AlertKind::IdentifierConflict),
        migration_alerts: alerts.count(AlertKind::HostMigrationPrecondition)
            + alerts.count(AlertKind::HostMigrationPostcondition),
        client_pings_during_hijack: client_pings_at_rejoin.saturating_sub(client_pings_at_hijack),
        trace: sim.trace().records().to_vec(),
        metrics: sim.metrics_snapshot(),
    }
}
