//! Datacenter-scale control-plane soak: a generated fabric under a defense
//! stack, measured in engine events per simulated second.
//!
//! The paper's testbeds top out at four switches; the scaling question —
//! what discovery, TopoGuard+, and the event engine cost on a fabric two
//! orders of magnitude larger — needs generated topologies. This scenario
//! boots a [`tm_topo::TopoKind`] fabric (fat-tree, core–edge, linear, or
//! ring), installs the chosen [`DefenseStack`] controller, and runs pure
//! control-plane load for a fixed stretch of virtual time: OpenFlow
//! handshakes, periodic LLDP discovery, echo probes, and flow expiry. No
//! host application sends traffic — datacenter fabrics are loopy, and
//! wildcard FLOOD rules on a loopy fabric melt down into broadcast storms;
//! the control plane alone is loop-safe and already scales with port
//! count.
//!
//! The headline metric is deterministic: `events_processed` divided by
//! simulated seconds, a pure function of `(topology, stack, seed)`.
//! Wall-clock events/sec — the engine-throughput claim — lives in the
//! `engine_throughput` bench, where wall clocks are allowed.

use controller::{ControllerConfig, ControllerProfile, SdnController};
use netsim::{LinkProfile, Simulator};
use sdn_types::Duration;
use tm_topo::TopoKind;

use crate::defense::DefenseStack;

/// A scale soak: which fabric, which defense stack, how long.
#[derive(Clone, Copy, Debug)]
pub struct ScaleScenario {
    /// The generated topology.
    pub topo: TopoKind,
    /// The defense stack in the controller slot.
    pub stack: DefenseStack,
    /// RNG seed (also drives attacker placement in the topo spec, though
    /// this benign soak places none).
    pub seed: u64,
    /// Virtual time to run.
    pub run_for: Duration,
}

impl ScaleScenario {
    /// Defaults: 1 simulated second — enough for every switch handshake,
    /// the first LLDP discovery round, and the probe cadence to tick.
    pub fn new(topo: TopoKind, stack: DefenseStack, seed: u64) -> Self {
        ScaleScenario {
            topo,
            stack,
            seed,
            run_for: Duration::from_secs(1),
        }
    }
}

/// What a scale soak measured.
#[derive(Clone, Debug)]
pub struct ScaleOutcome {
    /// Switches in the fabric.
    pub switches: usize,
    /// Hosts in the fabric.
    pub hosts: usize,
    /// Engine events processed over the whole run.
    pub events_processed: u64,
    /// Engine events scheduled over the whole run.
    pub events_scheduled: u64,
    /// Events processed per simulated second (the deterministic
    /// throughput-load figure).
    pub events_per_sim_sec: f64,
    /// Directed links the controller discovered.
    pub links_discovered: usize,
    /// Alerts the defense raised (benign fabric: all false positives).
    pub alerts_total: usize,
    /// Full telemetry snapshot.
    pub metrics: tm_telemetry::MetricsSnapshot,
}

/// Runs the soak.
pub fn run(scenario: &ScaleScenario) -> ScaleOutcome {
    let topo = scenario.topo.generate(scenario.seed, 0);
    let mut spec = topo.build_network(
        LinkProfile::fixed(Duration::from_micros(50)),
        LinkProfile::fixed(Duration::from_millis(1)),
    );
    spec.set_controller(Box::new(scenario.stack.build_controller(
        ControllerConfig {
            profile: ControllerProfile::FLOODLIGHT,
            ..ControllerConfig::default()
        },
    )));
    spec.set_telemetry(tm_telemetry::Telemetry::new());

    let mut sim = Simulator::new(spec, scenario.seed);
    sim.run_for(scenario.run_for);

    let metrics = sim.metrics_snapshot();
    let events_processed = metrics
        .counter("netsim.engine.events_processed")
        .unwrap_or(0);
    let events_scheduled = metrics
        .counter("netsim.engine.events_scheduled")
        .unwrap_or(0);
    let sim_secs = (scenario.run_for.as_nanos() as f64) / 1e9;
    // tm-lint: allow(unwrap-in-lib) -- this scenario installed SdnController itself during setup; a missing controller is a bug in this file, not scenario input
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    ScaleOutcome {
        switches: topo.switches.len(),
        hosts: topo.hosts.len(),
        events_processed,
        events_scheduled,
        events_per_sim_sec: if sim_secs > 0.0 {
            events_processed as f64 / sim_secs
        } else {
            0.0
        },
        links_discovered: ctrl.topology().len(),
        alerts_total: ctrl.alerts().len(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_soak_discovers_links_and_counts_events() {
        let outcome = run(&ScaleScenario::new(
            TopoKind::Linear {
                switches: 4,
                hosts_per_switch: 1,
            },
            DefenseStack::None,
            7,
        ));
        assert_eq!(outcome.switches, 4);
        assert_eq!(outcome.hosts, 4);
        assert!(outcome.events_processed > 0, "engine must have run");
        assert!(outcome.events_per_sim_sec > 0.0);
        // 3 physical links, discovered in both directions.
        assert_eq!(outcome.links_discovered, 6);
    }

    #[test]
    fn soak_is_a_pure_function_of_its_inputs() {
        let scenario = ScaleScenario::new(
            TopoKind::Ring {
                switches: 4,
                hosts_per_switch: 1,
            },
            DefenseStack::TopoGuardPlus,
            21,
        );
        let a = run(&scenario);
        let b = run(&scenario);
        assert_eq!(a.metrics.render(), b.metrics.render());
        assert_eq!(a.events_processed, b.events_processed);
    }
}
