//! Induced migration (§IV-B): instead of waiting for the victim to move,
//! the attacker *creates* the vulnerable window.
//!
//! > "Many hypervisors (e.g., VMware) offer services to automatically
//! > migrate VMs between servers when CPU or memory resources become
//! > saturated. An attacker could colocate a host with the target VM and
//! > mount a denial-of-service attack against those resources (e.g., cache
//! > page dirtying or heavy disk I/O) until the victim was moved by the
//! > hypervisor."
//!
//! The hypervisor is modeled as an orchestration policy over the victim's
//! host: once the co-located attacker saturates the shared resource for
//! longer than the hypervisor's `saturation_patience`, an automatic live
//! migration begins (interface down at the old port, re-appearing at the
//! destination port after a `downtime` window). The network-side attacker
//! runs the standard Port Probing state machine and never needs to know
//! *when* the migration will fire — its probes discover the window, which
//! is the whole point.

use attacks::{PortProbingAttacker, ProbingConfig};
use controller::{ControllerConfig, SdnController};
use netsim::apps::PeriodicPinger;
use netsim::Simulator;
use sdn_types::{Duration, SimTime};

use crate::defense::DefenseStack;
use crate::hijack::HijackOutcome;
use crate::testbed;

/// The modeled hypervisor's auto-migration policy.
#[derive(Clone, Copy, Debug)]
pub struct HypervisorPolicy {
    /// Sustained saturation required before a migration is triggered
    /// (VMware DRS-style hysteresis).
    pub saturation_patience: Duration,
    /// The live-migration downtime window (seconds-scale, §IV-B2).
    pub downtime: Duration,
}

impl Default for HypervisorPolicy {
    fn default() -> Self {
        HypervisorPolicy {
            saturation_patience: Duration::from_secs(5),
            downtime: Duration::from_secs(2),
        }
    }
}

/// Scenario parameters.
#[derive(Clone, Copy, Debug)]
pub struct InducedMigrationScenario {
    /// The defense stack.
    pub stack: DefenseStack,
    /// RNG seed.
    pub seed: u64,
    /// When the co-located attacker begins saturating the shared resource.
    pub exhaustion_start: SimTime,
    /// The hypervisor's policy.
    pub policy: HypervisorPolicy,
}

impl InducedMigrationScenario {
    /// Defaults: exhaustion begins at t = 2 s.
    pub fn new(stack: DefenseStack, seed: u64) -> Self {
        InducedMigrationScenario {
            stack,
            seed,
            exhaustion_start: SimTime::from_secs(2),
            policy: HypervisorPolicy::default(),
        }
    }
}

/// Outcome: the standard hijack outcome plus when the hypervisor moved the
/// victim.
#[derive(Clone, Debug)]
pub struct InducedOutcome {
    /// When the hypervisor initiated the (induced) migration.
    pub migration_triggered_at: SimTime,
    /// The hijack outcome during the induced window.
    pub hijack: HijackOutcome,
}

/// Runs the scenario.
pub fn run(scenario: &InducedMigrationScenario) -> InducedOutcome {
    let (mut spec, ids) = testbed::hijack_spec(scenario.stack, ControllerConfig::default());
    let probing = ProbingConfig::paper_default(ids.victim_ip, ids.client_ip);
    spec.set_host_app(ids.attacker, Box::new(PortProbingAttacker::new(probing)));
    spec.set_host_app(
        ids.client,
        Box::new(PeriodicPinger::new(
            ids.victim_ip,
            Duration::from_millis(250),
        )),
    );
    spec.set_host_app(ids.victim_new, Box::new(netsim::NullHostApp));
    spec.set_telemetry(tm_telemetry::Telemetry::new());

    let mut sim = Simulator::new(spec, scenario.seed);
    sim.host_iface_down(ids.victim_new);

    // The co-located resource exhaustion runs from `exhaustion_start`; the
    // hypervisor observes sustained saturation and, after its patience
    // window, live-migrates the victim.
    let migration_triggered_at = scenario.exhaustion_start + scenario.policy.saturation_patience;
    sim.run_until(migration_triggered_at);
    sim.host_iface_down(ids.victim);
    let victim_down_at = sim.now();

    // Race window: the attacker's probes detect the departure.
    let mut controller_ack_at = None;
    let rejoin_at = victim_down_at + scenario.policy.downtime;
    while sim.now() < rejoin_at {
        sim.run_for(Duration::from_millis(1));
        // tm-lint: allow(unwrap-in-lib) -- this scenario installed SdnController itself during setup; a missing controller is a bug in this file, not scenario input
        let ctrl: &SdnController = sim.controller_as().expect("controller");
        if ctrl.devices().location_of(&ids.victim_mac) == Some(ids.attacker_port) {
            controller_ack_at = Some(sim.now());
            break;
        }
    }
    let client_pings_at_hijack = sim
        .host_app_as::<PeriodicPinger>(ids.client)
        .map(|p| p.received)
        .unwrap_or(0);
    sim.run_until(rejoin_at);
    let alerts_before_rejoin = sim
        .controller_as::<SdnController>()
        // tm-lint: allow(unwrap-in-lib) -- this scenario installed SdnController itself during setup; a missing controller is a bug in this file, not scenario input
        .expect("controller")
        .alerts()
        .len();
    let client_pings_at_rejoin = sim
        .host_app_as::<PeriodicPinger>(ids.client)
        .map(|p| p.received)
        .unwrap_or(0);

    // The hypervisor completes the migration at the destination.
    sim.host_schedule_iface_up(ids.victim_new, Duration::from_millis(1), None);
    sim.run_for(Duration::from_secs(3));

    // tm-lint: allow(unwrap-in-lib) -- this scenario installed SdnController itself during setup; a missing controller is a bug in this file, not scenario input
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    let timeline = sim
        .host_app_as::<PortProbingAttacker>(ids.attacker)
        .map(|a| a.timeline)
        .unwrap_or_default();
    InducedOutcome {
        migration_triggered_at,
        hijack: HijackOutcome {
            victim_down_at,
            timeline,
            controller_ack_at,
            alerts_before_rejoin,
            alerts_total: ctrl.alerts().len(),
            conflict_alerts: ctrl
                .alerts()
                .count(controller::AlertKind::IdentifierConflict),
            migration_alerts: ctrl
                .alerts()
                .count(controller::AlertKind::HostMigrationPrecondition)
                + ctrl
                    .alerts()
                    .count(controller::AlertKind::HostMigrationPostcondition),
            client_pings_during_hijack: client_pings_at_rejoin
                .saturating_sub(client_pings_at_hijack),
            trace: sim.trace().records().to_vec(),
            metrics: sim.metrics_snapshot(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_window_is_hijacked_like_a_natural_one() {
        let out = run(&InducedMigrationScenario::new(
            DefenseStack::TopoGuardSphinx,
            11,
        ));
        assert!(out.hijack.hijack_succeeded(), "{out:?}");
        assert_eq!(out.hijack.alerts_before_rejoin, 0, "{out:?}");
        // The attacker reacted within the induced window.
        let ack = out.hijack.controller_ack_delay_ms().unwrap();
        assert!(ack < 1000.0, "ack {ack} ms");
    }

    #[test]
    fn client_pings_during_induced_window_are_measured() {
        // Regression: this field was hard-coded to 0. The client pings
        // every 250 ms and the induced downtime window is 2 s, so once the
        // attacker assumes the victim's identity it answers a nonzero
        // number of the client's pings before the rejoin.
        let out = run(&InducedMigrationScenario::new(
            DefenseStack::TopoGuardSphinx,
            11,
        ));
        assert!(out.hijack.hijack_succeeded(), "{out:?}");
        assert!(
            out.hijack.client_pings_during_hijack > 0,
            "expected captured client pings during the induced window, got 0"
        );
    }

    #[test]
    fn migration_fires_after_patience_window() {
        let scenario = InducedMigrationScenario::new(DefenseStack::None, 12);
        let out = run(&scenario);
        assert_eq!(
            out.migration_triggered_at,
            scenario.exhaustion_start + scenario.policy.saturation_patience
        );
    }
}
