//! Load-parameterized scenarios: flow-level traffic on generated fabrics.
//!
//! The paper's testbeds carry a handful of pings; real controllers field
//! Packet-In storms from tens of thousands of hosts. This module drives
//! the `tm-traffic` flow engine (see `netsim::traffic`) over a generated
//! fabric: every edge switch that carries placed hosts also parks a group
//! of *virtual* hosts behind an aggregation port, their demand advancing
//! as flow records while only the detector-relevant boundaries — first-ARP
//! announcements and first-packet Packet-Ins — expand to real frames. The
//! defense stack therefore observes realistic control-plane load while the
//! dataplane stays O(flows).
//!
//! [`TrafficLoad`] is a `Copy` descriptor so the `Copy` attack scenarios
//! (`hijack`, `linkfab`) can carry one; the concrete [`TrafficPlan`] is
//! derived at run time, a pure function of `(kind, load, window)` —
//! fabrics place switches and hosts independently of the seed, so the
//! plan never perturbs role mapping.

use controller::{ControllerConfig, ControllerProfile, SdnController};
use netsim::traffic::{ArrivalProcess, SizeMix};
use netsim::{DemandProfile, LinkProfile, Simulator, TrafficPlan, TrafficWindow};
use sdn_types::{Duration, SimTime};
use tm_topo::TopoKind;

use crate::defense::DefenseStack;
use crate::fabric::TRAFFIC_START;

/// Port distance between a traffic group's aggregation port and the
/// fabric's next free port, leaving room for scenario-synthesized NICs
/// (co-located victims, migration destinations, relay peers) that also
/// allocate past the generated port range.
const AGG_PORT_MARGIN: u16 = 8;

/// The temporal shape of a group's flow arrivals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadPattern {
    /// Memoryless Poisson arrivals at the aggregate rate.
    Steady,
    /// On/off bursts (500 ms on / 1500 ms off) with Poisson arrivals
    /// inside each on-phase.
    Bursty,
}

/// A flow-level load descriptor: how many virtual hosts per edge switch,
/// how hard each one drives, and in what temporal pattern. `Copy`, so the
/// `Copy` attack scenarios can be load-parameterized without giving up
/// struct-update construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficLoad {
    /// Virtual hosts parked behind each hosting edge switch.
    pub hosts_per_edge: u32,
    /// Mean flows per host per second.
    pub flows_per_host_per_sec: f64,
    /// Arrival pattern.
    pub pattern: LoadPattern,
}

impl TrafficLoad {
    /// Steady Poisson demand.
    pub fn steady(hosts_per_edge: u32, flows_per_host_per_sec: f64) -> Self {
        TrafficLoad {
            hosts_per_edge,
            flows_per_host_per_sec,
            pattern: LoadPattern::Steady,
        }
    }

    /// Bursty on/off demand.
    pub fn bursty(hosts_per_edge: u32, flows_per_host_per_sec: f64) -> Self {
        TrafficLoad {
            hosts_per_edge,
            flows_per_host_per_sec,
            pattern: LoadPattern::Bursty,
        }
    }

    /// The demand profile every group runs: the datacenter elephant/mice
    /// mix under this load's rate and pattern.
    fn profile(&self) -> DemandProfile {
        let arrival = match self.pattern {
            LoadPattern::Steady => ArrivalProcess::Poisson,
            LoadPattern::Bursty => {
                ArrivalProcess::on_off(Duration::from_millis(500), Duration::from_millis(1500))
            }
        };
        DemandProfile::new(self.flows_per_host_per_sec, arrival, SizeMix::datacenter())
    }

    /// Elaborates the load into a concrete plan for `kind`: one traffic
    /// group per edge switch that carries placed hosts, parked
    /// `AGG_PORT_MARGIN` ports past the fabric's own allocation. Pure
    /// function of `(kind, self, window)` — the generated fabric's switch
    /// and host placement ignores the seed, so any seed elaborates the
    /// same plan.
    pub fn plan_for(&self, kind: TopoKind, window: TrafficWindow) -> TrafficPlan {
        let topo = kind.generate(0, 0);
        let mut plan = TrafficPlan::new();
        if self.hosts_per_edge == 0 {
            return plan;
        }
        let profile = self.profile();
        for &dpid in &topo.switches {
            if topo.hosts_on(dpid).next().is_none() {
                continue;
            }
            let port = sdn_types::PortNo::new(topo.free_port(dpid).raw() + AGG_PORT_MARGIN);
            plan.group(dpid, port, self.hosts_per_edge, profile, window);
        }
        plan
    }
}

/// A pure-load soak: a generated fabric under a defense stack with
/// flow-level traffic, no attack.
#[derive(Clone, Copy, Debug)]
pub struct LoadScenario {
    /// The generated topology.
    pub topo: TopoKind,
    /// The defense stack in the controller slot.
    pub stack: DefenseStack,
    /// RNG seed: forks the per-group traffic streams.
    pub seed: u64,
    /// The flow-level load.
    pub load: TrafficLoad,
    /// Virtual time to run. Traffic opens at [`TRAFFIC_START`] (after
    /// LLDP discovery has mapped the trunks) and closes at the end.
    pub run_for: Duration,
}

impl LoadScenario {
    /// Defaults: 6 simulated seconds — a 4 s traffic window after the
    /// 2 s discovery hold.
    pub fn new(topo: TopoKind, stack: DefenseStack, load: TrafficLoad, seed: u64) -> Self {
        LoadScenario {
            topo,
            stack,
            seed,
            load,
            run_for: Duration::from_secs(6),
        }
    }
}

/// What a load soak measured. Deterministic: a pure function of the
/// scenario, byte-identical [`MetricsSnapshot::render`] per seed.
///
/// [`MetricsSnapshot::render`]: tm_telemetry::MetricsSnapshot::render
#[derive(Clone, Debug)]
pub struct LoadOutcome {
    /// Switches in the fabric.
    pub switches: usize,
    /// Hosts the fabric places as real simulated stacks.
    pub hosts_placed: usize,
    /// Virtual hosts the traffic plan parks behind aggregation ports.
    pub hosts_virtual: u64,
    /// Flows the plan offered inside the window.
    pub flows_offered: u64,
    /// Bytes those flows carried (aggregate accounting).
    pub bytes_offered: u64,
    /// Packets accounted into port counters without per-packet events.
    pub packets_aggregated: u64,
    /// Real frames expanded at detector boundaries (ARP + first packets).
    pub packets_expanded: u64,
    /// Dataplane Packet-Ins the controller processed.
    pub packet_ins: u64,
    /// Engine events processed over the whole run.
    pub events_processed: u64,
    /// Directed links the controller discovered.
    pub links_discovered: usize,
    /// Alerts the defense raised (benign load: all false positives).
    pub alerts_total: usize,
    /// Full telemetry snapshot.
    pub metrics: tm_telemetry::MetricsSnapshot,
}

impl LoadOutcome {
    /// Packets accounted per expanded frame — the aggregation leverage.
    pub fn aggregation_ratio(&self) -> f64 {
        self.packets_aggregated as f64 / (self.packets_expanded.max(1)) as f64
    }
}

/// Runs the soak.
pub fn run(scenario: &LoadScenario) -> LoadOutcome {
    let topo = scenario.topo.generate(scenario.seed, 0);
    let mut spec = topo.build_network(
        LinkProfile::fixed(Duration::from_micros(50)),
        LinkProfile::fixed(Duration::from_millis(1)),
    );
    // Generated fabrics are loopy and the traffic engine's ARP
    // announcements broadcast: scoped flooding is mandatory, exactly as
    // in the fabric attack scenarios.
    spec.set_controller(Box::new(scenario.stack.build_controller(
        ControllerConfig {
            profile: ControllerProfile::FLOODLIGHT,
            tree_scoped_flood: true,
            ..ControllerConfig::default()
        },
    )));
    spec.set_telemetry(tm_telemetry::Telemetry::new());

    let window = TrafficWindow::new(
        SimTime::ZERO + TRAFFIC_START,
        SimTime::ZERO + scenario.run_for,
    );
    let plan = scenario.load.plan_for(scenario.topo, window);
    let hosts_virtual = plan.total_hosts();

    let mut sim = Simulator::with_traffic_plan(spec, scenario.seed, plan);
    sim.run_for(scenario.run_for);

    let metrics = sim.metrics_snapshot();
    let counter = |name: &str| metrics.counter(name).unwrap_or(0);
    // tm-lint: allow(unwrap-in-lib) -- this scenario installed SdnController itself during setup; a missing controller is a bug in this file, not scenario input
    let ctrl: &SdnController = sim.controller_as().expect("controller");
    LoadOutcome {
        switches: topo.switches.len(),
        hosts_placed: topo.hosts.len(),
        hosts_virtual,
        flows_offered: counter("traffic.flows_offered"),
        bytes_offered: counter("traffic.bytes_offered"),
        packets_aggregated: counter("traffic.packets_aggregated"),
        packets_expanded: counter("traffic.packets_expanded"),
        packet_ins: ctrl.packet_ins,
        events_processed: counter("netsim.engine.events_processed"),
        links_discovered: ctrl.topology().len(),
        alerts_total: ctrl.alerts().len(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fabric() -> TopoKind {
        TopoKind::Linear {
            switches: 4,
            hosts_per_switch: 1,
        }
    }

    #[test]
    fn load_soak_offers_flows_and_reaches_the_controller() {
        let out = run(&LoadScenario::new(
            small_fabric(),
            DefenseStack::TopoGuardPlus,
            TrafficLoad::steady(100, 0.5),
            7,
        ));
        assert_eq!(out.hosts_virtual, 400, "100 virtual hosts x 4 edges");
        assert!(out.flows_offered > 50, "got {} flows", out.flows_offered);
        assert!(
            out.packets_aggregated > 50 * out.packets_expanded.max(1),
            "aggregation must dominate: {} vs {}",
            out.packets_aggregated,
            out.packets_expanded
        );
        assert!(
            out.packet_ins > out.packets_expanded,
            "expansions must reach the controller as Packet-Ins"
        );
        assert_eq!(out.links_discovered, 6, "discovery survives the load");
    }

    #[test]
    fn load_soak_is_a_pure_function_of_its_inputs() {
        let scenario = LoadScenario::new(
            small_fabric(),
            DefenseStack::TopoGuardSphinx,
            TrafficLoad::bursty(50, 1.0),
            21,
        );
        let a = run(&scenario);
        let b = run(&scenario);
        assert_eq!(a.metrics.render(), b.metrics.render());
        assert_eq!(a.flows_offered, b.flows_offered);
    }

    #[test]
    fn plan_elaboration_skips_hostless_switches() {
        let window = TrafficWindow::new(SimTime::from_secs(1), SimTime::from_secs(2));
        let plan = TrafficLoad::steady(64, 0.2).plan_for(
            TopoKind::CoreEdge {
                core: 4,
                edge: 8,
                hosts_per_edge: 1,
            },
            window,
        );
        assert_eq!(plan.len(), 8, "groups only on the hosting edge tier");
        assert_eq!(plan.total_hosts(), 8 * 64);
    }

    #[test]
    fn zero_hosts_elaborate_an_empty_plan() {
        let window = TrafficWindow::new(SimTime::from_secs(1), SimTime::from_secs(2));
        let plan = TrafficLoad::steady(0, 0.2).plan_for(small_fabric(), window);
        assert!(plan.is_empty());
    }
}
