// Fixture: panic sites only matter on scenario-reachable paths. `run`
// and `run_*` fns are entries; `helper` is reachable through `run`;
// `orphan` is not reachable and its identical index stays quiet. The
// guarded entry shows each accepted bound discipline.

pub fn run(data: &[u8], n: usize, div: u64) -> u64 {
    let byte = data[n]; //~ ERROR panic-reachability
    let quotient = 100 / div; //~ ERROR panic-reachability
    let narrowed = div as u32; //~ ERROR panic-reachability
    helper(data, n) + quotient + u64::from(byte) + u64::from(narrowed)
}

fn helper(data: &[u8], n: usize) -> u64 {
    u64::from(data[n + 1]) //~ ERROR panic-reachability
}

fn orphan(data: &[u8], n: usize) -> u8 {
    data[n]
}

pub fn run_guarded(data: &[u8], n: usize, div: u64) -> u64 {
    assert!(n < data.len(), "caller-checked bound");
    assert!(div > 0, "caller-checked divisor");
    let byte = data[n];
    let quotient = u64::from(byte) / div;
    let mut sum = 0u64;
    for i in 0..data.len() {
        sum += u64::from(data[i]);
    }
    let masked = (sum & 0xffff) as u16;
    quotient + sum + u64::from(masked)
}
