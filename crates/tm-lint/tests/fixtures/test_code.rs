// Fixture: code under #[cfg(test)] is exempt from the contract — tests
// may unwrap fixtures and use hash collections for order-insensitive
// assertions. Library code before and after the test module is not.

pub fn lib_code(maybe: Option<u8>) {
    let bad = maybe.unwrap(); //~ ERROR unwrap-in-lib
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn tests_are_free_to_do_all_of_this() {
        let t = Instant::now();
        let x = setup().unwrap();
        let mut m = HashMap::new();
        m.insert(1, (t, x));
    }
}

pub fn more_lib_code(maybe: Option<u8>) {
    let worse = maybe.expect("scenario input"); //~ ERROR unwrap-in-lib
}
