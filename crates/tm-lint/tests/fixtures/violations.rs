// Fixture: one violation of every rule. Never compiled — only lexed by
// the fixture runner, which checks the linter's diagnostics against the
// expected-error markers below, line by line.

pub fn violations(maybe: Option<u8>, a: f64, b: f64) {
    let start = Instant::now(); //~ ERROR wall-clock
    let stamp = SystemTime::now(); //~ ERROR wall-clock
    let mut seen = HashMap::new(); //~ ERROR unordered-collections
    let tags = HashSet::new(); //~ ERROR unordered-collections
    let mut rng = thread_rng(); //~ ERROR unseeded-rng
    let lock = Mutex::new(0u8); //~ ERROR threads
    let worker = thread::spawn(run); //~ ERROR threads
    let ord = a.partial_cmp(&b); //~ ERROR float-ordering
    let val = maybe.unwrap(); //~ ERROR unwrap-in-lib
    let other = maybe.expect("present"); //~ ERROR unwrap-in-lib
    let fixed = Rng::seed_from_u64(7); //~ ERROR seed-taint
    telemetry.counter_inc("wrong.namespace", 1); //~ ERROR telemetry-names
    // tm-lint: allow(threads) -- fixture: suppresses nothing, so the ratchet fires //~ ERROR stale-allow
    let quiet = 0u8;
}

pub fn run(v: &[u8], i: usize) -> u8 {
    v[i] //~ ERROR panic-reachability
}
