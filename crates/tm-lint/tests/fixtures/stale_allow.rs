// Fixture: the suppression ratchet. An allow that suppresses at least
// one diagnostic is live and earns its keep; an allow that suppresses
// nothing is itself an error, so the exception set only shrinks.

pub fn ratchet(maybe: Option<u8>) {
    let live = maybe.unwrap(); // tm-lint: allow(unwrap-in-lib) -- fixture: live allow earns credit
    // tm-lint: allow(wall-clock) -- fixture: nothing below reads a clock //~ ERROR stale-allow
    let quiet = 1u8;
}
