// Fixture: seed provenance. RNG constructions must be data-flow
// reachable from the scenario seed; literal seeds and laundered
// arguments are flagged, derivation chains are not.

pub fn run(scenario_seed: u64) {
    let direct = Rng::seed_from_u64(scenario_seed);
    let derived = tm_rand::stream_seed(scenario_seed, 7);
    let from_chain = Rng::seed_from_u64(derived);
    let renamed_rng = scenario_seed ^ 0x9e37;
    let via_name = Rng::from_state(renamed_rng);
    let fixed = Rng::seed_from_u64(42); //~ ERROR seed-taint
    let port = 8080;
    let laundered = Rng::seed_from_u64(port); //~ ERROR seed-taint
}
