// Fixture: telemetry metric names must live in a registered namespace
// and use snake_case dot-separated segments. Non-literal names are out
// of scope (the call site cannot be vetted statically).

pub fn emit(t: &mut Telemetry, n: u64, dynamic_name: &str) {
    t.counter_inc("netsim.frames_forwarded", 1);
    t.gauge_set("controller.links_active", n);
    t.observe_ns("topoguard.verdict_latency", n);
    t.counter_inc("bogus.frames", 1); //~ ERROR telemetry-names
    t.observe_ns("netsim.BadSegment.latency", n); //~ ERROR telemetry-names
    t.counter_add("netsim..double_dot", 1); //~ ERROR telemetry-names
    t.counter_inc(dynamic_name, 1);
}
