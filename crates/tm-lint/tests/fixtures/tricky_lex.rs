// Fixture: lexer stress — rule triggers inside strings, raw strings,
// comments and lookalike identifiers must NOT fire. The one genuine
// violation at the bottom proves the file is actually scanned.
//
// Prose mentioning the tm-lint: allow(wall-clock) syntax mid-comment is
// not a directive and must not be vetted as one.

pub fn tricky<'a>(s: &'a str, maybe: Option<u8>) -> &'a str {
    let msg = "Instant::now() inside a string is fine";
    let raw = r#"HashMap::new() in a raw "string" is fine"#;
    let fenced = r##"even r#"nested"# fences: thread_rng()"##;
    let byte = b"Mutex::new() in a byte string";
    let ch = 'h'; // a char literal, not a lifetime
    let prose = "tm-lint: allow(unseeded-rng) -- prose in a string, not a directive";
    /* block comments may mention partial_cmp and .unwrap() freely,
    /* even nested */ without tripping anything */
    let unwrap_or = maybe.unwrap_or(0); // lookalike method: no diagnostic
    let thread = 4; // lookalike local: no `::` neighbour, no diagnostic
    let real = SystemTime::now(); //~ ERROR wall-clock
    s
}
