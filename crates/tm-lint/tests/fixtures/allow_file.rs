// tm-lint: allow-file(wall-clock) -- fixture: the whole file measures wall time
// Fixture: a file-scoped allow suppresses the rule everywhere, but only
// that rule — the unwrap at the bottom must still be flagged.

pub fn first() {
    let a = Instant::now();
}

pub fn second() {
    let b = SystemTime::now();
}

pub fn third(maybe: Option<u8>) {
    let v = maybe.unwrap(); //~ ERROR unwrap-in-lib
}
