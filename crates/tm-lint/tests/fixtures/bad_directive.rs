// Fixture: broken suppressions surface as unsuppressible `bad-directive`
// diagnostics: a reason-less allow, an unknown rule name, and an attempt
// to allow the meta-rule itself.

// tm-lint: allow(wall-clock) //~ ERROR bad-directive
// tm-lint: allow(no-such-rule) -- a written reason does not rescue an unknown rule //~ ERROR bad-directive
// tm-lint: allow(bad-directive) -- the meta-rule cannot be suppressed //~ ERROR bad-directive

pub fn untouched() -> u32 {
    7
}
