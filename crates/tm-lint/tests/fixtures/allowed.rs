// Fixture: real violations, every one covered by a written-down allow.
// Expected outcome: zero diagnostics, non-zero allowed count. Exercises
// both directive scopes: a standalone comment covers the next line, a
// trailing comment covers only its own line.

pub fn allowed(maybe: Option<u8>) {
    // tm-lint: allow(wall-clock) -- fixture: standalone comment covers the next line
    let start = Instant::now();
    let stamp = SystemTime::now(); // tm-lint: allow(wall-clock) -- fixture: trailing comment covers this line
    let val = maybe.unwrap(); // tm-lint: allow(unwrap-in-lib) -- fixture: value is always present here
    // tm-lint: allow(unordered-collections, threads) -- fixture: one directive may list several rules
    let m = Mutex::new(HashMap::new());
}
