//! The incremental cache must be invisible: a warm run returns exactly
//! the cold run's diagnostics, hits on every unchanged file, and
//! re-analyzes a file the moment its content changes.

use std::fs;
use std::path::PathBuf;

fn scratch_workspace(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("tm-lint-cache-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("src")).expect("scratch dir");
    fs::write(
        root.join("tm-lint.toml"),
        "[tier.sim-core]\npaths = [\"src\"]\ndeny = [\"wall-clock\", \"unwrap-in-lib\", \"panic-reachability\"]\n",
    )
    .expect("config");
    fs::write(
        root.join("src/lib.rs"),
        "pub fn run(v: &[u8], i: usize) -> u8 {\n    let t = Instant::now();\n    v[i]\n}\n",
    )
    .expect("source");
    root
}

#[test]
fn warm_run_hits_the_cache_and_repeats_the_cold_run_verbatim() {
    let root = scratch_workspace("warm");
    let cache = root.join("cache");

    let cold = tm_lint::lint_workspace_with(&root, Some(&cache)).expect("cold run");
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, 1);
    assert_eq!(cold.diagnostics.len(), 2, "wall-clock + reachable index");

    let warm = tm_lint::lint_workspace_with(&root, Some(&cache)).expect("warm run");
    assert_eq!(warm.cache_hits, 1, "unchanged file must hit");
    assert_eq!(warm.cache_misses, 0);
    let render = |r: &tm_lint::Report| -> Vec<String> {
        r.diagnostics.iter().map(|d| d.render()).collect::<Vec<_>>()
    };
    assert_eq!(
        render(&cold),
        render(&warm),
        "cache changes nothing observable"
    );

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn edits_and_config_changes_invalidate_cached_entries() {
    let root = scratch_workspace("edit");
    let cache = root.join("cache");

    let first = tm_lint::lint_workspace_with(&root, Some(&cache)).expect("first run");
    assert_eq!(first.diagnostics.len(), 2);

    // Fix the file: the next run must re-analyze it, not replay stale facts.
    fs::write(
        root.join("src/lib.rs"),
        "pub fn run(v: &[u8], i: usize) -> u8 {\n    assert!(i < v.len());\n    v[i]\n}\n",
    )
    .expect("edit");
    let second = tm_lint::lint_workspace_with(&root, Some(&cache)).expect("second run");
    assert_eq!(second.cache_hits, 0, "changed content must miss");
    assert!(second.diagnostics.is_empty(), "{:?}", second.diagnostics);

    // Tightening the config must invalidate everything via the fingerprint.
    fs::write(
        root.join("tm-lint.toml"),
        "[tier.sim-core]\npaths = [\"src\"]\ndeny = [\"wall-clock\", \"unwrap-in-lib\", \"panic-reachability\", \"threads\"]\n",
    )
    .expect("reconfig");
    let third = tm_lint::lint_workspace_with(&root, Some(&cache)).expect("third run");
    assert_eq!(third.cache_hits, 0, "new config fingerprint must miss");

    let _ = fs::remove_dir_all(&root);
}
