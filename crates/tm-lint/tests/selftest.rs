//! The workspace must lint clean against its own determinism contract.
//!
//! This is the same check `ci.sh` runs via `cargo run -p tm-lint`; having
//! it as a test means `cargo test --workspace` alone catches a violation,
//! with the offending lines in the assertion message.

use std::path::Path;

#[test]
fn workspace_lints_clean_under_its_own_contract() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = tm_lint::lint_workspace(&root).expect("tm-lint.toml parses");

    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        rendered.is_empty(),
        "determinism contract violations:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files > 50,
        "walked only {} files — wrong workspace root?",
        report.files
    );
    assert!(report.summary_json().starts_with("TM_LINT_JSON {"));
}
