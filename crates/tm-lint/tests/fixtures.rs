//! Fixture-driven integration tests.
//!
//! Each file under `tests/fixtures/` carries `//~ ERROR <rule>` markers
//! on the lines where a diagnostic is expected (the rustc UI-test
//! convention). The runner lints the file in strict mode — every rule
//! denied — and requires the diagnostics to match the markers exactly,
//! in both directions: nothing missed, nothing spurious.
//!
//! Fixtures are never compiled as Rust (the walk in `lint_workspace`
//! skips `tests/` and `fixtures/` directories, and cargo only builds
//! top-level files in `tests/`), so they are free to violate the
//! determinism contract and to reference undefined names.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use tm_lint::lint_files_strict;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parses the `//~ ERROR <rule>` markers out of a fixture's source.
fn expected_markers(src: &str) -> Vec<(u32, String)> {
    const MARKER: &str = "//~ ERROR ";
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(pos) = line.find(MARKER) {
            let rule = line[pos + MARKER.len()..].trim().to_string();
            assert!(
                !rule.is_empty(),
                "marker without a rule on line {}",
                idx + 1
            );
            out.push((idx as u32 + 1, rule));
        }
    }
    out
}

/// Lints `name` in strict mode and diffs diagnostics against markers.
/// Returns the report for fixture-specific extra assertions.
fn check_fixture(name: &str) -> tm_lint::Report {
    let path = fixtures_dir().join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let mut want = expected_markers(&src);
    let report = lint_files_strict(&fixtures_dir(), &[path]).expect("lint runs");
    let mut got: Vec<(u32, String)> = report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.rule.to_string()))
        .collect();
    want.sort();
    got.sort();
    assert_eq!(
        got, want,
        "{name}: linter diagnostics (left) vs //~ ERROR markers (right)"
    );
    report
}

#[test]
fn violations_fixture_trips_every_rule() {
    let report = check_fixture("violations.rs");
    let fired: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
    let all: BTreeSet<&str> = tm_lint::rules::rule_names()
        .iter()
        .copied()
        .filter(|r| *r != "bad-directive")
        .collect();
    assert_eq!(fired, all, "every real rule must fire at least once");
    assert_eq!(report.allowed_total(), 0);
}

#[test]
fn allowed_fixture_is_clean_but_counts_suppressions() {
    let report = check_fixture("allowed.rs");
    assert!(report.diagnostics.is_empty());
    assert_eq!(report.allowed.get("wall-clock"), Some(&2));
    assert_eq!(report.allowed.get("unwrap-in-lib"), Some(&1));
    assert_eq!(report.allowed.get("unordered-collections"), Some(&1));
    assert_eq!(report.allowed.get("threads"), Some(&1));
}

#[test]
fn allow_file_fixture_suppresses_one_rule_everywhere() {
    let report = check_fixture("allow_file.rs");
    assert_eq!(report.allowed.get("wall-clock"), Some(&2));
    assert_eq!(report.diagnostics.len(), 1, "the unwrap still fires");
}

#[test]
fn bad_directives_are_diagnostics_themselves() {
    let report = check_fixture("bad_directive.rs");
    assert!(report.diagnostics.iter().all(|d| d.rule == "bad-directive"));
    assert_eq!(report.allowed_total(), 0, "broken allows suppress nothing");
}

#[test]
fn cfg_test_code_is_exempt() {
    check_fixture("test_code.rs");
}

#[test]
fn seed_taint_fixture_separates_derivation_from_laundering() {
    let report = check_fixture("seed_taint.rs");
    assert_eq!(
        report.diagnostics.len(),
        2,
        "two violations, four clean constructions"
    );
}

#[test]
fn panic_reach_fixture_only_flags_reachable_unguarded_sites() {
    let report = check_fixture("panic_reach.rs");
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.rule == "panic-reachability"),
        "no other rule fires in this fixture"
    );
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("orphan")),
        "unreachable fns stay quiet"
    );
}

#[test]
fn telemetry_fixture_vets_literal_metric_names() {
    check_fixture("telemetry.rs");
}

#[test]
fn stale_allow_fixture_credits_live_allows_only() {
    let report = check_fixture("stale_allow.rs");
    assert_eq!(report.allowed.get("unwrap-in-lib"), Some(&1));
}

#[test]
fn lexer_is_not_fooled_by_strings_comments_or_lookalikes() {
    let report = check_fixture("tricky_lex.rs");
    assert_eq!(report.diagnostics.len(), 1, "only the genuine violation");
}

#[test]
fn diagnostics_render_in_compiler_style() {
    let report = check_fixture("violations.rs");
    let first = report.diagnostics.first().expect("has diagnostics");
    let line = first.render();
    assert!(
        line.starts_with("violations.rs:") && line.contains(": deny("),
        "{line}"
    );
}

/// The acceptance criterion, end to end: the CLI exits non-zero on a
/// fixture containing each rule violation and zero on a clean one.
#[test]
fn cli_exit_codes_reflect_diagnostics() {
    let exe = env!("CARGO_BIN_EXE_tm-lint");
    let run = |name: &str| {
        Command::new(exe)
            .arg(fixtures_dir().join(name))
            .output()
            .expect("tm-lint binary runs")
    };

    let bad = run("violations.rs");
    assert_eq!(bad.status.code(), Some(1), "violations must fail the run");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("TM_LINT_JSON {"), "summary line present");

    let clean = run("allowed.rs");
    assert_eq!(clean.status.code(), Some(0), "allowed fixture passes");
}
