//! The rule registry and the diagnostic assembler.
//!
//! Passes (see [`crate::passes`]) produce raw diagnostics; this module
//! owns everything that happens after: directive vetting, allow
//! accounting, and the **stale-allow ratchet** — an allow directive that
//! suppresses zero diagnostics is itself an error, so the suppression
//! set can only shrink over time.

use std::collections::BTreeMap;

use crate::lexer::Directive;
use crate::passes::{DirFact, FileFacts};

/// All rule names, in the order they are reported. `stale-allow` and
/// `bad-directive` are meta-rules (the linter checking its own
/// suppression machinery): always active, never suppressible, and not
/// valid in tier deny lists or allow directives.
pub fn rule_names() -> &'static [&'static str] {
    &[
        "wall-clock",
        "unordered-collections",
        "unseeded-rng",
        "threads",
        "float-ordering",
        "unwrap-in-lib",
        "seed-taint",
        "panic-reachability",
        "telemetry-names",
        "stale-allow",
        "bad-directive",
    ]
}

/// The meta-rules: diagnostics about the lint machinery itself.
pub fn meta_rules() -> &'static [&'static str] {
    &["stale-allow", "bad-directive"]
}

/// Interns a rule name to its `&'static str` form.
pub fn intern(name: &str) -> Option<&'static str> {
    rule_names().iter().find(|r| **r == name).copied()
}

/// One finding: a denied construct at a specific line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// Rule name (one of [`rule_names`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders in the `path:line: deny(rule): message` compiler style.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: deny({}): {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Per-file lint outcome: surviving diagnostics plus suppression counts.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Diagnostics not covered by an allow directive.
    pub diagnostics: Vec<Diagnostic>,
    /// Count of diagnostics suppressed per rule.
    pub allowed: BTreeMap<&'static str, u64>,
}

/// Checks a directive is well-formed: parseable, known non-meta rules,
/// non-empty reason. Returns the problem text if not.
pub(crate) fn vet_directive(d: &Directive) -> Result<(), String> {
    if d.malformed {
        return Err("malformed directive (expected `tm-lint: allow(<rules>) -- <reason>`)".into());
    }
    if d.reason.is_empty() {
        return Err("allow directive without a written reason (`-- <why>` is mandatory)".into());
    }
    if let Some(unknown) = d
        .rules
        .iter()
        .find(|r| !rule_names().contains(&r.as_str()) || meta_rules().contains(&r.as_str()))
    {
        return Err(format!("allow directive names unknown rule `{unknown}`"));
    }
    if d.rules.is_empty() {
        return Err("allow directive lists no rules".into());
    }
    Ok(())
}

/// Assembles a file's final report from its cached facts plus the
/// workspace-pass diagnostics for it: applies allow directives, counts
/// what each suppressed, and turns zero-credit directive rules into
/// `stale-allow` diagnostics.
pub fn assemble(path: &str, facts: &FileFacts, ws_diags: Vec<Diagnostic>) -> FileReport {
    let mut report = FileReport::default();

    // Credit table: (directive index, rule) -> suppression count.
    let mut credit: BTreeMap<(usize, &str), u64> = BTreeMap::new();
    for (di, dir) in facts.dirs.iter().enumerate() {
        for rule in &dir.rules {
            credit.insert((di, rule.as_str()), 0);
        }
    }

    let all = facts
        .raw
        .iter()
        .map(|r| Diagnostic {
            path: path.to_string(),
            line: r.line,
            rule: r.rule,
            message: r.message.clone(),
        })
        .chain(ws_diags);
    for diag in all {
        if meta_rules().contains(&diag.rule) {
            report.diagnostics.push(diag);
            continue;
        }
        match covering_directive(&facts.dirs, diag.line, diag.rule) {
            Some(di) => {
                *credit.entry((di, diag.rule)).or_default() += 1;
                *report.allowed.entry(diag.rule).or_default() += 1;
            }
            None => report.diagnostics.push(diag),
        }
    }

    for (di, dir) in facts.dirs.iter().enumerate() {
        let dead: Vec<&str> = dir
            .rules
            .iter()
            .map(String::as_str)
            .filter(|rule| credit.get(&(di, *rule)).copied().unwrap_or(0) == 0)
            .collect();
        if !dead.is_empty() {
            report.diagnostics.push(Diagnostic {
                path: path.to_string(),
                line: dir.line,
                rule: "stale-allow",
                message: format!(
                    "allow({}) suppresses no diagnostics; delete it (the suppression set only \
                     ratchets down)",
                    dead.join(", ")
                ),
            });
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    report
}

/// The first directive covering `(line, rule)`: line-scoped directives
/// win over `allow-file`, earlier directives over later ones.
fn covering_directive(dirs: &[DirFact], line: u32, rule: &str) -> Option<usize> {
    let hit = |d: &DirFact| d.rules.iter().any(|r| r == rule);
    dirs.iter()
        .position(|d| !d.file_scope && hit(d) && d.covered.contains(&line))
        .or_else(|| dirs.iter().position(|d| d.file_scope && hit(d)))
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use super::*;
    use crate::check_source;

    fn run(src: &str) -> FileReport {
        let deny: BTreeSet<&str> = rule_names()
            .iter()
            .copied()
            .filter(|r| !meta_rules().contains(r))
            .collect();
        check_source("mem.rs", src, &deny)
    }

    #[test]
    fn each_token_rule_fires() {
        let cases = [
            ("let t = Instant::now();", "wall-clock"),
            ("use std::time::SystemTime;", "wall-clock"),
            (
                "let m: HashMap<u32, u32> = HashMap::new();",
                "unordered-collections",
            ),
            ("let r = thread_rng();", "unseeded-rng"),
            ("std::thread::spawn(|| {});", "threads"),
            ("let l = Mutex::new(0);", "threads"),
            ("a.partial_cmp(&b)", "float-ordering"),
            ("let v = x.unwrap();", "unwrap-in-lib"),
            ("let v = x.expect(\"msg\");", "unwrap-in-lib"),
        ];
        for (src, rule) in cases {
            let rep = run(src);
            assert!(
                rep.diagnostics.iter().any(|d| d.rule == rule),
                "{src:?} should trip {rule}, got {:?}",
                rep.diagnostics
            );
        }
    }

    #[test]
    fn benign_lookalikes_do_not_fire() {
        for src in [
            "let v = x.unwrap_or(3);",
            "let v = x.unwrap_or_else(f);",
            "let t = self.total_cmp(&o);",
            "let thread = 4; let x = thread + 1;",
            "let instant = 3;", // idents are case-sensitive
            "b.cmp(&a)",
        ] {
            let rep = run(src);
            assert!(
                rep.diagnostics.is_empty(),
                "{src:?} -> {:?}",
                rep.diagnostics
            );
        }
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  use std::collections::HashSet;\n  #[test]\n  fn t() { let x = foo().unwrap(); let i = Instant::now(); }\n}\nfn tail() { let bad = q.unwrap(); }";
        let rep = run(src);
        assert_eq!(rep.diagnostics.len(), 1, "{:?}", rep.diagnostics);
        assert_eq!(rep.diagnostics[0].rule, "unwrap-in-lib");
        assert_eq!(rep.diagnostics[0].line, 8);
    }

    #[test]
    fn cfg_all_test_is_also_exempt() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() { x.unwrap(); } }";
        assert!(run(src).diagnostics.is_empty());
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let src = "// tm-lint: allow(wall-clock) -- harness timing\nlet t = Instant::now();\nlet u = Instant::now(); // tm-lint: allow(wall-clock) -- second site\nlet bad = Instant::now();";
        let rep = run(src);
        assert_eq!(rep.diagnostics.len(), 1, "{:?}", rep.diagnostics);
        assert_eq!(rep.diagnostics[0].line, 4);
        assert_eq!(rep.allowed.get("wall-clock"), Some(&2));
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src = "// tm-lint: allow-file(wall-clock) -- timing module\nfn a() { Instant::now(); }\nfn b() { SystemTime::now(); }";
        let rep = run(src);
        assert!(rep.diagnostics.is_empty());
        assert_eq!(rep.allowed.get("wall-clock"), Some(&2));
    }

    #[test]
    fn reasonless_or_unknown_allows_are_diagnostics() {
        let src = "// tm-lint: allow(wall-clock)\n// tm-lint: allow(no-such-rule) -- why\n// tm-lint: allow(bad-directive) -- cheeky\n// tm-lint: allow(stale-allow) -- also cheeky";
        let rep = run(src);
        let rules: Vec<_> = rep.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["bad-directive"; 4], "{:?}", rep.diagnostics);
    }

    #[test]
    fn stale_allow_fires_when_nothing_is_suppressed() {
        let src =
            "// tm-lint: allow(wall-clock) -- stale: nothing below reads the clock\nlet x = 1;";
        let rep = run(src);
        assert_eq!(rep.diagnostics.len(), 1, "{:?}", rep.diagnostics);
        assert_eq!(rep.diagnostics[0].rule, "stale-allow");
        assert_eq!(rep.diagnostics[0].line, 1);
    }

    #[test]
    fn stale_allow_is_per_rule_within_a_directive() {
        let src =
            "// tm-lint: allow(wall-clock, threads) -- only one is real\nlet t = Instant::now();";
        let rep = run(src);
        assert_eq!(rep.diagnostics.len(), 1, "{:?}", rep.diagnostics);
        assert_eq!(rep.diagnostics[0].rule, "stale-allow");
        assert!(rep.diagnostics[0].message.contains("threads"));
        assert!(!rep.diagnostics[0].message.contains("wall-clock,"));
        assert_eq!(rep.allowed.get("wall-clock"), Some(&1));
    }

    #[test]
    fn live_allows_do_not_trip_the_ratchet() {
        let src = "// tm-lint: allow-file(wall-clock) -- timing module\nfn a() { Instant::now(); }";
        let rep = run(src);
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let deny: BTreeSet<&str> = ["unordered-collections"].into();
        let rep = check_source(
            "mem.rs",
            "let t = Instant::now(); let m = HashMap::new();",
            &deny,
        );
        let rules: Vec<_> = rep.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["unordered-collections"]);
    }
}
