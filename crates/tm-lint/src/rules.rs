//! The determinism rules and the engine that applies them to a token
//! stream.
//!
//! Every rule keys off identifier tokens plus at most two neighbours, so
//! the engine is a single pass over the lexed file. Code under
//! `#[cfg(test)]` is excluded first: tests may freely use `HashSet` for
//! order-insensitive assertions or `unwrap()` on fixtures — the contract
//! protects *sim-visible* state, which tests are not.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Directive, Lexed, Tok, TokKind};

/// All rule names, in the order they are reported. `bad-directive` is a
/// meta-rule (malformed or reason-less suppressions) and cannot itself be
/// suppressed.
pub fn rule_names() -> &'static [&'static str] {
    &[
        "wall-clock",
        "unordered-collections",
        "unseeded-rng",
        "threads",
        "float-ordering",
        "unwrap-in-lib",
        "bad-directive",
    ]
}

/// One finding: a denied construct at a specific line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// Rule name (one of [`rule_names`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Renders in the `path:line: deny(rule): message` compiler style.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: deny({}): {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Per-file lint outcome: surviving diagnostics plus suppression counts.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Diagnostics not covered by an allow directive.
    pub diagnostics: Vec<Diagnostic>,
    /// Count of diagnostics suppressed per rule.
    pub allowed: BTreeMap<&'static str, u64>,
}

/// Lints one lexed file against the `deny` rule set.
pub fn check(path: &str, lexed: &Lexed, deny: &[String]) -> FileReport {
    let mut report = FileReport::default();
    let deny: BTreeSet<&str> = deny.iter().map(String::as_str).collect();

    // Directive bookkeeping: a trailing allow (code precedes the comment
    // on its line) covers only that line; a standalone comment line covers
    // the following line. allow-file covers the whole file.
    let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut line_allows: BTreeSet<(u32, &str)> = BTreeSet::new();
    let mut file_allows: BTreeSet<&str> = BTreeSet::new();
    for d in &lexed.directives {
        if let Some(diag) = vet_directive(path, d) {
            report.diagnostics.push(diag);
            continue;
        }
        for rule in &d.rules {
            if d.file_scope {
                file_allows.insert(rule.as_str());
            } else {
                line_allows.insert((d.line, rule.as_str()));
                if !token_lines.contains(&d.line) {
                    line_allows.insert((d.line + 1, rule.as_str()));
                }
            }
        }
    }

    let excluded = test_code_ranges(&lexed.tokens);
    let mut raw: Vec<Diagnostic> = Vec::new();
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if excluded.iter().any(|r| r.contains(&i)) {
            continue;
        }
        if let Some((rule, message)) = match_rule(&lexed.tokens, i) {
            if deny.contains(rule) {
                raw.push(Diagnostic {
                    path: path.to_string(),
                    line: t.line,
                    rule,
                    message,
                });
            }
        }
    }

    for diag in raw {
        if file_allows.contains(diag.rule) || line_allows.contains(&(diag.line, diag.rule)) {
            *report.allowed.entry(diag.rule).or_default() += 1;
        } else {
            report.diagnostics.push(diag);
        }
    }
    report.diagnostics.sort_by_key(|d| d.line);
    report
}

/// Checks a directive is well-formed: parseable, known rules, non-empty
/// reason. Returns the diagnostic to emit if not.
fn vet_directive(path: &str, d: &Directive) -> Option<Diagnostic> {
    let problem = if d.malformed {
        "malformed directive (expected `tm-lint: allow(<rules>) -- <reason>`)".to_string()
    } else if d.reason.is_empty() {
        "allow directive without a written reason (`-- <why>` is mandatory)".to_string()
    } else if let Some(unknown) = d
        .rules
        .iter()
        .find(|r| !rule_names().contains(&r.as_str()) || *r == "bad-directive")
    {
        format!("allow directive names unknown rule `{unknown}`")
    } else if d.rules.is_empty() {
        "allow directive lists no rules".to_string()
    } else {
        return None;
    };
    Some(Diagnostic {
        path: path.to_string(),
        line: d.line,
        rule: "bad-directive",
        message: problem,
    })
}

/// Matches the token at `i` (an ident) against every rule. Returns the
/// first rule hit and its message.
fn match_rule(toks: &[Tok], i: usize) -> Option<(&'static str, String)> {
    let t = &toks[i];
    let text = t.text.as_str();
    let prev = |n: usize| i.checked_sub(n).map(|j| toks[j].text.as_str());
    let next = |n: usize| toks.get(i + n).map(|t| t.text.as_str());

    match text {
        "Instant" | "SystemTime" | "UNIX_EPOCH" => Some((
            "wall-clock",
            format!("`{text}` reads the wall clock; sim-visible time must come from SimTime"),
        )),
        "HashMap" | "HashSet" => Some((
            "unordered-collections",
            format!("`{text}` iterates in hash order; use BTreeMap/BTreeSet (or a Vec) so state is ordered"),
        )),
        "thread_rng" | "ThreadRng" | "OsRng" | "from_entropy" | "getrandom" => Some((
            "unseeded-rng",
            format!("`{text}` draws entropy outside the seeded tm-rand root; fork from the scenario RNG"),
        )),
        "Mutex" | "RwLock" | "Condvar" | "JoinHandle" | "thread_local" | "mpsc" => Some((
            "threads",
            format!("`{text}` implies concurrency; sim crates are single-threaded by contract"),
        )),
        "thread" if next(1) == Some("::") || prev(1) == Some("::") => Some((
            "threads",
            "`std::thread` implies concurrency; sim crates are single-threaded by contract".into(),
        )),
        "partial_cmp" => Some((
            "float-ordering",
            "`partial_cmp` is NaN-partial; event-ordering paths need `total_cmp` or integer keys".into(),
        )),
        "unwrap" | "expect" if prev(1) == Some(".") && next(1) == Some("(") => Some((
            "unwrap-in-lib",
            format!("`.{text}()` panics on scenario-reachable input; return a Result or use let-else/debug_assert"),
        )),
        _ => None,
    }
}

/// Token index ranges covered by `#[cfg(test)]` (or any `cfg(…)` attribute
/// mentioning `test`, e.g. `cfg(all(test, …))`), including the attribute
/// itself and the brace-delimited item that follows it.
fn test_code_ranges(toks: &[Tok]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            // Scan the attribute body up to its closing `]`.
            let attr_start = i;
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut is_cfg = false;
            let mut mentions_test = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "cfg" if j == attr_start + 2 => is_cfg = true,
                    "test" => mentions_test = true,
                    _ => {}
                }
                j += 1;
            }
            if is_cfg && mentions_test {
                // Skip any further attributes, then the braced item.
                let mut k = j;
                while k < toks.len() && toks[k].text == "#" {
                    let mut d = 0u32;
                    k += 1;
                    if k < toks.len() && toks[k].text == "[" {
                        loop {
                            match toks.get(k).map(|t| t.text.as_str()) {
                                Some("[") => d += 1,
                                Some("]") => {
                                    d -= 1;
                                    if d == 0 {
                                        k += 1;
                                        break;
                                    }
                                }
                                None => break,
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                }
                while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                    k += 1;
                }
                if toks.get(k).map(|t| t.text.as_str()) == Some("{") {
                    let mut braces = 1u32;
                    k += 1;
                    while k < toks.len() && braces > 0 {
                        match toks[k].text.as_str() {
                            "{" => braces += 1,
                            "}" => braces -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                out.push(attr_start..k);
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn all_rules() -> Vec<String> {
        rule_names().iter().map(|s| s.to_string()).collect()
    }

    fn run(src: &str) -> FileReport {
        check("mem.rs", &lex(src), &all_rules())
    }

    #[test]
    fn each_rule_fires() {
        let cases = [
            ("let t = Instant::now();", "wall-clock"),
            ("use std::time::SystemTime;", "wall-clock"),
            (
                "let m: HashMap<u32, u32> = HashMap::new();",
                "unordered-collections",
            ),
            ("let r = thread_rng();", "unseeded-rng"),
            ("std::thread::spawn(|| {});", "threads"),
            ("let l = Mutex::new(0);", "threads"),
            ("a.partial_cmp(&b)", "float-ordering"),
            ("let v = x.unwrap();", "unwrap-in-lib"),
            ("let v = x.expect(\"msg\");", "unwrap-in-lib"),
        ];
        for (src, rule) in cases {
            let rep = run(src);
            assert!(
                rep.diagnostics.iter().any(|d| d.rule == rule),
                "{src:?} should trip {rule}, got {:?}",
                rep.diagnostics
            );
        }
    }

    #[test]
    fn benign_lookalikes_do_not_fire() {
        for src in [
            "let v = x.unwrap_or(3);",
            "let v = x.unwrap_or_else(f);",
            "let t = self.total_cmp(&o);",
            "let thread = 4; let x = thread + 1;",
            "let instant = 3;", // idents are case-sensitive
            "b.cmp(&a)",
        ] {
            let rep = run(src);
            assert!(
                rep.diagnostics.is_empty(),
                "{src:?} -> {:?}",
                rep.diagnostics
            );
        }
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  use std::collections::HashSet;\n  #[test]\n  fn t() { let x = foo().unwrap(); let i = Instant::now(); }\n}\nfn tail() { let bad = q.unwrap(); }";
        let rep = run(src);
        assert_eq!(rep.diagnostics.len(), 1, "{:?}", rep.diagnostics);
        assert_eq!(rep.diagnostics[0].rule, "unwrap-in-lib");
        assert_eq!(rep.diagnostics[0].line, 8);
    }

    #[test]
    fn cfg_all_test_is_also_exempt() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() { x.unwrap(); } }";
        assert!(run(src).diagnostics.is_empty());
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let src = "// tm-lint: allow(wall-clock) -- harness timing\nlet t = Instant::now();\nlet u = Instant::now(); // tm-lint: allow(wall-clock) -- second site\nlet bad = Instant::now();";
        let rep = run(src);
        assert_eq!(rep.diagnostics.len(), 1, "{:?}", rep.diagnostics);
        assert_eq!(rep.diagnostics[0].line, 4);
        assert_eq!(rep.allowed.get("wall-clock"), Some(&2));
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let src = "// tm-lint: allow-file(wall-clock) -- timing module\nfn a() { Instant::now(); }\nfn b() { SystemTime::now(); }";
        let rep = run(src);
        assert!(rep.diagnostics.is_empty());
        assert_eq!(rep.allowed.get("wall-clock"), Some(&2));
    }

    #[test]
    fn reasonless_or_unknown_allows_are_diagnostics() {
        let src = "// tm-lint: allow(wall-clock)\n// tm-lint: allow(no-such-rule) -- why\n// tm-lint: allow(bad-directive) -- cheeky";
        let rep = run(src);
        let rules: Vec<_> = rep.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["bad-directive"; 3], "{:?}", rep.diagnostics);
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let rep = check(
            "mem.rs",
            &lex("let t = Instant::now(); let m = HashMap::new();"),
            &["unordered-collections".to_string()],
        );
        let rules: Vec<_> = rep.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["unordered-collections"]);
    }
}
