//! The lightweight per-file item tree the flow-aware passes walk.
//!
//! This is deliberately **not** a full Rust AST. The determinism passes
//! need to know where functions begin and end, what they are called, what
//! they call, which parameters and `let`-bindings are in scope, and which
//! items are `#[cfg(test)]` — nothing more. Expressions are represented as
//! token ranges plus a shallow [`ExprInfo`] summary (the identifiers and
//! calls they mention), which is exactly the granularity the seed-taint
//! analysis reasons at. Anything the parser does not understand becomes an
//! [`ItemKind::Other`] and is skipped, never an error: the compiler owns
//! syntax, the linter only owns the contract.

use std::ops::Range;

/// The parsed item tree of one file.
#[derive(Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item, with the `#[cfg(test)]` exemption already resolved (an item
/// is `cfg_test` if its own attributes or any enclosing module's say so).
#[derive(Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// 1-indexed line the item starts on (its keyword).
    pub line: u32,
    /// Whether the item (or an ancestor) is gated behind `cfg(test)`.
    pub cfg_test: bool,
}

/// Item discriminant. Only the kinds passes care about are structured.
#[derive(Debug)]
pub enum ItemKind {
    /// `mod name { … }` (inline) or `mod name;` (empty `items`).
    Mod {
        /// Module name.
        name: String,
        /// Nested items (empty for out-of-line modules).
        items: Vec<Item>,
    },
    /// A free function.
    Fn(FnDef),
    /// `impl Type { … }` / `impl Trait for Type { … }`.
    Impl(ImplDef),
    /// `use path::to::thing;` — the use graph, one edge per declaration.
    Use {
        /// The path text with `::` separators, braces/globs kept verbatim.
        path: String,
    },
    /// Anything else (struct/enum/const/static/trait/macro/…), skipped.
    Other,
}

/// An `impl` block and the methods defined in it.
#[derive(Debug)]
pub struct ImplDef {
    /// The self type's head identifier (`Simulator` for
    /// `impl<'a> foo::Simulator<'a>`).
    pub ty: String,
    /// The trait's head identifier for trait impls.
    pub trait_name: Option<String>,
    /// Methods (each an [`ItemKind::Fn`] item, so `cfg_test` is per-fn).
    pub fns: Vec<Item>,
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Whether the fn has any `pub` visibility.
    pub is_pub: bool,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Parameter pattern identifiers (`self` included when present).
    pub params: Vec<String>,
    /// The body, when the fn has one (trait method signatures do not).
    pub body: Option<Body>,
}

/// A function body: its token extent plus the `let`-bindings found in it
/// (including those inside nested blocks and closures — taint analysis is
/// deliberately scope-insensitive).
#[derive(Debug, Default)]
pub struct Body {
    /// Token index range covering the body, *excluding* the outer braces.
    pub tokens: Range<usize>,
    /// `let` bindings in source order.
    pub lets: Vec<LetBind>,
}

/// One `let` binding (also `if let` / `while let` scrutinees).
#[derive(Debug)]
pub struct LetBind {
    /// Identifiers bound by the pattern (`let (a, b) = …` binds two).
    pub names: Vec<String>,
    /// 1-indexed line of the `let`.
    pub line: u32,
    /// The initializer, when present.
    pub init: Option<ExprInfo>,
}

/// A shallow summary of an expression: enough for data-flow taint.
#[derive(Debug, Default, Clone)]
pub struct ExprInfo {
    /// Token index range of the expression.
    pub tokens: Range<usize>,
    /// Every identifier mentioned, in order (keywords excluded).
    pub idents: Vec<String>,
    /// Every called function/method name, in order.
    pub calls: Vec<String>,
    /// True when the expression contains no identifiers at all — a pure
    /// literal (possibly with operators/parens).
    pub literal_only: bool,
}

impl Ast {
    /// Walks every function in the tree (free fns, methods, fns in inline
    /// modules), visiting `(fn, enclosing impl type if any, cfg_test)`.
    pub fn for_each_fn<'a>(&'a self, f: &mut impl FnMut(&'a FnDef, Option<&'a str>, bool)) {
        fn walk<'a>(items: &'a [Item], f: &mut impl FnMut(&'a FnDef, Option<&'a str>, bool)) {
            for item in items {
                match &item.kind {
                    ItemKind::Fn(def) => f(def, None, item.cfg_test),
                    ItemKind::Impl(im) => {
                        for m in &im.fns {
                            if let ItemKind::Fn(def) = &m.kind {
                                f(def, Some(im.ty.as_str()), m.cfg_test);
                            }
                        }
                    }
                    ItemKind::Mod { items, .. } => walk(items, f),
                    ItemKind::Use { .. } | ItemKind::Other => {}
                }
            }
        }
        walk(&self.items, f);
    }
}
