//! A minimal Rust lexer: just enough to tell identifiers apart from
//! comments, string/char literals, and punctuation, with line numbers.
//!
//! The rule engine never needs full parsing — every determinism rule keys
//! off identifier tokens and one or two neighbours (`.unwrap(`,
//! `thread::`). What the lexer *must* get right is what is **not** code:
//! comments (including nested block comments), string literals (including
//! raw strings with `#` fences and byte strings), char literals, and
//! lifetimes (so `'a` is not mistaken for an unterminated char literal).
//!
//! Line comments are additionally scanned for `tm-lint:` directives — see
//! [`Directive`] — so suppression stays inline with the code it excuses.

/// What a token is. The rule engine only ever matches on identifiers and
/// punctuation; literals are kept so brace matching (for `#[cfg(test)]`
/// skipping) never sees braces hidden inside strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`Instant`, `fn`, `unwrap`).
    Ident,
    /// Punctuation. Multi-char operators that rules care about (`::`) are
    /// fused into one token; everything else is a single char.
    Punct,
    /// A string / raw string / byte string / char / numeric literal.
    Literal,
    /// A lifetime (`'a`). Distinct from `Literal` so rules can ignore it.
    Lifetime,
}

/// One token with its 1-indexed source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// The token text (for `Punct`, the operator itself, e.g. `::`).
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

/// An inline suppression parsed from a line comment.
///
/// Syntax: `// tm-lint: allow(rule-a, rule-b) -- reason` for a one-line
/// scope (the directive's own line and the line after it, so both
/// trailing and preceding placement work), or `allow-file(...)` for the
/// whole file. The ` -- reason` part is mandatory: an exception without a
/// written justification is itself a diagnostic.
#[derive(Clone, Debug)]
pub struct Directive {
    /// Rule names inside `allow(...)`.
    pub rules: Vec<String>,
    /// 1-indexed line the directive appears on.
    pub line: u32,
    /// Whether this is `allow-file` (whole file) or `allow` (line-scoped).
    pub file_scope: bool,
    /// The free-text reason after `--`, trimmed. Empty = malformed.
    pub reason: String,
    /// Set when the comment contains `tm-lint:` but does not parse as a
    /// well-formed directive (unknown verb, missing parens).
    pub malformed: bool,
}

/// Lexer output: the token stream plus any directives found in comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Tok>,
    /// All `tm-lint:` directives, in source order.
    pub directives: Vec<Directive>,
}

/// Tokenizes `src`. Never fails: unterminated constructs simply consume
/// the rest of the input (the compiler, not the linter, owns syntax
/// errors).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_directive(&src[start..i], line, &mut out.directives);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment; Rust block comments nest.
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                let start = i;
                i = skip_string(b, i + 1, &mut line);
                out.tokens
                    .push(tok(TokKind::Literal, &src[start..i], start_line));
            }
            b'r' if starts_raw_ident(b, i) => {
                // Raw identifier `r#foo`: one Ident token. The token text is
                // the bare name — `r#thread` *is* the identifier `thread`,
                // so rules must see it under its real name.
                let start = i + 2;
                let mut j = start;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(tok(TokKind::Ident, &src[start..j], line));
                i = j;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let start_line = line;
                let start = i;
                i = skip_raw_or_byte_string(b, i, &mut line);
                out.tokens
                    .push(tok(TokKind::Literal, &src[start..i], start_line));
            }
            b'\'' => {
                // Lifetime or char literal. `'ident` with no closing quote
                // within the next couple of chars is a lifetime.
                if is_lifetime(b, i) {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    out.tokens.push(tok(TokKind::Lifetime, &src[i..j], line));
                    i = j;
                } else {
                    let start_line = line;
                    let start = i;
                    i = skip_char_literal(b, i + 1, &mut line);
                    out.tokens
                        .push(tok(TokKind::Literal, &src[start..i], start_line));
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // A `.` is part of the number only when followed by a
                    // digit (so `1.max(2)` lexes as `1` `.` `max`).
                    if b[i] == b'.' && !b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(tok(TokKind::Literal, &src[start..i], line));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(tok(TokKind::Ident, &src[start..i], line));
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.tokens.push(tok(TokKind::Punct, "::", line));
                i += 2;
            }
            _ => {
                out.tokens.push(tok(TokKind::Punct, &src[i..i + 1], line));
                i += 1;
            }
        }
    }
    out
}

fn tok(kind: TokKind, text: &str, line: u32) -> Tok {
    Tok {
        kind,
        text: text.to_string(),
        line,
    }
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` — but not the identifiers `r` / `b`.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // Not a string start if the r/b is the tail of a longer identifier.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        while b.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    b.get(j) == Some(&b'"') && j > i
}

fn skip_raw_or_byte_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
    }
    if b.get(i) == Some(&b'r') {
        // Raw string: count fence, then find `"` + fence.
        i += 1;
        let mut fence = 0usize;
        while b.get(i) == Some(&b'#') {
            fence += 1;
            i += 1;
        }
        i += 1; // opening quote
        loop {
            match b.get(i) {
                None => return i,
                Some(b'\n') => *line += 1,
                Some(b'"') => {
                    let close = &b[i + 1..];
                    if close.len() >= fence && close[..fence].iter().all(|&c| c == b'#') {
                        return i + 1 + fence;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    } else {
        // Plain byte string `b"…"`.
        skip_string(b, i + 1, line)
    }
}

/// Skips a (byte) string body starting just after the opening quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // An escaped newline (line continuation) still ends a
                // source line; without this the count drifts for the rest
                // of the file and every later diagnostic points wrong.
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i = (i + 2).min(b.len());
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// `r#ident` (a raw identifier) — but not `r#"…"#` (a raw string) and not
/// the tail of a longer identifier.
fn starts_raw_ident(b: &[u8], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    b.get(i + 1) == Some(&b'#')
        && b.get(i + 2)
            .is_some_and(|&c| c.is_ascii_alphabetic() || c == b'_')
}

/// Distinguishes `'a` / `'static` (lifetime) from `'x'` / `'\n'` (char).
fn is_lifetime(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(&c) if c.is_ascii_alphabetic() || c == b'_' => {
            // `'a'` is a char literal; `'ab` or `'a,` is a lifetime.
            b.get(i + 2) != Some(&b'\'')
        }
        _ => false,
    }
}

/// Skips a char literal body starting just after the opening quote.
fn skip_char_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'\'' => return i + 1,
            b'\n' => {
                // Unterminated; bail so one bad char doesn't eat the file.
                *line += 1;
                return i + 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Parses a directive out of one line comment, if present. A directive
/// must be the *whole* comment — `// tm-lint: …` — so prose that merely
/// mentions the syntax (like this sentence) is not mistaken for one.
fn scan_directive(comment: &str, line: u32, out: &mut Vec<Directive>) {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    let Some(rest) = body.strip_prefix("tm-lint:") else {
        return;
    };
    let rest = rest.trim_start();
    let (file_scope, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (false, r)
    } else {
        out.push(Directive {
            rules: Vec::new(),
            line,
            file_scope: false,
            reason: String::new(),
            malformed: true,
        });
        return;
    };
    let rest = rest.trim_start();
    let (rules, tail) = match rest.strip_prefix('(').and_then(|r| {
        r.find(')')
            .map(|close| (r[..close].to_string(), r[close + 1..].to_string()))
    }) {
        Some((inside, tail)) => (
            inside
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>(),
            tail,
        ),
        None => {
            out.push(Directive {
                rules: Vec::new(),
                line,
                file_scope,
                reason: String::new(),
                malformed: true,
            });
            return;
        }
    };
    let reason = tail
        .trim_start()
        .strip_prefix("--")
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    out.push(Directive {
        rules,
        line,
        file_scope,
        reason,
        malformed: false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let src = "// Instant::now() here\nlet x = 1; /* HashMap */ let y;\n/* nested /* SystemTime */ still comment */ fin";
        assert_eq!(idents(src), vec!["let", "x", "let", "y", "fin"]);
    }

    #[test]
    fn strings_are_opaque() {
        let src = r####"let s = "Instant { } \" quote"; let r = r#"HashMap "{" inner"#; let b = b"thread_rng";"####;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "Instant" || i == "HashMap" || i == "thread_rng"));
        assert_eq!(ids, vec!["let", "s", "let", "r", "let", "b"]);
    }

    #[test]
    fn raw_string_fences_must_match() {
        let src = r#####"let s = r##"one "# not done yet"##; done"#####;
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { let c = 'x'; let n = '\\n'; x }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        // The char literals must not have eaten `x }`.
        assert_eq!(lexed.tokens.last().map(|t| t.text.as_str()), Some("}"));
    }

    #[test]
    fn nested_generics_lex_as_idents_and_puncts() {
        let src = "let m: BTreeMap<u64, Vec<BTreeMap<K, V>>> = BTreeMap::new();";
        let ids = idents(src);
        assert_eq!(
            ids,
            vec!["let", "m", "BTreeMap", "u64", "Vec", "BTreeMap", "K", "V", "BTreeMap", "new"]
        );
        let puncts: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct && t.text == "::")
            .collect();
        assert_eq!(puncts.len(), 1, "path separator fuses to one token");
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = 1;\n/* two\nlines */\nlet b = \"x\ny\";\nlet c = 2;";
        let lexed = lex(src);
        let c = lexed.tokens.iter().find(|t| t.text == "c").expect("c");
        assert_eq!(c.line, 6);
    }

    #[test]
    fn directives_parse_with_reason() {
        let src = "// tm-lint: allow(wall-clock, threads) -- bench harness\nlet x = 1; // tm-lint: allow-file(unwrap-in-lib) -- parser invariants\n// tm-lint: allow(no-reason-given)\n// tm-lint: frobnicate(x) -- nonsense";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 4);
        let d0 = &lexed.directives[0];
        assert_eq!(d0.rules, vec!["wall-clock", "threads"]);
        assert_eq!(d0.reason, "bench harness");
        assert!(!d0.file_scope && !d0.malformed);
        let d1 = &lexed.directives[1];
        assert!(d1.file_scope);
        assert_eq!(d1.line, 2);
        let d2 = &lexed.directives[2];
        assert!(d2.reason.is_empty() && !d2.malformed);
        assert!(lexed.directives[3].malformed);
    }

    #[test]
    fn string_literals_keep_their_text() {
        let lexed = lex(r#"let s = "netsim.engine.events"; let b = b"raw";"#);
        let lits: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["\"netsim.engine.events\"", "b\"raw\""]);
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_numbers_honest() {
        // The `\` + newline line-continuation used to be skipped without
        // counting the newline, drifting every later line number.
        let src = "let a = \"one\\\ntwo\";\nlet tail = 1;";
        let lexed = lex(src);
        let tail = lexed
            .tokens
            .iter()
            .find(|t| t.text == "tail")
            .expect("tail");
        assert_eq!(tail.line, 3);
    }

    #[test]
    fn raw_identifiers_lex_as_their_bare_name() {
        let src = "fn r#try(r#type: u32) { r#match(); } let s = r#\"still a raw string\"#;";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "try", "type", "u32", "match", "let", "s"]);
        let lits: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text)
            .collect();
        assert_eq!(lits, vec!["r#\"still a raw string\"#"]);
    }

    #[test]
    fn raw_byte_strings_and_byte_chars_are_opaque() {
        let src = "let a = br#\"Instant \" inside\"#; let c = b'x'; let d = '\\u{1F600}'; tail";
        let ids = idents(src);
        // `b` before a byte-char still lexes as a stray ident; it must not
        // swallow the following char literal or the tail.
        assert!(ids.contains(&"tail".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"inside".to_string()));
    }

    #[test]
    fn underscore_char_literal_is_not_a_lifetime() {
        let src = "let c = '_'; let l: &'_ str = s; end";
        let lexed = lex(src);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["'_'"]);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'_"]);
        assert_eq!(lexed.tokens.last().map(|t| t.text.as_str()), Some("end"));
    }

    #[test]
    fn unterminated_escape_at_eof_does_not_overrun() {
        // Regression: a trailing backslash used to step the cursor past the
        // end of the buffer, which now that literal text is sliced out of
        // the source would be an out-of-bounds range.
        let _ = lex("let s = \"abc\\");
        let _ = lex("let c = '\\");
    }

    #[test]
    fn numeric_literals_do_not_eat_method_calls() {
        let src = "let x = 1.max(2); let y = 1.5e3; let z = 0xffu64;";
        let ids = idents(src);
        assert!(ids.contains(&"max".to_string()));
        assert!(!ids.contains(&"5e3".to_string()));
    }
}
