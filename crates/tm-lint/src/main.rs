//! CLI for the workspace determinism linter.
//!
//! * `tm-lint` — lint the whole workspace per `tm-lint.toml` (found in the
//!   current directory, or the workspace root when run via
//!   `cargo run -p tm-lint`). Exits 1 on any un-allowed diagnostic.
//! * `tm-lint <file>…` — lint specific files with every rule denied
//!   (sim-core strictness), regardless of tier. Handy for fixtures and
//!   pre-commit spot checks.
//! * `tm-lint --no-cache` — workspace lint with the incremental cache
//!   (`target/tm-lint-cache`) disabled; the default run caches local-pass
//!   results per content hash.
//!
//! Always prints a machine-readable `TM_LINT_JSON` summary line last, so
//! CI and future BENCH_JSON tooling can track rule counts over time.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: tm-lint [--no-cache] [<file.rs>…]\n  no args:    lint the workspace per tm-lint.toml (cached)\n  --no-cache: skip target/tm-lint-cache\n  files:      lint them with every rule denied");
        return ExitCode::SUCCESS;
    }
    let use_cache = !args.iter().any(|a| a == "--no-cache");
    args.retain(|a| a != "--no-cache");

    let result = if args.is_empty() {
        workspace_root().and_then(|root| {
            let cache_dir = root.join("target/tm-lint-cache");
            let cache = use_cache.then_some(cache_dir.as_path());
            tm_lint::lint_workspace_with(&root, cache)
        })
    } else {
        let files: Vec<PathBuf> = args.iter().map(PathBuf::from).collect();
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        tm_lint::lint_files_strict(&cwd, &files)
    };

    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tm-lint: error: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.diagnostics {
        println!("{}", d.render());
    }
    println!(
        "tm-lint: {} files, {} diagnostics, {} allowed exceptions",
        report.files,
        report.diagnostics.len(),
        report.allowed_total()
    );
    println!("{}", report.summary_json());
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The directory holding `tm-lint.toml`: the current directory if it has
/// one (the normal `cargo run -p tm-lint` case runs from the workspace
/// root), else two levels above this crate's manifest.
fn workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    if cwd.join("tm-lint.toml").is_file() {
        return Ok(cwd);
    }
    let from_manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if from_manifest.join("tm-lint.toml").is_file() {
        return Ok(from_manifest);
    }
    Err("tm-lint.toml not found in the current directory or the workspace root".to_string())
}
