//! Wall-clock timing for the lint engine itself.
//!
//! Pass wall times feed the `TM_LINT_JSON` summary (and from there the
//! perf-trajectory record in ci.sh); they never touch anything
//! sim-visible, which is why this module may read the clock.
// tm-lint: allow-file(wall-clock) -- pass timings feed TM_LINT_JSON only; the linter has no sim-visible state

use std::time::Instant;

/// A started stopwatch.
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Microseconds since `start()`.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Milliseconds since `start()`.
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}
