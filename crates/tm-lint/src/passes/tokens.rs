//! The six original token rules, ported onto the pass API.
//!
//! Every rule keys off identifier tokens plus at most two neighbours, so
//! the pass is a single sweep over the lexed file. Code under
//! `#[cfg(test)]` is excluded first: tests may freely use `HashSet` for
//! order-insensitive assertions or `unwrap()` on fixtures — the contract
//! protects *sim-visible* state, which tests are not.

use crate::lexer::{Tok, TokKind};
use crate::rules::Diagnostic;

use super::{AnalyzedFile, Pass, Workspace};

/// The token-rule pass: all six single-site determinism rules.
pub struct TokenRules;

impl Pass for TokenRules {
    fn name(&self) -> &'static str {
        "tokens"
    }

    fn rules(&self) -> &'static [&'static str] {
        &[
            "wall-clock",
            "unordered-collections",
            "unseeded-rng",
            "threads",
            "float-ordering",
            "unwrap-in-lib",
        ]
    }

    fn run(&self, unit: &AnalyzedFile, _ws: &Workspace) -> Vec<Diagnostic> {
        let Some(lexed) = unit.lexed else {
            return Vec::new();
        };
        let excluded = test_code_ranges(&lexed.tokens);
        let mut out = Vec::new();
        for (i, t) in lexed.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            if excluded.iter().any(|r| r.contains(&i)) {
                continue;
            }
            if let Some((rule, message)) = match_rule(&lexed.tokens, i) {
                out.push(Diagnostic {
                    path: unit.rel.to_string(),
                    line: t.line,
                    rule,
                    message,
                });
            }
        }
        out
    }
}

/// Matches the token at `i` (an ident) against every rule. Returns the
/// first rule hit and its message.
fn match_rule(toks: &[Tok], i: usize) -> Option<(&'static str, String)> {
    let t = &toks[i];
    let text = t.text.as_str();
    let prev = |n: usize| i.checked_sub(n).map(|j| toks[j].text.as_str());
    let next = |n: usize| toks.get(i + n).map(|t| t.text.as_str());

    match text {
        "Instant" | "SystemTime" | "UNIX_EPOCH" => Some((
            "wall-clock",
            format!("`{text}` reads the wall clock; sim-visible time must come from SimTime"),
        )),
        "HashMap" | "HashSet" => Some((
            "unordered-collections",
            format!("`{text}` iterates in hash order; use BTreeMap/BTreeSet (or a Vec) so state is ordered"),
        )),
        "thread_rng" | "ThreadRng" | "OsRng" | "from_entropy" | "getrandom" => Some((
            "unseeded-rng",
            format!("`{text}` draws entropy outside the seeded tm-rand root; fork from the scenario RNG"),
        )),
        "Mutex" | "RwLock" | "Condvar" | "JoinHandle" | "thread_local" | "mpsc" => Some((
            "threads",
            format!("`{text}` implies concurrency; sim crates are single-threaded by contract"),
        )),
        "thread" if next(1) == Some("::") || prev(1) == Some("::") => Some((
            "threads",
            "`std::thread` implies concurrency; sim crates are single-threaded by contract".into(),
        )),
        "partial_cmp" => Some((
            "float-ordering",
            "`partial_cmp` is NaN-partial; event-ordering paths need `total_cmp` or integer keys".into(),
        )),
        "unwrap" | "expect" if prev(1) == Some(".") && next(1) == Some("(") => Some((
            "unwrap-in-lib",
            format!("`.{text}()` panics on scenario-reachable input; return a Result or use let-else/debug_assert"),
        )),
        _ => None,
    }
}

/// Token index ranges covered by `#[cfg(test)]` (or any `cfg(…)` attribute
/// mentioning `test`, e.g. `cfg(all(test, …))`), including the attribute
/// itself and the brace-delimited item that follows it. Shared by every
/// local pass that sweeps raw tokens rather than walking the item tree.
pub(crate) fn test_code_ranges(toks: &[Tok]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            // Scan the attribute body up to its closing `]`.
            let attr_start = i;
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut is_cfg = false;
            let mut mentions_test = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "cfg" if j == attr_start + 2 => is_cfg = true,
                    "test" => mentions_test = true,
                    _ => {}
                }
                j += 1;
            }
            if is_cfg && mentions_test {
                // Skip any further attributes, then the braced item.
                let mut k = j;
                while k < toks.len() && toks[k].text == "#" {
                    let mut d = 0u32;
                    k += 1;
                    if k < toks.len() && toks[k].text == "[" {
                        loop {
                            match toks.get(k).map(|t| t.text.as_str()) {
                                Some("[") => d += 1,
                                Some("]") => {
                                    d -= 1;
                                    if d == 0 {
                                        k += 1;
                                        break;
                                    }
                                }
                                None => break,
                                _ => {}
                            }
                            k += 1;
                        }
                    }
                }
                while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                    k += 1;
                }
                if toks.get(k).map(|t| t.text.as_str()) == Some("{") {
                    let mut braces = 1u32;
                    k += 1;
                    while k < toks.len() && braces > 0 {
                        match toks[k].text.as_str() {
                            "{" => braces += 1,
                            "}" => braces -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                out.push(attr_start..k);
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}
