//! Panic-reachability: potentially-panicking sites on scenario-reachable
//! code paths.
//!
//! A panic mid-campaign loses every scenario after it, so library panics
//! are only acceptable behind an explicit invariant. The `unwrap-in-lib`
//! token rule already covers `.unwrap()`/`.expect()` in *all* lib code
//! (strictly broader than reachability, so this pass does not re-flag
//! them); this pass covers the panic classes a token matcher cannot see,
//! and only where they matter — in functions reachable from the scenario
//! entry set (`Simulator`'s public API plus `run`/`run_*` fns), computed
//! over the workspace call graph:
//!
//! * **indexing** — `recv[idx]` with a runtime index and no visible
//!   bound discipline (a `recv.len()` use or an assert mentioning the
//!   index in the same fn);
//! * **division/modulo** — `/` or `%` by a runtime value with no
//!   emptiness/zero guard (`is_empty`, an assert, or `.max(…)`);
//! * **narrowing casts** — `as u8/u16/u32/i8/i16/i32` with no mask,
//!   clamp, or assert on the source.
//!
//! `+`/`-`/`*` overflow is deliberately out of scope: it wraps in
//! release builds (no panic) and the debug-build invariants in
//! `netsim::engine` already exercise it under `debug_assertions`.
//! Extraction runs per file and is cached; only the cheap
//! reachability closure re-runs per invocation.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::ast::Ast;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::parser::{is_expr_keyword, summarize_expr};
use crate::rules::Diagnostic;

use super::{assert_guarded_idents, AnalyzedFile, CallFact, FnFact, PanicFact, Pass, Workspace};

/// Cast targets considered narrowing on a 64-bit sim host.
const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// The panic-reachability pass (workspace-scoped).
pub struct PanicReach;

impl Pass for PanicReach {
    fn name(&self) -> &'static str {
        "panic-reachability"
    }

    fn rules(&self) -> &'static [&'static str] {
        &["panic-reachability"]
    }

    fn needs_workspace(&self) -> bool {
        true
    }

    fn run(&self, unit: &AnalyzedFile, ws: &Workspace) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for f in ws.reachable_fns(unit.rel) {
            for p in &f.panics {
                out.push(Diagnostic {
                    path: unit.rel.to_string(),
                    line: p.line,
                    rule: "panic-reachability",
                    message: format!("in scenario-reachable `{}`: {}", f.name, p.detail),
                });
            }
        }
        out
    }
}

/// Extracts the cached per-fn summaries (call edges + panic sites) from a
/// freshly analyzed file. `#[cfg(test)]` fns are skipped entirely: they
/// are neither reachability sources nor panic subjects.
pub(crate) fn extract_fns(lexed: &Lexed, ast: &Ast) -> Vec<FnFact> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    ast.for_each_fn(&mut |def, impl_ty, cfg_test| {
        if cfg_test {
            return;
        }
        let mut fact = FnFact {
            name: def.name.clone(),
            line: def.line,
            impl_ty: impl_ty.map(str::to_string),
            is_pub: def.is_pub,
            calls: Vec::new(),
            panics: Vec::new(),
        };
        if let Some(body) = &def.body {
            fact.calls = extract_calls(toks, body.tokens.clone());
            fact.panics = extract_panics(toks, def, body);
        }
        out.push(fact);
    });
    out
}

/// Call edges in a body range, deduplicated.
fn extract_calls(toks: &[Tok], range: Range<usize>) -> Vec<CallFact> {
    let mut seen: BTreeSet<(Option<String>, String)> = BTreeSet::new();
    for j in range.clone() {
        let t = &toks[j];
        if t.kind != TokKind::Ident || is_expr_keyword(&t.text) {
            continue;
        }
        if toks.get(j + 1).map(|n| n.text.as_str()) != Some("(") {
            continue;
        }
        let qual = if j >= 2 && toks[j - 1].text == "::" && toks[j - 2].kind == TokKind::Ident {
            Some(toks[j - 2].text.clone())
        } else {
            None
        };
        seen.insert((qual, t.text.clone()));
    }
    seen.into_iter()
        .map(|(qual, name)| CallFact { qual, name })
        .collect()
}

/// Division-semantics fns: `/` by their own operand *is* the contract
/// (std `Div` panics on zero by definition).
const DIV_FNS: &[&str] = &[
    "div",
    "rem",
    "div_assign",
    "rem_assign",
    "div_euclid",
    "rem_euclid",
];

/// Potentially-panicking sites in a fn body, with per-fn guard
/// recognition. The calibration, in order of application:
///
/// * fns whose signature mentions `f32`/`f64` skip the division check
///   entirely (float division yields inf/NaN, never a panic), as do the
///   [`DIV_FNS`] operator impls;
/// * SCREAMING_CASE roots are constants — a nonzero-const divisor or a
///   const-bounded cast source is compile-time visible;
/// * *bounded* identifiers — `for`-loop variables, values masked with
///   `& lit` / `% lit` / `>> lit`, and `let` bindings whose initializer
///   masks, clamps, or counts zeros — are accepted as index/cast/divisor
///   evidence;
/// * an assert mentioning the value, a `.len()`/`.get()`-family use of
///   the receiver, or an `is_empty` mention (division) also guard.
fn extract_panics(
    toks: &[Tok],
    def: &crate::ast::FnDef,
    body: &crate::ast::Body,
) -> Vec<PanicFact> {
    let range = body.tokens.clone();
    let mut out = Vec::new();
    let asserted = assert_guarded_idents(toks, range.clone());
    let (len_receivers, has_is_empty) = scan_guards(toks, range.clone());
    let bounded = bounded_idents(toks, body);
    let floaty = floaty_signature(toks, range.start);
    let div_fn = DIV_FNS.contains(&def.name.as_str());

    let mut j = range.start;
    while j < range.end {
        let text = toks[j].text.as_str();
        match text {
            "[" if is_postfix_pos(toks, j, range.start) => {
                let close = matching(toks, j, range.end, "[", "]");
                let idx = summarize_expr(toks, j + 1..close);
                let masked =
                    has_infix_mask(toks, j + 1..close) || idx.calls.iter().any(|c| c == "min");
                let recv = receiver_ident(toks, j, range.start);
                let guarded = masked
                    || idx.literal_only
                    || recv
                        .as_deref()
                        .is_some_and(|r| len_receivers.contains(r) || asserted.contains(r))
                    || idx
                        .idents
                        .iter()
                        .any(|id| asserted.contains(id) || bounded.contains(id));
                if !guarded {
                    let recv = recv.unwrap_or_else(|| "<expr>".to_string());
                    out.push(PanicFact {
                        line: toks[j].line,
                        detail: format!(
                            "`{recv}[…]` indexes with a runtime value and this fn never checks \
                             `{recv}.len()` or asserts the index; use .get() or guard the bound"
                        ),
                    });
                }
                j = close;
            }
            "/" | "%" if is_value_pos(toks, j, range.start) => {
                if floaty || div_fn {
                    j += 1;
                    continue;
                }
                let d0 = if toks.get(j + 1).map(|n| n.text.as_str()) == Some("=") {
                    j + 2
                } else {
                    j + 1
                };
                let dend = divisor_end(toks, d0, range.end);
                let div = summarize_expr(toks, d0..dend);
                let literal_divisor =
                    dend == d0 + 1 && toks.get(d0).is_some_and(|t| t.kind == TokKind::Literal);
                let guarded = is_float_context(toks, j, dend, range.start)
                    || literal_divisor
                    || div.idents.is_empty()
                    || has_is_empty
                    || div.calls.iter().any(|c| c == "max")
                    || div.idents.first().is_some_and(|r| is_const_name(r))
                    || div
                        .idents
                        .iter()
                        .any(|id| asserted.contains(id) || bounded.contains(id));
                if !guarded {
                    let root = div.idents.first().cloned().unwrap_or_default();
                    out.push(PanicFact {
                        line: toks[j].line,
                        detail: format!(
                            "`{text} {root}` divides by a runtime value with no zero/emptiness \
                             guard in this fn; assert it, `.max(1)` it, or use checked_div"
                        ),
                    });
                }
                j = dend.saturating_sub(1);
            }
            "as" if toks[j].kind == TokKind::Ident => {
                let Some(ty) = toks.get(j + 1).filter(|t| t.kind == TokKind::Ident) else {
                    j += 1;
                    continue;
                };
                if NARROW.contains(&ty.text.as_str()) {
                    if let Some(p) = vet_cast(toks, j, range.start, &ty.text, &asserted, &bounded) {
                        out.push(p);
                    }
                }
                j += 1;
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// Checks one narrowing `as` cast; returns the panic fact if unguarded.
/// (Truncation does not panic, but it silently corrupts sim state the
/// same way an index panic would have surfaced loudly — the pass treats
/// both as reachable-path value bugs.)
fn vet_cast(
    toks: &[Tok],
    as_idx: usize,
    start: usize,
    ty: &str,
    asserted: &BTreeSet<String>,
    bounded: &BTreeSet<String>,
) -> Option<PanicFact> {
    let src = source_chain(toks, as_idx, start);
    if src.is_empty() {
        return None;
    }
    // Single-literal casts (`7u64 as u32`) are compile-time visible, and a
    // bare `self as uN` is an enum-discriminant read (bounded by repr).
    if src.len() == 1
        && toks[src.clone()]
            .first()
            .is_some_and(|t| t.kind == TokKind::Literal || t.text == "self")
    {
        return None;
    }
    let wide_ty = matches!(ty, "u32" | "i32");
    let mut root = None;
    for t in &toks[src.clone()] {
        match t.text.as_str() {
            // Masks, modulo, shifts, and comparison results are lossless
            // or bounded; `min`/`clamp` bound explicitly.
            "&" | "%" | ">" | "<" | "=" | "!" | "min" | "clamp" => return None,
            // `.len()` of in-memory data fits u32/i32 on these sims.
            "len" | "count" if wide_ty => return None,
            _ => {}
        }
        if t.kind == TokKind::Ident && !is_expr_keyword(&t.text) {
            if asserted.contains(&t.text) || bounded.contains(&t.text) || is_const_name(&t.text) {
                return None;
            }
            root.get_or_insert_with(|| t.text.clone());
        }
    }
    let root = root?;
    Some(PanicFact {
        line: toks[as_idx].line,
        detail: format!(
            "`{root} as {ty}` truncates silently; mask (`& 0x…`), clamp (`.min(…)`), or assert \
             the bound before narrowing"
        ),
    })
}

/// Token range of the postfix chain ending just before the `as` at
/// `as_idx`: identifiers, literals, `.`/`::`/`?` links, and balanced
/// `(…)`/`[…]` groups, walking left until anything else.
fn source_chain(toks: &[Tok], as_idx: usize, start: usize) -> Range<usize> {
    let mut k = as_idx;
    while k > start {
        let p = &toks[k - 1];
        let step_to = match p.kind {
            TokKind::Ident if !is_expr_keyword(&p.text) => k - 1,
            TokKind::Literal => k - 1,
            _ => match p.text.as_str() {
                ")" => matching_back(toks, k - 1, start, "(", ")"),
                "]" => matching_back(toks, k - 1, start, "[", "]"),
                "." | "::" | "?" => k - 1,
                _ => break,
            },
        };
        k = step_to;
    }
    k..as_idx
}

/// Whether `[` at `j` is in postfix (indexing) position.
fn is_postfix_pos(toks: &[Tok], j: usize, start: usize) -> bool {
    if j <= start {
        return false;
    }
    let p = &toks[j - 1];
    match p.kind {
        TokKind::Ident => !is_expr_keyword(&p.text),
        _ => matches!(p.text.as_str(), ")" | "]" | "?"),
    }
}

/// Whether `/` or `%` at `j` is a binary operator (value on the left).
fn is_value_pos(toks: &[Tok], j: usize, start: usize) -> bool {
    if j <= start {
        return false;
    }
    let p = &toks[j - 1];
    match p.kind {
        TokKind::Ident => !is_expr_keyword(&p.text),
        TokKind::Literal => true,
        _ => matches!(p.text.as_str(), ")" | "]"),
    }
}

/// End of the divisor's primary expression: up to 10 tokens, stopping at
/// any depth-0 delimiter or operator.
fn divisor_end(toks: &[Tok], d0: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut k = d0;
    while k < end && k < d0 + 10 {
        match toks[k].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" | "}" if depth == 0 => break,
            ")" | "]" => depth -= 1,
            ";" | "," | "{" if depth == 0 => break,
            "+" | "-" | "*" | "/" | "%" | "<" | ">" | "=" | "&" | "|" if depth == 0 && k > d0 => {
                break
            }
            _ => {}
        }
        k += 1;
    }
    k.max(d0 + 1).min(end)
}

/// Whether a `/` sits in float arithmetic (floats never panic on zero):
/// an `f32`/`f64` type mention, a float literal, or an `_f64`-suffixed
/// name within a window around the operator.
fn is_float_context(toks: &[Tok], op: usize, dend: usize, start: usize) -> bool {
    let lo = op.saturating_sub(8).max(start);
    let hi = (dend + 3).min(toks.len());
    toks[lo..hi].iter().any(|t| {
        (t.kind == TokKind::Ident
            && (matches!(t.text.as_str(), "f32" | "f64") || t.text.ends_with("_f64")))
            || (t.kind == TokKind::Literal && is_float_literal(&t.text))
    })
}

fn is_float_literal(text: &str) -> bool {
    text.starts_with(|c: char| c.is_ascii_digit())
        && (text.contains('.') || text.ends_with("f32") || text.ends_with("f64"))
        && !text.starts_with("0x")
}

/// The nearest receiver identifier left of the `[` at `j` (walking over
/// one balanced `(…)`/`[…]` group and `.`/`?` chains).
fn receiver_ident(toks: &[Tok], j: usize, start: usize) -> Option<String> {
    let mut k = j;
    while k > start {
        k -= 1;
        match toks[k].text.as_str() {
            ")" => k = matching_back(toks, k, start, "(", ")"),
            "]" => k = matching_back(toks, k, start, "[", "]"),
            "?" | "." => {}
            _ => {
                let t = &toks[k];
                if t.kind == TokKind::Ident && !is_expr_keyword(&t.text) {
                    return Some(t.text.clone());
                }
                return None;
            }
        }
    }
    None
}

/// Index of the `open` matching the `close` at `k`, walking backwards.
fn matching_back(toks: &[Tok], k: usize, start: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i32;
    let mut i = k;
    loop {
        if toks[i].text == close {
            depth += 1;
        } else if toks[i].text == open {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        if i == start {
            return i;
        }
        i -= 1;
    }
}

/// Index of the `close` matching the `open` at `j` (clamped to `end`).
fn matching(toks: &[Tok], j: usize, end: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i32;
    let mut k = j;
    while k < end {
        if toks[k].text == open {
            depth += 1;
        } else if toks[k].text == close {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    end
}

/// Per-fn guard survey: receivers with a `.len()` use, and whether the
/// body mentions `is_empty` at all.
fn scan_guards(toks: &[Tok], range: Range<usize>) -> (BTreeSet<String>, bool) {
    let mut len_receivers = BTreeSet::new();
    let mut has_is_empty = false;
    for j in range.clone() {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "is_empty" {
            has_is_empty = true;
        }
        if matches!(
            t.text.as_str(),
            "len" | "iter" | "get" | "contains_key" | "keys" | "values"
        ) && j >= 2
            && toks[j - 1].text == "."
            && toks[j - 2].kind == TokKind::Ident
        {
            len_receivers.insert(toks[j - 2].text.clone());
        }
    }
    (len_receivers, has_is_empty)
}

/// Whether an index-expression range contains a depth-insensitive mask:
/// an infix `&` (bitwise and), `%` (modulo), or `>>` (shift) — any of
/// which bounds the resulting value.
fn has_infix_mask(toks: &[Tok], range: Range<usize>) -> bool {
    for j in range.clone() {
        match toks[j].text.as_str() {
            "&" if j > range.start => return true,
            "%" => return true,
            ">" if toks.get(j + 1).map(|n| n.text.as_str()) == Some(">") => return true,
            _ => {}
        }
    }
    false
}

/// SCREAMING_CASE names are constants; a const divisor or cast source is
/// compile-time visible, so the pass trusts it.
fn is_const_name(name: &str) -> bool {
    name.chars().any(|c| c.is_ascii_uppercase())
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Whether the fn signature preceding the body mentions `f32`/`f64`:
/// such fns do float arithmetic, where division never panics. Walks
/// back from the body start to the `fn` keyword (bounded scan).
fn floaty_signature(toks: &[Tok], body_start: usize) -> bool {
    let lo = body_start.saturating_sub(300);
    let mut fn_at = None;
    let mut k = body_start;
    while k > lo {
        k -= 1;
        if toks[k].kind == TokKind::Ident && toks[k].text == "fn" {
            fn_at = Some(k);
            break;
        }
    }
    let Some(fn_at) = fn_at else { return false };
    toks[fn_at..body_start]
        .iter()
        .any(|t| t.kind == TokKind::Ident && matches!(t.text.as_str(), "f32" | "f64"))
}

/// Identifiers with visible bound discipline anywhere in the fn:
///
/// * `for` loop variables (bounded by the iterated range/collection);
/// * identifiers immediately masked in place — `x & …`, `x % …`,
///   `x >> …`;
/// * `let` bindings whose initializer masks (`&`/`%`) or calls a
///   bounding method (`min`, `clamp`, `trailing_zeros`, `leading_zeros`).
fn bounded_idents(toks: &[Tok], body: &crate::ast::Body) -> BTreeSet<String> {
    let range = body.tokens.clone();
    let mut out = BTreeSet::new();
    for j in range.clone() {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "for" {
            // Collect the loop pattern's identifiers up to `in`.
            for k in j + 1..(j + 9).min(range.end) {
                let p = &toks[k];
                if p.text == "in" {
                    break;
                }
                if p.kind == TokKind::Ident && !is_expr_keyword(&p.text) {
                    out.insert(p.text.clone());
                }
            }
            continue;
        }
        if is_expr_keyword(&t.text) {
            continue;
        }
        // `x & …` / `x % …` / `x >> …`: the masked value is the ident's
        // own use, so later uses of the same local are accepted too —
        // a heuristic, but one that errs only on intra-fn reuse.
        match toks.get(j + 1).map(|n| n.text.as_str()) {
            Some("&") | Some("%") => {
                out.insert(t.text.clone());
            }
            Some(">") if toks.get(j + 2).map(|n| n.text.as_str()) == Some(">") => {
                out.insert(t.text.clone());
            }
            _ => {}
        }
    }
    const BOUNDING_CALLS: &[&str] = &["min", "clamp", "trailing_zeros", "leading_zeros"];
    for bind in &body.lets {
        let Some(init) = &bind.init else { continue };
        // Only short initializers count: a `&` buried in a 100-token
        // match arm says nothing about the bound names.
        if init.tokens.len() > 40 {
            continue;
        }
        let masked = toks[init.tokens.clone()]
            .iter()
            .any(|t| matches!(t.text.as_str(), "&" | "%"))
            || init
                .calls
                .iter()
                .any(|c| BOUNDING_CALLS.contains(&c.as_str()));
        if masked {
            for name in &bind.names {
                out.insert(name.clone());
            }
        }
    }
    out
}
